// An interactive CQL shell over the paper's Table-1 miniature database with
// a simulated crowd. Reads ';'-terminated statements from stdin:
//
//   $ ./build/examples/cdb_shell
//   cdb> SELECT * FROM Paper, Researcher
//        WHERE Paper.author CROWDJOIN Researcher.name;
//   ... 4 answers, 12 tasks, 2 rounds, $0.20 ...
//
// Also supports CREATE [CROWD] TABLE, .tables / .schema meta commands, and a
// stepped-session mode for exercising the durable checkpoint format:
//
//   \session <CQL>    open a stepped QuerySession instead of running one-shot
//   \step [n]         advance the open session n phases (default 1)
//   \snapshot <file>  write the session's checkpoint blob to <file>
//   \restore <file>   rehydrate a fresh session (same query) from <file>
//   \finish           run the open session to completion and print results
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "bench_util/metrics.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "cql/parser.h"
#include "datagen/mini_example.h"
#include "exec/executor.h"
#include "exec/session.h"

using namespace cdb;

namespace {

void PrintTables(const GeneratedDataset& db) {
  for (const std::string& name : db.catalog.TableNames()) {
    const Table* table = db.catalog.GetTable(name).value();
    std::printf("  %-12s %4zu rows  %s\n", name.c_str(), table->num_rows(),
                table->schema().ToString().c_str());
  }
}

void PrintAnswers(const ResolvedQuery& query, const ExecutionResult& result) {
  // Print projected columns (all columns of each base table for '*').
  for (const QueryAnswer& answer : result.answers) {
    std::string line;
    if (query.select_star) {
      for (size_t rel = 0; rel < query.tables.size(); ++rel) {
        const Row& row =
            query.tables[rel]->row(static_cast<size_t>(answer.rows[rel]));
        for (const Value& cell : row) {
          if (!line.empty()) line += " | ";
          line += cell.ToString();
        }
      }
    } else {
      for (const ResolvedProjection& proj : query.projections) {
        const Row& row =
            query.tables[proj.rel]->row(static_cast<size_t>(answer.rows[proj.rel]));
        if (!line.empty()) line += " | ";
        line += row[proj.col].ToString();
      }
    }
    std::printf("  %s\n", line.c_str());
  }
  std::printf("-- %zu answers; %lld tasks, %lld rounds, %lld worker answers, $%.2f\n",
              result.answers.size(),
              static_cast<long long>(result.stats.tasks_asked),
              static_cast<long long>(result.stats.rounds),
              static_cast<long long>(result.stats.worker_answers),
              result.stats.dollars_spent);
}

ExecutorOptions ShellOptions(const ResolvedQuery& query) {
  ExecutorOptions options;
  options.platform.worker_quality_mean = 0.95;
  if (query.budget) options.budget = query.budget;
  return options;
}

void RunSelect(GeneratedDataset& db, const SelectStatement& stmt) {
  Result<ResolvedQuery> analyzed = AnalyzeSelect(stmt, db.catalog);
  if (!analyzed.ok()) {
    std::printf("error: %s\n", analyzed.status().ToString().c_str());
    return;
  }
  ResolvedQuery query = std::move(analyzed).value();
  ExecutorOptions options = ShellOptions(query);
  EdgeTruthFn truth = MakeEdgeTruth(&db, &query);
  CdbExecutor executor(&query, options, truth);
  Result<ExecutionResult> run = executor.Run();
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return;
  }
  PrintAnswers(query, run.value());
}

// The stepped session opened by \session. The query must outlive the
// session, so both live here on the heap until \finish (or a new \session)
// tears them down together.
struct OpenSession {
  std::unique_ptr<ResolvedQuery> query;
  std::string cql;
  std::unique_ptr<QuerySession> session;
};

bool OpenShellSession(GeneratedDataset& db, OpenSession& open,
                      const std::string& cql_in) {
  std::string cql = Trim(cql_in);
  if (cql.empty()) {
    std::printf("usage: \\session SELECT ... ;\n");
    return false;
  }
  if (cql.back() != ';') cql += ';';
  Result<Statement> parsed = ParseStatement(cql);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return false;
  }
  const auto* select = std::get_if<SelectStatement>(&parsed.value());
  if (select == nullptr) {
    std::printf("\\session takes a SELECT statement\n");
    return false;
  }
  Result<ResolvedQuery> analyzed = AnalyzeSelect(*select, db.catalog);
  if (!analyzed.ok()) {
    std::printf("error: %s\n", analyzed.status().ToString().c_str());
    return false;
  }
  open.query =
      std::make_unique<ResolvedQuery>(std::move(analyzed).value());
  open.cql = cql;
  open.session = std::make_unique<QuerySession>(
      open.query.get(), ShellOptions(*open.query),
      MakeEdgeTruth(&db, open.query.get()));
  return true;
}

void HandleMeta(GeneratedDataset& db, OpenSession& open,
                const std::string& trimmed) {
  const size_t space = trimmed.find(' ');
  const std::string cmd = trimmed.substr(0, space);
  const std::string rest =
      space == std::string::npos ? "" : Trim(trimmed.substr(space + 1));

  if (cmd == "\\session") {
    if (OpenShellSession(db, open, rest)) {
      std::printf("session open at %s; \\step to advance, \\snapshot <file> "
                  "to checkpoint\n",
                  SessionPhaseName(open.session->phase()));
    }
    return;
  }
  if (open.session == nullptr) {
    std::printf("no open session; start one with \\session <CQL>\n");
    return;
  }
  if (cmd == "\\step") {
    int n = rest.empty() ? 1 : std::atoi(rest.c_str());
    int stepped = 0;
    while (stepped < n && !open.session->done()) {
      Result<bool> more = open.session->Step();
      if (!more.ok()) {
        std::printf("error: %s\n", more.status().ToString().c_str());
        open = OpenSession{};
        return;
      }
      ++stepped;
    }
    std::printf("stepped %d phase(s); now at %s%s\n", stepped,
                SessionPhaseName(open.session->phase()),
                open.session->done() ? " — \\finish to print results" : "");
  } else if (cmd == "\\snapshot") {
    if (rest.empty()) {
      std::printf("usage: \\snapshot <file>\n");
      return;
    }
    const std::string blob = open.session->Snapshot();
    FILE* f = std::fopen(rest.c_str(), "wb");
    if (f == nullptr) {
      std::printf("error: cannot open %s for writing\n", rest.c_str());
      return;
    }
    std::fwrite(blob.data(), 1, blob.size(), f);
    std::fclose(f);
    std::printf("wrote %zu-byte checkpoint (format v%u) at phase %s to %s\n",
                blob.size(), QuerySession::kSnapshotVersion,
                SessionPhaseName(open.session->phase()), rest.c_str());
  } else if (cmd == "\\restore") {
    if (rest.empty()) {
      std::printf("usage: \\restore <file>\n");
      return;
    }
    FILE* f = std::fopen(rest.c_str(), "rb");
    if (f == nullptr) {
      std::printf("error: cannot open %s\n", rest.c_str());
      return;
    }
    std::string blob;
    char chunk[4096];
    size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
      blob.append(chunk, got);
    std::fclose(f);
    // Restore() requires a freshly-constructed session over the same query,
    // so rebuild one from the open session's statement before rehydrating.
    if (!OpenShellSession(db, open, open.cql)) return;
    Status status = open.session->Restore(blob);
    if (!status.ok()) {
      std::printf("restore failed (%s); session reset to %s\n",
                  status.ToString().c_str(),
                  SessionPhaseName(open.session->phase()));
      open = OpenSession{};
      return;
    }
    std::printf("restored %zu bytes; session resumes at %s\n", blob.size(),
                SessionPhaseName(open.session->phase()));
  } else if (cmd == "\\finish") {
    while (!open.session->done()) {
      Result<bool> more = open.session->Step();
      if (!more.ok()) {
        std::printf("error: %s\n", more.status().ToString().c_str());
        open = OpenSession{};
        return;
      }
    }
    PrintAnswers(*open.query, open.session->TakeResult());
    open = OpenSession{};
  } else {
    std::printf("unknown command %s; meta: \\session \\step \\snapshot "
                "\\restore \\finish\n",
                cmd.c_str());
  }
}

}  // namespace

int main() {
  GeneratedDataset db = MakeMiniPaperExample();
  std::printf("CDB shell — crowd-powered CQL over the Table-1 miniature.\n");
  std::printf("Statements end with ';'. Meta: .tables  .schema  .quit\n");
  std::printf("Stepped sessions: \\session <CQL>  \\step [n]  "
              "\\snapshot <file>  \\restore <file>  \\finish\n\n");
  PrintTables(db);

  OpenSession open;
  std::string buffer;
  std::string line;
  std::printf("cdb> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string trimmed = Trim(line);
    if (trimmed == ".quit" || trimmed == ".exit") break;
    if (trimmed == ".tables" || trimmed == ".schema") {
      PrintTables(db);
      std::printf("cdb> ");
      std::fflush(stdout);
      continue;
    }
    if (!trimmed.empty() && trimmed[0] == '\\' && buffer.empty()) {
      HandleMeta(db, open, trimmed);
      std::printf("cdb> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line;
    buffer += '\n';
    if (trimmed.empty() || trimmed.back() != ';') {
      std::printf("...> ");
      std::fflush(stdout);
      continue;
    }
    Result<Statement> parsed = ParseStatement(buffer);
    buffer.clear();
    if (!parsed.ok()) {
      std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    } else if (const auto* select = std::get_if<SelectStatement>(&parsed.value())) {
      RunSelect(db, *select);
    } else if (const auto* create = std::get_if<CreateTableStatement>(&parsed.value())) {
      Status status = ApplyCreateTable(*create, db.catalog);
      std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
    } else {
      std::printf("FILL/COLLECT need an open-world source; see "
                  "examples/data_collection.cpp\n");
    }
    std::printf("cdb> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
