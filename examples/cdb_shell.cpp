// An interactive CQL shell over the paper's Table-1 miniature database with
// a simulated crowd. Reads ';'-terminated statements from stdin:
//
//   $ ./build/examples/cdb_shell
//   cdb> SELECT * FROM Paper, Researcher
//        WHERE Paper.author CROWDJOIN Researcher.name;
//   ... 4 answers, 12 tasks, 2 rounds, $0.20 ...
//
// Also supports CREATE [CROWD] TABLE and .tables / .schema meta commands.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_util/metrics.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "cql/parser.h"
#include "datagen/mini_example.h"
#include "exec/executor.h"

using namespace cdb;

namespace {

void PrintTables(const GeneratedDataset& db) {
  for (const std::string& name : db.catalog.TableNames()) {
    const Table* table = db.catalog.GetTable(name).value();
    std::printf("  %-12s %4zu rows  %s\n", name.c_str(), table->num_rows(),
                table->schema().ToString().c_str());
  }
}

void RunSelect(GeneratedDataset& db, const SelectStatement& stmt) {
  Result<ResolvedQuery> analyzed = AnalyzeSelect(stmt, db.catalog);
  if (!analyzed.ok()) {
    std::printf("error: %s\n", analyzed.status().ToString().c_str());
    return;
  }
  ResolvedQuery query = std::move(analyzed).value();
  ExecutorOptions options;
  options.platform.worker_quality_mean = 0.95;
  if (query.budget) options.budget = query.budget;
  EdgeTruthFn truth = MakeEdgeTruth(&db, &query);
  CdbExecutor executor(&query, options, truth);
  Result<ExecutionResult> run = executor.Run();
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return;
  }
  const ExecutionResult& result = run.value();
  // Print projected columns (all columns of each base table for '*').
  for (const QueryAnswer& answer : result.answers) {
    std::string line;
    if (query.select_star) {
      for (size_t rel = 0; rel < query.tables.size(); ++rel) {
        const Row& row =
            query.tables[rel]->row(static_cast<size_t>(answer.rows[rel]));
        for (const Value& cell : row) {
          if (!line.empty()) line += " | ";
          line += cell.ToString();
        }
      }
    } else {
      for (const ResolvedProjection& proj : query.projections) {
        const Row& row =
            query.tables[proj.rel]->row(static_cast<size_t>(answer.rows[proj.rel]));
        if (!line.empty()) line += " | ";
        line += row[proj.col].ToString();
      }
    }
    std::printf("  %s\n", line.c_str());
  }
  std::printf("-- %zu answers; %lld tasks, %lld rounds, %lld worker answers, $%.2f\n",
              result.answers.size(),
              static_cast<long long>(result.stats.tasks_asked),
              static_cast<long long>(result.stats.rounds),
              static_cast<long long>(result.stats.worker_answers),
              result.stats.dollars_spent);
}

}  // namespace

int main() {
  GeneratedDataset db = MakeMiniPaperExample();
  std::printf("CDB shell — crowd-powered CQL over the Table-1 miniature.\n");
  std::printf("Statements end with ';'. Meta: .tables  .schema  .quit\n\n");
  PrintTables(db);

  std::string buffer;
  std::string line;
  std::printf("cdb> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string trimmed = Trim(line);
    if (trimmed == ".quit" || trimmed == ".exit") break;
    if (trimmed == ".tables" || trimmed == ".schema") {
      PrintTables(db);
      std::printf("cdb> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line;
    buffer += '\n';
    if (trimmed.empty() || trimmed.back() != ';') {
      std::printf("...> ");
      std::fflush(stdout);
      continue;
    }
    Result<Statement> parsed = ParseStatement(buffer);
    buffer.clear();
    if (!parsed.ok()) {
      std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    } else if (const auto* select = std::get_if<SelectStatement>(&parsed.value())) {
      RunSelect(db, *select);
    } else if (const auto* create = std::get_if<CreateTableStatement>(&parsed.value())) {
      Status status = ApplyCreateTable(*create, db.catalog);
      std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
    } else {
      std::printf("FILL/COLLECT need an open-world source; see "
                  "examples/data_collection.cpp\n");
    }
    std::printf("cdb> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
