// Scenario: crowd-powered data collection (CQL's COLLECT and FILL,
// Appendix A.1). Collect the top-100 universities into a CROWD table with
// autocompletion-based duplicate control, then FILL each university's state
// with early stopping at 3-of-5 agreement.
#include <cstdio>

#include "common/logging.h"
#include "common/string_util.h"
#include "cql/parser.h"
#include "cql/analyzer.h"
#include "exec/collect_fill.h"
#include "storage/catalog.h"

using namespace cdb;

int main() {
  // The COLLECT/FILL statements as a requester would write them.
  std::vector<Statement> script =
      ParseScript(
          "CREATE CROWD TABLE University (name varchar(64), state CROWD "
          "varchar(32));"
          "COLLECT University.name BUDGET 1000;"
          "FILL University.state;")
          .value();
  Catalog catalog;
  CDB_CHECK(ApplyCreateTable(std::get<CreateTableStatement>(script[0]), catalog).ok());
  const auto& collect_stmt = std::get<CollectStatement>(script[1]);
  std::printf("collecting into CROWD table '%s' (budget %lld)...\n",
              collect_stmt.targets[0].table.c_str(),
              static_cast<long long>(collect_stmt.budget.value()));

  // The open world the crowd draws from.
  const char* kStates[] = {"California", "Massachusetts", "Illinois", "Texas",
                           "Michigan",   "Washington",    "Wisconsin", "Ohio"};
  CollectUniverse universe;
  for (int i = 0; i < 140; ++i) {
    CollectUniverse::Entity entity;
    entity.canonical = StrPrintf("University %03d", i);
    entity.variants = {StrPrintf("Univ. %03d", i)};
    universe.entities.push_back(std::move(entity));
  }

  CollectOptions collect_options;
  collect_options.target_distinct = 100;
  collect_options.max_questions = collect_stmt.budget.value();
  CollectResult collected = RunCollect(universe, collect_options);
  std::printf("collected %lld distinct universities with %lld questions "
              "(%lld duplicates avoided by autocompletion)\n",
              static_cast<long long>(collected.distinct_collected),
              static_cast<long long>(collected.questions_asked),
              static_cast<long long>(collected.duplicates));

  // Materialize the collected tuples with CNULL states, then FILL them.
  Table* table = catalog.GetMutableTable("University").value();
  for (const std::string& name : collected.collected) {
    CDB_CHECK(table->AppendRow({Value::Str(name), Value::CNull()}).ok());
  }
  std::vector<size_t> missing = table->CrowdMissingRows("state").value();
  std::printf("FILL work list: %zu CNULL cells\n", missing.size());

  std::vector<FillTaskSpec> specs;
  for (size_t row : missing) {
    FillTaskSpec spec;
    spec.question = "state of " + table->row(row)[0].AsString();
    spec.truth = kStates[row % 8];
    for (int s = 0; s < 8; ++s) {
      if (s != static_cast<int>(row % 8)) spec.wrong_pool.push_back(kStates[s]);
    }
    specs.push_back(std::move(spec));
  }
  FillOptions fill_options;
  fill_options.worker_quality_mean = 0.9;
  FillResult filled = RunFill(specs, fill_options);
  for (size_t i = 0; i < missing.size(); ++i) {
    CDB_CHECK(table->SetCell(missing[i], "state", Value::Str(filled.values[i])).ok());
  }
  std::printf("filled %lld cells with %lld paid answers (%.0f%% correct, "
              "vs %zu answers without early stopping)\n",
              static_cast<long long>(filled.cells_filled),
              static_cast<long long>(filled.answers_collected),
              100.0 * filled.cells_correct / filled.cells_filled,
              missing.size() * 5);
  std::printf("\nsample rows:\n");
  for (size_t i = 0; i < 5 && i < table->num_rows(); ++i) {
    std::printf("  %-18s | %s\n", table->row(i)[0].AsString().c_str(),
                table->row(i)[1].AsString().c_str());
  }
  return 0;
}
