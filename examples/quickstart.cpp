// Quickstart: define tables with CQL DDL, load the paper's Table-1 data,
// run the Figure-4 CROWDJOIN query through the full CDB pipeline (graph
// model, expectation-based cost control, round scheduling, simulated crowd),
// and print the answers.
#include <cstdio>

#include "common/logging.h"
#include "bench_util/metrics.h"
#include "cql/parser.h"
#include "datagen/mini_example.h"
#include "exec/executor.h"

using namespace cdb;

int main() {
  // 1. CQL DDL also works from scratch — shown here for flavor; the data
  //    itself comes from the built-in Table-1 miniature.
  Catalog scratch;
  Statement ddl = ParseStatement(
                      "CREATE TABLE Researcher (affiliation varchar(64), "
                      "name varchar(64), gender CROWD varchar(16));")
                      .value();
  CDB_CHECK(ApplyCreateTable(std::get<CreateTableStatement>(ddl), scratch).ok());
  std::printf("created table via CQL DDL: %s\n\n",
              scratch.GetTable("Researcher").value()->schema().ToString().c_str());

  // 2. The miniature dataset of the paper's Table 1 (with ground truth).
  GeneratedDataset dataset = MakeMiniPaperExample();

  // 3. Parse + analyze the Figure-4 query.
  Statement stmt = ParseStatement(kMiniExampleQuery).value();
  ResolvedQuery query =
      AnalyzeSelect(std::get<SelectStatement>(stmt), dataset.catalog).value();
  std::printf("query: %s\n\n", kMiniExampleQuery);

  // 4. Execute with a simulated crowd (workers ~ N(0.95, 0.01), 5 answers
  //    per task, majority voting).
  ExecutorOptions options;
  options.platform.worker_quality_mean = 0.95;
  EdgeTruthFn truth = MakeEdgeTruth(&dataset, &query);
  CdbExecutor executor(&query, options, truth);
  ExecutionResult result = executor.Run().value();

  // 5. Report.
  std::printf("crowd statistics: %lld tasks, %lld rounds, %lld worker answers, $%.2f\n\n",
              static_cast<long long>(result.stats.tasks_asked),
              static_cast<long long>(result.stats.rounds),
              static_cast<long long>(result.stats.worker_answers),
              result.stats.dollars_spent);
  const Table* paper = dataset.catalog.GetTable("Paper").value();
  const Table* researcher = dataset.catalog.GetTable("Researcher").value();
  const Table* university = dataset.catalog.GetTable("University").value();
  std::printf("answers (%zu):\n", result.answers.size());
  for (const QueryAnswer& answer : result.answers) {
    std::printf("  %-24s | %-20s | %s\n",
                paper->row(static_cast<size_t>(answer.rows[0]))[0].AsString().c_str(),
                researcher->row(static_cast<size_t>(answer.rows[1]))[1].AsString().c_str(),
                university->row(static_cast<size_t>(answer.rows[3]))[0].AsString().c_str());
  }
  PrecisionRecall pr = ComputeF1(result.answers, TrueAnswers(dataset, query));
  std::printf("\nprecision %.2f, recall %.2f, F-measure %.2f\n", pr.precision,
              pr.recall, pr.f1);
  return 0;
}
