// Scenario: the paper's running use case — find the citation counts of
// SIGMOD papers together with the authors' universities, across four dirty
// sources. Compares CDB+ against a cost-based tree optimizer (Deco-style)
// on cost, latency and quality.
#include <cstdio>

#include "bench_util/queries.h"
#include "bench_util/runner.h"
#include "bench_util/table_printer.h"
#include "datagen/paper_dataset.h"

using namespace cdb;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  PaperDatasetOptions options;
  options.scale = scale;
  GeneratedDataset dataset = GeneratePaperDataset(options);

  const std::string cql = PaperQueries()[3].cql;  // 3J1S.
  std::printf("scenario query (3J1S):\n%s\n\n", cql.c_str());

  RunConfig config;
  config.worker_quality = 0.85;
  config.repetitions = 2;

  TablePrinter printer({"system", "#tasks", "#rounds", "F-measure", "$"});
  for (Method method : {Method::kDeco, Method::kCdb, Method::kCdbPlus}) {
    RunOutcome out = RunMethod(method, dataset, cql, config).value();
    double dollars = out.tasks / 10.0 * 0.1;  // 10 tasks per $0.1 HIT.
    printer.AddRow({MethodName(method), FormatCount(out.tasks),
                    FormatDouble(out.rounds, 1), FormatDouble(out.f1, 3),
                    FormatDouble(dollars, 2)});
  }
  printer.Print();
  std::printf("\nCDB's tuple-level pruning asks fewer crowd questions than the\n"
              "table-level plan at comparable latency; CDB+ adds quality.\n");
  return 0;
}
