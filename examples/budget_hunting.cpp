// Scenario: a hard monetary budget (the CQL BUDGET keyword, Section 3).
// The requester caps the number of crowd tasks; CDB's budget-aware selection
// (Section 5.1.3) spends them on the most promising candidates, so recall
// climbs steeply with budget instead of linearly.
#include <cstdio>

#include "common/logging.h"
#include "bench_util/metrics.h"
#include "bench_util/queries.h"
#include "bench_util/table_printer.h"
#include "cql/parser.h"
#include "datagen/paper_dataset.h"
#include "exec/executor.h"

using namespace cdb;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  PaperDatasetOptions dataset_options;
  dataset_options.scale = scale;
  GeneratedDataset dataset = GeneratePaperDataset(dataset_options);

  TablePrinter printer({"BUDGET", "#tasks used", "answers", "recall", "precision"});
  for (int64_t budget : {25, 50, 100, 200, 400}) {
    // The budget rides in the CQL statement itself.
    std::string cql = PaperQueries()[0].cql + " BUDGET " + std::to_string(budget);
    Statement stmt = ParseStatement(cql).value();
    ResolvedQuery query =
        AnalyzeSelect(std::get<SelectStatement>(stmt), dataset.catalog).value();
    CDB_CHECK(query.budget.has_value());

    ExecutorOptions options;
    options.budget = query.budget;  // Plan generation honors the CQL budget.
    options.platform.worker_quality_mean = 0.95;
    EdgeTruthFn truth = MakeEdgeTruth(&dataset, &query);
    CdbExecutor executor(&query, options, truth);
    ExecutionResult result = executor.Run().value();
    PrecisionRecall pr = ComputeF1(result.answers, TrueAnswers(dataset, query));
    printer.AddRow({std::to_string(budget),
                    std::to_string(result.stats.tasks_asked),
                    std::to_string(result.answers.size()),
                    FormatDouble(pr.recall, 3), FormatDouble(pr.precision, 3)});
  }
  printer.Print();
  std::printf("\nEvery budgeted task is aimed at the highest-probability\n"
              "candidate chain, so answers accumulate almost linearly until\n"
              "the answer set is exhausted.\n");
  return 0;
}
