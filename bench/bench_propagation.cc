// Answer-propagation bench: crowd tasks and F1 of the CDB executor with the
// deduction layer off vs on, over the ten representative queries (paper and
// award datasets), reported as BENCH_propagation.json.
//
// Each workload runs the same query twice from the same seed: once with the
// legacy executor (propagation off — the byte-identical pre-existing path)
// and once with ExecutorOptions::propagation enabled, which deduces edge
// colors by transitivity/anti-transitivity between rounds instead of asking
// the crowd. The JSON records the task counts, the deduction counters, and
// the F1 of both runs; tools/check_bench_propagation.py compares every
// counter against the checked-in golden exactly (they are deterministic in
// --seed) and enforces the acceptance bar: propagation saves tasks on every
// workload and in aggregate, without giving up answer quality.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace cdb {
namespace bench {
namespace {

struct WorkloadRow {
  std::string name;
  RunOutcome off;
  RunOutcome on;
};

void RunDataset(const char* dataset_name, const GeneratedDataset& dataset,
                const std::vector<BenchmarkQuery>& queries,
                const RunConfig& base, std::vector<WorkloadRow>* rows) {
  for (const BenchmarkQuery& q : queries) {
    WorkloadRow row;
    row.name = std::string(dataset_name) + "/" + q.label;
    RunConfig off = base;
    off.propagation.enabled = false;
    row.off = MustRun(Method::kCdb, dataset, q.cql, off);
    RunConfig on = base;
    on.propagation.enabled = true;
    row.on = MustRun(Method::kCdb, dataset, q.cql, on);
    rows->push_back(std::move(row));
  }
}

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv, /*default_scale=*/0.2,
                             /*default_reps=*/1);
  std::string out_path = "BENCH_propagation.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  // One repetition, serial optimizer: every reported counter is a pure
  // function of --seed, so the checker can demand exact golden equality.
  RunConfig config = BaseConfig(args, /*worker_quality=*/1.0);
  config.worker_quality_stddev = 0.0;
  config.repetitions = 1;
  config.num_threads = 1;

  std::vector<WorkloadRow> rows;
  GeneratedDataset paper = MakePaper(args);
  RunDataset("paper", paper, PaperQueries(), config, &rows);
  GeneratedDataset award = MakeAward(args);
  RunDataset("award", award, AwardQueries(), config, &rows);

  TablePrinter printer({"workload", "tasks off", "tasks on", "saved",
                        "deduced", "invalidated", "f1 off", "f1 on"});
  double total_off = 0.0;
  double total_on = 0.0;
  std::string json = "{\n  \"schema\": \"cdb-bench-propagation-v1\",\n";
  json += "  \"seed\": " + std::to_string(args.seed) + ",\n";
  json += "  \"workloads\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const WorkloadRow& row = rows[i];
    total_off += row.off.tasks;
    total_on += row.on.tasks;
    const ExecutionStats& stats = row.on.sample_stats;
    printer.AddRow({row.name, FormatCount(row.off.tasks),
                    FormatCount(row.on.tasks),
                    FormatCount(row.off.tasks - row.on.tasks),
                    std::to_string(stats.deduced_edges),
                    std::to_string(stats.deduction_invalidations),
                    FormatDouble(row.off.f1, 3), FormatDouble(row.on.f1, 3)});
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"name\": \"%s\", \"tasks_off\": %.0f, \"tasks_on\": %.0f, "
        "\"dollars_off\": %.2f, \"dollars_on\": %.2f, "
        "\"deduced_edges\": %lld, \"deduction_invalidations\": %lld, "
        "\"f1_off\": %.6f, \"f1_on\": %.6f}%s\n",
        row.name.c_str(), row.off.tasks, row.on.tasks,
        row.off.sample_stats.dollars_spent, stats.dollars_spent,
        static_cast<long long>(stats.deduced_edges),
        static_cast<long long>(stats.deduction_invalidations), row.off.f1,
        row.on.f1, i + 1 < rows.size() ? "," : "");
    json += buffer;
  }
  json += "  ]\n}\n";

  std::printf("Answer propagation: crowd tasks off vs on (seed %llu)\n",
              static_cast<unsigned long long>(args.seed));
  printer.Print();
  std::printf("total tasks: off %.0f, on %.0f (saved %.0f)\n", total_off,
              total_on, total_off - total_on);

  std::FILE* file = std::fopen(out_path.c_str(), "w");
  CDB_CHECK_MSG(file != nullptr, "cannot open --out file");
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cdb

int main(int argc, char** argv) { return cdb::bench::Run(argc, argv); }
