// Multi-query execution: the five Table-4 queries over the paper dataset,
// run sequentially (one CdbExecutor per query, each with a private crowd
// platform) versus concurrently through MultiQueryScheduler (one shared
// platform, rounds merged into shared HITs, identical tasks asked once and
// fanned out). The queries overlap heavily — 3J contains 2J's join, the
// selection variants share their join edges — so cross-query dedup should
// make the concurrent run publish strictly fewer tasks at the same answer
// quality.
#include <memory>

#include "bench/bench_common.h"
#include "bench_util/metrics.h"
#include "cql/parser.h"
#include "exec/scheduler.h"

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  BenchArgs args = ParseArgs(argc, argv, /*default_scale=*/0.3, /*default_reps=*/1);
  GeneratedDataset dataset = MakePaper(args);
  RunConfig config = BaseConfig(args, /*worker_quality=*/0.95);
  BenchObservability obs = MakeObservability(args);

  // Resolve the workload once; the scheduler and the solo executors run the
  // exact same ResolvedQuery objects. unique_ptr keeps addresses stable for
  // the truth closures.
  struct Workload {
    std::string label;
    ResolvedQuery query;
    EdgeTruthFn truth;
    std::vector<QueryAnswer> reference;
  };
  std::vector<std::unique_ptr<Workload>> workloads;
  for (const BenchmarkQuery& bq : PaperQueries()) {
    auto w = std::make_unique<Workload>();
    w->label = bq.label;
    Statement stmt = ParseStatement(bq.cql).value();
    const SelectStatement* select = std::get_if<SelectStatement>(&stmt);
    CDB_CHECK(select != nullptr);
    w->query = AnalyzeSelect(*select, dataset.catalog).value();
    w->truth = MakeEdgeTruth(&dataset, &w->query);
    w->reference = TrueAnswers(dataset, w->query);
    workloads.push_back(std::move(w));
  }

  PlatformOptions platform;
  platform.num_workers = config.num_workers;
  platform.worker_quality_mean = config.worker_quality;
  platform.worker_quality_stddev = config.worker_quality_stddev;
  platform.redundancy = config.redundancy;
  platform.seed = config.seed;
  ExecutorOptions options;
  options.graph = config.graph;
  options.platform = platform;
  options.num_threads = config.num_threads;
  options.graph.num_threads = config.num_threads;
  options.metrics = obs.registry.get();
  options.tracer = obs.tracer.get();

  // Sequential: each query pays for its own tasks on a fresh platform.
  std::vector<ExecutionResult> solo;
  PlatformStats solo_platform{};
  for (const auto& w : workloads) {
    ExecutionResult result =
        CdbExecutor(&w->query, options, w->truth).Run().value();
    solo_platform.tasks_published += result.stats.platform.tasks_published;
    solo_platform.answers_collected += result.stats.platform.answers_collected;
    solo_platform.hits_published += result.stats.platform.hits_published;
    solo_platform.micro_dollars_spent += result.stats.platform.micro_dollars_spent;
    solo.push_back(std::move(result));
  }

  // Concurrent: one scheduler, one shared platform.
  MultiQueryOptions mq;
  mq.platform = platform;
  mq.metrics = obs.registry.get();
  mq.tracer = obs.tracer.get();
  MultiQueryScheduler scheduler(mq);
  for (const auto& w : workloads) {
    scheduler.AddQuery(&w->query, options, w->truth);
  }
  std::vector<ExecutionResult> shared = scheduler.RunAll().value();

  std::printf("Multi-query execution: 5 paper queries, sequential vs "
              "concurrent (scale %.2f)\n", args.scale);
  TablePrinter printer({"query", "tasks seq", "tasks conc", "saved",
                        "F1 seq", "F1 conc"});
  int64_t seq_tasks = 0;
  int64_t conc_tasks = 0;
  int64_t seq_rounds = 0;
  double seq_f1 = 0.0;
  double conc_f1 = 0.0;
  for (size_t i = 0; i < workloads.size(); ++i) {
    PrecisionRecall f1_seq = ComputeF1(solo[i].answers, workloads[i]->reference);
    PrecisionRecall f1_conc =
        ComputeF1(shared[i].answers, workloads[i]->reference);
    int64_t saved = shared[i].stats.dedup_tasks_saved;
    seq_tasks += solo[i].stats.tasks_asked;
    conc_tasks += shared[i].stats.tasks_asked - saved;
    seq_rounds += solo[i].stats.rounds;
    seq_f1 += f1_seq.f1;
    conc_f1 += f1_conc.f1;
    printer.AddRow({workloads[i]->label,
                    std::to_string(solo[i].stats.tasks_asked),
                    std::to_string(shared[i].stats.tasks_asked - saved),
                    std::to_string(saved), FormatDouble(f1_seq.f1, 3),
                    FormatDouble(f1_conc.f1, 3)});
  }
  seq_f1 /= static_cast<double>(workloads.size());
  conc_f1 /= static_cast<double>(workloads.size());
  printer.AddRow({"mean", "", "", "", FormatDouble(seq_f1, 3),
                  FormatDouble(conc_f1, 3)});
  printer.Print();

  const MultiQueryStats& stats = scheduler.stats();
  PlatformStats shared_platform = scheduler.platform_stats();
  std::printf("\n");
  TablePrinter totals({"metric", "sequential", "concurrent"});
  totals.AddRow({"tasks asked", std::to_string(seq_tasks),
                 std::to_string(conc_tasks)});
  totals.AddRow({"tasks published",
                 std::to_string(solo_platform.tasks_published),
                 std::to_string(shared_platform.tasks_published)});
  totals.AddRow({"platform rounds", std::to_string(seq_rounds),
                 std::to_string(stats.merged_rounds)});
  totals.AddRow({"HITs", std::to_string(solo_platform.hits_published),
                 std::to_string(shared_platform.hits_published)});
  totals.AddRow({"dollars", FormatDouble(solo_platform.dollars_spent(), 2),
                 FormatDouble(shared_platform.dollars_spent(), 2)});
  totals.Print();
  std::printf("\ndedup: %lld same-round hits, %lld cache hits, "
              "%lld shared HITs, %lld tasks saved total\n",
              static_cast<long long>(stats.dedup_hits),
              static_cast<long long>(stats.cache_hits),
              static_cast<long long>(shared_platform.shared_hits),
              static_cast<long long>(seq_tasks - conc_tasks));
  CDB_CHECK_MSG(shared_platform.tasks_published <
                    solo_platform.tasks_published,
                "concurrent run must publish strictly fewer tasks");
  // Per-query F1 wobbles with the platform RNG sequence; the workload mean
  // must not regress beyond noise.
  CDB_CHECK_MSG(conc_f1 + 0.02 >= seq_f1,
                "concurrent F1 regressed beyond noise");
  obs.Flush();
  return 0;
}
