// Shared plumbing for the figure/table bench binaries. Each binary
// regenerates one table or figure of the paper's evaluation (Section 6) and
// prints the same rows/series. Scales and repetition counts are chosen so the
// whole suite completes in minutes; pass `--scale=X --reps=N` to override
// (the paper uses full-size datasets and 1000 repetitions).
#ifndef CDB_BENCH_BENCH_COMMON_H_
#define CDB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/queries.h"
#include "bench_util/runner.h"
#include "bench_util/table_printer.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "datagen/award_dataset.h"
#include "datagen/paper_dataset.h"

namespace cdb {
namespace bench {

struct BenchArgs {
  double scale = 0.2;
  int reps = 2;
  uint64_t seed = 1;
  int threads = 0;  // Optimizer threads: 0 = all hardware threads, 1 = serial.
  std::string metrics_out;  // --metrics-out=PATH: metrics JSON after the run.
  std::string trace_out;    // --trace-out=PATH: Chrome-trace JSON (with wall).
};

inline BenchArgs ParseArgs(int argc, char** argv, double default_scale = 0.2,
                           int default_reps = 2) {
  BenchArgs args;
  args.scale = default_scale;
  args.reps = default_reps;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) args.scale = std::atof(argv[i] + 8);
    if (std::strncmp(argv[i], "--reps=", 7) == 0) args.reps = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--seed=", 7) == 0)
      args.seed = static_cast<uint64_t>(std::atoll(argv[i] + 7));
    if (std::strncmp(argv[i], "--threads=", 10) == 0)
      args.threads = std::atoi(argv[i] + 10);
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0)
      args.metrics_out = argv[i] + 14;
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0)
      args.trace_out = argv[i] + 12;
  }
  return args;
}

// Observability sinks for one bench run: allocated only when the flags are
// set, so a run without them pays nothing beyond null-pointer checks. Wire
// `registry.get()` / `tracer.get()` into RunConfig or the executor options,
// then Flush() once after the run.
struct BenchObservability {
  std::unique_ptr<MetricsRegistry> registry;
  std::unique_ptr<Tracer> tracer;
  std::string metrics_path;
  std::string trace_path;

  void Flush() const {
    auto write = [](const std::string& path, const std::string& bytes) {
      std::FILE* file = std::fopen(path.c_str(), "w");
      CDB_CHECK_MSG(file != nullptr, "cannot open observability output file");
      std::fwrite(bytes.data(), 1, bytes.size(), file);
      std::fclose(file);
    };
    if (registry != nullptr) write(metrics_path, registry->DumpJson());
    // Benches are human-facing, so include wall durations; determinism
    // checks use Tracer::DumpJson() instead.
    if (tracer != nullptr) write(trace_path, tracer->DumpJsonWithWall());
  }
};

inline BenchObservability MakeObservability(const BenchArgs& args) {
  BenchObservability obs;
  if (!args.metrics_out.empty()) {
    obs.registry = std::make_unique<MetricsRegistry>();
    obs.metrics_path = args.metrics_out;
  }
  if (!args.trace_out.empty()) {
    obs.tracer = std::make_unique<Tracer>(TracerOptions{/*record_wall=*/true});
    obs.trace_path = args.trace_out;
  }
  return obs;
}

inline GeneratedDataset MakePaper(const BenchArgs& args) {
  PaperDatasetOptions options;
  options.scale = args.scale;
  return GeneratePaperDataset(options);
}

inline GeneratedDataset MakeAward(const BenchArgs& args) {
  AwardDatasetOptions options;
  options.scale = args.scale;
  return GenerateAwardDataset(options);
}

inline RunConfig BaseConfig(const BenchArgs& args, double worker_quality = 0.8) {
  RunConfig config;
  config.worker_quality = worker_quality;
  config.repetitions = args.reps;
  config.sampling_samples = 50;
  config.seed = args.seed;
  config.num_threads = args.threads;
  return config;
}

inline RunOutcome MustRun(Method method, const GeneratedDataset& dataset,
                          const std::string& cql, const RunConfig& config) {
  Result<RunOutcome> outcome = RunMethod(method, dataset, cql, config);
  CDB_CHECK_MSG(outcome.ok(), outcome.status().ToString().c_str());
  return outcome.value();
}

// Runs the 5 representative queries x all 9 methods on one dataset and
// prints the chosen metric — the shared engine of Figures 8, 9 and 10.
inline void PrintMethodQueryMatrix(
    const char* title, const GeneratedDataset& dataset,
    const std::vector<BenchmarkQuery>& queries, const RunConfig& config,
    const std::function<std::string(const RunOutcome&)>& metric) {
  std::printf("%s\n", title);
  std::vector<std::string> headers = {"method"};
  for (const BenchmarkQuery& q : queries) headers.push_back(q.label);
  TablePrinter printer(headers);
  for (Method method : AllMethods()) {
    std::vector<std::string> row = {MethodName(method)};
    for (const BenchmarkQuery& q : queries) {
      row.push_back(metric(MustRun(method, dataset, q.cql, config)));
    }
    printer.AddRow(std::move(row));
  }
  printer.Print();
  std::printf("\n");
}

}  // namespace bench
}  // namespace cdb

#endif  // CDB_BENCH_BENCH_COMMON_H_
