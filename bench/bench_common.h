// Shared plumbing for the figure/table bench binaries. Each binary
// regenerates one table or figure of the paper's evaluation (Section 6) and
// prints the same rows/series. Scales and repetition counts are chosen so the
// whole suite completes in minutes; pass `--scale=X --reps=N` to override
// (the paper uses full-size datasets and 1000 repetitions).
#ifndef CDB_BENCH_BENCH_COMMON_H_
#define CDB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util/queries.h"
#include "bench_util/runner.h"
#include "bench_util/table_printer.h"
#include "common/logging.h"
#include "datagen/award_dataset.h"
#include "datagen/paper_dataset.h"

namespace cdb {
namespace bench {

struct BenchArgs {
  double scale = 0.2;
  int reps = 2;
  uint64_t seed = 1;
  int threads = 0;  // Optimizer threads: 0 = all hardware threads, 1 = serial.
};

inline BenchArgs ParseArgs(int argc, char** argv, double default_scale = 0.2,
                           int default_reps = 2) {
  BenchArgs args;
  args.scale = default_scale;
  args.reps = default_reps;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) args.scale = std::atof(argv[i] + 8);
    if (std::strncmp(argv[i], "--reps=", 7) == 0) args.reps = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--seed=", 7) == 0)
      args.seed = static_cast<uint64_t>(std::atoll(argv[i] + 7));
    if (std::strncmp(argv[i], "--threads=", 10) == 0)
      args.threads = std::atoi(argv[i] + 10);
  }
  return args;
}

inline GeneratedDataset MakePaper(const BenchArgs& args) {
  PaperDatasetOptions options;
  options.scale = args.scale;
  return GeneratePaperDataset(options);
}

inline GeneratedDataset MakeAward(const BenchArgs& args) {
  AwardDatasetOptions options;
  options.scale = args.scale;
  return GenerateAwardDataset(options);
}

inline RunConfig BaseConfig(const BenchArgs& args, double worker_quality = 0.8) {
  RunConfig config;
  config.worker_quality = worker_quality;
  config.repetitions = args.reps;
  config.sampling_samples = 50;
  config.seed = args.seed;
  config.num_threads = args.threads;
  return config;
}

inline RunOutcome MustRun(Method method, const GeneratedDataset& dataset,
                          const std::string& cql, const RunConfig& config) {
  Result<RunOutcome> outcome = RunMethod(method, dataset, cql, config);
  CDB_CHECK_MSG(outcome.ok(), outcome.status().ToString().c_str());
  return outcome.value();
}

// Runs the 5 representative queries x all 9 methods on one dataset and
// prints the chosen metric — the shared engine of Figures 8, 9 and 10.
inline void PrintMethodQueryMatrix(
    const char* title, const GeneratedDataset& dataset,
    const std::vector<BenchmarkQuery>& queries, const RunConfig& config,
    const std::function<std::string(const RunOutcome&)>& metric) {
  std::printf("%s\n", title);
  std::vector<std::string> headers = {"method"};
  for (const BenchmarkQuery& q : queries) headers.push_back(q.label);
  TablePrinter printer(headers);
  for (Method method : AllMethods()) {
    std::vector<std::string> row = {MethodName(method)};
    for (const BenchmarkQuery& q : queries) {
      row.push_back(metric(MustRun(method, dataset, q.cql, config)));
    }
    printer.AddRow(std::move(row));
  }
  printer.Print();
  std::printf("\n");
}

}  // namespace bench
}  // namespace cdb

#endif  // CDB_BENCH_BENCH_COMMON_H_
