// Ablation (DESIGN.md): the epsilon edge-pruning threshold. Lower epsilon
// keeps more low-probability edges (higher cost, higher recall ceiling);
// higher epsilon prunes aggressively (cheaper but may drop true matches).
// The paper fixes epsilon = 0.3.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  BenchArgs args = ParseArgs(argc, argv, /*default_scale=*/0.2, /*default_reps=*/2);
  GeneratedDataset paper = MakePaper(args);
  const std::string cql = PaperQueries()[0].cql;

  std::printf("Ablation: epsilon threshold (2J, dataset paper, CDB)\n");
  TablePrinter printer({"epsilon", "#tasks", "recall", "F-measure"});
  for (double epsilon : {0.2, 0.3, 0.4, 0.5}) {
    RunConfig config = BaseConfig(args, /*worker_quality=*/0.9);
    config.graph.epsilon = epsilon;
    RunOutcome out = MustRun(Method::kCdb, paper, cql, config);
    printer.AddRow({FormatDouble(epsilon, 1), FormatCount(out.tasks),
                    FormatDouble(out.recall, 3), FormatDouble(out.f1, 3)});
  }
  printer.Print();
  return 0;
}
