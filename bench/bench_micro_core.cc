// Micro-benchmarks (google-benchmark) of the optimizer's core primitives:
// similarity join, graph construction, pruning recomputation, cut-impact
// simulation, expectation scoring, min-cut selection, and round scheduling.
// The parallel stages are benchmarked as serial-vs-parallel pairs
// (threads: 1 in the name = exact serial path, 0 = all hardware threads);
// both members of a pair produce bit-identical results, only the wall clock
// differs.
#include <benchmark/benchmark.h>

#include "bench_util/metrics.h"
#include "bench_util/queries.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "cost/expectation.h"
#include "cost/known_color.h"
#include "cost/sampling.h"
#include "cql/parser.h"
#include "crowd/platform.h"
#include "datagen/paper_dataset.h"
#include "flow/min_cut.h"
#include "graph/pruning.h"
#include "graph/structure.h"
#include "latency/scheduler.h"
#include "quality/truth_inference.h"
#include "similarity/sim_join.h"

namespace cdb {
namespace {

const GeneratedDataset& Dataset() {
  static const GeneratedDataset* ds = [] {
    PaperDatasetOptions options;
    options.scale = 0.3;
    return new GeneratedDataset(GeneratePaperDataset(options));
  }();
  return *ds;
}

ResolvedQuery ThreeJoinQuery() {
  Statement stmt = ParseStatement(PaperQueries()[2].cql).value();
  return AnalyzeSelect(std::get<SelectStatement>(stmt), Dataset().catalog).value();
}

void BM_SimilarityJoin2Gram(benchmark::State& state) {
  const Table* paper = Dataset().catalog.GetTable("Paper").value();
  const Table* citation = Dataset().catalog.GetTable("Citation").value();
  std::vector<std::string> left = paper->StringColumn("title").value();
  std::vector<std::string> right = citation->StringColumn("title").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SimilarityJoin(left, right, SimilarityFunction::kQGramJaccard, 0.3));
  }
}
BENCHMARK(BM_SimilarityJoin2Gram);

void BM_GraphBuild3J(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryGraph::Build(query, GraphOptions{}).value());
  }
}
BENCHMARK(BM_GraphBuild3J);

void BM_PrunerRecompute(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  Pruner pruner(&graph);
  for (auto _ : state) {
    pruner.Recompute();
    benchmark::DoNotOptimize(pruner.RemainingTasks());
  }
}
BENCHMARK(BM_PrunerRecompute);

void BM_CutSimulation(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  Pruner pruner(&graph);
  std::vector<std::vector<EdgeId>> cuts;
  for (VertexId v = 0; v < graph.num_vertices() && cuts.size() < 256; ++v) {
    for (int p = 0; p < graph.num_predicates(); ++p) {
      const std::vector<EdgeId>& edges = graph.IncidentEdges(v, p);
      if (!edges.empty()) cuts.push_back(edges);
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pruner.SimulateCutInvalidation(cuts[i % cuts.size()]));
    ++i;
  }
}
BENCHMARK(BM_CutSimulation);

void BM_ExpectationOrder(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  Pruner pruner(&graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpectationOrder(graph, pruner));
  }
}
BENCHMARK(BM_ExpectationOrder);

void BM_KnownColorSelection(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  EdgeTruthFn truth = MakeEdgeTruth(&Dataset(), &query);
  std::vector<EdgeColor> colors(static_cast<size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    colors[static_cast<size_t>(e)] =
        truth(graph, e) ? EdgeColor::kBlue : EdgeColor::kRed;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectTasksKnownColors(graph, colors));
  }
}
BENCHMARK(BM_KnownColorSelection);

// --- Serial-vs-parallel pairs. state.range(0) is the thread knob: 1 = the
// exact serial path, 0 = all hardware threads via the shared pool. ---

void BM_TokenPrefixJoin(benchmark::State& state) {
  const Table* paper = Dataset().catalog.GetTable("Paper").value();
  const Table* citation = Dataset().catalog.GetTable("Citation").value();
  std::vector<std::string> left = paper->StringColumn("title").value();
  std::vector<std::string> right = citation->StringColumn("title").value();
  SimJoinOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimilarityJoin(
        left, right, SimilarityFunction::kQGramJaccard, 0.3, options));
  }
}
BENCHMARK(BM_TokenPrefixJoin)->Arg(1)->Arg(0);

void BM_EditDistanceJoin(benchmark::State& state) {
  const Table* paper = Dataset().catalog.GetTable("Paper").value();
  const Table* citation = Dataset().catalog.GetTable("Citation").value();
  std::vector<std::string> left = paper->StringColumn("title").value();
  std::vector<std::string> right = citation->StringColumn("title").value();
  SimJoinOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimilarityJoin(
        left, right, SimilarityFunction::kEditDistance, 0.6, options));
  }
}
BENCHMARK(BM_EditDistanceJoin)->Arg(1)->Arg(0);

void BM_SampleMinCutOrder(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  SamplingOptions options;
  options.num_samples = 100;  // The paper's real-experiment sample count.
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleMinCutOrder(graph, options));
  }
}
BENCHMARK(BM_SampleMinCutOrder)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_EmTruthInference(benchmark::State& state) {
  // Synthetic workload at round scale: 2000 tasks x 5 answers from a pool of
  // 50 workers of mixed quality.
  Rng rng(42);
  std::vector<double> worker_quality(50);
  for (double& q : worker_quality) q = rng.Uniform(0.6, 0.95);
  std::vector<ChoiceObservation> obs;
  for (int task = 0; task < 2000; ++task) {
    int truth = static_cast<int>(rng.UniformInt(0, 1));
    for (int a = 0; a < 5; ++a) {
      int worker = static_cast<int>(rng.UniformInt(0, 49));
      bool correct = rng.Bernoulli(worker_quality[static_cast<size_t>(worker)]);
      obs.push_back({task, worker, correct ? truth : 1 - truth});
    }
  }
  EmOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(InferSingleChoiceEm(obs, options));
  }
}
BENCHMARK(BM_EmTruthInference)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// --- Fault-layer overhead pair: the same crowd round with the fault
// profile off (state.range(0) == 0, legacy clean loop) vs on (hostile
// profile, tick-driven lease simulation). The clean member must stay within
// a few percent of the pre-fault-layer simulator — FaultProfile::Active()
// gates the whole lease machinery behind one branch. ---

void BM_CrowdRound(benchmark::State& state) {
  PlatformOptions options;
  options.redundancy = 5;
  options.num_workers = 50;
  options.seed = 11;
  if (state.range(0) == 1) {
    options.fault.abandon_prob = 0.3;
    options.fault.straggler_prob = 0.2;
    options.fault.straggler_delay_ticks = 5;
    options.fault.duplicate_prob = 0.1;
    options.fault.no_show_prob = 0.2;
    options.fault.task_deadline_ticks = 8;
  }
  TruthProvider truth = [](const Task&) {
    TaskTruth t;
    t.correct_choice = 0;
    return t;
  };
  std::vector<Task> tasks;
  for (int i = 0; i < 200; ++i) {
    Task task;
    task.id = i;
    task.type = TaskType::kSingleChoice;
    task.question = "match?";
    task.choices = {"yes", "no"};
    task.payload = i;
    tasks.push_back(std::move(task));
  }
  for (auto _ : state) {
    CrowdPlatform platform(options, truth);
    // Measures the raw simulator loop, deliberately below the publish path.
    benchmark::DoNotOptimize(platform.ExecuteRound(  // cdb-lint: disable=single-publish-path
        tasks).value());
    benchmark::DoNotOptimize(platform.TakeLateAnswers());
  }
}
BENCHMARK(BM_CrowdRound)->Arg(0)->Arg(1);

void BM_SelectParallelRound(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  Pruner pruner(&graph);
  std::vector<EdgeId> ordered;
  for (const ScoredEdge& se : ExpectationOrder(graph, pruner)) {
    ordered.push_back(se.edge);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SelectParallelRound(graph, pruner, ordered, LatencyMode::kVertexGreedy));
  }
}
BENCHMARK(BM_SelectParallelRound);

}  // namespace
}  // namespace cdb

BENCHMARK_MAIN();
