// Micro-benchmarks (google-benchmark) of the optimizer's core primitives:
// similarity join, graph construction, pruning recomputation, cut-impact
// simulation, expectation scoring, min-cut selection, and round scheduling.
// The parallel stages are benchmarked as serial-vs-parallel pairs
// (threads: 1 in the name = exact serial path, 0 = all hardware threads);
// both members of a pair produce bit-identical results, only the wall clock
// differs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util/metrics.h"
#include "common/logging.h"
#include "bench_util/queries.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "cost/expectation.h"
#include "cost/known_color.h"
#include "cost/sampling.h"
#include "cql/parser.h"
#include "crowd/platform.h"
#include "datagen/paper_dataset.h"
#include "datagen/string_corpus.h"
#include "flow/min_cut.h"
#include "graph/pruning.h"
#include "graph/structure.h"
#include "latency/scheduler.h"
#include "quality/truth_inference.h"
#include "similarity/sim_join.h"

namespace cdb {
namespace {

const GeneratedDataset& Dataset() {
  static const GeneratedDataset* ds = [] {
    PaperDatasetOptions options;
    options.scale = 0.3;
    return new GeneratedDataset(GeneratePaperDataset(options));
  }();
  return *ds;
}

ResolvedQuery ThreeJoinQuery() {
  Statement stmt = ParseStatement(PaperQueries()[2].cql).value();
  return AnalyzeSelect(std::get<SelectStatement>(stmt), Dataset().catalog).value();
}

void BM_SimilarityJoin2Gram(benchmark::State& state) {
  const Table* paper = Dataset().catalog.GetTable("Paper").value();
  const Table* citation = Dataset().catalog.GetTable("Citation").value();
  std::vector<std::string> left = paper->StringColumn("title").value();
  std::vector<std::string> right = citation->StringColumn("title").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SimilarityJoin(left, right, SimilarityFunction::kQGramJaccard, 0.3));
  }
}
BENCHMARK(BM_SimilarityJoin2Gram);

void BM_GraphBuild3J(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryGraph::Build(query, GraphOptions{}).value());
  }
}
BENCHMARK(BM_GraphBuild3J);

void BM_PrunerRecompute(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  Pruner pruner(&graph);
  for (auto _ : state) {
    pruner.Recompute();
    benchmark::DoNotOptimize(pruner.RemainingTasks());
  }
}
BENCHMARK(BM_PrunerRecompute);

void BM_CutSimulation(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  Pruner pruner(&graph);
  std::vector<std::vector<EdgeId>> cuts;
  for (VertexId v = 0; v < graph.num_vertices() && cuts.size() < 256; ++v) {
    for (int p = 0; p < graph.num_predicates(); ++p) {
      EdgeSpan edges = graph.IncidentEdges(v, p);
      if (!edges.empty()) cuts.emplace_back(edges.begin(), edges.end());
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pruner.SimulateCutInvalidation(cuts[i % cuts.size()]));
    ++i;
  }
}
BENCHMARK(BM_CutSimulation);

void BM_ExpectationOrder(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  Pruner pruner(&graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpectationOrder(graph, pruner));
  }
}
BENCHMARK(BM_ExpectationOrder);

void BM_KnownColorSelection(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  EdgeTruthFn truth = MakeEdgeTruth(&Dataset(), &query);
  std::vector<EdgeColor> colors(static_cast<size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    colors[static_cast<size_t>(e)] =
        truth(graph, e) ? EdgeColor::kBlue : EdgeColor::kRed;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectTasksKnownColors(graph, colors));
  }
}
BENCHMARK(BM_KnownColorSelection);

// --- Serial-vs-parallel pairs. state.range(0) is the thread knob: 1 = the
// exact serial path, 0 = all hardware threads via the shared pool. ---

// Second knob: state.range(1) selects the kernel (0 = flat, 1 = legacy), so
// the flat-vs-legacy speedup is visible in the regular benchmark output too.
void BM_TokenPrefixJoin(benchmark::State& state) {
  const Table* paper = Dataset().catalog.GetTable("Paper").value();
  const Table* citation = Dataset().catalog.GetTable("Citation").value();
  std::vector<std::string> left = paper->StringColumn("title").value();
  std::vector<std::string> right = citation->StringColumn("title").value();
  SimJoinOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  options.kernel =
      state.range(1) == 0 ? SimJoinKernel::kFlat : SimJoinKernel::kLegacy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimilarityJoin(
        left, right, SimilarityFunction::kQGramJaccard, 0.3, options));
  }
}
BENCHMARK(BM_TokenPrefixJoin)
    ->ArgNames({"threads", "legacy"})
    ->Args({1, 0})
    ->Args({0, 0})
    ->Args({1, 1})
    ->Args({0, 1});

void BM_EditDistanceJoin(benchmark::State& state) {
  const Table* paper = Dataset().catalog.GetTable("Paper").value();
  const Table* citation = Dataset().catalog.GetTable("Citation").value();
  std::vector<std::string> left = paper->StringColumn("title").value();
  std::vector<std::string> right = citation->StringColumn("title").value();
  SimJoinOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  options.kernel =
      state.range(1) == 0 ? SimJoinKernel::kFlat : SimJoinKernel::kLegacy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimilarityJoin(
        left, right, SimilarityFunction::kEditDistance, 0.6, options));
  }
}
BENCHMARK(BM_EditDistanceJoin)
    ->ArgNames({"threads", "legacy"})
    ->Args({1, 0})
    ->Args({0, 0})
    ->Args({1, 1})
    ->Args({0, 1});

// Second knob mirrors the sim-join pairs: state.range(1) routes every sample
// through the legacy rebuild-per-call selection (1) or the cached flat
// structures (0). Orderings are byte-identical; only the wall clock differs.
void BM_SampleMinCutOrder(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  SamplingOptions options;
  options.num_samples = 100;  // The paper's real-experiment sample count.
  options.num_threads = static_cast<int>(state.range(0));
  options.legacy_selection = state.range(1) == 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleMinCutOrder(graph, options));
  }
}
BENCHMARK(BM_SampleMinCutOrder)
    ->ArgNames({"threads", "legacy"})
    ->Args({1, 0})
    ->Args({0, 0})
    ->Args({1, 1})
    ->Args({0, 1})
    ->Unit(benchmark::kMillisecond);

void BM_EmTruthInference(benchmark::State& state) {
  // Synthetic workload at round scale: 2000 tasks x 5 answers from a pool of
  // 50 workers of mixed quality.
  Rng rng(42);
  std::vector<double> worker_quality(50);
  for (double& q : worker_quality) q = rng.Uniform(0.6, 0.95);
  std::vector<ChoiceObservation> obs;
  for (int task = 0; task < 2000; ++task) {
    int truth = static_cast<int>(rng.UniformInt(0, 1));
    for (int a = 0; a < 5; ++a) {
      int worker = static_cast<int>(rng.UniformInt(0, 49));
      bool correct = rng.Bernoulli(worker_quality[static_cast<size_t>(worker)]);
      obs.push_back({task, worker, correct ? truth : 1 - truth});
    }
  }
  EmOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(InferSingleChoiceEm(obs, options));
  }
}
BENCHMARK(BM_EmTruthInference)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// --- Fault-layer overhead pair: the same crowd round with the fault
// profile off (state.range(0) == 0, legacy clean loop) vs on (hostile
// profile, tick-driven lease simulation). The clean member must stay within
// a few percent of the pre-fault-layer simulator — FaultProfile::Active()
// gates the whole lease machinery behind one branch. ---

void BM_CrowdRound(benchmark::State& state) {
  PlatformOptions options;
  options.redundancy = 5;
  options.num_workers = 50;
  options.seed = 11;
  if (state.range(0) == 1) {
    options.fault.abandon_prob = 0.3;
    options.fault.straggler_prob = 0.2;
    options.fault.straggler_delay_ticks = 5;
    options.fault.duplicate_prob = 0.1;
    options.fault.no_show_prob = 0.2;
    options.fault.task_deadline_ticks = 8;
  }
  TruthProvider truth = [](const Task&) {
    TaskTruth t;
    t.correct_choice = 0;
    return t;
  };
  std::vector<Task> tasks;
  for (int i = 0; i < 200; ++i) {
    Task task;
    task.id = i;
    task.type = TaskType::kSingleChoice;
    task.question = "match?";
    task.choices = {"yes", "no"};
    task.payload = i;
    tasks.push_back(std::move(task));
  }
  for (auto _ : state) {
    CrowdPlatform platform(options, truth);
    // Measures the raw simulator loop, deliberately below the publish path.
    benchmark::DoNotOptimize(platform.ExecuteRound(  // cdb-lint: disable=single-publish-path
        tasks).value());
    benchmark::DoNotOptimize(platform.TakeLateAnswers());
  }
}
BENCHMARK(BM_CrowdRound)->Arg(0)->Arg(1);

void BM_SelectParallelRound(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  Pruner pruner(&graph);
  std::vector<EdgeId> ordered;
  for (const ScoredEdge& se : ExpectationOrder(graph, pruner)) {
    ordered.push_back(se.edge);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SelectParallelRound(graph, pruner, ordered, LatencyMode::kVertexGreedy));
  }
}
BENCHMARK(BM_SelectParallelRound);

// --- Sim-join funnel harness (--metrics-out=PATH) ---------------------------
// Runs the flat and legacy kernels over scalable string corpora (10^4 and
// 10^5 records) and writes BENCH_simjoin.json: per-kernel wall time,
// records/sec, and the funnel counters. The counters are deterministic in
// the corpus seed, so CI can regenerate the file and diff them exactly;
// wall-clock fields are compared as flat/legacy ratios with tolerance
// (tools/check_bench_simjoin.py).

struct SimJoinWorkload {
  const char* name;
  SimilarityFunction fn;
  double threshold;
  int64_t records;
};

struct KernelRun {
  double wall_ms = 0.0;
  int64_t pairs = 0;
  int64_t candidates = 0;
  int64_t signature_rejects = 0;
  int64_t verified = 0;
};

KernelRun RunKernel(const StringCorpus& corpus, const SimJoinWorkload& w,
                    SimJoinKernel kernel) {
  MetricsRegistry metrics;
  SimJoinOptions options;
  options.num_threads = 1;  // Pure kernel comparison, no pool variance.
  options.kernel = kernel;
  options.metrics = &metrics;
  WallTimer timer;
  std::vector<SimPair> pairs =
      SimilarityJoin(corpus.left, corpus.right, w.fn, w.threshold, options);
  KernelRun run;
  run.wall_ms = static_cast<double>(timer.ElapsedMicros()) / 1000.0;
  run.pairs = static_cast<int64_t>(pairs.size());
  run.candidates = metrics.counter("simjoin.candidates").Value();
  run.signature_rejects = metrics.counter("simjoin.signature_rejects").Value();
  run.verified = metrics.counter("simjoin.verified").Value();
  return run;
}

std::string KernelJson(const KernelRun& run, int64_t records) {
  double secs = run.wall_ms / 1000.0;
  int64_t records_per_sec =
      secs > 0.0 ? static_cast<int64_t>(static_cast<double>(records) / secs)
                 : 0;
  return StrPrintf(
      "{\"wall_ms\": %.3f, \"records_per_sec\": %lld, "
      "\"candidates\": %lld, \"signature_rejects\": %lld, "
      "\"verified\": %lld, \"pairs\": %lld}",
      run.wall_ms, static_cast<long long>(records_per_sec),
      static_cast<long long>(run.candidates),
      static_cast<long long>(run.signature_rejects),
      static_cast<long long>(run.verified),
      static_cast<long long>(run.pairs));
}

void RunSimJoinFunnel(const std::string& path) {
  // The 10^5 workload is the headline: verify-dominated at a moderate
  // threshold, where the signature filter and id-merge verify pay off. The
  // 2-gram universe is tiny (~10^3 grams), so the prefix filter degrades at
  // 10^5 records and the q-gram/edit workloads run at 10^4.
  const SimJoinWorkload workloads[] = {
      {"word_jaccard_1e4", SimilarityFunction::kWordJaccard, 0.6, 10000},
      {"word_jaccard_1e5", SimilarityFunction::kWordJaccard, 0.6, 100000},
      {"qgram_jaccard_1e4", SimilarityFunction::kQGramJaccard, 0.6, 10000},
      {"qgram_cosine_1e4", SimilarityFunction::kQGramCosine, 0.7, 10000},
      {"edit_distance_1e4", SimilarityFunction::kEditDistance, 0.8, 10000},
  };
  std::string json = "{\n  \"schema\": \"cdb-bench-simjoin-v1\",\n"
                     "  \"threads\": 1,\n  \"workloads\": [\n";
  bool first = true;
  for (const SimJoinWorkload& w : workloads) {
    StringCorpusOptions corpus_options;
    corpus_options.num_left = w.records;
    corpus_options.num_right = w.records;
    StringCorpus corpus = GenerateStringCorpus(corpus_options);
    std::fprintf(stderr, "simjoin funnel: %s (%lld records)...\n", w.name,
                 static_cast<long long>(w.records));
    KernelRun legacy = RunKernel(corpus, w, SimJoinKernel::kLegacy);
    KernelRun flat = RunKernel(corpus, w, SimJoinKernel::kFlat);
    double speedup =
        flat.wall_ms > 0.0 ? legacy.wall_ms / flat.wall_ms : 0.0;
    if (!first) json += ",\n";
    first = false;
    json += StrPrintf(
        "    {\"name\": \"%s\", \"fn\": \"%s\", \"threshold\": %.2f, "
        "\"records\": %lld,\n"
        "     \"legacy\": %s,\n"
        "     \"flat\": %s,\n"
        "     \"speedup_flat_over_legacy\": %.2f}",
        w.name, SimilarityFunctionName(w.fn), w.threshold,
        static_cast<long long>(w.records), KernelJson(legacy, w.records).c_str(),
        KernelJson(flat, w.records).c_str(), speedup);
    std::fprintf(stderr, "  legacy %.1f ms, flat %.1f ms, speedup %.2fx\n",
                 legacy.wall_ms, flat.wall_ms, speedup);
  }
  json += "\n  ]\n}\n";
  std::FILE* file = std::fopen(path.c_str(), "w");
  CDB_CHECK_MSG(file != nullptr, "cannot open --metrics-out file");
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
}

// --- Optimizer selection harness (--optimizer-out=PATH) ---------------------
// Runs SampleMinCutOrder with the legacy rebuild-per-sample selection and the
// cached flat path over synthetic join graphs of each shape class and writes
// BENCH_optimizer.json: per-path wall time, the ordering length, and an
// FNV-1a checksum of the edge ordering. Graphs and orderings are
// deterministic in the workload seed, so CI regenerates the file and diffs
// the counters exactly; wall-clock fields are compared as flat/legacy ratios
// with tolerance (tools/check_bench_optimizer.py).

struct OptimizerWorkload {
  const char* name;
  // Relation-level shape as predicate endpoint pairs.
  std::vector<std::pair<int, int>> preds;
  int rows;  // Tuples per relation; edges are ~rows^2*density per predicate.
  uint64_t seed;
  double density = 0.5;
  double weight_lo = 0.3;  // Edge matching probabilities; higher ranges make
  double weight_hi = 0.95; // sampled colorings mostly blue (small cuts).
};

QueryGraph MakeOptimizerGraph(const OptimizerWorkload& w) {
  std::vector<PredicateInfo> preds;
  int num_rels = 0;
  for (const auto& [a, b] : w.preds) {
    preds.push_back(PredicateInfo{true, false, a, b});
    num_rels = std::max({num_rels, a + 1, b + 1});
  }
  Rng rng(w.seed);
  std::vector<QueryGraph::SyntheticEdge> edges;
  for (int p = 0; p < static_cast<int>(preds.size()); ++p) {
    for (int a = 0; a < w.rows; ++a) {
      for (int b = 0; b < w.rows; ++b) {
        if (!rng.Bernoulli(w.density)) continue;
        edges.push_back({p, a, b, rng.Uniform(w.weight_lo, w.weight_hi)});
      }
    }
  }
  return QueryGraph::MakeSynthetic(num_rels, preds, edges);
}

uint64_t OrderChecksum(const std::vector<EdgeId>& order) {
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis.
  for (EdgeId e : order) {
    uint32_t bits = static_cast<uint32_t>(e);
    for (int i = 0; i < 4; ++i) {
      hash ^= (bits >> (8 * i)) & 0xffu;
      hash *= 1099511628211ULL;  // FNV-1a prime.
    }
  }
  return hash;
}

struct SelectionRun {
  double wall_ms = 0.0;
  std::vector<EdgeId> order;
};

SelectionRun RunSelection(const QueryGraph& graph, bool legacy, int samples) {
  SamplingOptions options;
  options.num_samples = samples;
  options.num_threads = 1;  // Pure path comparison, no pool variance.
  options.legacy_selection = legacy;
  WallTimer timer;
  SelectionRun run;
  run.order = SampleMinCutOrder(graph, options);
  run.wall_ms = static_cast<double>(timer.ElapsedMicros()) / 1000.0;
  return run;
}

void RunOptimizerBench(const std::string& path) {
  // One workload per shape class at a small size, a mid-size chain with the
  // default weight band, and two large mostly-blue graphs. The large chain is
  // the headline: the per-sample rebuild cost the cache amortizes grows with
  // the pair count, and the high matching probabilities (realistic after the
  // epsilon filter) keep the min cuts — the cost both paths share — small.
  const OptimizerWorkload workloads[] = {
      {"star_4rel", {{0, 1}, {0, 2}, {0, 3}}, 20, 7},
      {"cyclic_3rel", {{0, 1}, {1, 2}, {2, 0}}, 20, 11},
      {"chain_4rel", {{0, 1}, {1, 2}, {2, 3}}, 20, 13},
      {"chain_4rel_large", {{0, 1}, {1, 2}, {2, 3}}, 56, 17},
      {"cyclic_4rel_midblue_96",
       {{0, 1}, {1, 2}, {2, 3}, {3, 0}},
       96, 19, 0.5, 0.88, 0.99},
      {"chain_4rel_midblue_120",
       {{0, 1}, {1, 2}, {2, 3}},
       120, 17, 0.5, 0.88, 0.99},
  };
  const int samples = 100;
  std::string json = "{\n  \"schema\": \"cdb-bench-optimizer-v1\",\n"
                     "  \"threads\": 1,\n";
  json += StrPrintf("  \"samples\": %d,\n  \"workloads\": [\n", samples);
  bool first = true;
  for (const OptimizerWorkload& w : workloads) {
    QueryGraph graph = MakeOptimizerGraph(w);
    std::fprintf(stderr, "optimizer bench: %s (%d edges)...\n", w.name,
                 graph.num_edges());
    SelectionRun legacy = RunSelection(graph, /*legacy=*/true, samples);
    SelectionRun flat = RunSelection(graph, /*legacy=*/false, samples);
    CDB_CHECK_MSG(legacy.order == flat.order,
                  "legacy and flat sampler orderings diverged");
    double speedup =
        flat.wall_ms > 0.0 ? legacy.wall_ms / flat.wall_ms : 0.0;
    if (!first) json += ",\n";
    first = false;
    json += StrPrintf(
        "    {\"name\": \"%s\", \"edges\": %d, \"order_len\": %lld,\n"
        "     \"checksum_legacy\": \"%016llx\", \"checksum_flat\": "
        "\"%016llx\",\n"
        "     \"legacy\": {\"wall_ms\": %.3f},\n"
        "     \"flat\": {\"wall_ms\": %.3f},\n"
        "     \"speedup_flat_over_legacy\": %.2f}",
        w.name, graph.num_edges(),
        static_cast<long long>(legacy.order.size()),
        static_cast<unsigned long long>(OrderChecksum(legacy.order)),
        static_cast<unsigned long long>(OrderChecksum(flat.order)),
        legacy.wall_ms, flat.wall_ms, speedup);
    std::fprintf(stderr, "  legacy %.1f ms, flat %.1f ms, speedup %.2fx\n",
                 legacy.wall_ms, flat.wall_ms, speedup);
  }
  json += "\n  ]\n}\n";
  std::FILE* file = std::fopen(path.c_str(), "w");
  CDB_CHECK_MSG(file != nullptr, "cannot open --optimizer-out file");
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
}

}  // namespace
}  // namespace cdb

// Custom main: `--metrics-out=PATH` is ours (google-benchmark rejects
// unknown flags), and it switches the binary into the sim-join funnel
// harness that writes BENCH_simjoin.json.
int main(int argc, char** argv) {
  std::string metrics_out;
  std::string optimizer_out;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
      continue;
    }
    if (std::strncmp(argv[i], "--optimizer-out=", 16) == 0) {
      optimizer_out = argv[i] + 16;
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  if (!metrics_out.empty()) {
    cdb::RunSimJoinFunnel(metrics_out);
    return 0;
  }
  if (!optimizer_out.empty()) {
    cdb::RunOptimizerBench(optimizer_out);
    return 0;
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
