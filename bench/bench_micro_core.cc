// Micro-benchmarks (google-benchmark) of the optimizer's core primitives:
// similarity join, graph construction, pruning recomputation, cut-impact
// simulation, expectation scoring, min-cut selection, and round scheduling.
#include <benchmark/benchmark.h>

#include "bench_util/metrics.h"
#include "bench_util/queries.h"
#include "cost/expectation.h"
#include "cost/known_color.h"
#include "cql/parser.h"
#include "datagen/paper_dataset.h"
#include "flow/min_cut.h"
#include "graph/pruning.h"
#include "graph/structure.h"
#include "latency/scheduler.h"
#include "similarity/sim_join.h"

namespace cdb {
namespace {

const GeneratedDataset& Dataset() {
  static const GeneratedDataset* ds = [] {
    PaperDatasetOptions options;
    options.scale = 0.3;
    return new GeneratedDataset(GeneratePaperDataset(options));
  }();
  return *ds;
}

ResolvedQuery ThreeJoinQuery() {
  Statement stmt = ParseStatement(PaperQueries()[2].cql).value();
  return AnalyzeSelect(std::get<SelectStatement>(stmt), Dataset().catalog).value();
}

void BM_SimilarityJoin2Gram(benchmark::State& state) {
  const Table* paper = Dataset().catalog.GetTable("Paper").value();
  const Table* citation = Dataset().catalog.GetTable("Citation").value();
  std::vector<std::string> left = paper->StringColumn("title").value();
  std::vector<std::string> right = citation->StringColumn("title").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SimilarityJoin(left, right, SimilarityFunction::kQGramJaccard, 0.3));
  }
}
BENCHMARK(BM_SimilarityJoin2Gram);

void BM_GraphBuild3J(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryGraph::Build(query, GraphOptions{}).value());
  }
}
BENCHMARK(BM_GraphBuild3J);

void BM_PrunerRecompute(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  Pruner pruner(&graph);
  for (auto _ : state) {
    pruner.Recompute();
    benchmark::DoNotOptimize(pruner.RemainingTasks());
  }
}
BENCHMARK(BM_PrunerRecompute);

void BM_CutSimulation(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  Pruner pruner(&graph);
  std::vector<std::vector<EdgeId>> cuts;
  for (VertexId v = 0; v < graph.num_vertices() && cuts.size() < 256; ++v) {
    for (int p = 0; p < graph.num_predicates(); ++p) {
      const std::vector<EdgeId>& edges = graph.IncidentEdges(v, p);
      if (!edges.empty()) cuts.push_back(edges);
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pruner.SimulateCutInvalidation(cuts[i % cuts.size()]));
    ++i;
  }
}
BENCHMARK(BM_CutSimulation);

void BM_ExpectationOrder(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  Pruner pruner(&graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpectationOrder(graph, pruner));
  }
}
BENCHMARK(BM_ExpectationOrder);

void BM_KnownColorSelection(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  EdgeTruthFn truth = MakeEdgeTruth(&Dataset(), &query);
  std::vector<EdgeColor> colors(static_cast<size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    colors[static_cast<size_t>(e)] =
        truth(graph, e) ? EdgeColor::kBlue : EdgeColor::kRed;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectTasksKnownColors(graph, colors));
  }
}
BENCHMARK(BM_KnownColorSelection);

void BM_SelectParallelRound(benchmark::State& state) {
  ResolvedQuery query = ThreeJoinQuery();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  Pruner pruner(&graph);
  std::vector<EdgeId> ordered;
  for (const ScoredEdge& se : ExpectationOrder(graph, pruner)) {
    ordered.push_back(se.edge);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SelectParallelRound(graph, pruner, ordered, LatencyMode::kVertexGreedy));
  }
}
BENCHMARK(BM_SelectParallelRound);

}  // namespace
}  // namespace cdb

BENCHMARK_MAIN();
