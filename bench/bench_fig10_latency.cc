// Figure 10: latency (#rounds) of the 5 representative queries under all
// nine methods (Section 6.2.1). The graph methods stay within a handful of
// rounds; the ER methods need many rounds per join.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  BenchArgs args = ParseArgs(argc, argv);
  RunConfig config = BaseConfig(args, /*worker_quality=*/0.8);

  GeneratedDataset paper = MakePaper(args);
  PrintMethodQueryMatrix("Figure 10(a): #rounds, dataset paper", paper,
                         PaperQueries(), config, [](const RunOutcome& out) {
                           return FormatDouble(out.rounds, 1);
                         });
  GeneratedDataset award = MakeAward(args);
  PrintMethodQueryMatrix("Figure 10(b): #rounds, dataset award", award,
                         AwardQueries(), config, [](const RunOutcome& out) {
                           return FormatDouble(out.rounds, 1);
                         });
  std::printf("Expected shape: tree methods = #predicates rounds; graph methods\n"
              "close to that; Trans/ACD several times more.\n");
  return 0;
}
