// Table 5: optimizer efficiency — the wall-clock time CDB spends selecting
// tasks and scheduling rounds (not crowd time), per query and dataset, at
// the paper's full cardinalities. The paper reports ~2-12 ms; our expectation
// scorer and vertex-greedy scheduler stay in the same ballpark per round on
// comparably sized graphs. Each dataset is measured twice — serial (threads
// = 1, the paper's setting) and parallel (all hardware threads) — so the
// thread-pool speedup of the optimizer's parallel stages lands in the same
// table; metric outputs are bit-identical between the two rows.
#include "bench/bench_common.h"
#include "common/thread_pool.h"

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  BenchArgs args = ParseArgs(argc, argv, /*default_scale=*/0.5, /*default_reps=*/1);
  BenchObservability obs = MakeObservability(args);

  std::printf("Table 5: task-selection time per query (milliseconds, scale %.2f)\n",
              args.scale);
  TablePrinter printer({"dataset", "threads", "2J", "2J1S", "3J", "3J1S", "3J2S"});
  struct Entry {
    const char* name;
    GeneratedDataset dataset;
    std::vector<BenchmarkQuery> queries;
  };
  std::vector<Entry> entries;
  entries.push_back({"paper", MakePaper(args), PaperQueries()});
  entries.push_back({"award", MakeAward(args), AwardQueries()});
  const int hw = ThreadPool::HardwareConcurrency();
  ExecutionStats sample;  // Last query of the last dataset, serial run.
  std::string sample_label;
  for (Entry& entry : entries) {
    for (int threads : {1, hw}) {
      std::vector<std::string> row = {entry.name, std::to_string(threads)};
      for (const BenchmarkQuery& query : entry.queries) {
        RunConfig config = BaseConfig(args, /*worker_quality=*/0.95);
        config.repetitions = 1;
        config.num_threads = threads;
        config.metrics = obs.registry.get();
        config.tracer = obs.tracer.get();
        RunOutcome out = MustRun(Method::kCdb, entry.dataset, query.cql, config);
        row.push_back(FormatDouble(out.selection_ms, 1));
        if (threads == 1) {
          sample = out.sample_stats;
          sample_label = std::string(entry.name) + " / " + query.label;
        }
      }
      printer.AddRow(std::move(row));
      if (hw == 1) break;  // A 1-core host would print the same row twice.
    }
  }
  printer.Print();

  // Where the session spends its steps: per-phase counters of one run show
  // the Algorithm-1 loop structure (selection phases step once per round;
  // publish/collect carry the task and answer volume).
  std::printf("\nSession phase breakdown (%s, threads 1)\n",
              sample_label.c_str());
  TablePrinter phases({"phase", "steps", "tasks", "answers"});
  for (int p = 0; p < kNumSessionPhases; ++p) {
    const PhaseCounters& c = sample.phases[static_cast<size_t>(p)];
    phases.AddRow({SessionPhaseName(static_cast<SessionPhase>(p)),
                   std::to_string(c.steps), std::to_string(c.tasks),
                   std::to_string(c.answers)});
  }
  phases.Print();
  std::printf("scheduler dedup: %lld tasks saved (solo runs always 0)\n",
              static_cast<long long>(sample.dedup_tasks_saved));
  obs.Flush();
  return 0;
}
