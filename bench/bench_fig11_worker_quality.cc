// Figures 11-13: varying simulated worker quality q in {0.7, 0.8, 0.9}
// (underlying Gaussian N(q, 0.01)); cost, quality and latency per method,
// averaged over the representative queries (Section 6.2.2).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  BenchArgs args = ParseArgs(argc, argv, /*default_scale=*/0.15, /*default_reps=*/2);
  GeneratedDataset paper = MakePaper(args);
  // Average over three structurally distinct queries to keep runtime sane.
  std::vector<BenchmarkQuery> queries = {PaperQueries()[0], PaperQueries()[1],
                                         PaperQueries()[2]};

  for (const char* metric : {"#tasks", "F-measure", "#rounds"}) {
    std::printf("Varying worker quality: %s (dataset paper)\n", metric);
    TablePrinter printer({"method", "q=0.7", "q=0.8", "q=0.9"});
    for (Method method : AllMethods()) {
      std::vector<std::string> row = {MethodName(method)};
      for (double q : {0.7, 0.8, 0.9}) {
        RunConfig config = BaseConfig(args, q);
        double tasks = 0.0;
        double f1 = 0.0;
        double rounds = 0.0;
        for (const BenchmarkQuery& query : queries) {
          RunOutcome out = MustRun(method, paper, query.cql, config);
          tasks += out.tasks;
          f1 += out.f1;
          rounds += out.rounds;
        }
        double n = static_cast<double>(queries.size());
        if (metric[0] == '#' && metric[1] == 't') {
          row.push_back(FormatCount(tasks / n));
        } else if (metric[0] == 'F') {
          row.push_back(FormatDouble(f1 / n, 3));
        } else {
          row.push_back(FormatDouble(rounds / n, 1));
        }
      }
      printer.AddRow(std::move(row));
    }
    printer.Print();
    std::printf("\n");
  }
  std::printf("Expected shape: cost falls as worker quality rises (better answers\n"
              "let methods infer/prune more); CDB+ quality lead is largest at q=0.7.\n");
  return 0;
}
