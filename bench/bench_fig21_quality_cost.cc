// Figure 21: quality vs cost budget (3J2S, redundancy 5). With more budget
// both approaches improve; CDB+ stays above majority voting and the gap
// widens with budget — more answers give EM more signal about workers.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  BenchArgs args = ParseArgs(argc, argv, /*default_scale=*/0.5, /*default_reps=*/3);
  GeneratedDataset paper = MakePaper(args);
  const std::string cql = PaperQueries()[4].cql;  // 3J2S.

  std::printf("Figure 21: F-measure vs #questions (3J2S, redundancy 5)\n");
  TablePrinter printer({"budget", "CDB+", "majority voting"});
  for (int64_t budget : {25, 50, 100, 200, 400}) {
    RunConfig config = BaseConfig(args, /*worker_quality=*/0.75);
    config.budget = budget;
    config.num_workers = 10;
    RunOutcome plus = MustRun(Method::kCdbPlus, paper, cql, config);
    RunOutcome mv = MustRun(Method::kCdb, paper, cql, config);
    printer.AddRow({std::to_string(budget), FormatDouble(plus.f1, 3),
                    FormatDouble(mv.f1, 3)});
  }
  printer.Print();
  std::printf("\nExpected shape: both curves rise with budget; CDB+ on top.\n");
  return 0;
}
