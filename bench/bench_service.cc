// Service-layer bench: sustained multi-tenant session throughput with
// admission control engaged, reported in the BENCH_simjoin.json trajectory
// format as BENCH_service.json.
//
// The workload submits --sessions mini-example queries (default 1200) across
// 8 tenants against a CdbService whose live cap, queue bound, and per-tenant
// budgets are sized so every admission-control path fires: the queue pushes
// back mid-burst (submitters retry after a wave, as a real client would), a
// greedy tenant overruns its budget and is rejected with a typed status, and
// the live set peaks above 1000 concurrent sessions. Periodic checkpoints
// run throughout, so the reported throughput already pays the snapshot tax.
//
// All counters in the emitted JSON are deterministic in --seed;
// tools/check_bench_service.py compares them against the checked-in golden
// exactly and gates the wall-clock fields (sessions/sec, p99 step latency)
// by floor/ceiling only.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cql/parser.h"
#include "datagen/mini_example.h"
#include "exec/service.h"

namespace cdb {
namespace bench {
namespace {

ResolvedQuery Resolve(const GeneratedDataset& ds, const std::string& cql) {
  Statement stmt = ParseStatement(cql).value();
  return AnalyzeSelect(std::get<SelectStatement>(stmt), ds.catalog).value();
}

ExecutorOptions SessionConfig(uint64_t seed) {
  ExecutorOptions options;
  options.platform.num_workers = 20;
  options.platform.worker_quality_mean = 0.9;
  options.platform.redundancy = 2;
  options.platform.seed = seed;
  options.num_threads = 1;  // Parallelism lives in the service wave.
  options.graph.num_threads = 1;
  return options;
}

// Weighted p99: each wave contributes its average per-session step latency,
// weighted by how many sessions it stepped.
int64_t P99StepMicros(std::vector<std::pair<double, int64_t>> samples) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  int64_t total = 0;
  for (const auto& [micros, weight] : samples) total += weight;
  int64_t seen = 0;
  for (const auto& [micros, weight] : samples) {
    seen += weight;
    if (seen * 100 >= total * 99) return static_cast<int64_t>(micros);
  }
  return static_cast<int64_t>(samples.back().first);
}

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  int sessions = 1200;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sessions=", 11) == 0)
      sessions = std::atoi(argv[i] + 11);
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  GeneratedDataset dataset = MakeMiniPaperExample();
  ResolvedQuery query = Resolve(dataset, kMiniExampleQuery);
  EdgeTruthFn truth = MakeEdgeTruth(&dataset, &query);

  constexpr int kTenants = 8;
  ServiceOptions service_options;
  service_options.max_live_sessions = std::min(sessions, 1100);
  service_options.max_pending = std::max(64, sessions / 2);
  service_options.tenant_budget = sessions / kTenants + 20;
  service_options.checkpoint_interval = 10;
  service_options.num_threads = args.threads;
  CdbService service(service_options);

  WallTimer wall;
  // Submit burst. A queue-full rejection is backpressure, not failure: the
  // client runs one wave (draining the queue into the live set) and retries.
  int64_t submit_retries = 0;
  for (int i = 0; i < sessions; ++i) {
    const std::string tenant = "tenant-" + std::to_string(i % kTenants);
    ExecutorOptions options = SessionConfig(args.seed * 1000 + i);
    while (true) {
      Result<int64_t> id = service.Submit(tenant, &query, options, truth);
      if (id.ok()) break;
      CDB_CHECK_MSG(id.status().code() == StatusCode::kResourceExhausted,
                    "unexpected submit failure");
      ++submit_retries;
      service.StepWave();
    }
  }
  // A greedy tenant overruns its budget: a queue-full rejection is retried
  // after a wave (backpressure), but a budget rejection is terminal for the
  // query — the tenant's fair share is spent.
  int64_t greedy_rejected = 0;
  for (int i = 0; i < 40; ++i) {
    while (true) {
      const int64_t budget_rejections = service.stats().rejected_budget;
      Result<int64_t> id = service.Submit(
          "tenant-0", &query, SessionConfig(args.seed * 2000 + i), truth);
      if (id.ok()) break;
      CDB_CHECK_MSG(id.status().code() == StatusCode::kResourceExhausted,
                    "unexpected submit failure");
      if (service.stats().rejected_budget > budget_rejections) {
        ++greedy_rejected;
        break;
      }
      service.StepWave();
    }
  }

  int64_t peak_live = 0;
  std::vector<std::pair<double, int64_t>> wave_samples;
  while (service.HasWork()) {
    WallTimer wave_timer;
    // `stepped` counts the sessions live during this wave — the concurrency
    // actually sustained, measured before completions retire.
    const int64_t stepped = service.StepWave();
    peak_live = std::max(peak_live, stepped);
    if (stepped > 0) {
      wave_samples.emplace_back(
          static_cast<double>(wave_timer.ElapsedMicros()) /
              static_cast<double>(stepped),
          stepped);
    }
  }
  const double wall_ms =
      static_cast<double>(wall.ElapsedMicros()) / 1000.0;

  const ServiceStats stats = service.stats();
  const double sessions_per_sec =
      wall_ms > 0 ? 1000.0 * static_cast<double>(stats.completed) / wall_ms
                  : 0.0;
  const int64_t p99 = P99StepMicros(std::move(wave_samples));

  std::printf("bench_service: %lld submitted, %lld completed, %lld failed\n",
              static_cast<long long>(stats.submitted),
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.failed));
  std::printf("  admission: %lld queue rejections (%lld retries), "
              "%lld budget rejections (greedy saw %lld)\n",
              static_cast<long long>(stats.rejected_queue),
              static_cast<long long>(submit_retries),
              static_cast<long long>(stats.rejected_budget),
              static_cast<long long>(greedy_rejected));
  std::printf("  peak live sessions: %lld; %lld waves, %lld steps\n",
              static_cast<long long>(peak_live),
              static_cast<long long>(stats.waves),
              static_cast<long long>(stats.steps));
  std::printf("  checkpoints: %lld (%lld bytes)\n",
              static_cast<long long>(stats.checkpoints),
              static_cast<long long>(stats.checkpoint_bytes));
  std::printf("  wall: %.1f ms, %.1f sessions/sec, p99 step %lld us\n",
              wall_ms, sessions_per_sec, static_cast<long long>(p99));

  if (!out_path.empty()) {
    FILE* f = std::fopen(out_path.c_str(), "w");
    CDB_CHECK_MSG(f != nullptr, "cannot open --out file");
    std::fprintf(f, "{\n  \"schema\": \"cdb-bench-service-v1\",\n");
    std::fprintf(f, "  \"threads\": %d,\n  \"workloads\": [\n", args.threads);
    std::fprintf(
        f,
        "    {\"name\": \"mini_multi_tenant\", \"sessions\": %d, "
        "\"tenants\": %d,\n"
        "     \"submitted\": %lld, \"rejected_queue\": %lld, "
        "\"rejected_budget\": %lld,\n"
        "     \"admitted\": %lld, \"completed\": %lld, \"failed\": %lld,\n"
        "     \"peak_live_sessions\": %lld, \"waves\": %lld, "
        "\"steps\": %lld,\n"
        "     \"checkpoints\": %lld, \"checkpoint_bytes\": %lld,\n"
        "     \"wall_ms\": %.3f, \"sessions_per_sec\": %.1f, "
        "\"p99_step_micros\": %lld}\n",
        sessions, kTenants, static_cast<long long>(stats.submitted),
        static_cast<long long>(stats.rejected_queue),
        static_cast<long long>(stats.rejected_budget),
        static_cast<long long>(stats.admitted),
        static_cast<long long>(stats.completed),
        static_cast<long long>(stats.failed),
        static_cast<long long>(peak_live),
        static_cast<long long>(stats.waves),
        static_cast<long long>(stats.steps),
        static_cast<long long>(stats.checkpoints),
        static_cast<long long>(stats.checkpoint_bytes), wall_ms,
        sessions_per_sec, static_cast<long long>(p99));
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cdb

int main(int argc, char** argv) { return cdb::bench::Run(argc, argv); }
