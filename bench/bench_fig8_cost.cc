// Figure 8: monetary cost (#tasks) of the 5 representative queries under all
// nine methods, on the paper and award datasets, with simulated workers
// drawn from N(0.8, 0.01) and 5 answers per task (Section 6.2.1).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  BenchArgs args = ParseArgs(argc, argv);
  RunConfig config = BaseConfig(args, /*worker_quality=*/0.8);

  GeneratedDataset paper = MakePaper(args);
  PrintMethodQueryMatrix("Figure 8(a): #tasks, dataset paper", paper,
                         PaperQueries(), config, [](const RunOutcome& out) {
                           return FormatCount(out.tasks);
                         });
  GeneratedDataset award = MakeAward(args);
  PrintMethodQueryMatrix("Figure 8(b): #tasks, dataset award", award,
                         AwardQueries(), config, [](const RunOutcome& out) {
                           return FormatCount(out.tasks);
                         });
  std::printf(
      "Expected shape (paper): Qurk ~ CrowdDB > Deco > OptTree and\n"
      "ACD > Trans > MinCut > CDB ~ CDB+ (graph model cheapest).\n");
  return 0;
}
