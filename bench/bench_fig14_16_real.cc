// Figures 14-16: the "real experiment" protocol — AMT-grade workers (high
// accuracy, Section 6.3: crowdsourcing join/selection checks is easy for AMT
// workers, F > 0.9 across methods), 10 tasks per $0.1 HIT, 5 answers per
// task. We simulate that regime with workers from N(0.95, 0.01).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  BenchArgs args = ParseArgs(argc, argv);
  RunConfig config = BaseConfig(args, /*worker_quality=*/0.95);

  GeneratedDataset paper = MakePaper(args);
  PrintMethodQueryMatrix("Figure 14: #tasks (real-crowd regime), dataset paper",
                         paper, PaperQueries(), config,
                         [](const RunOutcome& out) { return FormatCount(out.tasks); });
  PrintMethodQueryMatrix("Figure 15: F-measure (real-crowd regime), dataset paper",
                         paper, PaperQueries(), config,
                         [](const RunOutcome& out) { return FormatDouble(out.f1, 3); });
  PrintMethodQueryMatrix("Figure 16: #rounds (real-crowd regime), dataset paper",
                         paper, PaperQueries(), config,
                         [](const RunOutcome& out) { return FormatDouble(out.rounds, 1); });
  std::printf(
      "Expected shape: MinCut/CDB/CDB+ cut tasks ~2-3x vs the tree methods;\n"
      "every method exceeds 0.9 F-measure; graph methods finish in few rounds.\n");
  return 0;
}
