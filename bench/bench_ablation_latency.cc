// Ablation (DESIGN.md / scheduler.h): the latency scheduler. The exact
// Section-5.2 prefix rule asks the fewest tasks but needs many rounds on
// realistic graphs; the vertex-greedy scheduler with a per-round cap trades
// a few extra tasks for near-constant rounds. This bench quantifies that
// trade-off — the documented substitution behind LatencyMode::kVertexGreedy.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  BenchArgs args = ParseArgs(argc, argv, /*default_scale=*/0.15, /*default_reps=*/2);
  GeneratedDataset paper = MakePaper(args);
  const std::string cql = PaperQueries()[2].cql;

  std::printf("Ablation: latency scheduling (3J, dataset paper, CDB)\n");
  TablePrinter printer({"scheduler", "#tasks", "#rounds"});
  {
    RunConfig config = BaseConfig(args, /*worker_quality=*/0.95);
    config.latency_mode = LatencyMode::kExactPrefix;
    RunOutcome out = MustRun(Method::kCdb, paper, cql, config);
    printer.AddRow({"exact prefix (Section 5.2)", FormatCount(out.tasks),
                    FormatDouble(out.rounds, 1)});
  }
  {
    RunConfig config = BaseConfig(args, /*worker_quality=*/0.95);
    config.latency_mode = LatencyMode::kVertexGreedy;
    RunOutcome out = MustRun(Method::kCdb, paper, cql, config);
    printer.AddRow({"vertex greedy (default)", FormatCount(out.tasks),
                    FormatDouble(out.rounds, 1)});
  }
  printer.Print();
  std::printf("\nThe greedy scheduler should cost a few %% more tasks while using\n"
              "an order of magnitude fewer rounds.\n");
  return 0;
}
