// Tables 2-3: dataset statistics at the paper's cardinalities, plus the
// query-graph statistics our generators produce (edges per predicate, true
// match rates) so the benchmark regime is transparent.
#include "bench/bench_common.h"
#include "cql/parser.h"
#include "graph/query_graph.h"

namespace {

void PrintDataset(const char* title, const cdb::GeneratedDataset& ds) {
  using namespace cdb;
  std::printf("%s\n", title);
  TablePrinter printer({"table", "#records", "attributes"});
  for (const std::string& name : ds.catalog.TableNames()) {
    const Table* table = ds.catalog.GetTable(name).value();
    std::string attrs;
    for (size_t c = 0; c < table->schema().num_columns(); ++c) {
      if (c) attrs += ", ";
      attrs += table->schema().column(c).name;
    }
    printer.AddRow({name, std::to_string(table->num_rows()), attrs});
  }
  printer.Print();
  std::printf("\n");
}

void PrintGraphStats(const char* title, const cdb::GeneratedDataset& ds,
                     const std::string& cql) {
  using namespace cdb;
  Statement stmt = ParseStatement(cql).value();
  ResolvedQuery query =
      AnalyzeSelect(std::get<SelectStatement>(stmt), ds.catalog).value();
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  EdgeTruthFn truth = MakeEdgeTruth(&ds, &query);
  std::printf("%s: %d vertices, %d edges\n", title, graph.num_vertices(),
              graph.num_edges());
  TablePrinter printer({"predicate", "#edges", "#true", "true %"});
  for (int p = 0; p < graph.num_predicates(); ++p) {
    int64_t edges = 0;
    int64_t true_edges = 0;
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (graph.edge(e).pred != p) continue;
      ++edges;
      if (truth(graph, e)) ++true_edges;
    }
    printer.AddRow({std::to_string(p), std::to_string(edges),
                    std::to_string(true_edges),
                    FormatDouble(edges ? 100.0 * true_edges / edges : 0.0, 1)});
  }
  printer.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  BenchArgs args = ParseArgs(argc, argv, /*default_scale=*/1.0);
  GeneratedDataset paper = MakePaper(args);
  GeneratedDataset award = MakeAward(args);
  PrintDataset("Table 2: dataset paper", paper);
  PrintDataset("Table 3: dataset award", award);
  PrintGraphStats("Query graph, paper 3J", paper, PaperQueries()[2].cql);
  PrintGraphStats("Query graph, award 3J", award, AwardQueries()[2].cql);
  return 0;
}
