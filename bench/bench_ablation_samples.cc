// Ablation (DESIGN.md): sample count S of the min-cut greedy (Section
// 5.1.2). Few samples give a noisy edge order; many samples cost optimizer
// time — the reason the paper prefers the expectation-based method.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  BenchArgs args = ParseArgs(argc, argv, /*default_scale=*/0.15, /*default_reps=*/2);
  GeneratedDataset paper = MakePaper(args);
  const std::string cql = PaperQueries()[2].cql;

  std::printf("Ablation: MinCut sample count (3J, dataset paper)\n");
  TablePrinter printer({"samples", "#tasks", "selection ms"});
  for (int samples : {5, 20, 50, 100, 200}) {
    RunConfig config = BaseConfig(args, /*worker_quality=*/0.9);
    config.sampling_samples = samples;
    RunOutcome out = MustRun(Method::kMinCut, paper, cql, config);
    printer.AddRow({std::to_string(samples), FormatCount(out.tasks),
                    FormatDouble(out.selection_ms, 1)});
  }
  // Expectation-based reference.
  RunConfig config = BaseConfig(args, /*worker_quality=*/0.9);
  RunOutcome cdb = MustRun(Method::kCdb, paper, cql, config);
  printer.AddRow({"CDB (expectation)", FormatCount(cdb.tasks),
                  FormatDouble(cdb.selection_ms, 1)});
  printer.Print();
  return 0;
}
