// Figure 20: F-measure vs data redundancy (#assignments per task) on the
// most complex query (3J2S), CDB+ vs majority voting (Appendix D). CDB+
// tolerates low redundancy; the gap narrows as redundancy grows (majority
// voting catches up when every task gets many answers, at higher cost).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  BenchArgs args = ParseArgs(argc, argv, /*default_scale=*/0.4, /*default_reps=*/5);
  GeneratedDataset paper = MakePaper(args);
  const std::string cql = PaperQueries()[4].cql;  // 3J2S.

  std::printf("Figure 20: F-measure vs redundancy (3J2S, workers N(0.75, 0.01))\n");
  TablePrinter printer({"redundancy", "CDB+ (EM + assignment)", "majority voting"});
  for (int redundancy : {1, 3, 5, 7, 9}) {
    RunConfig config = BaseConfig(args, /*worker_quality=*/0.75);
    config.redundancy = redundancy;
    config.num_workers = 10;  // Workers with history, as on a real platform.
    RunOutcome plus = MustRun(Method::kCdbPlus, paper, cql, config);
    RunOutcome mv = MustRun(Method::kCdb, paper, cql, config);
    printer.AddRow({std::to_string(redundancy), FormatDouble(plus.f1, 3),
                    FormatDouble(mv.f1, 3)});
  }
  printer.Print();
  std::printf("\nExpected shape: CDB+ above MV, the gap largest at low redundancy.\n");
  return 0;
}
