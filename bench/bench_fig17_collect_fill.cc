// Figure 17: collection semantics. (a) COLLECT the top-k universities: CDB's
// autocompletion steers workers away from duplicates, cutting questions
// several-fold vs the Deco-style baseline; the gap grows with k. (b) FILL
// the state of 100 universities: CDB stops at 3 agreeing answers, saving
// ~30% over always asking 5 workers (Section 6.3.2).
#include <cstdio>

#include "bench_util/table_printer.h"
#include "common/string_util.h"
#include "exec/collect_fill.h"

int main() {
  using namespace cdb;

  // (a) COLLECT: #questions to reach k distinct universities.
  CollectUniverse universe;
  for (int i = 0; i < 150; ++i) {
    CollectUniverse::Entity entity;
    entity.canonical = StrPrintf("University %03d", i);
    entity.variants = {StrPrintf("Univ. %03d", i), StrPrintf("U-%03d", i)};
    universe.entities.push_back(std::move(entity));
  }
  std::printf("Figure 17(a): COLLECT top-k universities, #questions asked\n");
  TablePrinter collect_printer({"#collected", "CDB (autocomplete)", "Deco-style"});
  CollectOptions cdb_options;
  cdb_options.target_distinct = 100;
  cdb_options.autocomplete = true;
  CollectOptions deco_options = cdb_options;
  deco_options.autocomplete = false;
  CollectResult cdb = RunCollect(universe, cdb_options);
  CollectResult deco = RunCollect(universe, deco_options);
  for (int64_t k : {20, 40, 60, 80, 100}) {
    collect_printer.AddRow(
        {std::to_string(k),
         std::to_string(cdb.questions_at_distinct[static_cast<size_t>(k - 1)]),
         std::to_string(deco.questions_at_distinct[static_cast<size_t>(k - 1)])});
  }
  collect_printer.Print();

  // (b) FILL: total fill answers paid for over 100 cells.
  std::vector<FillTaskSpec> specs;
  const char* states[] = {"Illinois", "California", "Massachusetts", "Texas",
                          "Washington", "Michigan", "Wisconsin", "New York"};
  for (int i = 0; i < 100; ++i) {
    FillTaskSpec spec;
    spec.question = StrPrintf("state of university %03d", i);
    spec.truth = states[i % 8];
    for (int s = 0; s < 8; ++s) {
      if (s != i % 8) spec.wrong_pool.push_back(states[s]);
    }
    specs.push_back(std::move(spec));
  }
  FillOptions fill_cdb;
  fill_cdb.early_stop = true;
  FillOptions fill_deco = fill_cdb;
  fill_deco.early_stop = false;
  FillResult fill_a = RunFill(specs, fill_cdb);
  FillResult fill_b = RunFill(specs, fill_deco);
  std::printf("\nFigure 17(b): FILL the state of 100 universities\n");
  TablePrinter fill_printer({"method", "answers paid", "cells correct"});
  fill_printer.AddRow({"CDB (stop at 3-of-5 agreement)",
                       std::to_string(fill_a.answers_collected),
                       std::to_string(fill_a.cells_correct)});
  fill_printer.AddRow({"Deco-style (always 5)",
                       std::to_string(fill_b.answers_collected),
                       std::to_string(fill_b.cells_correct)});
  fill_printer.Print();
  std::printf("\nExpected shape: CDB collects with several times fewer questions\n"
              "and fills ~30%% cheaper at equal accuracy.\n");
  return 0;
}
