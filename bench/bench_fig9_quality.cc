// Figure 9: result quality (F-measure) of the 5 representative queries under
// all nine methods (Section 6.2.1). CDB+ leads through EM truth inference
// and online task assignment; the others use majority voting.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  BenchArgs args = ParseArgs(argc, argv);
  RunConfig config = BaseConfig(args, /*worker_quality=*/0.8);

  GeneratedDataset paper = MakePaper(args);
  PrintMethodQueryMatrix("Figure 9(a): F-measure, dataset paper", paper,
                         PaperQueries(), config, [](const RunOutcome& out) {
                           return FormatDouble(out.f1, 3);
                         });
  GeneratedDataset award = MakeAward(args);
  PrintMethodQueryMatrix("Figure 9(b): F-measure, dataset award", award,
                         AwardQueries(), config, [](const RunOutcome& out) {
                           return FormatDouble(out.f1, 3);
                         });
  std::printf("Expected shape: CDB+ > the majority-voting methods; Trans lowest\n"
              "(transitivity propagates errors).\n");
  return 0;
}
