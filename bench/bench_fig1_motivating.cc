// Figure 1 / Section 1: the motivating example. On a chain where a few RED
// edges refute every candidate, tuple-level selection asks only those RED
// edges while any table-level join order asks an order of magnitude more.
#include <cstdio>

#include "baselines/join_order.h"
#include "bench_util/table_printer.h"
#include "cost/known_color.h"
#include "graph/query_graph.h"

namespace cdb {
namespace {

// The Figure-1 shape: T1 -9 edges- T2 -3 edges- T3; the pred-1 edges are all
// RED, so there are no answers and 3 asks suffice.
QueryGraph MakeFigure1() {
  std::vector<PredicateInfo> preds = {{true, false, 0, 1}, {true, false, 1, 2}};
  std::vector<QueryGraph::SyntheticEdge> edges;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) edges.push_back({0, a, b, 0.6});
  }
  for (int c = 0; c < 3; ++c) edges.push_back({1, 0, c, 0.4});
  return QueryGraph::MakeSynthetic(3, preds, edges);
}

}  // namespace
}  // namespace cdb

int main() {
  using namespace cdb;
  QueryGraph graph = MakeFigure1();
  OracleColors colors(static_cast<size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    colors[static_cast<size_t>(e)] =
        graph.edge(e).pred == 1 ? EdgeColor::kRed : EdgeColor::kBlue;
  }

  std::printf("Figure 1 (motivating example): tasks to resolve the chain\n");
  TablePrinter printer({"plan", "tasks asked"});
  for (const std::vector<int>& order : AllPredicateOrders(graph)) {
    std::string label = "tree order (";
    for (size_t i = 0; i < order.size(); ++i) {
      label += (i ? "," : "") + std::to_string(order[i]);
    }
    label += ")";
    printer.AddRow({label, std::to_string(TreeModelCost(graph, order, colors))});
  }
  printer.AddRow({"graph model (Lemma 1)",
                  std::to_string(SelectTasksKnownColors(graph, colors).size())});
  printer.Print();
  std::printf(
      "\nPaper: the tree model asks >= 12 tasks for the bad order while the\n"
      "tuple-level selection asks only the refuting RED edges.\n");
  return 0;
}
