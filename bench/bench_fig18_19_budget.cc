// Figures 18-19: budget-aware task selection (Section 6.3.3). Varying the
// task budget, CDB's candidate-expectation selection converts almost every
// task into progress toward an answer, so recall climbs steeply and
// saturates; the greedy depth-first baseline wastes most of its budget.
// Precision stays high for both. CDB+ adds a little recall and precision.
#include "baselines/budget_baseline.h"
#include "bench/bench_common.h"
#include "cql/parser.h"

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  BenchArgs args = ParseArgs(argc, argv, /*default_scale=*/0.2, /*default_reps=*/2);
  GeneratedDataset paper = MakePaper(args);
  const std::string cql = PaperQueries()[2].cql;  // 3J, like the paper.

  // Budgets scaled with the dataset (the paper sweeps 200..1000 tasks at
  // full size).
  std::vector<int64_t> budgets = {50, 100, 200, 400, 600, 800};

  for (const char* metric : {"recall", "precision"}) {
    std::printf("Figure %s: %s vs task budget (3J, dataset paper)\n",
                metric[0] == 'r' ? "18" : "19", metric);
    std::vector<std::string> headers = {"method"};
    for (int64_t b : budgets) headers.push_back("B=" + std::to_string(b));
    TablePrinter printer(headers);
    struct Entry {
      const char* label;
      Method method;
    };
    for (const Entry& entry :
         {Entry{"Baseline (greedy DFS)", Method::kCrowdDb},  // Replaced below.
          Entry{"CDB", Method::kCdb}, Entry{"CDB+", Method::kCdbPlus}}) {
      std::vector<std::string> row = {entry.label};
      for (int64_t budget : budgets) {
        RunConfig config = BaseConfig(args, /*worker_quality=*/0.95);
        config.budget = budget;
        RunOutcome out;
        if (entry.method == Method::kCrowdDb) {
          // The Section-6.3.3 baseline is its own executor.
          Statement stmt = ParseStatement(cql).value();
          ResolvedQuery query =
              AnalyzeSelect(std::get<SelectStatement>(stmt), paper.catalog).value();
          EdgeTruthFn truth = MakeEdgeTruth(&paper, &query);
          std::vector<QueryAnswer> reference = TrueAnswers(paper, query);
          double recall = 0.0;
          double precision = 0.0;
          for (int rep = 0; rep < config.repetitions; ++rep) {
            BudgetBaselineOptions options;
            options.budget = budget;
            options.platform.worker_quality_mean = config.worker_quality;
            options.platform.seed = config.seed + static_cast<uint64_t>(rep);
            ExecutionResult result =
                BudgetBaselineExecutor(&query, options, truth).Run().value();
            PrecisionRecall pr = ComputeF1(result.answers, reference);
            recall += pr.recall;
            precision += pr.precision;
          }
          out.recall = recall / config.repetitions;
          out.precision = precision / config.repetitions;
        } else {
          out = MustRun(entry.method, paper, cql, config);
        }
        row.push_back(FormatDouble(metric[0] == 'r' ? out.recall : out.precision, 3));
      }
      printer.AddRow(std::move(row));
    }
    printer.Print();
    std::printf("\n");
  }
  std::printf("Expected shape: CDB recall far above the baseline at every budget,\n"
              "saturating once nearly all answers are found; precision high for all.\n");
  return 0;
}
