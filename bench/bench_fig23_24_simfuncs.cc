// Figures 23-24 (Appendix D): similarity functions. NoSim (constant 0.5
// probability, i.e. the full cross product) costs far more than any real
// estimator; ED / token-Jaccard / 2-gram Jaccard land close together on
// cost, with 2-gram Jaccard (the CDB default) slightly ahead on quality —
// it handles both short strings (conference) and long strings (title).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  // NoSim materializes the cross product; keep this bench small.
  BenchArgs args = ParseArgs(argc, argv, /*default_scale=*/0.1, /*default_reps=*/1);
  BenchObservability obs = MakeObservability(args);
  GeneratedDataset paper = MakePaper(args);
  const std::string cql = PaperQueries()[0].cql;  // 2J.

  struct Entry {
    const char* label;
    SimilarityFunction fn;
  };
  std::printf("Figures 23-24: similarity functions (2J, dataset paper)\n");
  TablePrinter printer({"function", "#tasks", "F-measure"});
  for (const Entry& entry : {Entry{"NoSim", SimilarityFunction::kNoSim},
                             Entry{"ED", SimilarityFunction::kEditDistance},
                             Entry{"JAC", SimilarityFunction::kWordJaccard},
                             Entry{"CDB (2-gram)", SimilarityFunction::kQGramJaccard}}) {
    RunConfig config = BaseConfig(args, /*worker_quality=*/0.9);
    config.graph.sim_fn = entry.fn;
    // With --metrics-out= the simjoin.* funnel counters (candidates,
    // signature_rejects, verified, pairs) land in the dump per function.
    config.metrics = obs.registry.get();
    config.tracer = obs.tracer.get();
    RunOutcome out = MustRun(Method::kCdb, paper, cql, config);
    printer.AddRow({entry.label, FormatCount(out.tasks), FormatDouble(out.f1, 3)});
  }
  printer.Print();
  obs.Flush();
  std::printf("\nExpected shape: NoSim far costlier; ED/JAC/2-gram similar cost,\n"
              "2-gram slightly better quality.\n");
  return 0;
}
