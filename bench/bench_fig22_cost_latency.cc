// Figure 22 (Appendix D): the cost/latency trade-off. Given a latency
// constraint of r rounds, each method optimizes normally for r-1 rounds and
// flushes every remaining task in round r. Looser constraints leave more
// room for inference, so cost falls with r; CDB/CDB+ are cheapest at every
// constraint thanks to tuple-level pruning.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cdb;
  using namespace cdb::bench;
  BenchArgs args = ParseArgs(argc, argv, /*default_scale=*/0.2, /*default_reps=*/2);
  GeneratedDataset paper = MakePaper(args);
  const std::string cql = PaperQueries()[4].cql;  // 3J2S.

  std::printf("Figure 22: #tasks vs latency constraint r (3J2S, dataset paper)\n");
  std::vector<std::string> headers = {"method"};
  for (int r = 1; r <= 6; ++r) headers.push_back("r=" + std::to_string(r));
  TablePrinter printer(headers);
  for (Method method : {Method::kMinCut, Method::kCdb, Method::kCdbPlus}) {
    std::vector<std::string> row = {MethodName(method)};
    for (int r = 1; r <= 6; ++r) {
      RunConfig config = BaseConfig(args, /*worker_quality=*/0.9);
      config.round_limit = r;
      row.push_back(FormatCount(MustRun(method, paper, cql, config).tasks));
    }
    printer.AddRow(std::move(row));
  }
  // Tree-model reference (its rounds are fixed at #predicates; unconstrained
  // cost shown in every column).
  {
    RunConfig config = BaseConfig(args, /*worker_quality=*/0.9);
    RunOutcome deco = MustRun(Method::kDeco, paper, cql, config);
    std::vector<std::string> row = {"Deco (tree, r = #preds)"};
    for (int r = 1; r <= 6; ++r) row.push_back(FormatCount(deco.tasks));
    printer.AddRow(std::move(row));
  }
  printer.Print();
  std::printf("\nExpected shape: cost decreases as the round constraint loosens;\n"
              "the graph methods dominate at every r.\n");
  return 0;
}
