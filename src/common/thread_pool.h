// Parallel-execution substrate. A fixed-size worker pool plus a blocking
// ParallelFor that splits an index range into grain-sized chunks and runs
// them across the pool.
//
// Determinism contract: chunk boundaries depend only on (begin, end, grain) —
// never on the thread count — so a callback that derives any per-chunk state
// (e.g. an Rng seeded as Rng(seed, chunk_index)) computes bit-identical
// results whether the loop runs serially or on N threads. Callers that merge
// per-chunk outputs must merge in chunk-index order (or use an
// order-insensitive reduction such as integer addition) to preserve this.
//
// Rng is documented one-per-thread; the supported pattern here is one Rng per
// chunk (or per item), constructed inside the callback with the stream-split
// constructor Rng(seed, chunk_index).
#ifndef CDB_COMMON_THREAD_POOL_H_
#define CDB_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace cdb {

// Fixed-size worker pool. Threads are started in the constructor and joined
// in the destructor; Schedule never blocks on task execution.
class ThreadPool {
 public:
  // Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Enqueues `fn` for execution on some worker thread.
  void Schedule(std::function<void()> fn);

  // Process-wide pool with HardwareConcurrency() workers, created on first
  // use and kept alive for the process lifetime. Every parallel stage in CDB
  // shares this pool; per-call concurrency is limited via the num_threads
  // argument of ParallelFor rather than by creating private pools.
  static ThreadPool* Global();

  // std::thread::hardware_concurrency() with a floor of 1.
  static int HardwareConcurrency();

  // True when called from inside a pool worker; ParallelFor uses this to run
  // nested loops inline instead of deadlocking on its own pool.
  static bool InWorkerThread();

 private:
  void WorkerLoop();

  // mu_ guards the task queue and the shutdown flag; cv_ is signaled on
  // every enqueue and once at shutdown. threads_ is written only by the
  // constructor and read by the destructor's join loop, both of which run
  // outside any concurrent regime.
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ CDB_GUARDED_BY(mu_);
  bool shutdown_ CDB_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

// Resolves a user-facing thread-count knob: <= 0 means "all hardware
// threads"; any positive value is used as-is.
int ResolveNumThreads(int num_threads);

// Splits [begin, end) into ceil((end - begin) / grain) contiguous chunks and
// invokes fn(chunk_begin, chunk_end, chunk_index) once per chunk, blocking
// until all chunks finish. Chunks are claimed dynamically by up to
// ResolveNumThreads(num_threads) threads (the calling thread participates);
// with num_threads == 1, a single chunk, or from inside a pool worker the
// loop runs inline on the calling thread.
//
// fn must not throw; cross-chunk communication is the caller's problem
// (use disjoint output slots or a mutex-guarded reduction).
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t, int)>& fn,
                 int num_threads = 0);

// As ParallelFor, but each chunk returns a Status. Returns the non-OK Status
// of the lowest-indexed failing chunk (all chunks run to completion either
// way, matching the no-exceptions library convention), or OK.
Status ParallelForStatus(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<Status(int64_t, int64_t, int)>& fn,
    int num_threads = 0);

}  // namespace cdb

#endif  // CDB_COMMON_THREAD_POOL_H_
