// Capability-annotated synchronization primitives.
//
// cdb::Mutex / cdb::MutexLock / cdb::CondVar wrap the std primitives with
// Clang Thread Safety Analysis attributes (common/thread_annotations.h).
// libstdc++'s std::mutex and std::lock_guard carry no capability attributes,
// so code locking them is invisible to -Wthread-safety; these wrappers are
// the one place raw std::mutex may appear in src/ (the `mutex-annotation`
// cdb_lint rule and tools/cdb_analyze.py enforce that). Everything
// mutex-protected declares its members CDB_GUARDED_BY(mu_) and the clang
// build legs prove, at compile time, that no access happens outside the
// lock.
//
// The wrappers add no state and no behavior beyond annotation: Mutex is
// std::mutex, MutexLock is std::lock_guard, CondVar is std::condition_variable
// waiting through an adopted unique_lock so the analysis sees the capability
// held across the wait (the wait itself releases and reacquires atomically,
// which is exactly the semantics the annotations describe).
#ifndef CDB_COMMON_MUTEX_H_
#define CDB_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace cdb {

class CondVar;

// An exclusive capability. Prefer cdb::MutexLock over manual Lock/Unlock
// pairs; the explicit methods exist for the rare split acquire/release and
// stay annotated so the analysis tracks them.
class CDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CDB_ACQUIRE() { mu_.lock(); }
  void Unlock() CDB_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() CDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // AssertHeld-style helper for internal functions reached only under the
  // lock: a no-op at runtime, but tells the analysis the capability is held.
  void AssertHeld() const CDB_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock over a cdb::Mutex (the annotated std::lock_guard).
class CDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CDB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() CDB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to cdb::Mutex. Wait() requires the capability:
// the analysis treats the lock as held across the call (matching the
// atomic release-wait-reacquire the primitive performs).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) CDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // Ownership stays with the caller's scope.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cdb

#endif  // CDB_COMMON_MUTEX_H_
