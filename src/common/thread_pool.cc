#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cdb {
namespace {

thread_local bool tls_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(num_threads, 1);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_worker = true;
  while (true) {
    std::function<void()> fn;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown_ and drained.
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(HardwareConcurrency());
  return pool;
}

int ThreadPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool ThreadPool::InWorkerThread() { return tls_in_pool_worker; }

int ResolveNumThreads(int num_threads) {
  return num_threads <= 0 ? ThreadPool::HardwareConcurrency() : num_threads;
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t, int)>& fn,
                 int num_threads) {
  if (end <= begin) return;
  grain = std::max<int64_t>(grain, 1);
  const int64_t range = end - begin;
  const int64_t num_chunks = (range + grain - 1) / grain;
  auto run_chunk = [&](int64_t chunk) {
    int64_t lo = begin + chunk * grain;
    int64_t hi = std::min(end, lo + grain);
    fn(lo, hi, static_cast<int>(chunk));
  };

  const int threads = ResolveNumThreads(num_threads);
  if (threads <= 1 || num_chunks == 1 || ThreadPool::InWorkerThread()) {
    for (int64_t c = 0; c < num_chunks; ++c) run_chunk(c);
    return;
  }

  // Self-scheduling: helpers and the calling thread all pull the next unrun
  // chunk off a shared counter, so stragglers never serialize the tail.
  ThreadPool* pool = ThreadPool::Global();
  auto next = std::make_shared<std::atomic<int64_t>>(0);
  struct Completion {
    Mutex mu;
    CondVar cv;
    int64_t done CDB_GUARDED_BY(mu) = 0;
  };
  auto completion = std::make_shared<Completion>();
  // num_chunks and next are captured by value: a helper scheduled after all
  // chunks were claimed may run only after this frame returned, and then must
  // not touch the stack. run_chunk (and the caller's fn) is only ever invoked
  // for a claimed chunk, whose completion the caller blocks on.
  auto drain = [&run_chunk, next, num_chunks]() {
    int64_t chunk;
    int64_t ran = 0;
    while ((chunk = next->fetch_add(1)) < num_chunks) {
      run_chunk(chunk);
      ++ran;
    }
    return ran;
  };

  const int64_t helpers =
      std::min<int64_t>({num_chunks - 1, threads - 1, pool->num_threads()});
  for (int64_t h = 0; h < helpers; ++h) {
    pool->Schedule([drain, completion] {
      int64_t ran = drain();
      MutexLock lock(completion->mu);
      completion->done += ran;
      completion->cv.NotifyOne();
    });
  }
  int64_t ran_here = drain();
  MutexLock lock(completion->mu);
  while (completion->done + ran_here != num_chunks) {
    completion->cv.Wait(completion->mu);
  }
}

Status ParallelForStatus(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<Status(int64_t, int64_t, int)>& fn, int num_threads) {
  if (end <= begin) return Status::Ok();
  grain = std::max<int64_t>(grain, 1);
  const int64_t num_chunks = (end - begin + grain - 1) / grain;
  // One slot per chunk: no cross-thread contention, and scanning in chunk
  // order afterwards makes the reported error deterministic.
  std::vector<Status> statuses(static_cast<size_t>(num_chunks));
  ParallelFor(
      begin, end, grain,
      [&](int64_t lo, int64_t hi, int chunk) {
        statuses[static_cast<size_t>(chunk)] = fn(lo, hi, chunk);
      },
      num_threads);
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::Ok();
}

}  // namespace cdb
