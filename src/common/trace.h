// Span tracer keyed on the crowd platform's virtual tick clock.
//
// Every span records [tick_begin, tick_end] from the deterministic tick
// clock (CrowdPlatform::stats().ticks), so the trace of a seeded run is
// byte-identical across reruns and thread counts — DumpJson() is compared
// byte-for-byte by the `ctest -L trace` suite, exactly like the metrics and
// platform-stats dumps.
//
// Wall-clock mode is opt-in (TracerOptions::record_wall) and deliberately
// split from the deterministic surface: spans then also carry a wall-clock
// duration, exported only by DumpJsonWithWall(), which is excluded from
// determinism checks. WallTimer below is the one sanctioned way to read the
// wall clock anywhere in src/ — its implementation in trace.cc is the only
// file allowed to touch std::chrono (the `wallclock-outside-trace` cdb_lint
// rule enforces this), so nondeterministic time can never leak into a
// decision path or a byte-compared dump by accident.
//
// Both dumps use the Chrome trace-event JSON format ("X" complete events;
// chrome://tracing and Perfetto load them); ts/dur are virtual ticks labeled
// as microseconds.
#ifndef CDB_COMMON_TRACE_H_
#define CDB_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cdb {

struct TracerOptions {
  // Record wall-clock span durations alongside virtual ticks. Off by
  // default: the deterministic dump never includes them either way.
  bool record_wall = false;
};

struct TraceSpan {
  std::string name;       // e.g. "session.publish", "crowd.round".
  std::string category;   // Trace-viewer lane: "session", "crowd", ...
  int64_t tick_begin = 0;
  int64_t tick_end = 0;
  int64_t wall_micros = -1;  // -1 = not recorded (deterministic-only span).
};

class Tracer {
 public:
  explicit Tracer(const TracerOptions& options = {});
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool record_wall() const { return options_.record_wall; }

  // Appends one complete span. Spans are kept in call order, which the
  // serial session/scheduler driver makes deterministic.
  void AddSpan(std::string_view name, std::string_view category,
               int64_t tick_begin, int64_t tick_end, int64_t wall_micros = -1)
      CDB_EXCLUDES(mutex_);

  // Chrome-trace JSON over virtual ticks only; byte-identical across thread
  // counts and reruns for a seeded run.
  [[nodiscard]] std::string DumpJson() const;
  // Same spans plus wall_us args where recorded. NOT byte-stable across
  // runs; never feed this to a determinism check.
  [[nodiscard]] std::string DumpJsonWithWall() const;

  [[nodiscard]] size_t num_spans() const CDB_EXCLUDES(mutex_);
  [[nodiscard]] std::vector<TraceSpan> Spans() const CDB_EXCLUDES(mutex_);

 private:
  [[nodiscard]] std::string DumpJsonImpl(bool with_wall) const
      CDB_EXCLUDES(mutex_);

  TracerOptions options_;  // Immutable after construction; lock-free reads.
  mutable Mutex mutex_;
  std::vector<TraceSpan> spans_ CDB_GUARDED_BY(mutex_);
};

// The sanctioned wall-clock stopwatch: stores a monotonic microsecond stamp,
// read in trace.cc (the only std::chrono reader in src/). Use it for
// human-facing timings (selection_ms, wall-mode spans); never let the result
// reach a byte-compared dump or an optimizer decision.
class WallTimer {
 public:
  WallTimer();  // Starts immediately.
  void Restart();
  [[nodiscard]] int64_t ElapsedMicros() const;
  [[nodiscard]] double ElapsedMs() const;

 private:
  int64_t start_micros_ = 0;
};

}  // namespace cdb

#endif  // CDB_COMMON_TRACE_H_
