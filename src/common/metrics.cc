#include "common/metrics.h"

#include <cstdio>
#include <functional>
#include <thread>

#include "common/logging.h"

namespace cdb {
namespace {

// Shard picked by thread-id hash: stable per thread, spreads contending
// threads across cache lines. Which shard a thread lands on never affects
// Value() — the fold is an integer sum.
size_t ShardIndex() {
  static thread_local const size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      Counter::kNumShards;
  return index;
}

}  // namespace

void Counter::Increment(int64_t delta) {
  shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

int Histogram::BucketFor(int64_t value) {
  if (value <= 0) return 0;
  int bucket = 0;
  uint64_t v = static_cast<uint64_t>(value);
  while (v != 0) {
    ++bucket;
    v >>= 1;
  }
  return bucket < kNumBuckets ? bucket : kNumBuckets - 1;
}

void Histogram::Observe(int64_t value) {
  count_.Increment();
  sum_.Increment(value < 0 ? 0 : value);
  buckets_[static_cast<size_t>(BucketFor(value))].Increment();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mutex_);
  CDB_CHECK_MSG(gauges_.find(name) == gauges_.end() &&
                    histograms_.find(name) == histograms_.end(),
                "metric name registered with a different type");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mutex_);
  CDB_CHECK_MSG(counters_.find(name) == counters_.end() &&
                    histograms_.find(name) == histograms_.end(),
                "metric name registered with a different type");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  MutexLock lock(mutex_);
  CDB_CHECK_MSG(counters_.find(name) == counters_.end() &&
                    gauges_.find(name) == gauges_.end(),
                "metric name registered with a different type");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::map<std::string, int64_t> MetricsRegistry::Flatten() const {
  MutexLock lock(mutex_);
  std::map<std::string, int64_t> flat;
  for (const auto& [name, counter] : counters_) {
    flat[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    flat[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    flat[name + ".count"] = histogram->count();
    flat[name + ".sum"] = histogram->sum();
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      int64_t n = histogram->bucket(b);
      if (n == 0) continue;
      char suffix[24];
      std::snprintf(suffix, sizeof(suffix), ".bucket%02d", b);
      flat[name + suffix] = n;
    }
  }
  return flat;
}

std::string MetricsRegistry::Dump() const {
  std::string out;
  for (const auto& [name, value] : Flatten()) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, value] : Flatten()) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"";
    out += name;  // Metric names are repo-chosen identifiers; no escaping.
    out += "\": ";
    out += std::to_string(value);
  }
  out += "\n}\n";
  return out;
}

std::string MetricsDump(const MetricsRegistry& registry) {
  return registry.Dump();
}

}  // namespace cdb
