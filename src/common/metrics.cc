#include "common/metrics.h"

#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/serialize.h"

namespace cdb {
namespace {

// Shard picked by thread-id hash: stable per thread, spreads contending
// threads across cache lines. Which shard a thread lands on never affects
// Value() — the fold is an integer sum.
size_t ShardIndex() {
  static thread_local const size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      Counter::kNumShards;
  return index;
}

}  // namespace

void Counter::Increment(int64_t delta) {
  shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset(int64_t value) {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
  shards_[0].value.store(value, std::memory_order_relaxed);
}

int Histogram::BucketFor(int64_t value) {
  if (value <= 0) return 0;
  int bucket = 0;
  uint64_t v = static_cast<uint64_t>(value);
  while (v != 0) {
    ++bucket;
    v >>= 1;
  }
  return bucket < kNumBuckets ? bucket : kNumBuckets - 1;
}

void Histogram::Observe(int64_t value) {
  count_.Increment();
  sum_.Increment(value < 0 ? 0 : value);
  buckets_[static_cast<size_t>(BucketFor(value))].Increment();
}

void Histogram::Reset(int64_t count, int64_t sum,
                      const std::array<int64_t, kNumBuckets>& buckets) {
  count_.Reset(count);
  sum_.Reset(sum);
  for (int b = 0; b < kNumBuckets; ++b) {
    buckets_[static_cast<size_t>(b)].Reset(buckets[static_cast<size_t>(b)]);
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mutex_);
  CDB_CHECK_MSG(gauges_.find(name) == gauges_.end() &&
                    histograms_.find(name) == histograms_.end(),
                "metric name registered with a different type");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mutex_);
  CDB_CHECK_MSG(counters_.find(name) == counters_.end() &&
                    histograms_.find(name) == histograms_.end(),
                "metric name registered with a different type");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  MutexLock lock(mutex_);
  CDB_CHECK_MSG(counters_.find(name) == counters_.end() &&
                    gauges_.find(name) == gauges_.end(),
                "metric name registered with a different type");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::map<std::string, int64_t> MetricsRegistry::Flatten() const {
  MutexLock lock(mutex_);
  std::map<std::string, int64_t> flat;
  for (const auto& [name, counter] : counters_) {
    flat[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    flat[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    flat[name + ".count"] = histogram->count();
    flat[name + ".sum"] = histogram->sum();
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      int64_t n = histogram->bucket(b);
      if (n == 0) continue;
      char suffix[24];
      std::snprintf(suffix, sizeof(suffix), ".bucket%02d", b);
      flat[name + suffix] = n;
    }
  }
  return flat;
}

std::string MetricsRegistry::Dump() const {
  std::string out;
  for (const auto& [name, value] : Flatten()) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, value] : Flatten()) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"";
    out += name;  // Metric names are repo-chosen identifiers; no escaping.
    out += "\": ";
    out += std::to_string(value);
  }
  out += "\n}\n";
  return out;
}

namespace {

// Registry snapshot framing: magic + version up front, FNV-1a 64 trailer.
constexpr uint32_t kMetricsSnapshotMagic = 0x4342444dU;  // "CDBM".
constexpr uint32_t kMetricsSnapshotVersion = 1;

}  // namespace

std::string MetricsRegistry::SerializeState() const {
  ByteWriter writer;
  writer.PutU32(kMetricsSnapshotMagic);
  writer.PutU32(kMetricsSnapshotVersion);
  {
    MutexLock lock(mutex_);
    writer.PutU32(static_cast<uint32_t>(counters_.size()));
    for (const auto& [name, counter] : counters_) {
      writer.PutString(name);
      writer.PutI64(counter->Value());
    }
    writer.PutU32(static_cast<uint32_t>(gauges_.size()));
    for (const auto& [name, gauge] : gauges_) {
      writer.PutString(name);
      writer.PutI64(gauge->Value());
    }
    writer.PutU32(static_cast<uint32_t>(histograms_.size()));
    for (const auto& [name, histogram] : histograms_) {
      writer.PutString(name);
      writer.PutI64(histogram->count());
      writer.PutI64(histogram->sum());
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        writer.PutI64(histogram->bucket(b));
      }
    }
  }
  writer.PutU64(SnapshotChecksum(writer.data()));
  return writer.Take();
}

Status MetricsRegistry::RestoreState(std::string_view blob) {
  if (blob.size() < sizeof(uint64_t)) {
    return Status::DataLoss("metrics snapshot shorter than its checksum");
  }
  std::string_view payload = blob.substr(0, blob.size() - sizeof(uint64_t));
  ByteReader trailer(blob.substr(payload.size()));
  uint64_t checksum = 0;
  CDB_RETURN_IF_ERROR(trailer.GetU64(&checksum));
  if (checksum != SnapshotChecksum(payload)) {
    return Status::DataLoss("metrics snapshot checksum mismatch");
  }
  ByteReader reader(payload);
  uint32_t magic = 0;
  uint32_t version = 0;
  CDB_RETURN_IF_ERROR(reader.GetU32(&magic));
  CDB_RETURN_IF_ERROR(reader.GetU32(&version));
  if (magic != kMetricsSnapshotMagic) {
    return Status::DataLoss("metrics snapshot magic mismatch");
  }
  if (version != kMetricsSnapshotVersion) {
    return Status::FailedPrecondition(
        "metrics snapshot version " + std::to_string(version) +
        " not supported (expected " +
        std::to_string(kMetricsSnapshotVersion) + ")");
  }

  // Parse fully before mutating, so a corrupt blob leaves the registry as it
  // was.
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  struct HistogramEntry {
    std::string name;
    int64_t count = 0;
    int64_t sum = 0;
    std::array<int64_t, Histogram::kNumBuckets> buckets{};
  };
  std::vector<HistogramEntry> histograms;
  uint32_t n = 0;
  CDB_RETURN_IF_ERROR(reader.GetU32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    int64_t value = 0;
    CDB_RETURN_IF_ERROR(reader.GetString(&name));
    CDB_RETURN_IF_ERROR(reader.GetI64(&value));
    counters.emplace_back(std::move(name), value);
  }
  CDB_RETURN_IF_ERROR(reader.GetU32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    int64_t value = 0;
    CDB_RETURN_IF_ERROR(reader.GetString(&name));
    CDB_RETURN_IF_ERROR(reader.GetI64(&value));
    gauges.emplace_back(std::move(name), value);
  }
  CDB_RETURN_IF_ERROR(reader.GetU32(&n));
  for (uint32_t i = 0; i < n; ++i) {
    HistogramEntry entry;
    CDB_RETURN_IF_ERROR(reader.GetString(&entry.name));
    CDB_RETURN_IF_ERROR(reader.GetI64(&entry.count));
    CDB_RETURN_IF_ERROR(reader.GetI64(&entry.sum));
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      CDB_RETURN_IF_ERROR(reader.GetI64(&entry.buckets[static_cast<size_t>(b)]));
    }
    histograms.push_back(std::move(entry));
  }
  if (reader.remaining() != 0) {
    return Status::DataLoss("metrics snapshot has trailing bytes");
  }

  // Zero everything already registered (handles stay valid), then apply.
  // get-or-create outside the dump lock is fine: counter()/gauge()/
  // histogram() take the lock themselves and the restore path is quiescent.
  {
    MutexLock lock(mutex_);
    for (auto& [name, counter] : counters_) counter->Reset(0);
    for (auto& [name, gauge] : gauges_) gauge->Set(0);
    for (auto& [name, histogram] : histograms_) {
      histogram->Reset(0, 0, std::array<int64_t, Histogram::kNumBuckets>{});
    }
  }
  for (const auto& [name, value] : counters) counter(name).Reset(value);
  for (const auto& [name, value] : gauges) gauge(name).Set(value);
  for (const HistogramEntry& entry : histograms) {
    histogram(entry.name).Reset(entry.count, entry.sum, entry.buckets);
  }
  return Status::Ok();
}

std::string MetricsDump(const MetricsRegistry& registry) {
  return registry.Dump();
}

}  // namespace cdb
