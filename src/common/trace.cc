// The ONLY file in src/ allowed to read std::chrono (enforced by the
// `wallclock-outside-trace` cdb_lint rule). Everything else measures wall
// time through WallTimer so nondeterministic clocks stay out of decision
// paths and byte-compared dumps.
#include "common/trace.h"

#include <chrono>

namespace cdb {
namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

Tracer::Tracer(const TracerOptions& options) : options_(options) {}

void Tracer::AddSpan(std::string_view name, std::string_view category,
                     int64_t tick_begin, int64_t tick_end,
                     int64_t wall_micros) {
  TraceSpan span;
  span.name = std::string(name);
  span.category = std::string(category);
  span.tick_begin = tick_begin;
  span.tick_end = tick_end;
  span.wall_micros = options_.record_wall ? wall_micros : -1;
  MutexLock lock(mutex_);
  spans_.push_back(std::move(span));
}

std::string Tracer::DumpJsonImpl(bool with_wall) const {
  MutexLock lock(mutex_);
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceSpan& span : spans_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, span.name);
    out += ",\"cat\":";
    AppendJsonString(&out, span.category);
    out += ",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":";
    out += std::to_string(span.tick_begin);
    out += ",\"dur\":";
    int64_t dur = span.tick_end - span.tick_begin;
    out += std::to_string(dur < 0 ? 0 : dur);
    if (with_wall && span.wall_micros >= 0) {
      out += ",\"args\":{\"wall_us\":";
      out += std::to_string(span.wall_micros);
      out += "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string Tracer::DumpJson() const { return DumpJsonImpl(false); }

std::string Tracer::DumpJsonWithWall() const { return DumpJsonImpl(true); }

size_t Tracer::num_spans() const {
  MutexLock lock(mutex_);
  return spans_.size();
}

std::vector<TraceSpan> Tracer::Spans() const {
  MutexLock lock(mutex_);
  return spans_;
}

WallTimer::WallTimer() : start_micros_(NowMicros()) {}

void WallTimer::Restart() { start_micros_ = NowMicros(); }

int64_t WallTimer::ElapsedMicros() const { return NowMicros() - start_micros_; }

double WallTimer::ElapsedMs() const {
  return static_cast<double>(ElapsedMicros()) / 1000.0;
}

}  // namespace cdb
