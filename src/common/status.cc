#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace cdb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal_status {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result<T>::value() called on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace cdb
