#include "common/serialize.h"

namespace cdb {

uint64_t SnapshotChecksum(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void ByteWriter::PutFixed(const void* v, size_t n) {
  // Little-endian byte order regardless of host: emit bytes low-to-high.
  const auto* bytes = static_cast<const uint8_t*>(v);
  uint64_t word = 0;
  std::memcpy(&word, bytes, n);
  for (size_t i = 0; i < n; ++i) {
    out_.push_back(static_cast<char>((word >> (8 * i)) & 0xff));
  }
}

void ByteWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

Status ByteReader::GetFixed(void* v, size_t n) {
  if (remaining() < n) {
    return Status::DataLoss("snapshot truncated: need " + std::to_string(n) +
                            " bytes at offset " + std::to_string(pos_) +
                            ", have " + std::to_string(remaining()));
  }
  uint64_t word = 0;
  for (size_t i = 0; i < n; ++i) {
    word |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
  }
  std::memcpy(v, &word, n);
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::GetU8(uint8_t* v) {
  if (remaining() < 1) {
    return Status::DataLoss("snapshot truncated: need 1 byte at offset " +
                            std::to_string(pos_));
  }
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::Ok();
}

Status ByteReader::GetBool(bool* v) {
  uint8_t byte = 0;
  CDB_RETURN_IF_ERROR(GetU8(&byte));
  if (byte > 1) {
    return Status::DataLoss("snapshot corrupt: bool byte " +
                            std::to_string(byte) + " at offset " +
                            std::to_string(pos_ - 1));
  }
  *v = byte != 0;
  return Status::Ok();
}

Status ByteReader::GetString(std::string* s) {
  uint32_t n = 0;
  CDB_RETURN_IF_ERROR(GetU32(&n));
  if (remaining() < n) {
    return Status::DataLoss("snapshot truncated: string of " +
                            std::to_string(n) + " bytes at offset " +
                            std::to_string(pos_) + " overruns the blob");
  }
  s->assign(data_.data() + pos_, n);
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::GetDouble(double* v) {
  uint64_t bits = 0;
  CDB_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::Ok();
}

}  // namespace cdb
