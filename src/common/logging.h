// Minimal check macros used for internal invariants. CDB_CHECK is always on;
// CDB_DCHECK compiles out in NDEBUG builds. These are for programmer errors,
// not data errors — data errors flow through Status.
//
// All failure paths funnel through cdb::internal_logging::CheckFail, the one
// sanctioned process-abort in the codebase (tools/cdb_lint.py rejects naked
// std::abort outside src/common/).
#ifndef CDB_COMMON_LOGGING_H_
#define CDB_COMMON_LOGGING_H_

#include <sstream>
#include <string>
#include <string_view>

namespace cdb {
namespace internal_logging {

// Prints "CDB_CHECK failed at <file>:<line>: <expr> (<msg>)" to stderr and
// aborts. `msg` may be empty, a C string, a std::string, or a string_view.
[[noreturn]] void CheckFail(const char* file, int line, const char* expr,
                            std::string_view msg);

// Renders an operand for CDB_CHECK_{EQ,NE,...} failure messages. Streamable
// types go through operator<<; anything else degrades to a placeholder so the
// comparison macros stay usable on opaque types.
template <typename T>
std::string FormatOperand(const T& v) {
  if constexpr (requires(std::ostream& os, const T& t) { os << t; }) {
    std::ostringstream os;
    os << v;
    return os.str();
  } else {
    return "<unprintable>";
  }
}

template <typename A, typename B>
[[noreturn]] void CheckOpFail(const char* file, int line, const char* expr,
                              const A& a, const B& b) {
  CheckFail(file, line, expr,
            "left=" + FormatOperand(a) + " right=" + FormatOperand(b));
}

}  // namespace internal_logging
}  // namespace cdb

#define CDB_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::cdb::internal_logging::CheckFail(__FILE__, __LINE__, #cond, {});  \
    }                                                                     \
  } while (false)

// `msg` may be any string-ish value: literal, const char*, std::string, or
// std::string_view.
#define CDB_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::cdb::internal_logging::CheckFail(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                       \
  } while (false)

// Binary comparison checks that print both operand values on failure:
//   CDB_CHECK_EQ(rows.size(), expected);
//   -> CDB_CHECK failed at t.cc:12: rows.size() == expected (left=3 right=4)
#define CDB_CHECK_OP_(op, a, b)                                              \
  do {                                                                       \
    auto&& cdb_check_lhs_ = (a);                                             \
    auto&& cdb_check_rhs_ = (b);                                             \
    if (!(cdb_check_lhs_ op cdb_check_rhs_)) {                               \
      ::cdb::internal_logging::CheckOpFail(__FILE__, __LINE__,               \
                                           #a " " #op " " #b, cdb_check_lhs_, \
                                           cdb_check_rhs_);                  \
    }                                                                        \
  } while (false)

#define CDB_CHECK_EQ(a, b) CDB_CHECK_OP_(==, a, b)
#define CDB_CHECK_NE(a, b) CDB_CHECK_OP_(!=, a, b)
#define CDB_CHECK_LT(a, b) CDB_CHECK_OP_(<, a, b)
#define CDB_CHECK_LE(a, b) CDB_CHECK_OP_(<=, a, b)
#define CDB_CHECK_GT(a, b) CDB_CHECK_OP_(>, a, b)
#define CDB_CHECK_GE(a, b) CDB_CHECK_OP_(>=, a, b)

#ifdef NDEBUG
// The condition must stay syntactically alive even when the check compiles
// out: sizeof in an unevaluated context "uses" every variable the condition
// mentions, so dcheck-only variables do not trip -Werror=unused under NDEBUG.
#define CDB_DCHECK(cond)       \
  do {                         \
    (void)sizeof((cond));      \
  } while (false)
#else
#define CDB_DCHECK(cond) CDB_CHECK(cond)
#endif

#endif  // CDB_COMMON_LOGGING_H_
