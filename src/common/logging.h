// Minimal check macros used for internal invariants. CDB_CHECK is always on;
// CDB_DCHECK compiles out in NDEBUG builds. These are for programmer errors,
// not data errors — data errors flow through Status.
#ifndef CDB_COMMON_LOGGING_H_
#define CDB_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define CDB_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CDB_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#define CDB_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CDB_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define CDB_DCHECK(cond) \
  do {                   \
  } while (false)
#else
#define CDB_DCHECK(cond) CDB_CHECK(cond)
#endif

#endif  // CDB_COMMON_LOGGING_H_
