#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace cdb {
namespace {

// Fmix from splitmix64: bijective, avalanching; adjacent inputs map to
// uncorrelated outputs, which is exactly what per-stream seeds need.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed, uint64_t stream)
    : engine_(SplitMix64(SplitMix64(seed) + SplitMix64(~stream))) {}

double Rng::ClampedGaussian(double mean, double stddev, double lo, double hi) {
  CDB_DCHECK(lo <= hi);
  return std::clamp(Gaussian(mean, stddev), lo, hi);
}

std::string Rng::SaveState() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

Status Rng::LoadState(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 engine;
  in >> engine;
  if (in.fail()) {
    return Status::DataLoss("Rng::LoadState: malformed mt19937_64 state text");
  }
  engine_ = engine;
  // The unit distribution is stateless in practice, but reset() makes that a
  // guarantee rather than an implementation detail.
  unit_.reset();
  return Status::Ok();
}

int64_t Rng::Zipf(int64_t n, double s) {
  CDB_CHECK(n > 0);
  if (s <= 0.0) return UniformInt(0, n - 1);
  // Inverse-CDF over the (small) support. n is at most a few thousand in our
  // workloads, so a linear scan is fine and exact.
  double norm = 0.0;
  for (int64_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(double(k), s);
  double u = Uniform() * norm;
  double acc = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(double(k), s);
    if (u <= acc) return k - 1;
  }
  return n - 1;
}

}  // namespace cdb
