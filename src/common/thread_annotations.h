// Clang Thread Safety Analysis annotations (CDB spellings).
//
// The determinism contract — bit-identical min-cut sampling, sim-join, and
// EM inference at any thread count — is only as strong as the locking
// discipline around the shared state the parallel stages reduce into. These
// macros let that discipline be *proven at compile time*: clang's
// -Wthread-safety analysis (promoted to -Werror on the clang build legs)
// rejects any access to a `CDB_GUARDED_BY` member outside its capability,
// any lock-order or double-acquire slip, and any public entry point whose
// annotations contradict its body. On GCC every macro expands to nothing, so
// annotated code builds identically everywhere; the `mutex-annotation`
// cdb_lint rule keeps GCC-only contributors from silently skipping the
// annotations that only clang verifies.
//
// Use the annotated wrappers in common/mutex.h (cdb::Mutex, cdb::MutexLock,
// cdb::CondVar) instead of raw std::mutex: libstdc++'s std::mutex and
// std::lock_guard carry no capability attributes, so the analysis cannot see
// their acquisitions. The macro set mirrors the clang documentation's
// mutex.h reference header.
#ifndef CDB_COMMON_THREAD_ANNOTATIONS_H_
#define CDB_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define CDB_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define CDB_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op on GCC and others
#endif

// Marks a class as a capability (a lockable resource). The string is the
// capability kind shown in diagnostics, e.g. CDB_CAPABILITY("mutex").
#define CDB_CAPABILITY(x) CDB_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a
// capability (cdb::MutexLock).
#define CDB_SCOPED_CAPABILITY CDB_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

// Data members: readable/writable only while holding the given capability.
#define CDB_GUARDED_BY(x) CDB_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))
// Pointer members: the pointed-to data (not the pointer) is guarded.
#define CDB_PT_GUARDED_BY(x) CDB_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

// Lock-ordering declarations between capabilities.
#define CDB_ACQUIRED_BEFORE(...) \
  CDB_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define CDB_ACQUIRED_AFTER(...) \
  CDB_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

// Functions: the caller must already hold the capability (exclusive/shared).
#define CDB_REQUIRES(...) \
  CDB_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define CDB_REQUIRES_SHARED(...) \
  CDB_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

// Functions: acquire the capability (must not be held on entry; held on
// exit). With no argument the capability is `this`.
#define CDB_ACQUIRE(...) \
  CDB_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define CDB_ACQUIRE_SHARED(...) \
  CDB_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

// Functions: release the capability (must be held on entry).
#define CDB_RELEASE(...) \
  CDB_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define CDB_RELEASE_SHARED(...) \
  CDB_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

// Functions: attempt the acquisition; the first argument is the return value
// meaning "acquired".
#define CDB_TRY_ACQUIRE(...) \
  CDB_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

// Functions: the caller must NOT hold the capability (non-reentrancy
// contract; catches self-deadlock on internally-locking public APIs).
#define CDB_EXCLUDES(...) \
  CDB_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

// Functions: runtime assertion that the capability is held (AssertHeld-style
// internal helpers; tells the analysis to treat it as held from here on).
#define CDB_ASSERT_CAPABILITY(x) \
  CDB_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

// Functions returning a reference to the capability guarding their result.
#define CDB_RETURN_CAPABILITY(x) CDB_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use carries a
// comment explaining why the function is safe anyway.
#define CDB_NO_THREAD_SAFETY_ANALYSIS \
  CDB_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // CDB_COMMON_THREAD_ANNOTATIONS_H_
