#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace cdb {
namespace internal_logging {

void CheckFail(const char* file, int line, const char* expr,
               std::string_view msg) {
  if (msg.empty()) {
    std::fprintf(stderr, "CDB_CHECK failed at %s:%d: %s\n", file, line, expr);
  } else {
    std::fprintf(stderr, "CDB_CHECK failed at %s:%d: %s (%.*s)\n", file, line,
                 expr, static_cast<int>(msg.size()), msg.data());
  }
  std::abort();
}

}  // namespace internal_logging
}  // namespace cdb
