// Small string helpers shared across CDB. Nothing here is database-specific;
// the similarity library builds its tokenizers on top of these.
#ifndef CDB_COMMON_STRING_UTIL_H_
#define CDB_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace cdb {

// ASCII-lowercased copy.
std::string ToLower(std::string_view s);

// ASCII-uppercased copy.
std::string ToUpper(std::string_view s);

// Copy with leading/trailing whitespace removed.
std::string Trim(std::string_view s);

// Splits on `sep`; empty fields are kept (like SQL CSV semantics).
std::vector<std::string> Split(std::string_view s, char sep);

// Splits on runs of whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

// Joins with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// True if `s` starts with / ends with the given prefix/suffix.
[[nodiscard]] bool StartsWith(std::string_view s, std::string_view prefix);
[[nodiscard]] bool EndsWith(std::string_view s, std::string_view suffix);

// Case-insensitive equality for ASCII strings (keyword matching in CQL).
[[nodiscard]] bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Collapses internal whitespace runs to single spaces and trims; used to
// normalize crowd-collected strings before comparison.
std::string NormalizeWhitespace(std::string_view s);

}  // namespace cdb

#endif  // CDB_COMMON_STRING_UTIL_H_
