// Error-handling primitives for the CDB library.
//
// The library does not use exceptions. Fallible operations return a
// cdb::Status, or a cdb::Result<T> when they also produce a value, following
// the conventions of large C++ database codebases.
#ifndef CDB_COMMON_STATUS_H_
#define CDB_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace cdb {

// Canonical error space. Keep small; codes are for dispatch, messages for
// humans.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kParseError,
  kInternal,
  // Admission control / quota: the request is well-formed but a bounded
  // resource (queue slot, tenant budget, session table) cannot grant it now.
  kResourceExhausted,
  // Persistent state failed integrity checks (truncated, bit-flipped, or
  // version-incompatible snapshot blobs).
  kDataLoss,
};

// Returns a stable human-readable name, e.g. "INVALID_ARGUMENT".
const char* StatusCodeToString(StatusCode code);

// A success-or-error value. Cheap to copy on the success path (no message
// allocation). The class itself is [[nodiscard]]: any function returning a
// Status forces callers to consume it (CDB_RETURN_IF_ERROR, an ok() branch,
// or an explicit (void) cast with a comment explaining why the error is
// ignorable). tests/status_nodiscard_test.cc probes that this attribute
// actually fires under -Werror.
class [[nodiscard]] Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  [[nodiscard]] std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-error. Access to value() on an error aborts the process, so
// callers must check ok() (or use the CDB_ASSIGN_OR_RETURN macro). Like
// Status, the class is [[nodiscard]].
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}                // NOLINT

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal_status {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal_status

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal_status::DieOnBadResultAccess(status_);
}

}  // namespace cdb

// Propagates a non-OK Status from `expr` out of the enclosing function.
#define CDB_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::cdb::Status cdb_status_tmp_ = (expr);         \
    if (!cdb_status_tmp_.ok()) return cdb_status_tmp_; \
  } while (false)

#define CDB_STATUS_CONCAT_INNER_(x, y) x##y
#define CDB_STATUS_CONCAT_(x, y) CDB_STATUS_CONCAT_INNER_(x, y)

// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
// move-assigns the value into `lhs` (which may be a declaration).
#define CDB_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  CDB_ASSIGN_OR_RETURN_IMPL_(CDB_STATUS_CONCAT_(cdb_result_, __LINE__),   \
                             lhs, rexpr)
#define CDB_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#endif  // CDB_COMMON_STATUS_H_
