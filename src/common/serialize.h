// Byte-exact serialization primitives for session snapshots.
//
// ByteWriter appends fixed-width little-endian primitives to a growing
// buffer; ByteReader walks the same layout back with bounds checking and
// typed errors. The encoding is deliberately dumb: no varints, no field
// tags, no alignment — a snapshot is a straight-line dump of state in a
// fixed order, and the *byte identity* of two snapshots of equal state is
// part of the contract (the round-trip property tests compare blobs with
// memcmp). Doubles travel as their IEEE-754 bit pattern, never through a
// decimal round-trip, so restored floating-point state is bit-identical.
//
// Integrity: SnapshotChecksum is FNV-1a 64 over the payload. Writers append
// it last; readers verify it before trusting any field. A truncated,
// bit-flipped, or over-long blob yields Status::DataLoss — never a crash —
// and a version word the reader does not speak yields
// Status::FailedPrecondition (the versioning policy in DESIGN.md).
#ifndef CDB_COMMON_SERIALIZE_H_
#define CDB_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace cdb {

// FNV-1a 64-bit over `data`; the snapshot trailer checksum.
[[nodiscard]] uint64_t SnapshotChecksum(std::string_view data);

// Append-only little-endian encoder. Take the buffer with Take() (or read
// data() to checksum a prefix).
class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutFixed(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutFixed(&v, sizeof(v)); }
  // IEEE-754 bit pattern; restores bit-identically.
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  // Length-prefixed (u32) raw bytes.
  void PutString(std::string_view s);

  [[nodiscard]] const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void PutFixed(const void* v, size_t n);

  std::string out_;
};

// Bounds-checked decoder over a borrowed buffer. Every getter returns
// Status::DataLoss on truncation; remaining() lets callers assert the blob
// was consumed exactly.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v);
  Status GetBool(bool* v);
  Status GetU32(uint32_t* v) { return GetFixed(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return GetFixed(v, sizeof(*v)); }
  Status GetI32(int32_t* v) { return GetFixed(v, sizeof(*v)); }
  Status GetI64(int64_t* v) { return GetFixed(v, sizeof(*v)); }
  Status GetDouble(double* v);
  Status GetString(std::string* s);

  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] size_t position() const { return pos_; }

 private:
  Status GetFixed(void* v, size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace cdb

#endif  // CDB_COMMON_SERIALIZE_H_
