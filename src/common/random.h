// Deterministic random-number utilities. Every stochastic component in CDB
// (sampled possible graphs, simulated workers, dataset perturbation) takes a
// seed so experiments are reproducible run-to-run.
#ifndef CDB_COMMON_RANDOM_H_
#define CDB_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"

namespace cdb {

// Seeded pseudo-random generator wrapping the standard engine with the
// distributions CDB needs. Not thread-safe; use one Rng per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Stream splitting for parallel loops: Rng(seed, i) yields a generator
  // deterministically derived from (seed, i) alone, so chunk i of a parallel
  // region draws the same sequence no matter which thread runs it or how many
  // threads exist. Streams of distinct indexes are decorrelated by a
  // splitmix64 mix of both words.
  Rng(uint64_t seed, uint64_t stream);

  // Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return Uniform() < p;
  }

  // Normal sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  // Normal sample clamped into [lo, hi]; used for worker accuracies which the
  // paper draws from N(q, 0.01) but which must stay a probability.
  double ClampedGaussian(double mean, double stddev, double lo, double hi);

  // Zipf-distributed index in [0, n) with exponent s (s=0 is uniform). Used
  // by the COLLECT simulator to model entity popularity.
  int64_t Zipf(int64_t n, double s);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Splits off an independent child generator; deterministic given the
  // parent's state.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

  // Session-snapshot support: the full engine state as the standard's
  // space-separated decimal text form (mt19937_64 operator<<). Reloading a
  // saved state continues the exact draw sequence — the property the
  // snapshot/resume byte-identity tests depend on. LoadState returns
  // Status::DataLoss on malformed text. These are the only sanctioned
  // engine-state accessors; keeping them here keeps serialization inside
  // common/ (the rng-outside-common lint rule).
  [[nodiscard]] std::string SaveState() const;
  Status LoadState(const std::string& state);

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace cdb

#endif  // CDB_COMMON_RANDOM_H_
