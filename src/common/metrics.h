// Deterministic metrics registry: the uniform export surface for the counters
// the paper's evaluation is built on (tasks, rounds, HITs, dollars, EM
// iterations). Three metric types, all integer-valued:
//
//   Counter    monotonic adds; thread-safe via sharded atomics. The fold over
//              shards is an integer sum, which is commutative and associative,
//              so Value() is bit-identical no matter which threads incremented
//              which shard — the registry stays inside the repo's
//              parallel == serial determinism contract.
//   Gauge      last-write-wins level (e.g. the EM convergence delta). Must be
//              set from deterministic (serial-driver) code.
//   Histogram  power-of-two buckets over non-negative integers, built from
//              sharded counters.
//
// Values are integers only: floating-point sums depend on accumulation order
// and would break the byte-compared dumps. Fractional quantities are scaled
// at the edge (micro-dollars, micro-deltas) instead.
//
// MetricsDump() renders every metric as canonical sorted `name=value` lines;
// the `ctest -L trace` suite compares these dumps byte-for-byte across thread
// counts and reruns. MetricsDumpJson() is the same data as a sorted JSON
// object for --metrics-out sinks.
//
// Instrumented code holds a nullable `MetricsRegistry*` and caches
// `Counter*` handles once (registration takes a mutex; Increment() does not),
// so a disabled registry costs one null check per event.
#ifndef CDB_COMMON_METRICS_H_
#define CDB_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace cdb {

// Monotonic counter. Increment() is lock-free and thread-safe; Value() folds
// the shards with an integer sum, so concurrent increments from any thread
// interleaving produce the same total.
class Counter {
 public:
  static constexpr size_t kNumShards = 16;

  void Increment(int64_t delta = 1);
  [[nodiscard]] int64_t Value() const;

  // Snapshot-restore hook: forces the folded value to `value` (shard 0 takes
  // it all). NOT part of the monotonic contract and not safe against
  // concurrent Increment(); call only on a quiescent registry (the
  // checkpoint/restore path runs before any session steps again).
  void Reset(int64_t value);

 private:
  // One cache line per shard; a thread picks its shard by thread-id hash.
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, kNumShards> shards_{};
};

// Last-write-wins level. Unlike Counter there is no commutative fold, so a
// gauge is deterministic only when set from serially-ordered code (the
// session/scheduler driver loop) — never from inside a ParallelFor body.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
};

// Power-of-two histogram over non-negative integers: bucket 0 holds value 0,
// bucket i >= 1 holds [2^(i-1), 2^i). Negative observations clamp to 0.
class Histogram {
 public:
  static constexpr int kNumBuckets = 32;

  void Observe(int64_t value);
  [[nodiscard]] int64_t count() const { return count_.Value(); }
  [[nodiscard]] int64_t sum() const { return sum_.Value(); }
  [[nodiscard]] int64_t bucket(int i) const { return buckets_[static_cast<size_t>(i)].Value(); }
  // Bucket index for a value; exposed for tests.
  static int BucketFor(int64_t value);

  // Snapshot-restore hook: overwrites count/sum/buckets wholesale. Same
  // quiescence requirement as Counter::Reset.
  void Reset(int64_t count, int64_t sum,
             const std::array<int64_t, kNumBuckets>& buckets);

 private:
  Counter count_;
  Counter sum_;
  std::array<Counter, kNumBuckets> buckets_{};
};

// Name -> metric map with stable handle addresses. Registration is
// mutex-guarded; the returned references stay valid for the registry's
// lifetime, so hot paths register once and increment through the cached
// pointer.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name) CDB_EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name) CDB_EXCLUDES(mutex_);
  Histogram& histogram(std::string_view name) CDB_EXCLUDES(mutex_);

  // Canonical byte dump: one `name=value` line per metric, sorted by name.
  // Histograms expand to `.count` / `.sum` / `.bucketNN` lines (non-empty
  // buckets only). Byte-identical across thread counts for seeded runs.
  [[nodiscard]] std::string Dump() const;
  // The same data as a JSON object with sorted keys (for --metrics-out).
  [[nodiscard]] std::string DumpJson() const;

  // Typed snapshot of every registered metric (counters, gauges, and
  // histograms kept distinct — a flattened name dump could not round-trip a
  // histogram through the ".bucketNN" rendering). The blob is versioned and
  // checksummed like a session snapshot; RestoreState on a corrupt blob
  // returns Status::DataLoss and leaves the registry untouched-or-zeroed,
  // never crashes. Restore zeroes metrics absent from the blob (handles stay
  // valid — metrics are never erased) so a restored registry dumps
  // byte-identically to the snapshotted one. Both ends must be quiescent (no
  // concurrent Increment), which the checkpoint path guarantees.
  [[nodiscard]] std::string SerializeState() const CDB_EXCLUDES(mutex_);
  Status RestoreState(std::string_view blob) CDB_EXCLUDES(mutex_);

 private:
  // Collects every metric as flat (name, value) pairs, sorted by name.
  [[nodiscard]] std::map<std::string, int64_t> Flatten() const
      CDB_EXCLUDES(mutex_);

  // mutex_ guards registration (map mutation) and the dump walks. The
  // pointed-to metrics are deliberately NOT guarded: handle addresses are
  // stable for the registry's lifetime and the metric types are internally
  // thread-safe (sharded/relaxed atomics), which is what makes cached
  // Counter* increments lock-free.
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      CDB_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      CDB_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      CDB_GUARDED_BY(mutex_);
};

// Free-function spelling used by the determinism tests.
[[nodiscard]] std::string MetricsDump(const MetricsRegistry& registry);

}  // namespace cdb

#endif  // CDB_COMMON_METRICS_H_
