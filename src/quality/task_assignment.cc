#include "quality/task_assignment.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cdb {

double Entropy(const std::vector<double>& p) {
  double h = 0.0;
  for (double v : p) {
    if (v > 0.0) h -= v * std::log(v);
  }
  return h;
}

std::vector<double> PosteriorAfterAnswer(const std::vector<double>& prior,
                                         double worker_quality, int answer) {
  const int num_choices = static_cast<int>(prior.size());
  CDB_CHECK(num_choices >= 2);
  CDB_CHECK(answer >= 0 && answer < num_choices);
  double q = std::clamp(worker_quality, 1e-3, 1.0 - 1e-3);
  double wrong = (1.0 - q) / static_cast<double>(num_choices - 1);
  std::vector<double> post(prior.size());
  double norm = 0.0;
  for (int i = 0; i < num_choices; ++i) {
    post[i] = prior[i] * (i == answer ? q : wrong);
    norm += post[i];
  }
  if (norm <= 0.0) return prior;
  for (double& v : post) v /= norm;
  return post;
}

double ExpectedQualityImprovement(const std::vector<double>& prior,
                                  double worker_quality) {
  const int num_choices = static_cast<int>(prior.size());
  double q = std::clamp(worker_quality, 1e-3, 1.0 - 1e-3);
  double wrong = (1.0 - q) / static_cast<double>(num_choices - 1);
  double expected_entropy = 0.0;
  for (int i = 0; i < num_choices; ++i) {
    // Probability the worker answers choice i (Eq. 3's mixture term).
    double p_answer = prior[i] * q + (1.0 - prior[i]) * wrong;
    if (p_answer <= 0.0) continue;
    expected_entropy +=
        p_answer * Entropy(PosteriorAfterAnswer(prior, q, i));
  }
  return Entropy(prior) - expected_entropy;
}

double FillConsistency(const std::vector<Answer>& answers,
                       SimilarityFunction sim_fn) {
  if (answers.size() < 2) return 1.0;
  double total = 0.0;
  int64_t pairs = 0;
  for (size_t i = 0; i < answers.size(); ++i) {
    for (size_t j = i + 1; j < answers.size(); ++j) {
      total += ComputeSimilarity(sim_fn, answers[i].text, answers[j].text);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

double CompletenessScore(int64_t distinct_collected, int64_t estimated_total) {
  if (estimated_total <= 0) return 0.0;
  double score = static_cast<double>(estimated_total - distinct_collected) /
                 static_cast<double>(estimated_total);
  return std::clamp(score, 0.0, 1.0);
}

std::vector<size_t> EntropyAssigner::operator()(
    const SimulatedWorker& worker, const std::vector<TaskId>& available,
    int count) const {
  double q = default_quality_;
  auto wq = worker_quality_->find(worker.id());
  if (wq != worker_quality_->end()) q = wq->second;

  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(available.size());
  std::vector<double> uniform(num_choices_, 1.0 / num_choices_);
  for (size_t i = 0; i < available.size(); ++i) {
    auto it = posteriors_->find(available[i]);
    const std::vector<double>& prior =
        it != posteriors_->end() && !it->second.empty() ? it->second : uniform;
    scored.emplace_back(ExpectedQualityImprovement(prior, q), i);
  }
  size_t k = std::min<size_t>(static_cast<size_t>(count), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<int64_t>(k),
                    scored.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<size_t> picks;
  picks.reserve(k);
  for (size_t i = 0; i < k; ++i) picks.push_back(scored[i].second);
  return picks;
}

AssignmentPolicy EntropyAssigner::AsPolicy() const {
  EntropyAssigner copy = *this;
  return [copy](const SimulatedWorker& worker,
                const std::vector<TaskId>& available,
                int count) { return copy(worker, available, count); };
}

}  // namespace cdb
