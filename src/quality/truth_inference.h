// Truth inference (Section 5.3.1).
//
// Single-choice tasks: worker qualities q_w are estimated with EM, and the
// per-task truth distribution follows Bayesian voting (Equation 2).
// Multi-choice tasks decompose into per-choice yes/no tasks. Fill-in-blank
// tasks take the "pivot" answer — the one with the highest aggregated string
// similarity to the others. Majority voting is provided as the baseline the
// existing systems (CrowdDB / Qurk / Deco / CrowdOP) use.
#ifndef CDB_QUALITY_TRUTH_INFERENCE_H_
#define CDB_QUALITY_TRUTH_INFERENCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crowd/task.h"
#include "similarity/similarity.h"

namespace cdb {

class MetricsRegistry;

// One single-choice observation.
struct ChoiceObservation {
  TaskId task = -1;
  int worker = -1;
  int choice = -1;
};

struct InferenceResult {
  // Posterior distribution over choices per task (Eq. 2).
  std::map<TaskId, std::vector<double>> posteriors;
  // Estimated quality per worker id.
  std::map<int, double> worker_quality;

  // argmax choice for a task (ties to the lowest index); -1 if unknown task.
  int Truth(TaskId task) const;
  // max posterior probability for a task; 0 if unknown.
  double Confidence(TaskId task) const;
};

struct EmOptions {
  int num_choices = 2;
  double initial_quality = 0.7;  // The paper's default prior for new workers.
  int max_iterations = 50;
  double tolerance = 1e-6;
  // Beta-prior pseudo-count regularizing the M-step: a worker's quality is
  // (prior_strength * prior + expected_correct) / (prior_strength + n).
  // Keeps early rounds (few answers per worker) from over-fitting, where
  // unregularized EM can fall below majority voting.
  double prior_strength = 8.0;
  // Optional fixed priors per worker (e.g. qualities carried over from
  // earlier rounds); missing workers start at initial_quality.
  std::map<int, double> quality_priors;
  // Threads for the E-step (per-task posteriors are independent) and the
  // M-step per-worker sums: <= 0 uses all hardware threads, 1 runs serially.
  // Posteriors and qualities are bit-identical at every thread count — each
  // task/worker is a unit of work whose floating-point accumulation order
  // never changes, and cross-unit reductions happen serially.
  int num_threads = 0;
  // Observability sink (borrowed, may be null = disabled): EM mirrors runs,
  // iterations, and the final convergence delta (in micro-units, since the
  // registry is integer-only) under `quality.em.*`.
  MetricsRegistry* metrics = nullptr;
};

// Expectation-Maximization over worker qualities + Bayesian voting truths.
InferenceResult InferSingleChoiceEm(const std::vector<ChoiceObservation>& obs,
                                    const EmOptions& options);

// Majority voting (the baseline): posterior mass split by vote counts,
// worker quality not modeled.
InferenceResult InferSingleChoiceMajority(
    const std::vector<ChoiceObservation>& obs, int num_choices);

// Eq. 2 applied directly with known worker qualities; exposed for tests and
// used inside EM's E-step.
std::vector<double> BayesianVote(const std::vector<std::pair<double, int>>&
                                     quality_and_choice,
                                 int num_choices);

// Multi-choice truth: decompose into per-choice yes/no and return the set of
// choices inferred true. `obs` holds the full choice sets.
std::vector<int> InferMultiChoice(const std::vector<Answer>& answers,
                                  int num_choices,
                                  const std::map<int, double>& worker_quality,
                                  double default_quality = 0.7);

// Fill-in-blank pivot: the answer maximizing aggregated similarity to the
// other answers.
std::string InferFillInBlank(const std::vector<Answer>& answers,
                             SimilarityFunction sim_fn);

// Golden-task initialization (Appendix E): workers answer tasks with known
// truth on first contact, and their initial quality is their smoothed
// accuracy on them — (prior_strength * default + correct) /
// (prior_strength + answered). Feed the result into EmOptions::quality_priors.
std::map<int, double> QualityFromGoldenTasks(
    const std::vector<ChoiceObservation>& golden_answers,
    const std::map<TaskId, int>& golden_truths, double default_quality = 0.7,
    double prior_strength = 2.0);

}  // namespace cdb

#endif  // CDB_QUALITY_TRUTH_INFERENCE_H_
