#include "quality/truth_inference.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"

namespace cdb {

int InferenceResult::Truth(TaskId task) const {
  auto it = posteriors.find(task);
  if (it == posteriors.end() || it->second.empty()) return -1;
  return static_cast<int>(std::max_element(it->second.begin(), it->second.end()) -
                          it->second.begin());
}

double InferenceResult::Confidence(TaskId task) const {
  auto it = posteriors.find(task);
  if (it == posteriors.end() || it->second.empty()) return 0.0;
  return *std::max_element(it->second.begin(), it->second.end());
}

std::vector<double> BayesianVote(
    const std::vector<std::pair<double, int>>& quality_and_choice,
    int num_choices) {
  CDB_CHECK(num_choices >= 2);
  // Work in log space for numeric stability on many answers.
  std::vector<double> log_p(num_choices, 0.0);
  for (const auto& [quality, choice] : quality_and_choice) {
    double q = std::clamp(quality, 1e-3, 1.0 - 1e-3);
    double wrong = (1.0 - q) / static_cast<double>(num_choices - 1);
    for (int i = 0; i < num_choices; ++i) {
      log_p[i] += std::log(i == choice ? q : wrong);
    }
  }
  double max_log = *std::max_element(log_p.begin(), log_p.end());
  double norm = 0.0;
  std::vector<double> p(num_choices);
  for (int i = 0; i < num_choices; ++i) {
    p[i] = std::exp(log_p[i] - max_log);
    norm += p[i];
  }
  for (double& v : p) v /= norm;
  return p;
}

namespace {

// Groups observations per task and per worker.
struct Grouped {
  std::map<TaskId, std::vector<const ChoiceObservation*>> by_task;
  std::map<int, std::vector<const ChoiceObservation*>> by_worker;
};

Grouped Group(const std::vector<ChoiceObservation>& obs) {
  Grouped g;
  for (const ChoiceObservation& o : obs) {
    g.by_task[o.task].push_back(&o);
    g.by_worker[o.worker].push_back(&o);
  }
  return g;
}

}  // namespace

InferenceResult InferSingleChoiceEm(const std::vector<ChoiceObservation>& obs,
                                    const EmOptions& options) {
  InferenceResult result;
  if (obs.empty()) return result;
  Grouped grouped = Group(obs);

  // Flatten the task map into an indexable form so the E-step can write
  // per-task posteriors into disjoint slots from the pool, and give every
  // observation its dense task row + worker row up front.
  std::vector<TaskId> task_ids;
  std::vector<const std::vector<const ChoiceObservation*>*> task_answers;
  std::map<TaskId, int> task_row;
  for (const auto& [task, answers] : grouped.by_task) {
    task_row[task] = static_cast<int>(task_ids.size());
    task_ids.push_back(task);
    task_answers.push_back(&answers);
  }
  std::vector<int> worker_ids;
  // Per worker: that worker's answers as (task row, choice), in observation
  // order — the same order the serial M-step summed in.
  std::vector<std::vector<std::pair<int, int>>> worker_answers;
  for (const auto& [worker, answers] : grouped.by_worker) {
    worker_ids.push_back(worker);
    std::vector<std::pair<int, int>> rows;
    rows.reserve(answers.size());
    for (const ChoiceObservation* o : answers) {
      rows.emplace_back(task_row.at(o->task), o->choice);
    }
    worker_answers.push_back(std::move(rows));
  }

  // Initialize qualities from the priors (or the default), indexed like
  // worker_ids.
  std::vector<double> quality(worker_ids.size());
  std::vector<double> prior(worker_ids.size());
  std::map<int, int> worker_row;
  for (size_t w = 0; w < worker_ids.size(); ++w) {
    worker_row[worker_ids[w]] = static_cast<int>(w);
    auto it = options.quality_priors.find(worker_ids[w]);
    double q = it != options.quality_priors.end() ? it->second
                                                  : options.initial_quality;
    quality[w] = q;
    prior[w] = q;
  }

  std::vector<std::vector<double>> posteriors(task_ids.size());
  std::vector<double> updated_quality(worker_ids.size());
  int iterations_run = 0;
  double last_max_delta = 0.0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // E-step: task posteriors from current qualities (Eq. 2). Tasks are
    // independent given the qualities, so they fan out across the pool.
    ParallelFor(
        0, static_cast<int64_t>(task_ids.size()), /*grain=*/64,
        [&](int64_t begin, int64_t end, int /*chunk*/) {
          std::vector<std::pair<double, int>> qc;
          for (int64_t t = begin; t < end; ++t) {
            const auto& answers = *task_answers[static_cast<size_t>(t)];
            qc.clear();
            qc.reserve(answers.size());
            for (const ChoiceObservation* o : answers) {
              qc.emplace_back(
                  quality[static_cast<size_t>(worker_row.at(o->worker))],
                  o->choice);
            }
            posteriors[static_cast<size_t>(t)] =
                BayesianVote(qc, options.num_choices);
          }
        },
        options.num_threads);
    // M-step: worker quality = expected fraction of correct answers. The
    // per-worker sums run in parallel (each walks only its own answers, in
    // the serial order); the max_delta reduction stays serial so the
    // convergence test is exactly the single-thread one.
    ParallelFor(
        0, static_cast<int64_t>(worker_ids.size()), /*grain=*/64,
        [&](int64_t begin, int64_t end, int /*chunk*/) {
          for (int64_t w = begin; w < end; ++w) {
            const auto& answers = worker_answers[static_cast<size_t>(w)];
            double expected_correct = 0.0;
            for (const auto& [row, choice] : answers) {
              expected_correct +=
                  posteriors[static_cast<size_t>(row)][static_cast<size_t>(choice)];
            }
            // MAP estimate with a Beta pseudo-count prior centered on the
            // worker's incoming quality.
            double updated = (options.prior_strength * prior[static_cast<size_t>(w)] +
                              expected_correct) /
                             (options.prior_strength +
                              static_cast<double>(answers.size()));
            // Keep qualities interior so Eq. 2 stays well defined.
            updated_quality[static_cast<size_t>(w)] =
                std::clamp(updated, 0.05, 0.99);
          }
        },
        options.num_threads);
    double max_delta = 0.0;
    for (size_t w = 0; w < worker_ids.size(); ++w) {
      max_delta = std::max(max_delta, std::abs(updated_quality[w] - quality[w]));
      quality[w] = updated_quality[w];
    }
    ++iterations_run;
    last_max_delta = max_delta;
    if (max_delta < options.tolerance) break;
  }
  if (options.metrics != nullptr) {
    MetricsRegistry& reg = *options.metrics;
    reg.counter("quality.em.runs").Increment();
    reg.counter("quality.em.iterations").Increment(iterations_run);
    // Convergence delta in integer micro-units; deterministic because EM is
    // bit-identical across thread counts.
    reg.gauge("quality.em.last_delta_micro")
        .Set(static_cast<int64_t>(std::llround(last_max_delta * 1e6)));
    reg.histogram("quality.em.iterations_per_run").Observe(iterations_run);
  }

  for (size_t t = 0; t < task_ids.size(); ++t) {
    result.posteriors[task_ids[t]] = std::move(posteriors[t]);
  }
  for (size_t w = 0; w < worker_ids.size(); ++w) {
    result.worker_quality[worker_ids[w]] = quality[w];
  }
  return result;
}

InferenceResult InferSingleChoiceMajority(
    const std::vector<ChoiceObservation>& obs, int num_choices) {
  InferenceResult result;
  Grouped grouped = Group(obs);
  for (const auto& [task, answers] : grouped.by_task) {
    std::vector<double> votes(num_choices, 0.0);
    for (const ChoiceObservation* o : answers) {
      if (o->choice >= 0 && o->choice < num_choices) votes[o->choice] += 1.0;
    }
    double total = 0.0;
    for (double v : votes) total += v;
    if (total > 0) {
      for (double& v : votes) v /= total;
    }
    result.posteriors[task] = std::move(votes);
  }
  for (const auto& [worker, answers] : grouped.by_worker) {
    result.worker_quality[worker] = 0.5;  // Not modeled by majority voting.
    (void)answers;
  }
  return result;
}

std::vector<int> InferMultiChoice(const std::vector<Answer>& answers,
                                  int num_choices,
                                  const std::map<int, double>& worker_quality,
                                  double default_quality) {
  // Decompose: choice i is its own yes/no question; worker w voted "yes" iff
  // i is in w's choice set.
  std::vector<int> truth_set;
  for (int i = 0; i < num_choices; ++i) {
    std::vector<std::pair<double, int>> qc;
    for (const Answer& a : answers) {
      auto it = worker_quality.find(a.worker);
      double q = it != worker_quality.end() ? it->second : default_quality;
      bool yes = std::find(a.choice_set.begin(), a.choice_set.end(), i) !=
                 a.choice_set.end();
      qc.emplace_back(q, yes ? 0 : 1);
    }
    std::vector<double> p = BayesianVote(qc, 2);
    if (p[0] > p[1]) truth_set.push_back(i);
  }
  return truth_set;
}

std::map<int, double> QualityFromGoldenTasks(
    const std::vector<ChoiceObservation>& golden_answers,
    const std::map<TaskId, int>& golden_truths, double default_quality,
    double prior_strength) {
  std::map<int, std::pair<double, double>> correct_and_total;
  for (const ChoiceObservation& obs : golden_answers) {
    auto it = golden_truths.find(obs.task);
    if (it == golden_truths.end()) continue;
    auto& [correct, total] = correct_and_total[obs.worker];
    total += 1.0;
    if (obs.choice == it->second) correct += 1.0;
  }
  std::map<int, double> quality;
  for (const auto& [worker, counts] : correct_and_total) {
    double q = (prior_strength * default_quality + counts.first) /
               (prior_strength + counts.second);
    quality[worker] = std::clamp(q, 0.05, 0.99);
  }
  return quality;
}

std::string InferFillInBlank(const std::vector<Answer>& answers,
                             SimilarityFunction sim_fn) {
  if (answers.empty()) return "";
  double best_score = -1.0;
  const std::string* best = nullptr;
  for (const Answer& a : answers) {
    double score = 0.0;
    for (const Answer& b : answers) {
      if (&a == &b) continue;
      score += ComputeSimilarity(sim_fn, a.text, b.text);
    }
    if (score > best_score) {
      best_score = score;
      best = &a.text;
    }
  }
  return *best;
}

}  // namespace cdb
