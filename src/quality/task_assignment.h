// Online task assignment (Section 5.3.2).
//
// When a worker requests tasks, CDB+ assigns the k tasks whose answers are
// expected to improve quality the most: for single-choice tasks the expected
// entropy decrease of the task's truth distribution (Equation 3); for
// fill-in-blank tasks the least-consistent tasks (Equation 4); for collection
// tasks the lowest completeness score.
#ifndef CDB_QUALITY_TASK_ASSIGNMENT_H_
#define CDB_QUALITY_TASK_ASSIGNMENT_H_

#include <map>
#include <vector>

#include "crowd/platform.h"
#include "crowd/task.h"
#include "similarity/similarity.h"

namespace cdb {

// Shannon entropy of a distribution (natural log); 0 for degenerate input.
double Entropy(const std::vector<double>& p);

// The posterior after worker (quality q) answers choice i (Bayes update used
// inside Eq. 3). Exposed for tests.
std::vector<double> PosteriorAfterAnswer(const std::vector<double>& prior,
                                         double worker_quality, int answer);

// Eq. 3: expected decrease in entropy if a worker of quality q answers a
// task whose current truth distribution is `prior`.
double ExpectedQualityImprovement(const std::vector<double>& prior,
                                  double worker_quality);

// Eq. 4: consistency of a fill-in-blank task's answers — mean pairwise
// similarity (1.0 when fewer than two answers).
double FillConsistency(const std::vector<Answer>& answers,
                       SimilarityFunction sim_fn);

// Completeness score (N - M) / N for a collection task with M distinct
// collected tuples out of an estimated cardinality N.
double CompletenessScore(int64_t distinct_collected, int64_t estimated_total);

// An AssignmentPolicy implementation for single-choice tasks: assigns the
// top-k available tasks by Eq. 3 using the current posteriors and the
// worker's estimated quality. The maps are borrowed and read at call time,
// so the executor can update them between arrivals.
class EntropyAssigner {
 public:
  EntropyAssigner(const std::map<TaskId, std::vector<double>>* posteriors,
                  const std::map<int, double>* worker_quality,
                  int num_choices, double default_quality = 0.7)
      : posteriors_(posteriors),
        worker_quality_(worker_quality),
        num_choices_(num_choices),
        default_quality_(default_quality) {}

  std::vector<size_t> operator()(const SimulatedWorker& worker,
                                 const std::vector<TaskId>& available,
                                 int count) const;

  // Adapts to the crowd-platform callback type.
  AssignmentPolicy AsPolicy() const;

 private:
  const std::map<TaskId, std::vector<double>>* posteriors_;
  const std::map<int, double>* worker_quality_;
  int num_choices_;
  double default_quality_;
};

}  // namespace cdb

#endif  // CDB_QUALITY_TASK_ASSIGNMENT_H_
