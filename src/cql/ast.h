// Abstract syntax for CQL statements (Section 3 / Appendix A):
//
//   CREATE [CROWD] TABLE name (col type [CROWD], ...);
//   SELECT cols|* FROM t1, t2 ... WHERE pred AND pred ... [BUDGET n];
//   FILL Table.Column [WHERE pred ...] [BUDGET n];
//   COLLECT Table.C1, Table.C2 [WHERE pred ...] [BUDGET n];
//
// Predicates:
//   T.C CROWDJOIN  T'.C'     crowd-powered join
//   T.C =          T'.C'     traditional equi-join
//   T.C CROWDEQUAL 'value'   crowd-powered selection
//   T.C =          'value'   traditional selection
#ifndef CDB_CQL_AST_H_
#define CDB_CQL_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "storage/schema.h"

namespace cdb {

// "Table.Column". `table` may be empty only where context allows (it never is
// after parsing, since CQL requires qualified references in multi-table
// statements; the parser enforces qualification everywhere for simplicity).
struct ColumnRef {
  std::string table;
  std::string column;

  std::string ToString() const { return table + "." + column; }
};

enum class PredicateKind : uint8_t {
  kCrowdJoin,   // T.C CROWDJOIN T'.C'
  kEquiJoin,    // T.C = T'.C'
  kCrowdEqual,  // T.C CROWDEQUAL 'v'
  kEqualConst,  // T.C = 'v'
};

struct AstPredicate {
  PredicateKind kind = PredicateKind::kCrowdJoin;
  ColumnRef left;
  ColumnRef right;      // Join kinds only.
  std::string constant;  // Selection kinds only.
};

struct SelectStatement {
  bool select_star = false;
  std::vector<ColumnRef> projections;  // Empty iff select_star.
  std::vector<std::string> tables;
  std::vector<AstPredicate> predicates;
  std::optional<int64_t> budget;
};

struct CreateTableStatement {
  std::string name;
  bool crowd_table = false;
  std::vector<Column> columns;
};

struct FillStatement {
  ColumnRef target;
  std::vector<AstPredicate> predicates;  // Selection kinds only.
  std::optional<int64_t> budget;
};

struct CollectStatement {
  std::vector<ColumnRef> targets;  // All must name the same table.
  std::vector<AstPredicate> predicates;
  std::optional<int64_t> budget;
};

using Statement = std::variant<SelectStatement, CreateTableStatement,
                               FillStatement, CollectStatement>;

}  // namespace cdb

#endif  // CDB_CQL_AST_H_
