#include "cql/analyzer.h"

#include <vector>

#include "common/string_util.h"

namespace cdb {
namespace {

Result<int> FindRelation(const std::vector<std::string>& names,
                         const std::string& table) {
  for (size_t i = 0; i < names.size(); ++i) {
    if (EqualsIgnoreCase(names[i], table)) return static_cast<int>(i);
  }
  return Status::NotFound("table '" + table + "' is not listed in FROM");
}

// The graph model requires the query's predicate graph to be connected
// (otherwise candidates — connected substructures with one edge per
// predicate — cannot exist; Definition 2).
bool PredicateGraphConnected(size_t num_tables,
                             const std::vector<ResolvedJoin>& joins) {
  if (num_tables <= 1) return true;
  std::vector<int> parent(num_tables);
  for (size_t i = 0; i < num_tables; ++i) parent[i] = static_cast<int>(i);
  auto find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const ResolvedJoin& join : joins) {
    parent[find(join.left_rel)] = find(join.right_rel);
  }
  int root = find(0);
  for (size_t i = 1; i < num_tables; ++i) {
    if (find(static_cast<int>(i)) != root) return false;
  }
  return true;
}

}  // namespace

Result<ResolvedQuery> AnalyzeSelect(const SelectStatement& stmt,
                                    const Catalog& catalog) {
  ResolvedQuery query;
  if (stmt.tables.empty()) return Status::InvalidArgument("FROM list is empty");
  for (const std::string& name : stmt.tables) {
    CDB_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(name));
    for (const std::string& existing : query.table_names) {
      if (EqualsIgnoreCase(existing, table->name())) {
        return Status::InvalidArgument(
            "table '" + name + "' appears twice in FROM (self-joins are not supported)");
      }
    }
    query.table_names.push_back(table->name());
    query.tables.push_back(table);
  }

  auto resolve_column = [&](const ColumnRef& ref,
                            int* rel, size_t* col) -> Status {
    CDB_ASSIGN_OR_RETURN(*rel, FindRelation(query.table_names, ref.table));
    CDB_ASSIGN_OR_RETURN(*col,
                         query.tables[*rel]->schema().FindColumn(ref.column));
    return Status::Ok();
  };

  for (const AstPredicate& pred : stmt.predicates) {
    switch (pred.kind) {
      case PredicateKind::kCrowdJoin:
      case PredicateKind::kEquiJoin: {
        ResolvedJoin join;
        join.is_crowd = pred.kind == PredicateKind::kCrowdJoin;
        CDB_RETURN_IF_ERROR(resolve_column(pred.left, &join.left_rel, &join.left_col));
        CDB_RETURN_IF_ERROR(resolve_column(pred.right, &join.right_rel, &join.right_col));
        if (join.left_rel == join.right_rel) {
          return Status::InvalidArgument("join predicate joins a table with itself");
        }
        query.joins.push_back(join);
        break;
      }
      case PredicateKind::kCrowdEqual:
      case PredicateKind::kEqualConst: {
        ResolvedSelection sel;
        sel.is_crowd = pred.kind == PredicateKind::kCrowdEqual;
        CDB_RETURN_IF_ERROR(resolve_column(pred.left, &sel.rel, &sel.col));
        sel.value = pred.constant;
        query.selections.push_back(sel);
        break;
      }
    }
  }

  if (!PredicateGraphConnected(query.tables.size(), query.joins)) {
    return Status::InvalidArgument(
        "query is a cross product: join predicates do not connect all FROM tables");
  }

  query.select_star = stmt.select_star;
  for (const ColumnRef& ref : stmt.projections) {
    ResolvedProjection proj;
    CDB_RETURN_IF_ERROR(resolve_column(ref, &proj.rel, &proj.col));
    query.projections.push_back(proj);
  }
  query.budget = stmt.budget;
  return query;
}

Status ApplyCreateTable(const CreateTableStatement& stmt, Catalog& catalog) {
  for (size_t i = 0; i < stmt.columns.size(); ++i) {
    for (size_t j = i + 1; j < stmt.columns.size(); ++j) {
      if (EqualsIgnoreCase(stmt.columns[i].name, stmt.columns[j].name)) {
        return Status::InvalidArgument("duplicate column '" + stmt.columns[i].name + "'");
      }
    }
  }
  return catalog.AddTable(Table(stmt.name, Schema(stmt.columns), stmt.crowd_table));
}

}  // namespace cdb
