// Recursive-descent parser for CQL.
#ifndef CDB_CQL_PARSER_H_
#define CDB_CQL_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "cql/ast.h"

namespace cdb {

// Parses a single CQL statement (trailing ';' optional).
Result<Statement> ParseStatement(const std::string& cql);

// Parses a ';'-separated script into statements.
Result<std::vector<Statement>> ParseScript(const std::string& cql);

}  // namespace cdb

#endif  // CDB_CQL_PARSER_H_
