// Semantic analysis: binds a parsed SELECT statement against the catalog and
// produces the resolved form consumed by the graph query model (Section 4).
#ifndef CDB_CQL_ANALYZER_H_
#define CDB_CQL_ANALYZER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "cql/ast.h"
#include "storage/catalog.h"

namespace cdb {

// A join predicate bound to table/column indexes.
struct ResolvedJoin {
  bool is_crowd = true;     // CROWDJOIN vs traditional equi-join.
  int left_rel = 0;         // Index into ResolvedQuery::tables.
  size_t left_col = 0;
  int right_rel = 0;
  size_t right_col = 0;
};

// A selection predicate bound to a table/column index plus constant.
struct ResolvedSelection {
  bool is_crowd = true;  // CROWDEQUAL vs traditional '='.
  int rel = 0;
  size_t col = 0;
  std::string value;
};

// A projection item bound to a table/column index.
struct ResolvedProjection {
  int rel = 0;
  size_t col = 0;
};

// The output of analysis: everything the optimizer needs, with all names
// resolved. Table pointers are borrowed from the catalog and must outlive
// query execution.
struct ResolvedQuery {
  std::vector<std::string> table_names;
  std::vector<const Table*> tables;
  std::vector<ResolvedJoin> joins;
  std::vector<ResolvedSelection> selections;
  bool select_star = false;
  std::vector<ResolvedProjection> projections;  // Empty iff select_star.
  std::optional<int64_t> budget;

  // Total number of predicates (N in Definition 2): joins + selections.
  size_t num_predicates() const { return joins.size() + selections.size(); }
};

// Resolves a SELECT statement. Fails on unknown tables/columns, predicates
// referencing tables not in FROM, queries whose predicate graph is
// disconnected, or self-joins (a table may appear once in FROM).
Result<ResolvedQuery> AnalyzeSelect(const SelectStatement& stmt,
                                    const Catalog& catalog);

// Applies a CREATE TABLE statement to the catalog.
Status ApplyCreateTable(const CreateTableStatement& stmt, Catalog& catalog);

}  // namespace cdb

#endif  // CDB_CQL_ANALYZER_H_
