#include "cql/parser.h"

#include "common/string_util.h"
#include "cql/lexer.h"

namespace cdb {
namespace {

// Token-stream cursor with keyword helpers. Keywords are case-insensitive
// identifiers.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool PeekKeyword(const char* kw) const {
    return Peek().type == TokenType::kIdentifier && EqualsIgnoreCase(Peek().text, kw);
  }
  bool ConsumeKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool PeekSymbol(const char* sym) const {
    return Peek().type == TokenType::kSymbol && Peek().text == sym;
  }
  bool ConsumeSymbol(const char* sym) {
    if (!PeekSymbol(sym)) return false;
    Advance();
    return true;
  }

  Status ExpectKeyword(const char* kw) {
    if (ConsumeKeyword(kw)) return Status::Ok();
    return Error(std::string("expected keyword ") + kw);
  }
  Status ExpectSymbol(const char* sym) {
    if (ConsumeSymbol(sym)) return Status::Ok();
    return Error(std::string("expected '") + sym + "'");
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(StrPrintf("%s at offset %zu (near '%s')",
                                        message.c_str(), Peek().position,
                                        Peek().text.c_str()));
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<ColumnRef> ParseColumnRef(Cursor& cur) {
  CDB_ASSIGN_OR_RETURN(std::string table, cur.ExpectIdentifier("table name"));
  CDB_RETURN_IF_ERROR(cur.ExpectSymbol("."));
  CDB_ASSIGN_OR_RETURN(std::string column, cur.ExpectIdentifier("column name"));
  return ColumnRef{std::move(table), std::move(column)};
}

Result<int64_t> ParseIntLiteral(Cursor& cur, const char* what) {
  if (cur.Peek().type != TokenType::kNumber) {
    return cur.Error(std::string("expected ") + what);
  }
  const std::string text = cur.Advance().text;
  if (text.find('.') != std::string::npos) {
    return Status::ParseError(what + std::string(" must be an integer"));
  }
  return static_cast<int64_t>(std::stoll(text));
}

Result<AstPredicate> ParsePredicate(Cursor& cur) {
  AstPredicate pred;
  CDB_ASSIGN_OR_RETURN(pred.left, ParseColumnRef(cur));
  bool crowd;
  bool join;
  if (cur.ConsumeKeyword("CROWDJOIN")) {
    crowd = true;
    join = true;
  } else if (cur.ConsumeKeyword("CROWDEQUAL")) {
    crowd = true;
    join = false;
  } else if (cur.ConsumeSymbol("=")) {
    crowd = false;
    // '=' is a join if the right side is Table.Column, a selection if it is a
    // literal.
    join = cur.Peek().type == TokenType::kIdentifier;
  } else {
    return cur.Error("expected CROWDJOIN, CROWDEQUAL or '='");
  }
  if (join) {
    pred.kind = crowd ? PredicateKind::kCrowdJoin : PredicateKind::kEquiJoin;
    CDB_ASSIGN_OR_RETURN(pred.right, ParseColumnRef(cur));
  } else {
    pred.kind = crowd ? PredicateKind::kCrowdEqual : PredicateKind::kEqualConst;
    if (cur.Peek().type == TokenType::kString ||
        cur.Peek().type == TokenType::kNumber) {
      pred.constant = cur.Advance().text;
    } else {
      return cur.Error("expected literal on the right-hand side");
    }
  }
  return pred;
}

Result<std::vector<AstPredicate>> ParseWhere(Cursor& cur) {
  std::vector<AstPredicate> predicates;
  if (!cur.ConsumeKeyword("WHERE")) return predicates;
  while (true) {
    CDB_ASSIGN_OR_RETURN(AstPredicate pred, ParsePredicate(cur));
    predicates.push_back(std::move(pred));
    if (!cur.ConsumeKeyword("AND")) break;
  }
  return predicates;
}

Result<std::optional<int64_t>> ParseOptionalBudget(Cursor& cur) {
  if (!cur.ConsumeKeyword("BUDGET")) return std::optional<int64_t>();
  CDB_ASSIGN_OR_RETURN(int64_t budget, ParseIntLiteral(cur, "budget"));
  if (budget <= 0) return Status::ParseError("BUDGET must be positive");
  return std::optional<int64_t>(budget);
}

Result<Statement> ParseSelect(Cursor& cur) {
  SelectStatement stmt;
  CDB_RETURN_IF_ERROR(cur.ExpectKeyword("SELECT"));
  if (cur.ConsumeSymbol("*")) {
    stmt.select_star = true;
  } else {
    while (true) {
      CDB_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef(cur));
      stmt.projections.push_back(std::move(ref));
      if (!cur.ConsumeSymbol(",")) break;
    }
  }
  CDB_RETURN_IF_ERROR(cur.ExpectKeyword("FROM"));
  while (true) {
    CDB_ASSIGN_OR_RETURN(std::string table, cur.ExpectIdentifier("table name"));
    stmt.tables.push_back(std::move(table));
    if (!cur.ConsumeSymbol(",")) break;
  }
  CDB_ASSIGN_OR_RETURN(stmt.predicates, ParseWhere(cur));
  CDB_ASSIGN_OR_RETURN(stmt.budget, ParseOptionalBudget(cur));
  return Statement(std::move(stmt));
}

Result<ValueType> ParseColumnType(Cursor& cur) {
  CDB_ASSIGN_OR_RETURN(std::string type_name, cur.ExpectIdentifier("column type"));
  if (EqualsIgnoreCase(type_name, "varchar") || EqualsIgnoreCase(type_name, "text") ||
      EqualsIgnoreCase(type_name, "string")) {
    // Optional length parameter: varchar(64).
    if (cur.ConsumeSymbol("(")) {
      CDB_RETURN_IF_ERROR(ParseIntLiteral(cur, "varchar length").status());
      CDB_RETURN_IF_ERROR(cur.ExpectSymbol(")"));
    }
    return ValueType::kString;
  }
  if (EqualsIgnoreCase(type_name, "int") || EqualsIgnoreCase(type_name, "integer") ||
      EqualsIgnoreCase(type_name, "bigint")) {
    return ValueType::kInt64;
  }
  if (EqualsIgnoreCase(type_name, "double") || EqualsIgnoreCase(type_name, "float") ||
      EqualsIgnoreCase(type_name, "real")) {
    return ValueType::kDouble;
  }
  return Status::ParseError("unknown column type '" + type_name + "'");
}

Result<Statement> ParseCreateTable(Cursor& cur) {
  CreateTableStatement stmt;
  CDB_RETURN_IF_ERROR(cur.ExpectKeyword("CREATE"));
  stmt.crowd_table = cur.ConsumeKeyword("CROWD");
  CDB_RETURN_IF_ERROR(cur.ExpectKeyword("TABLE"));
  CDB_ASSIGN_OR_RETURN(stmt.name, cur.ExpectIdentifier("table name"));
  CDB_RETURN_IF_ERROR(cur.ExpectSymbol("("));
  while (true) {
    Column column;
    CDB_ASSIGN_OR_RETURN(column.name, cur.ExpectIdentifier("column name"));
    // CROWD may appear before or after the type: `gender CROWD varchar(16)`
    // (as in the paper's example) or `gender varchar(16) CROWD`.
    column.is_crowd = cur.ConsumeKeyword("CROWD");
    CDB_ASSIGN_OR_RETURN(column.type, ParseColumnType(cur));
    if (cur.ConsumeKeyword("CROWD")) column.is_crowd = true;
    stmt.columns.push_back(std::move(column));
    if (cur.ConsumeSymbol(",")) continue;
    CDB_RETURN_IF_ERROR(cur.ExpectSymbol(")"));
    break;
  }
  if (stmt.columns.empty()) return Status::ParseError("table needs columns");
  return Statement(std::move(stmt));
}

Result<Statement> ParseFill(Cursor& cur) {
  FillStatement stmt;
  CDB_RETURN_IF_ERROR(cur.ExpectKeyword("FILL"));
  CDB_ASSIGN_OR_RETURN(stmt.target, ParseColumnRef(cur));
  CDB_ASSIGN_OR_RETURN(stmt.predicates, ParseWhere(cur));
  for (const AstPredicate& pred : stmt.predicates) {
    if (pred.kind == PredicateKind::kCrowdJoin || pred.kind == PredicateKind::kEquiJoin) {
      return Status::ParseError("FILL supports only selection predicates");
    }
  }
  CDB_ASSIGN_OR_RETURN(stmt.budget, ParseOptionalBudget(cur));
  return Statement(std::move(stmt));
}

Result<Statement> ParseCollect(Cursor& cur) {
  CollectStatement stmt;
  CDB_RETURN_IF_ERROR(cur.ExpectKeyword("COLLECT"));
  while (true) {
    CDB_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef(cur));
    stmt.targets.push_back(std::move(ref));
    if (!cur.ConsumeSymbol(",")) break;
  }
  for (const ColumnRef& ref : stmt.targets) {
    if (!EqualsIgnoreCase(ref.table, stmt.targets[0].table)) {
      return Status::ParseError("COLLECT targets must name a single table");
    }
  }
  CDB_ASSIGN_OR_RETURN(stmt.predicates, ParseWhere(cur));
  for (const AstPredicate& pred : stmt.predicates) {
    if (pred.kind == PredicateKind::kCrowdJoin || pred.kind == PredicateKind::kEquiJoin) {
      return Status::ParseError("COLLECT supports only selection predicates");
    }
  }
  CDB_ASSIGN_OR_RETURN(stmt.budget, ParseOptionalBudget(cur));
  return Statement(std::move(stmt));
}

Result<Statement> ParseOne(Cursor& cur) {
  if (cur.PeekKeyword("SELECT")) return ParseSelect(cur);
  if (cur.PeekKeyword("CREATE")) return ParseCreateTable(cur);
  if (cur.PeekKeyword("FILL")) return ParseFill(cur);
  if (cur.PeekKeyword("COLLECT")) return ParseCollect(cur);
  return cur.Error("expected SELECT, CREATE, FILL or COLLECT");
}

}  // namespace

Result<Statement> ParseStatement(const std::string& cql) {
  CDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(cql));
  Cursor cur(std::move(tokens));
  CDB_ASSIGN_OR_RETURN(Statement stmt, ParseOne(cur));
  cur.ConsumeSymbol(";");
  if (!cur.AtEnd()) return cur.Error("trailing tokens after statement");
  return stmt;
}

Result<std::vector<Statement>> ParseScript(const std::string& cql) {
  CDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(cql));
  Cursor cur(std::move(tokens));
  std::vector<Statement> statements;
  while (!cur.AtEnd()) {
    CDB_ASSIGN_OR_RETURN(Statement stmt, ParseOne(cur));
    statements.push_back(std::move(stmt));
    if (!cur.ConsumeSymbol(";")) break;
  }
  if (!cur.AtEnd()) return cur.Error("trailing tokens after script");
  return statements;
}

}  // namespace cdb
