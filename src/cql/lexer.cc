#include "cql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace cdb {

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      // SQL line comment.
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      tokens.push_back({TokenType::kIdentifier, input.substr(start, i - start), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       (!seen_dot && input[i] == '.'))) {
        if (input[i] == '.') {
          // A dot not followed by a digit is the qualifier symbol, not a
          // decimal point (e.g. "3.title" cannot occur, but be strict).
          if (i + 1 >= n || !std::isdigit(static_cast<unsigned char>(input[i + 1]))) break;
          seen_dot = true;
        }
        ++i;
      }
      tokens.push_back({TokenType::kNumber, input.substr(start, i - start), start});
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == quote) {
          if (i + 1 < n && input[i + 1] == quote) {  // Doubled quote escape.
            text.push_back(quote);
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrPrintf("unterminated string literal at offset %zu", start));
      }
      tokens.push_back({TokenType::kString, std::move(text), start});
      continue;
    }
    switch (c) {
      case '(':
      case ')':
      case ',':
      case ';':
      case '.':
      case '*':
      case '=':
        tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
        ++i;
        continue;
      default:
        return Status::ParseError(
            StrPrintf("unexpected character '%c' at offset %zu", c, start));
    }
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace cdb
