// CQL lexer. CQL is SQL extended with CROWD / CROWDJOIN / CROWDEQUAL / FILL /
// COLLECT / BUDGET (Section 3, Appendix A). Keywords are case-insensitive and
// recognized by the parser; the lexer only distinguishes token shapes.
#ifndef CDB_CQL_LEXER_H_
#define CDB_CQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cdb {

enum class TokenType : uint8_t {
  kIdentifier,   // table, column, or keyword
  kString,       // 'quoted' or "quoted" literal
  kNumber,       // integer or decimal literal
  kSymbol,       // one of ( ) , ; . * =
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // Identifier/keyword text, literal contents, or symbol.
  size_t position = 0;  // Byte offset in the input, for error messages.
};

// Tokenizes an entire CQL statement (or script). Returns a vector ending with
// a kEnd token, or a ParseError status for malformed input (e.g. an
// unterminated string literal).
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace cdb

#endif  // CDB_CQL_LEXER_H_
