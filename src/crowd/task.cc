#include "crowd/task.h"

namespace cdb {

const char* TaskTypeName(TaskType type) {
  switch (type) {
    case TaskType::kSingleChoice:
      return "single-choice";
    case TaskType::kMultiChoice:
      return "multi-choice";
    case TaskType::kFillInBlank:
      return "fill-in-blank";
    case TaskType::kCollection:
      return "collection";
  }
  return "?";
}

Task MakeEdgeTask(TaskId id, int64_t edge, const std::string& left_value,
                  const std::string& right_value) {
  Task task;
  task.id = id;
  task.type = TaskType::kSingleChoice;
  task.question =
      "Do \"" + left_value + "\" and \"" + right_value + "\" refer to the same thing?";
  task.choices = {"yes", "no"};
  task.payload = edge;
  return task;
}

}  // namespace cdb
