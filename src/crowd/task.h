// Crowd task model. CDB's Crowd UI Designer supports four task types
// (Section 2.1): single-choice, multiple-choice, fill-in-the-blank and
// collection. Query edges (join/selection checks) become single-choice
// yes/no tasks; FILL becomes fill-in-the-blank; COLLECT becomes collection.
#ifndef CDB_CROWD_TASK_H_
#define CDB_CROWD_TASK_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cdb {

enum class TaskType : uint8_t {
  kSingleChoice,
  kMultiChoice,
  kFillInBlank,
  kCollection,
};

const char* TaskTypeName(TaskType type);

using TaskId = int64_t;

struct Task {
  TaskId id = -1;
  TaskType type = TaskType::kSingleChoice;
  std::string question;
  std::vector<std::string> choices;  // Choice tasks only.
  int64_t payload = -1;  // Caller-defined link (e.g. the EdgeId of a query edge).
  // Per-task redundancy override for requester-side reposts: when > 0 the
  // platform collects this many answers instead of PlatformOptions.redundancy
  // (still capped by the worker-pool size). 0 keeps the platform default.
  int redundancy_override = 0;
  // Which session/batch the task came from when rounds are merged across
  // queries (MultiQueryScheduler): a HIT whose tasks carry more than one tag
  // is a shared HIT (counted in PlatformStats::shared_hits). -1 = untagged.
  int batch_tag = -1;
};

// One worker's answer to one task. Only the field matching the task type is
// meaningful.
struct Answer {
  TaskId task = -1;
  int worker = -1;
  int choice = -1;                 // Single-choice.
  std::vector<int> choice_set;     // Multi-choice.
  std::string text;                // Fill-in-blank / collection.
  // Simulated-platform delivery metadata (fault layer): the virtual tick the
  // answer arrived at, and whether it arrived after its lease expired or its
  // task was already resolved (a "late" answer, delivered out of band via
  // CrowdPlatform::TakeLateAnswers instead of the round result).
  int64_t tick = 0;
  bool late = false;
};

// The simulator's ground truth for one task: what a perfectly accurate
// worker would answer.
struct TaskTruth {
  int correct_choice = -1;
  std::vector<int> correct_choice_set;
  std::string correct_text;
  // Plausible wrong answers for open tasks; a failing worker picks one.
  std::vector<std::string> wrong_text_pool;
};

// Builds the yes/no single-choice task for a query edge.
Task MakeEdgeTask(TaskId id, int64_t edge, const std::string& left_value,
                  const std::string& right_value);

}  // namespace cdb

#endif  // CDB_CROWD_TASK_H_
