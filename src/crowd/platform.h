// The crowd-platform simulator replacing AMT / CrowdFlower / ChinaCrowd.
//
// The platform owns a worker pool, packs tasks into HITs for pricing, and
// simulates worker arrivals until every published task has `redundancy`
// answers from distinct workers. Two assignment modes mirror the real
// platforms (Section 2.1): in requester-controlled mode (AMT's development
// model) an AssignmentPolicy picks which tasks each arriving worker gets —
// this is where CDB+'s online task assignment plugs in; in
// platform-controlled mode (CrowdFlower) tasks are handed out round-robin.
#ifndef CDB_CROWD_PLATFORM_H_
#define CDB_CROWD_PLATFORM_H_

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "crowd/task.h"
#include "crowd/worker.h"

namespace cdb {

struct PlatformOptions {
  std::string market_name = "SimAMT";
  int num_workers = 50;
  double worker_quality_mean = 0.8;   // q of N(q, 0.01) in the paper.
  double worker_quality_stddev = 0.1;  // sqrt(0.01).
  int redundancy = 5;                  // Answers per task (5 in the paper).
  int tasks_per_hit = 10;              // Pricing: 10 tasks per $0.1 HIT.
  double price_per_hit = 0.1;
  int tasks_per_request = 5;           // Tasks a worker takes per arrival.
  bool requester_controls_assignment = true;
  uint64_t seed = 42;
};

// Chooses up to `count` tasks (indexes into `available`) for the arriving
// worker. `available` holds tasks still needing answers that this worker has
// not answered yet.
using AssignmentPolicy = std::function<std::vector<size_t>(
    const SimulatedWorker& worker, const std::vector<TaskId>& available,
    int count)>;

// Invoked after each individual answer; lets quality control update its
// posteriors between assignments within a round.
using AnswerObserver = std::function<void(const Answer&)>;

// Supplies ground truth for a task when a worker answers it.
using TruthProvider = std::function<TaskTruth(const Task&)>;

// Accumulated accounting across rounds.
struct PlatformStats {
  int64_t tasks_published = 0;
  int64_t answers_collected = 0;
  int64_t hits_published = 0;
  double dollars_spent = 0.0;
};

class CrowdPlatform {
 public:
  CrowdPlatform(const PlatformOptions& options, TruthProvider truth);

  // Publishes `tasks` and simulates worker arrivals until each task has
  // `redundancy` answers (capped by the number of distinct workers). The
  // policy is consulted only in requester-controlled mode; pass nullptr for
  // the default (round-robin by need). Returns all answers of this round.
  std::vector<Answer> ExecuteRound(const std::vector<Task>& tasks,
                                   const AssignmentPolicy* policy = nullptr,
                                   const AnswerObserver* observer = nullptr);

  const std::vector<SimulatedWorker>& workers() const { return workers_; }
  const PlatformStats& stats() const { return stats_; }
  const PlatformOptions& options() const { return options_; }
  Rng& rng() { return rng_; }

 private:
  PlatformOptions options_;
  TruthProvider truth_;
  Rng rng_;
  std::vector<SimulatedWorker> workers_;
  PlatformStats stats_;
};

// Cross-market deployment (Section 2.2 "task deployment"): a set of
// simulated markets; tasks are partitioned across them round-robin and the
// answers merged. Worker ids are offset per market so they stay unique.
class MultiMarket {
 public:
  explicit MultiMarket(std::vector<PlatformOptions> markets, TruthProvider truth);

  std::vector<Answer> ExecuteRound(const std::vector<Task>& tasks,
                                   const AssignmentPolicy* policy = nullptr,
                                   const AnswerObserver* observer = nullptr);

  const std::vector<CrowdPlatform>& platforms() const { return platforms_; }
  PlatformStats CombinedStats() const;
  // Worker-id offset applied to market `m`.
  int worker_id_offset(size_t m) const { return static_cast<int>(m) * kWorkerIdStride; }

  static constexpr int kWorkerIdStride = 1000000;

 private:
  std::vector<CrowdPlatform> platforms_;
};

}  // namespace cdb

#endif  // CDB_CROWD_PLATFORM_H_
