// The crowd-platform simulator replacing AMT / CrowdFlower / ChinaCrowd.
//
// The platform owns a worker pool, packs tasks into HITs for pricing, and
// simulates worker arrivals until every published task has `redundancy`
// answers from distinct workers. Two assignment modes mirror the real
// platforms (Section 2.1): in requester-controlled mode (AMT's development
// model) an AssignmentPolicy picks which tasks each arriving worker gets —
// this is where CDB+'s online task assignment plugs in; in
// platform-controlled mode (CrowdFlower) tasks are handed out round-robin.
//
// Fault layer: a FaultProfile turns the fair-weather simulator into an
// unreliable crowd — workers abandon leased tasks, straggle past deadlines,
// no-show on arrival, and answers get duplicated or delivered late. Tasks are
// leased with a per-task deadline; expired leases are reposted by the
// platform up to a cap, after which the task lands in a dead-letter queue for
// the requester to handle (see ExecutorOptions::retry). Every fault decision
// is drawn from a cdb::Rng stream split off (seed, counter) alone, so the
// fault schedule of a given seed is bit-identical across runs and across the
// executor's thread counts.
#ifndef CDB_CROWD_PLATFORM_H_
#define CDB_CROWD_PLATFORM_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "crowd/task.h"
#include "crowd/worker.h"

namespace cdb {

class ByteReader;
class ByteWriter;
class Counter;
class MetricsRegistry;
class Tracer;

// Unreliability knobs, all off by default (the clean simulator). Probabilities
// are per-lease (abandon/straggle/duplicate) or per-arrival (no-show). See
// README's fault-model table for the paper-deployment analogue of each knob.
struct FaultProfile {
  // Probability an arriving worker browses the task list but takes nothing.
  double no_show_prob = 0.0;
  // Probability a worker who leased a task never submits an answer; the lease
  // expires after `task_deadline_ticks` and the platform reposts the slot.
  double abandon_prob = 0.0;
  // Probability an answer is delayed. The delay is drawn uniformly from
  // [1, 2 * straggler_delay_ticks] virtual ticks; if it pushes delivery past
  // the lease deadline the answer arrives late (out of band).
  double straggler_prob = 0.0;
  int64_t straggler_delay_ticks = 4;
  // Probability an on-time answer is delivered twice (platform-side glitch;
  // requesters must de-duplicate by (task, worker)).
  double duplicate_prob = 0.0;
  // Lease length in virtual ticks (one worker arrival per tick). Must be > 0
  // whenever any fault probability is, or abandoned leases would never free
  // their slot.
  int64_t task_deadline_ticks = 0;
  // Platform-side repost cap: after this many expired leases a task is
  // dead-lettered and the round stops waiting for it.
  int max_task_expiries = 4;

  // True when any knob deviates from the clean simulator.
  [[nodiscard]] bool Active() const {
    return no_show_prob > 0.0 || abandon_prob > 0.0 || straggler_prob > 0.0 ||
           duplicate_prob > 0.0 || task_deadline_ticks > 0;
  }
};

struct PlatformOptions {
  std::string market_name = "SimAMT";
  int num_workers = 50;
  double worker_quality_mean = 0.8;   // q of N(q, 0.01) in the paper.
  double worker_quality_stddev = 0.1;  // sqrt(0.01).
  int redundancy = 5;                  // Answers per task (5 in the paper).
  int tasks_per_hit = 10;              // Pricing: 10 tasks per $0.1 HIT.
  double price_per_hit = 0.1;
  int tasks_per_request = 5;           // Tasks a worker takes per arrival.
  bool requester_controls_assignment = true;
  uint64_t seed = 42;
  FaultProfile fault;
  // Observability sinks (borrowed, may be null = disabled). The platform
  // mirrors every PlatformStats increment into `metrics` under `crowd.*`
  // names — PlatformStats is a per-platform view over the same counts — and
  // emits one tick-keyed `crowd.round` span per ExecuteRound into `tracer`.
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
};

// Chooses up to `count` tasks (indexes into `available`) for the arriving
// worker. `available` holds tasks still needing answers that this worker has
// not answered yet.
using AssignmentPolicy = std::function<std::vector<size_t>(
    const SimulatedWorker& worker, const std::vector<TaskId>& available,
    int count)>;

// Invoked after each individual answer; lets quality control update its
// posteriors between assignments within a round.
using AnswerObserver = std::function<void(const Answer&)>;

// Supplies ground truth for a task when a worker answers it.
using TruthProvider = std::function<TaskTruth(const Task&)>;

// Accumulated accounting across rounds. With faults enabled the counters obey
// the conservation law checked by the DST harness:
//   leases_granted == (answers_collected - duplicates) + abandons
//                     + late_answers
// (every lease delivers on time, delivers late, or is abandoned), and
//   expiries <= abandons + late_answers,
//   micro_dollars_spent == hits_published * MicroDollars(price_per_hit)
//   (no double-spend).
struct PlatformStats {
  int64_t tasks_published = 0;
  int64_t answers_collected = 0;  // On-time deliveries, duplicates included.
  int64_t hits_published = 0;
  // HITs whose tasks carry >= 2 distinct batch_tags: multi-query HITs packed
  // by MultiQueryScheduler's merged rounds (0 for single-query runs).
  int64_t shared_hits = 0;
  // Money is accounted in integer micro-dollars: cross-market/merged-HIT
  // summation is then exact in any order, keeping PlatformStatsDump
  // byte-stable (a double accumulated with += is not). Format at the edge
  // via dollars_spent().
  int64_t micro_dollars_spent = 0;
  [[nodiscard]] double dollars_spent() const {
    return static_cast<double>(micro_dollars_spent) * 1e-6;
  }
  // Fault-layer counters (all zero with the clean simulator).
  int64_t ticks = 0;             // Virtual clock advanced so far.
  int64_t leases_granted = 0;    // Task slots handed to workers.
  int64_t no_shows = 0;          // Arrivals that took nothing.
  int64_t abandons = 0;          // Leases that never produced an answer.
  int64_t expiries = 0;          // Leases whose deadline passed undelivered.
  int64_t reposts = 0;           // Expired slots returned to the pool.
  int64_t dead_lettered = 0;     // Tasks given up on by the platform.
  int64_t late_answers = 0;      // Answers delivered out of band.
  int64_t duplicates = 0;        // Extra copies of on-time answers.
};

// Rounds a dollar amount to integer micro-dollars (the internal money unit).
[[nodiscard]] int64_t MicroDollars(double dollars);

// Canonical byte dump of the stats, one `key=value` per line; the seeded
// determinism tests compare these byte-for-byte across runs/thread counts.
// The dollars_spent line renders micro-dollars with exactly six decimals via
// integer math, so the text matches the historical "%.6f" double format.
std::string PlatformStatsDump(const PlatformStats& stats);

// Fixed-order binary encoding of PlatformStats for session snapshots (every
// field, in declaration order). Shared by the platform's own SnapshotState
// and the session's ExecutionStats serialization.
void SnapshotPlatformStats(ByteWriter& writer, const PlatformStats& stats);
Status RestorePlatformStats(ByteReader& reader, PlatformStats* stats);

// Thread affinity: driver-serial. The simulator is stepped only by the one
// publish path (session/scheduler channel, enforced by the
// single-publish-path lint rule) on the driver thread; it owns no locks and
// its sequential rng_ draws assume un-interleaved access. Any future
// concurrent platform must wrap shared state in cdb::Mutex capabilities
// (common/mutex.h) so the thread-safety analysis sees it.
class CrowdPlatform {
 public:
  CrowdPlatform(const PlatformOptions& options, TruthProvider truth);

  // Publishes `tasks` and simulates worker arrivals until each task has
  // `redundancy` answers (capped by the number of distinct workers). The
  // policy is consulted only in requester-controlled mode; pass nullptr for
  // the default (round-robin by need). Returns the on-time answers of this
  // round (late answers accumulate in TakeLateAnswers, tasks the platform
  // gave up on in TakeDeadLetters). Fails with kFailedPrecondition when the
  // worker pool is exhausted but redundancy is unmet and faults are off (with
  // faults on, such tasks are dead-lettered instead), and with
  // kInvalidArgument for an unsatisfiable FaultProfile.
  Result<std::vector<Answer>> ExecuteRound(
      const std::vector<Task>& tasks, const AssignmentPolicy* policy = nullptr,
      const AnswerObserver* observer = nullptr);

  // Drains answers that arrived after their lease expired or their task was
  // already resolved. The requester reconciles these into quality control.
  std::vector<Answer> TakeLateAnswers();

  // Drains the dead-letter queue: tasks the platform stopped reposting.
  std::vector<TaskId> TakeDeadLetters();

  // Advances the virtual clock without simulating arrivals — the requester's
  // retry backoff "waits" this many ticks.
  void AdvanceTicks(int64_t ticks);

  // Cumulative on-time (non-duplicate) deliveries per task across rounds;
  // ordered map so iteration is deterministic for invariant checks.
  const std::map<TaskId, int64_t>& delivered_per_task() const {
    return delivered_per_task_;
  }

  const std::vector<SimulatedWorker>& workers() const { return workers_; }
  const PlatformStats& stats() const { return stats_; }
  const PlatformOptions& options() const { return options_; }
  Rng& rng() { return rng_; }

  // Session-snapshot hooks. The platform is quiescent between rounds — every
  // lease settles inside ExecuteRound — so its cross-round persistent state
  // is exactly: the rng engine, the stats counters, the virtual clock, the
  // lease sequence, and the undrained late-answer / dead-letter /
  // delivered-per-task buffers. Everything else (worker pool, registry
  // mirror) rebuilds deterministically from PlatformOptions at construction.
  // RestoreState must run on a freshly-constructed platform with the same
  // options; a seed/worker-count mismatch is a typed error. Restore assigns
  // stats_ directly and never bumps the registry mirror — the registry is
  // snapshotted and restored separately (MetricsRegistry::RestoreState).
  void SnapshotState(ByteWriter& writer) const;
  Status RestoreState(ByteReader& reader);

 private:
  // The pre-fault simulation loop: every leased task is answered immediately.
  Result<std::vector<Answer>> CleanRound(const std::vector<Task>& tasks,
                                         const AssignmentPolicy* policy,
                                         const AnswerObserver* observer);
  // The tick-driven lease/expiry/dead-letter simulation used when
  // options_.fault.Active().
  Result<std::vector<Answer>> FaultyRound(const std::vector<Task>& tasks,
                                          const AssignmentPolicy* policy,
                                          const AnswerObserver* observer);
  int EffectiveRedundancy(const Task& task) const;
  void ChargeForTasks(const std::vector<Task>& tasks);

  // Cached registry handles mirroring every stats_ increment (all null when
  // options_.metrics is unset, making each mirror a single null check).
  // Counters aggregate across platforms sharing a registry; for a single
  // platform, registry values equal the PlatformStats fields exactly (the
  // trace suite asserts this "view" property).
  struct RegistryMirror {
    Counter* tasks_published = nullptr;
    Counter* answers_collected = nullptr;
    Counter* hits_published = nullptr;
    Counter* shared_hits = nullptr;
    Counter* micro_dollars_spent = nullptr;
    Counter* ticks = nullptr;
    Counter* leases_granted = nullptr;
    Counter* no_shows = nullptr;
    Counter* abandons = nullptr;
    Counter* expiries = nullptr;
    Counter* reposts = nullptr;
    Counter* dead_lettered = nullptr;
    Counter* late_answers = nullptr;
    Counter* duplicates = nullptr;
  };

  PlatformOptions options_;
  RegistryMirror mirror_;
  TruthProvider truth_;
  Rng rng_;
  std::vector<SimulatedWorker> workers_;
  PlatformStats stats_;
  int64_t tick_ = 0;       // Virtual clock; persists across rounds.
  int64_t lease_seq_ = 0;  // Stream index for per-lease fault draws.
  std::vector<Answer> late_answers_;
  std::vector<TaskId> dead_letter_;
  std::map<TaskId, int64_t> delivered_per_task_;
};

// Cross-market deployment (Section 2.2 "task deployment"): a set of
// simulated markets; tasks are partitioned across them round-robin and the
// answers merged. Worker ids are offset per market so they stay unique.
class MultiMarket {
 public:
  explicit MultiMarket(std::vector<PlatformOptions> markets, TruthProvider truth);

  Result<std::vector<Answer>> ExecuteRound(
      const std::vector<Task>& tasks, const AssignmentPolicy* policy = nullptr,
      const AnswerObserver* observer = nullptr);

  // Fault-layer passthroughs, merged across markets (worker ids offset).
  std::vector<Answer> TakeLateAnswers();
  std::vector<TaskId> TakeDeadLetters();
  void AdvanceTicks(int64_t ticks);

  const std::vector<CrowdPlatform>& platforms() const { return platforms_; }
  PlatformStats CombinedStats() const;

  // Per-market snapshot/restore (see CrowdPlatform::SnapshotState).
  void SnapshotState(ByteWriter& writer) const;
  Status RestoreState(ByteReader& reader);
  // Worker-id offset applied to market `m`.
  int worker_id_offset(size_t m) const { return static_cast<int>(m) * kWorkerIdStride; }

  static constexpr int kWorkerIdStride = 1000000;

 private:
  std::vector<CrowdPlatform> platforms_;
};

}  // namespace cdb

#endif  // CDB_CROWD_PLATFORM_H_
