#include "crowd/platform.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/serialize.h"
#include "common/trace.h"

namespace cdb {
namespace {

// Registry mirror helper: null counter (metrics disabled) = no-op.
inline void Bump(Counter* counter, int64_t delta = 1) {
  if (counter != nullptr) counter->Increment(delta);
}

// Salts separating the fault-schedule Rng streams from every other consumer
// of the platform seed. Fault draws are pure functions of (seed, counter), so
// a given seed's fault schedule is bit-identical no matter what else runs.
constexpr uint64_t kLeaseFaultSalt = 0xfa1716c0de5a1dULL;
constexpr uint64_t kNoShowSalt = 0x0a05b0a7d5a17e2dULL;

constexpr int64_t kNeverTick = std::numeric_limits<int64_t>::max();

}  // namespace

int64_t MicroDollars(double dollars) {
  return std::llround(dollars * 1e6);
}

std::string PlatformStatsDump(const PlatformStats& stats) {
  // Six decimals via integer math — byte-identical to the historical "%.6f"
  // double formatting, without depending on float rounding.
  char dollars[64];
  std::snprintf(dollars, sizeof(dollars), "%lld.%06lld",
                static_cast<long long>(stats.micro_dollars_spent / 1000000),
                static_cast<long long>(stats.micro_dollars_spent % 1000000));
  std::string out;
  auto line = [&out](const char* key, int64_t value) {
    out += key;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  };
  line("tasks_published", stats.tasks_published);
  line("answers_collected", stats.answers_collected);
  line("hits_published", stats.hits_published);
  line("shared_hits", stats.shared_hits);
  out += "dollars_spent=";
  out += dollars;
  out += '\n';
  line("ticks", stats.ticks);
  line("leases_granted", stats.leases_granted);
  line("no_shows", stats.no_shows);
  line("abandons", stats.abandons);
  line("expiries", stats.expiries);
  line("reposts", stats.reposts);
  line("dead_lettered", stats.dead_lettered);
  line("late_answers", stats.late_answers);
  line("duplicates", stats.duplicates);
  return out;
}

CrowdPlatform::CrowdPlatform(const PlatformOptions& options, TruthProvider truth)
    : options_(options), truth_(std::move(truth)), rng_(options.seed) {
  CDB_CHECK(options_.num_workers > 0);
  CDB_CHECK(options_.redundancy > 0);
  workers_ = MakeWorkerPool(options_.num_workers, options_.worker_quality_mean,
                            options_.worker_quality_stddev, rng_);
  if (options_.metrics != nullptr) {
    MetricsRegistry& reg = *options_.metrics;
    mirror_.tasks_published = &reg.counter("crowd.tasks_published");
    mirror_.answers_collected = &reg.counter("crowd.answers_collected");
    mirror_.hits_published = &reg.counter("crowd.hits_published");
    mirror_.shared_hits = &reg.counter("crowd.shared_hits");
    mirror_.micro_dollars_spent = &reg.counter("crowd.micro_dollars_spent");
    mirror_.ticks = &reg.counter("crowd.ticks");
    mirror_.leases_granted = &reg.counter("crowd.leases_granted");
    mirror_.no_shows = &reg.counter("crowd.no_shows");
    mirror_.abandons = &reg.counter("crowd.abandons");
    mirror_.expiries = &reg.counter("crowd.expiries");
    mirror_.reposts = &reg.counter("crowd.reposts");
    mirror_.dead_lettered = &reg.counter("crowd.dead_lettered");
    mirror_.late_answers = &reg.counter("crowd.late_answers");
    mirror_.duplicates = &reg.counter("crowd.duplicates");
  }
}

int CrowdPlatform::EffectiveRedundancy(const Task& task) const {
  int want = task.redundancy_override > 0 ? task.redundancy_override
                                          : options_.redundancy;
  return std::min(want, static_cast<int>(workers_.size()));
}

void CrowdPlatform::ChargeForTasks(const std::vector<Task>& tasks) {
  const int64_t num_tasks = static_cast<int64_t>(tasks.size());
  stats_.tasks_published += num_tasks;
  Bump(mirror_.tasks_published, num_tasks);
  int64_t hits =
      (num_tasks + options_.tasks_per_hit - 1) / options_.tasks_per_hit;
  stats_.hits_published += hits;
  Bump(mirror_.hits_published, hits);
  const int64_t charge = hits * MicroDollars(options_.price_per_hit);
  stats_.micro_dollars_spent += charge;
  Bump(mirror_.micro_dollars_spent, charge);
  // HITs are packed in publish order, tasks_per_hit at a time; a HIT mixing
  // batch tags is a shared (multi-query) HIT.
  for (size_t start = 0; start < tasks.size();
       start += static_cast<size_t>(options_.tasks_per_hit)) {
    size_t end = std::min(tasks.size(),
                          start + static_cast<size_t>(options_.tasks_per_hit));
    int first_tag = std::numeric_limits<int>::min();
    bool mixed = false;
    for (size_t i = start; i < end; ++i) {
      if (tasks[i].batch_tag < 0) continue;
      if (first_tag == std::numeric_limits<int>::min()) {
        first_tag = tasks[i].batch_tag;
      } else if (tasks[i].batch_tag != first_tag) {
        mixed = true;
        break;
      }
    }
    if (mixed) {
      ++stats_.shared_hits;
      Bump(mirror_.shared_hits);
    }
  }
}

Result<std::vector<Answer>> CrowdPlatform::ExecuteRound(
    const std::vector<Task>& tasks, const AssignmentPolicy* policy,
    const AnswerObserver* observer) {
  if (tasks.empty()) return std::vector<Answer>();
  const FaultProfile& fault = options_.fault;
  if (fault.Active()) {
    if ((fault.abandon_prob > 0.0 || fault.straggler_prob > 0.0) &&
        fault.task_deadline_ticks <= 0) {
      return Status::InvalidArgument(
          "FaultProfile: abandon/straggler faults require a positive "
          "task_deadline_ticks, or expired leases would never be reposted");
    }
    if (fault.straggler_prob > 0.0 && fault.straggler_delay_ticks <= 0) {
      return Status::InvalidArgument(
          "FaultProfile: straggler_prob > 0 requires straggler_delay_ticks "
          ">= 1");
    }
  }
  const int64_t tick_begin = tick_;
  WallTimer wall;
  auto result = fault.Active() ? FaultyRound(tasks, policy, observer)
                               : CleanRound(tasks, policy, observer);
  if (options_.tracer != nullptr) {
    options_.tracer->AddSpan("crowd.round", options_.market_name, tick_begin,
                             tick_, wall.ElapsedMicros());
  }
  return result;
}

Result<std::vector<Answer>> CrowdPlatform::CleanRound(
    const std::vector<Task>& tasks, const AssignmentPolicy* policy,
    const AnswerObserver* observer) {
  std::vector<Answer> answers;
  ChargeForTasks(tasks);

  std::vector<int> need(tasks.size());
  int64_t remaining = 0;
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    need[ti] = EffectiveRedundancy(tasks[ti]);
    remaining += need[ti];
  }
  std::vector<std::vector<int>> answered_by(tasks.size());

  const bool use_policy =
      policy != nullptr && options_.requester_controls_assignment;
  size_t cursor = 0;  // Rotating cursor for the default round-robin mode.
  int64_t idle_arrivals = 0;

  while (remaining > 0) {
    const SimulatedWorker& worker = workers_[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(workers_.size()) - 1))];
    auto worker_did = [&](size_t ti) {
      return std::find(answered_by[ti].begin(), answered_by[ti].end(),
                       worker.id()) != answered_by[ti].end();
    };

    std::vector<size_t> chosen;
    if (use_policy) {
      // Offer the full list of tasks this worker can still answer.
      std::vector<TaskId> available_ids;
      std::vector<size_t> available_idx;
      for (size_t ti = 0; ti < tasks.size(); ++ti) {
        if (need[ti] > 0 && !worker_did(ti)) {
          available_ids.push_back(tasks[ti].id);
          available_idx.push_back(ti);
        }
      }
      if (!available_ids.empty()) {
        std::vector<size_t> picks =
            (*policy)(worker, available_ids, options_.tasks_per_request);
        for (size_t p : picks) {
          CDB_CHECK(p < available_idx.size());
          chosen.push_back(available_idx[p]);
        }
      }
    } else {
      // Round-robin over needy tasks starting at the cursor.
      for (size_t step = 0;
           step < tasks.size() &&
           chosen.size() < static_cast<size_t>(options_.tasks_per_request);
           ++step) {
        size_t ti = (cursor + step) % tasks.size();
        if (need[ti] > 0 && !worker_did(ti)) chosen.push_back(ti);
      }
      cursor = (cursor + options_.tasks_per_request) % tasks.size();
    }

    bool progressed = false;
    for (size_t ti : chosen) {
      if (need[ti] <= 0 || worker_did(ti)) continue;
      Answer answer = worker.AnswerTask(tasks[ti], truth_(tasks[ti]), rng_);
      answer.tick = tick_;
      answered_by[ti].push_back(worker.id());
      --need[ti];
      --remaining;
      ++stats_.answers_collected;
      Bump(mirror_.answers_collected);
      progressed = true;
      if (observer != nullptr) (*observer)(answer);
      answers.push_back(std::move(answer));
    }

    if (progressed) {
      idle_arrivals = 0;
      continue;
    }
    // No answer was recorded this arrival — either the worker had nothing
    // left or the policy kept picking tasks the worker already answered.
    // Before this guard covered only empty picks, so a policy repeatedly
    // returning already-answered tasks spun forever; now sustained
    // no-progress is a typed error instead of a livelock or a silent
    // partial round.
    if (++idle_arrivals > static_cast<int64_t>(workers_.size()) * 4) {
      int64_t unmet = 0;
      for (int n : need) unmet += n > 0 ? 1 : 0;
      return Status::FailedPrecondition(
          "crowd exhausted: " + std::to_string(unmet) + " of " +
          std::to_string(tasks.size()) +
          " tasks still need answers but no arriving worker can make "
          "progress");
    }
  }
  return answers;
}

Result<std::vector<Answer>> CrowdPlatform::FaultyRound(
    const std::vector<Task>& tasks, const AssignmentPolicy* policy,
    const AnswerObserver* observer) {
  std::vector<Answer> answers;
  ChargeForTasks(tasks);
  const FaultProfile& fault = options_.fault;

  struct TaskState {
    int need = 0;         // Answers still wanted.
    int outstanding = 0;  // Active leases not yet delivered/expired.
    int expiries = 0;     // Expired leases so far (dead-letter cap input).
    bool dead = false;
    std::vector<int> attempted;  // Workers that ever leased this task.
  };
  // A lease either delivers on time, delivers late, or is abandoned; the
  // fate plus any straggler delay are drawn once at grant time from the
  // lease's own (seed, lease_seq) Rng stream.
  struct Lease {
    size_t ti = 0;
    int64_t deadline = kNeverTick;
    int64_t deliver_tick = kNeverTick;  // kNeverTick = abandoned.
    bool duplicate = false;
    bool expired = false;
    bool settled = false;  // Delivered (on time or late).
    Answer answer;
  };

  std::vector<TaskState> state(tasks.size());
  int64_t unresolved = 0;
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    state[ti].need = EffectiveRedundancy(tasks[ti]);
    unresolved += state[ti].need > 0 ? 1 : 0;
  }
  std::vector<Lease> leases;
  // (tick -> lease index) queues, processed in deterministic order.
  std::multimap<int64_t, size_t> deliveries;
  std::multimap<int64_t, size_t> expiries;

  const bool use_policy =
      policy != nullptr && options_.requester_controls_assignment;
  size_t cursor = 0;
  int64_t idle_arrivals = 0;

  auto resolve_task = [&](size_t ti) {
    if (state[ti].need <= 0 && !state[ti].dead) --unresolved;
  };
  auto dead_letter_task = [&](size_t ti) {
    if (state[ti].dead || state[ti].need <= 0) return;
    state[ti].dead = true;
    dead_letter_.push_back(tasks[ti].id);
    ++stats_.dead_lettered;
    Bump(mirror_.dead_lettered);
    --unresolved;
  };
  auto deliver = [&](Lease& lease, bool on_time) {
    lease.settled = true;
    Answer answer = lease.answer;
    answer.tick = tick_;
    if (on_time) {
      --state[lease.ti].need;
      ++delivered_per_task_[answer.task];
      ++stats_.answers_collected;
      Bump(mirror_.answers_collected);
      if (observer != nullptr) (*observer)(answer);
      answers.push_back(answer);
      if (lease.duplicate) {
        // Platform glitch: the same assignment is delivered twice; the
        // requester must de-duplicate by (task, worker).
        ++stats_.duplicates;
        Bump(mirror_.duplicates);
        ++stats_.answers_collected;
        Bump(mirror_.answers_collected);
        if (observer != nullptr) (*observer)(answer);
        answers.push_back(answer);
      }
      resolve_task(lease.ti);
    } else {
      answer.late = true;
      ++stats_.late_answers;
      Bump(mirror_.late_answers);
      late_answers_.push_back(std::move(answer));
    }
  };

  while (unresolved > 0 || !deliveries.empty()) {
    ++tick_;
    ++stats_.ticks;
    Bump(mirror_.ticks);

    // 1. Expire leases whose deadline has passed without delivery. The slot
    // returns to the pool (a platform-side repost) until the task hits the
    // dead-letter cap.
    while (!expiries.empty() && expiries.begin()->first < tick_) {
      Lease& lease = leases[expiries.begin()->second];
      expiries.erase(expiries.begin());
      if (lease.settled || lease.expired) continue;
      lease.expired = true;
      TaskState& ts = state[lease.ti];
      --ts.outstanding;
      ++ts.expiries;
      ++stats_.expiries;
      Bump(mirror_.expiries);
      if (lease.deliver_tick == kNeverTick) {
        ++stats_.abandons;
        Bump(mirror_.abandons);
      }
      if (!ts.dead && ts.need > 0) {
        if (ts.expiries > fault.max_task_expiries) {
          dead_letter_task(lease.ti);
        } else {
          ++stats_.reposts;
          Bump(mirror_.reposts);
        }
      }
    }

    // 2. Deliver answers due this tick. A delivery is on time iff its lease
    // has not expired and its task still wants answers; otherwise it goes to
    // the late buffer.
    while (!deliveries.empty() && deliveries.begin()->first <= tick_) {
      Lease& lease = leases[deliveries.begin()->second];
      deliveries.erase(deliveries.begin());
      if (lease.settled) continue;
      TaskState& ts = state[lease.ti];
      bool on_time = !lease.expired && !ts.dead && ts.need > 0;
      if (!lease.expired) --ts.outstanding;
      deliver(lease, on_time);
      idle_arrivals = 0;
    }

    if (unresolved == 0) continue;  // Drain remaining in-flight deliveries.

    // 3. Starvation check: a task with open slots that every worker has
    // already attempted can never complete — dead-letter it now.
    for (size_t ti = 0; ti < tasks.size(); ++ti) {
      TaskState& ts = state[ti];
      if (!ts.dead && ts.need > ts.outstanding &&
          ts.attempted.size() >= workers_.size()) {
        dead_letter_task(ti);
      }
    }
    if (unresolved == 0) continue;

    // 4. One worker arrival per tick.
    const SimulatedWorker& worker = workers_[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(workers_.size()) - 1))];
    if (Rng(options_.seed ^ kNoShowSalt, static_cast<uint64_t>(tick_))
            .Bernoulli(fault.no_show_prob)) {
      ++stats_.no_shows;
      Bump(mirror_.no_shows);
      ++idle_arrivals;
      continue;
    }
    auto worker_attempted = [&](size_t ti) {
      return std::find(state[ti].attempted.begin(), state[ti].attempted.end(),
                       worker.id()) != state[ti].attempted.end();
    };
    auto leasable = [&](size_t ti) {
      return !state[ti].dead && state[ti].need > state[ti].outstanding &&
             !worker_attempted(ti);
    };

    std::vector<size_t> chosen;
    if (use_policy) {
      std::vector<TaskId> available_ids;
      std::vector<size_t> available_idx;
      for (size_t ti = 0; ti < tasks.size(); ++ti) {
        if (leasable(ti)) {
          available_ids.push_back(tasks[ti].id);
          available_idx.push_back(ti);
        }
      }
      if (!available_ids.empty()) {
        std::vector<size_t> picks =
            (*policy)(worker, available_ids, options_.tasks_per_request);
        for (size_t p : picks) {
          CDB_CHECK(p < available_idx.size());
          chosen.push_back(available_idx[p]);
        }
      }
    } else {
      for (size_t step = 0;
           step < tasks.size() &&
           chosen.size() < static_cast<size_t>(options_.tasks_per_request);
           ++step) {
        size_t ti = (cursor + step) % tasks.size();
        if (leasable(ti)) chosen.push_back(ti);
      }
      cursor = (cursor + options_.tasks_per_request) % tasks.size();
    }

    bool granted = false;
    for (size_t ti : chosen) {
      if (!leasable(ti)) continue;
      TaskState& ts = state[ti];
      ts.attempted.push_back(worker.id());
      ++stats_.leases_granted;
      Bump(mirror_.leases_granted);
      ++lease_seq_;
      granted = true;

      // The lease's fate comes from its own Rng stream: a pure function of
      // (platform seed, lease sequence number).
      Rng fault_rng(options_.seed ^ kLeaseFaultSalt,
                    static_cast<uint64_t>(lease_seq_));
      bool abandoned = fault_rng.Bernoulli(fault.abandon_prob);
      int64_t delay = 0;
      if (!abandoned && fault_rng.Bernoulli(fault.straggler_prob)) {
        delay = fault_rng.UniformInt(1, 2 * fault.straggler_delay_ticks);
      }
      bool duplicate = !abandoned && fault_rng.Bernoulli(fault.duplicate_prob);

      Lease lease;
      lease.ti = ti;
      lease.deadline = fault.task_deadline_ticks > 0
                           ? tick_ + fault.task_deadline_ticks
                           : kNeverTick;
      lease.duplicate = duplicate;
      if (abandoned) {
        lease.deliver_tick = kNeverTick;
        ++ts.outstanding;
        leases.push_back(std::move(lease));
        expiries.insert({leases.back().deadline, leases.size() - 1});
        continue;
      }
      lease.answer = worker.AnswerTask(tasks[ti], truth_(tasks[ti]), rng_);
      lease.deliver_tick = tick_ + delay;
      if (delay == 0) {
        leases.push_back(std::move(lease));
        deliver(leases.back(), /*on_time=*/true);
      } else {
        ++ts.outstanding;
        leases.push_back(std::move(lease));
        deliveries.insert({leases.back().deliver_tick, leases.size() - 1});
        if (leases.back().deadline != kNeverTick) {
          expiries.insert({leases.back().deadline, leases.size() - 1});
        }
      }
    }

    if (granted) {
      idle_arrivals = 0;
    } else if (++idle_arrivals >
                   static_cast<int64_t>(workers_.size()) * 8 &&
               deliveries.empty()) {
      // Sustained no-progress (e.g. a policy that never picks a leasable
      // task) with nothing in flight: give the remaining tasks up to the
      // dead-letter queue instead of spinning. The requester's retry policy
      // decides whether to repost them.
      for (size_t ti = 0; ti < tasks.size(); ++ti) dead_letter_task(ti);
    }
  }

  // Drain: abandoned leases still active when the round resolves would have
  // expired eventually; settle them now so the conservation law
  // (leases == on-time + late + abandons) holds at every round boundary.
  for (Lease& lease : leases) {
    if (lease.settled || lease.expired) continue;
    CDB_CHECK(lease.deliver_tick == kNeverTick);
    lease.expired = true;
    --state[lease.ti].outstanding;
    ++stats_.expiries;
    Bump(mirror_.expiries);
    ++stats_.abandons;
    Bump(mirror_.abandons);
  }
  return answers;
}

namespace {

// Answer travels in snapshots with every field: the late buffer carries
// tick/late metadata the requester's reconciliation depends on.
void PutAnswer(ByteWriter& writer, const Answer& answer) {
  writer.PutI64(answer.task);
  writer.PutI32(answer.worker);
  writer.PutI32(answer.choice);
  writer.PutU32(static_cast<uint32_t>(answer.choice_set.size()));
  for (int choice : answer.choice_set) writer.PutI32(choice);
  writer.PutString(answer.text);
  writer.PutI64(answer.tick);
  writer.PutBool(answer.late);
}

Status GetAnswer(ByteReader& reader, Answer* answer) {
  CDB_RETURN_IF_ERROR(reader.GetI64(&answer->task));
  CDB_RETURN_IF_ERROR(reader.GetI32(&answer->worker));
  CDB_RETURN_IF_ERROR(reader.GetI32(&answer->choice));
  uint32_t n = 0;
  CDB_RETURN_IF_ERROR(reader.GetU32(&n));
  answer->choice_set.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    CDB_RETURN_IF_ERROR(reader.GetI32(&answer->choice_set[i]));
  }
  CDB_RETURN_IF_ERROR(reader.GetString(&answer->text));
  CDB_RETURN_IF_ERROR(reader.GetI64(&answer->tick));
  CDB_RETURN_IF_ERROR(reader.GetBool(&answer->late));
  return Status::Ok();
}

}  // namespace

void SnapshotPlatformStats(ByteWriter& writer, const PlatformStats& stats) {
  writer.PutI64(stats.tasks_published);
  writer.PutI64(stats.answers_collected);
  writer.PutI64(stats.hits_published);
  writer.PutI64(stats.shared_hits);
  writer.PutI64(stats.micro_dollars_spent);
  writer.PutI64(stats.ticks);
  writer.PutI64(stats.leases_granted);
  writer.PutI64(stats.no_shows);
  writer.PutI64(stats.abandons);
  writer.PutI64(stats.expiries);
  writer.PutI64(stats.reposts);
  writer.PutI64(stats.dead_lettered);
  writer.PutI64(stats.late_answers);
  writer.PutI64(stats.duplicates);
}

Status RestorePlatformStats(ByteReader& reader, PlatformStats* stats) {
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->tasks_published));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->answers_collected));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->hits_published));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->shared_hits));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->micro_dollars_spent));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->ticks));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->leases_granted));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->no_shows));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->abandons));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->expiries));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->reposts));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->dead_lettered));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->late_answers));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->duplicates));
  return Status::Ok();
}

void CrowdPlatform::SnapshotState(ByteWriter& writer) const {
  // Identity guard: a snapshot only restores onto a platform built from the
  // same seed and worker pool (the pool is drawn from the seed at
  // construction, so these two fields pin the whole deterministic prefix).
  writer.PutU64(options_.seed);
  writer.PutI32(options_.num_workers);
  writer.PutString(rng_.SaveState());
  SnapshotPlatformStats(writer, stats_);
  writer.PutI64(tick_);
  writer.PutI64(lease_seq_);
  writer.PutU32(static_cast<uint32_t>(late_answers_.size()));
  for (const Answer& answer : late_answers_) PutAnswer(writer, answer);
  writer.PutU32(static_cast<uint32_t>(dead_letter_.size()));
  for (TaskId id : dead_letter_) writer.PutI64(id);
  writer.PutU32(static_cast<uint32_t>(delivered_per_task_.size()));
  for (const auto& [task, n] : delivered_per_task_) {
    writer.PutI64(task);
    writer.PutI64(n);
  }
}

Status CrowdPlatform::RestoreState(ByteReader& reader) {
  uint64_t seed = 0;
  int32_t num_workers = 0;
  CDB_RETURN_IF_ERROR(reader.GetU64(&seed));
  CDB_RETURN_IF_ERROR(reader.GetI32(&num_workers));
  if (seed != options_.seed || num_workers != options_.num_workers) {
    return Status::FailedPrecondition(
        "platform snapshot belongs to a different platform configuration "
        "(seed/worker-pool mismatch)");
  }
  std::string rng_state;
  CDB_RETURN_IF_ERROR(reader.GetString(&rng_state));
  CDB_RETURN_IF_ERROR(rng_.LoadState(rng_state));
  CDB_RETURN_IF_ERROR(RestorePlatformStats(reader, &stats_));
  CDB_RETURN_IF_ERROR(reader.GetI64(&tick_));
  CDB_RETURN_IF_ERROR(reader.GetI64(&lease_seq_));
  uint32_t n = 0;
  CDB_RETURN_IF_ERROR(reader.GetU32(&n));
  late_answers_.assign(n, Answer{});
  for (uint32_t i = 0; i < n; ++i) {
    CDB_RETURN_IF_ERROR(GetAnswer(reader, &late_answers_[i]));
  }
  CDB_RETURN_IF_ERROR(reader.GetU32(&n));
  dead_letter_.assign(n, TaskId{});
  for (uint32_t i = 0; i < n; ++i) {
    CDB_RETURN_IF_ERROR(reader.GetI64(&dead_letter_[i]));
  }
  CDB_RETURN_IF_ERROR(reader.GetU32(&n));
  delivered_per_task_.clear();
  for (uint32_t i = 0; i < n; ++i) {
    TaskId task = 0;
    int64_t count = 0;
    CDB_RETURN_IF_ERROR(reader.GetI64(&task));
    CDB_RETURN_IF_ERROR(reader.GetI64(&count));
    delivered_per_task_[task] = count;
  }
  return Status::Ok();
}

std::vector<Answer> CrowdPlatform::TakeLateAnswers() {
  std::vector<Answer> out;
  out.swap(late_answers_);
  return out;
}

std::vector<TaskId> CrowdPlatform::TakeDeadLetters() {
  std::vector<TaskId> out;
  out.swap(dead_letter_);
  return out;
}

void CrowdPlatform::AdvanceTicks(int64_t ticks) {
  CDB_CHECK(ticks >= 0);
  tick_ += ticks;
  stats_.ticks += ticks;
  Bump(mirror_.ticks, ticks);
}

MultiMarket::MultiMarket(std::vector<PlatformOptions> markets,
                         TruthProvider truth) {
  CDB_CHECK(!markets.empty());
  platforms_.reserve(markets.size());
  for (auto& options : markets) {
    platforms_.emplace_back(options, truth);
  }
}

Result<std::vector<Answer>> MultiMarket::ExecuteRound(
    const std::vector<Task>& tasks, const AssignmentPolicy* policy,
    const AnswerObserver* observer) {
  // Partition tasks round-robin across markets and merge the answers with
  // per-market worker-id offsets.
  std::vector<std::vector<Task>> partitions(platforms_.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    partitions[i % platforms_.size()].push_back(tasks[i]);
  }
  std::vector<Answer> merged;
  for (size_t m = 0; m < platforms_.size(); ++m) {
    const int offset = worker_id_offset(m);
    AnswerObserver offset_observer = [&](const Answer& a) {
      if (observer != nullptr) {
        Answer shifted = a;
        shifted.worker += offset;
        (*observer)(shifted);
      }
    };
    CDB_ASSIGN_OR_RETURN(
        std::vector<Answer> part,
        platforms_[m].ExecuteRound(
            partitions[m], policy,
            observer != nullptr ? &offset_observer : nullptr));
    for (Answer& a : part) {
      a.worker += offset;
      merged.push_back(std::move(a));
    }
  }
  return merged;
}

std::vector<Answer> MultiMarket::TakeLateAnswers() {
  std::vector<Answer> merged;
  for (size_t m = 0; m < platforms_.size(); ++m) {
    const int offset = worker_id_offset(m);
    for (Answer& a : platforms_[m].TakeLateAnswers()) {
      a.worker += offset;
      merged.push_back(std::move(a));
    }
  }
  return merged;
}

std::vector<TaskId> MultiMarket::TakeDeadLetters() {
  std::vector<TaskId> merged;
  for (CrowdPlatform& platform : platforms_) {
    for (TaskId id : platform.TakeDeadLetters()) merged.push_back(id);
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

void MultiMarket::AdvanceTicks(int64_t ticks) {
  for (CrowdPlatform& platform : platforms_) platform.AdvanceTicks(ticks);
}

void MultiMarket::SnapshotState(ByteWriter& writer) const {
  writer.PutU32(static_cast<uint32_t>(platforms_.size()));
  for (const CrowdPlatform& platform : platforms_) {
    platform.SnapshotState(writer);
  }
}

Status MultiMarket::RestoreState(ByteReader& reader) {
  uint32_t n = 0;
  CDB_RETURN_IF_ERROR(reader.GetU32(&n));
  if (n != platforms_.size()) {
    return Status::FailedPrecondition(
        "multi-market snapshot has " + std::to_string(n) +
        " markets, deployment has " + std::to_string(platforms_.size()));
  }
  for (CrowdPlatform& platform : platforms_) {
    CDB_RETURN_IF_ERROR(platform.RestoreState(reader));
  }
  return Status::Ok();
}

PlatformStats MultiMarket::CombinedStats() const {
  PlatformStats total;
  for (const CrowdPlatform& platform : platforms_) {
    const PlatformStats& s = platform.stats();
    total.tasks_published += s.tasks_published;
    total.answers_collected += s.answers_collected;
    total.hits_published += s.hits_published;
    total.shared_hits += s.shared_hits;
    total.micro_dollars_spent += s.micro_dollars_spent;
    total.ticks += s.ticks;
    total.leases_granted += s.leases_granted;
    total.no_shows += s.no_shows;
    total.abandons += s.abandons;
    total.expiries += s.expiries;
    total.reposts += s.reposts;
    total.dead_lettered += s.dead_lettered;
    total.late_answers += s.late_answers;
    total.duplicates += s.duplicates;
  }
  return total;
}

}  // namespace cdb
