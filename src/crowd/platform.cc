#include "crowd/platform.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cdb {

CrowdPlatform::CrowdPlatform(const PlatformOptions& options, TruthProvider truth)
    : options_(options), truth_(std::move(truth)), rng_(options.seed) {
  CDB_CHECK(options_.num_workers > 0);
  CDB_CHECK(options_.redundancy > 0);
  workers_ = MakeWorkerPool(options_.num_workers, options_.worker_quality_mean,
                            options_.worker_quality_stddev, rng_);
}

std::vector<Answer> CrowdPlatform::ExecuteRound(const std::vector<Task>& tasks,
                                                const AssignmentPolicy* policy,
                                                const AnswerObserver* observer) {
  std::vector<Answer> answers;
  if (tasks.empty()) return answers;

  stats_.tasks_published += static_cast<int64_t>(tasks.size());
  int64_t hits = (static_cast<int64_t>(tasks.size()) + options_.tasks_per_hit - 1) /
                 options_.tasks_per_hit;
  stats_.hits_published += hits;
  stats_.dollars_spent += static_cast<double>(hits) * options_.price_per_hit;

  const int redundancy =
      std::min(options_.redundancy, static_cast<int>(workers_.size()));
  std::vector<int> need(tasks.size(), redundancy);
  std::vector<std::vector<int>> answered_by(tasks.size());
  int64_t remaining = static_cast<int64_t>(tasks.size()) * redundancy;

  const bool use_policy =
      policy != nullptr && options_.requester_controls_assignment;
  size_t cursor = 0;  // Rotating cursor for the default round-robin mode.
  int64_t idle_arrivals = 0;

  while (remaining > 0) {
    const SimulatedWorker& worker = workers_[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(workers_.size()) - 1))];
    auto worker_did = [&](size_t ti) {
      return std::find(answered_by[ti].begin(), answered_by[ti].end(),
                       worker.id()) != answered_by[ti].end();
    };

    std::vector<size_t> chosen;
    if (use_policy) {
      // Offer the full list of tasks this worker can still answer.
      std::vector<TaskId> available_ids;
      std::vector<size_t> available_idx;
      for (size_t ti = 0; ti < tasks.size(); ++ti) {
        if (need[ti] > 0 && !worker_did(ti)) {
          available_ids.push_back(tasks[ti].id);
          available_idx.push_back(ti);
        }
      }
      if (!available_ids.empty()) {
        std::vector<size_t> picks =
            (*policy)(worker, available_ids, options_.tasks_per_request);
        for (size_t p : picks) {
          CDB_CHECK(p < available_idx.size());
          chosen.push_back(available_idx[p]);
        }
      }
    } else {
      // Round-robin over needy tasks starting at the cursor.
      for (size_t step = 0;
           step < tasks.size() &&
           chosen.size() < static_cast<size_t>(options_.tasks_per_request);
           ++step) {
        size_t ti = (cursor + step) % tasks.size();
        if (need[ti] > 0 && !worker_did(ti)) chosen.push_back(ti);
      }
      cursor = (cursor + options_.tasks_per_request) % tasks.size();
    }

    if (chosen.empty()) {
      // This worker has nothing left; guard against livelock when every
      // remaining task was already answered by every worker.
      if (++idle_arrivals > static_cast<int64_t>(workers_.size()) * 4) break;
      continue;
    }
    idle_arrivals = 0;

    for (size_t ti : chosen) {
      if (need[ti] <= 0 || worker_did(ti)) continue;
      Answer answer = worker.AnswerTask(tasks[ti], truth_(tasks[ti]), rng_);
      answered_by[ti].push_back(worker.id());
      --need[ti];
      --remaining;
      ++stats_.answers_collected;
      if (observer != nullptr) (*observer)(answer);
      answers.push_back(std::move(answer));
    }
  }
  return answers;
}

MultiMarket::MultiMarket(std::vector<PlatformOptions> markets,
                         TruthProvider truth) {
  CDB_CHECK(!markets.empty());
  platforms_.reserve(markets.size());
  for (auto& options : markets) {
    platforms_.emplace_back(options, truth);
  }
}

std::vector<Answer> MultiMarket::ExecuteRound(const std::vector<Task>& tasks,
                                              const AssignmentPolicy* policy,
                                              const AnswerObserver* observer) {
  // Partition tasks round-robin across markets and merge the answers with
  // per-market worker-id offsets.
  std::vector<std::vector<Task>> partitions(platforms_.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    partitions[i % platforms_.size()].push_back(tasks[i]);
  }
  std::vector<Answer> merged;
  for (size_t m = 0; m < platforms_.size(); ++m) {
    const int offset = worker_id_offset(m);
    AnswerObserver offset_observer = [&](const Answer& a) {
      if (observer != nullptr) {
        Answer shifted = a;
        shifted.worker += offset;
        (*observer)(shifted);
      }
    };
    std::vector<Answer> part = platforms_[m].ExecuteRound(
        partitions[m], policy, observer != nullptr ? &offset_observer : nullptr);
    for (Answer& a : part) {
      a.worker += offset;
      merged.push_back(std::move(a));
    }
  }
  return merged;
}

PlatformStats MultiMarket::CombinedStats() const {
  PlatformStats total;
  for (const CrowdPlatform& platform : platforms_) {
    total.tasks_published += platform.stats().tasks_published;
    total.answers_collected += platform.stats().answers_collected;
    total.hits_published += platform.stats().hits_published;
    total.dollars_spent += platform.stats().dollars_spent;
  }
  return total;
}

}  // namespace cdb
