// Simulated crowd workers. Each worker has a latent accuracy drawn from
// N(q, sigma^2) — the paper's simulated-experiment protocol draws from
// N(q, 0.01) (Section 6.2) — and answers a task correctly with that
// probability, otherwise picking a uniformly random wrong answer.
#ifndef CDB_CROWD_WORKER_H_
#define CDB_CROWD_WORKER_H_

#include <vector>

#include "common/random.h"
#include "crowd/task.h"

namespace cdb {

class SimulatedWorker {
 public:
  SimulatedWorker(int id, double accuracy) : id_(id), accuracy_(accuracy) {}

  int id() const { return id_; }
  double accuracy() const { return accuracy_; }

  // Produces this worker's answer given the task's ground truth.
  Answer AnswerTask(const Task& task, const TaskTruth& truth, Rng& rng) const;

 private:
  int id_;
  double accuracy_;  // Latent; inference must estimate it from answers.
};

// Draws `count` workers with accuracies from the clamped Gaussian.
std::vector<SimulatedWorker> MakeWorkerPool(int count, double mean_quality,
                                            double stddev, Rng& rng);

}  // namespace cdb

#endif  // CDB_CROWD_WORKER_H_
