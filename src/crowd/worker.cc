#include "crowd/worker.h"

#include "common/logging.h"

namespace cdb {

Answer SimulatedWorker::AnswerTask(const Task& task, const TaskTruth& truth,
                                   Rng& rng) const {
  Answer answer;
  answer.task = task.id;
  answer.worker = id_;
  switch (task.type) {
    case TaskType::kSingleChoice: {
      CDB_CHECK(task.choices.size() >= 2);
      CDB_CHECK(truth.correct_choice >= 0 &&
                truth.correct_choice < static_cast<int>(task.choices.size()));
      if (rng.Bernoulli(accuracy_)) {
        answer.choice = truth.correct_choice;
      } else {
        // Uniform over the wrong choices.
        int wrong = static_cast<int>(
            rng.UniformInt(0, static_cast<int64_t>(task.choices.size()) - 2));
        if (wrong >= truth.correct_choice) ++wrong;
        answer.choice = wrong;
      }
      break;
    }
    case TaskType::kMultiChoice: {
      // Each choice judged independently with the worker's accuracy.
      for (size_t i = 0; i < task.choices.size(); ++i) {
        bool truly_in = false;
        for (int c : truth.correct_choice_set) {
          if (c == static_cast<int>(i)) truly_in = true;
        }
        bool says_in = rng.Bernoulli(accuracy_) ? truly_in : !truly_in;
        if (says_in) answer.choice_set.push_back(static_cast<int>(i));
      }
      break;
    }
    case TaskType::kFillInBlank:
    case TaskType::kCollection: {
      if (rng.Bernoulli(accuracy_) || truth.wrong_text_pool.empty()) {
        answer.text = truth.correct_text;
      } else {
        answer.text = truth.wrong_text_pool[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(truth.wrong_text_pool.size()) - 1))];
      }
      break;
    }
  }
  return answer;
}

std::vector<SimulatedWorker> MakeWorkerPool(int count, double mean_quality,
                                            double stddev, Rng& rng) {
  std::vector<SimulatedWorker> workers;
  workers.reserve(count);
  for (int i = 0; i < count; ++i) {
    // Clamp away from 0/1: a perfectly (in)accurate worker makes EM's
    // likelihood degenerate.
    workers.emplace_back(i, rng.ClampedGaussian(mean_quality, stddev, 0.05, 0.99));
  }
  return workers;
}

}  // namespace cdb
