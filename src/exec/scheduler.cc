#include "exec/scheduler.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace cdb {
namespace {

// Registry mirror helper: null counter (metrics disabled) = no-op.
inline void Bump(Counter* counter, int64_t delta = 1) {
  if (counter != nullptr && delta != 0) counter->Increment(delta);
}

}  // namespace

// The per-session TaskPublisher: session-private traffic (golden warm-up,
// Collect-phase reposts) and fault-layer drains, translated between the
// session's local task ids and the scheduler's shared id space.
class MultiQueryScheduler::Channel : public TaskPublisher {
 public:
  Channel(MultiQueryScheduler* scheduler, size_t session)
      : scheduler_(scheduler), session_(session) {}

  Result<std::vector<Answer>> Publish(const std::vector<Task>& tasks,
                                      const AssignmentPolicy* /*policy*/,
                                      const AnswerObserver* /*observer*/) override {
    return scheduler_->DirectPublish(session_, tasks);
  }

  std::vector<Answer> TakeLateAnswers() override {
    scheduler_->RouteLateAnswers();
    std::vector<Answer> out;
    out.swap(scheduler_->pending_late_[session_]);
    return out;
  }

  std::vector<TaskId> TakeDeadLetters() override {
    // Dead letters carry global ids; translate for every subscriber so each
    // session's retry logic sees its own task ids.
    for (TaskId g : scheduler_->platform_->TakeDeadLetters()) {
      auto it = scheduler_->subscribers_.find(g);
      if (it == scheduler_->subscribers_.end()) continue;
      for (const auto& [j, local] : it->second) {
        scheduler_->pending_dead_[j].push_back(local);
      }
    }
    std::vector<TaskId> out;
    out.swap(scheduler_->pending_dead_[session_]);
    return out;
  }

  void AdvanceTicks(int64_t ticks) override {
    // The clock is shared: one session's retry backoff advances time for
    // every co-scheduled query.
    scheduler_->platform_->AdvanceTicks(ticks);
  }

  int effective_redundancy() const override {
    const CrowdPlatform& platform = *scheduler_->platform_;
    return std::min(platform.options().redundancy,
                    static_cast<int>(platform.workers().size()));
  }

  PlatformStats stats() const override { return scheduler_->platform_->stats(); }

 private:
  MultiQueryScheduler* scheduler_;
  size_t session_;
};

MultiQueryScheduler::MultiQueryScheduler(const MultiQueryOptions& options)
    : options_(options), global_budget_(options.global_budget) {
  options_.platform.metrics = options_.metrics;
  options_.platform.tracer = options_.tracer;
  if (options_.metrics != nullptr) {
    MetricsRegistry& reg = *options_.metrics;
    metrics_.merged_rounds = &reg.counter("scheduler.merged_rounds");
    metrics_.tasks_requested = &reg.counter("scheduler.tasks_requested");
    metrics_.tasks_published = &reg.counter("scheduler.tasks_published");
    metrics_.direct_tasks = &reg.counter("scheduler.direct_tasks");
    metrics_.dedup_hits = &reg.counter("scheduler.dedup_hits");
    metrics_.cache_hits = &reg.counter("scheduler.cache_hits");
    metrics_.budget_denied = &reg.counter("scheduler.budget_denied");
    metrics_.dedup_tasks_saved = &reg.counter("scheduler.dedup_tasks_saved");
  }
  platform_ = std::make_unique<CrowdPlatform>(
      options_.platform,
      [this](const Task& task) { return GlobalTaskTruth(task); });
}

MultiQueryScheduler::~MultiQueryScheduler() = default;

size_t MultiQueryScheduler::AddQuery(const ResolvedQuery* query,
                                     const ExecutorOptions& options,
                                     EdgeTruthFn truth) {
  CDB_CHECK_MSG(!ran_, "AddQuery after RunAll");
  size_t index = sessions_.size();
  channels_.push_back(std::make_unique<Channel>(this, index));
  // Sessions share the scheduler's sinks; the shared platform is the only
  // platform, so nothing double-mirrors.
  ExecutorOptions session_options = options;
  session_options.metrics = options_.metrics;
  session_options.tracer = options_.tracer;
  sessions_.push_back(std::make_unique<QuerySession>(
      query, session_options, std::move(truth), channels_.back().get()));
  pending_late_.emplace_back();
  pending_dead_.emplace_back();
  return index;
}

TaskTruth MultiQueryScheduler::GlobalTaskTruth(const Task& task) const {
  auto it = global_owner_.find(task.id);
  CDB_CHECK_MSG(it != global_owner_.end(),
                "shared platform asked truth for an unregistered task");
  const auto& [session, local_task] = it->second;
  return sessions_[session]->TaskTruthFor(local_task);
}

std::string MultiQueryScheduler::DedupKey(size_t session,
                                          const Task& task) const {
  // Only real query tasks (single-choice, non-negative payload, with a
  // question) dedup across sessions; golden warm-up tasks and other private
  // traffic stay per-session.
  const bool dedupable = options_.dedup_tasks &&
                         task.type == TaskType::kSingleChoice &&
                         task.payload >= 0 && !task.question.empty();
  if (!dedupable) {
    return "s" + std::to_string(session) + "|" + std::to_string(task.id);
  }
  std::string key = "q|";
  key += task.question;
  for (const std::string& choice : task.choices) {
    key += '|';
    key += choice;
  }
  return key;
}

TaskId MultiQueryScheduler::ResolveGlobal(size_t session, const Task& task,
                                          bool* existed) {
  std::string key = DedupKey(session, task);
  auto [it, inserted] = key_to_global_.try_emplace(key, next_global_id_);
  TaskId g = it->second;
  if (inserted) {
    ++next_global_id_;
    global_owner_.emplace(g, std::make_pair(session, task));
  }
  if (existed != nullptr) *existed = !inserted;
  auto& subs = subscribers_[g];
  std::pair<size_t, TaskId> sub{session, task.id};
  if (std::find(subs.begin(), subs.end(), sub) == subs.end()) {
    subs.push_back(sub);
  }
  return g;
}

bool MultiQueryScheduler::SkipDeducedFanout(size_t session, TaskId global,
                                            TaskId local) {
  // A session that already deduced this edge's color from transitive closure
  // no longer needs the shared answers: delivering them anyway would either
  // be ignored or promote the edge back into the reconcile path one answer
  // at a time. The answers stay cached for other subscribers.
  if (!sessions_[session]->HoldsDeducedColorFor(local)) return false;
  if (deduced_fanout_counted_.insert({global, session}).second) {
    ++stats_.dedup_tasks_saved;
    Bump(metrics_.dedup_tasks_saved);
  }
  return true;
}

void MultiQueryScheduler::RouteLateAnswers() {
  for (const Answer& answer : platform_->TakeLateAnswers()) {
    answer_cache_[answer.task].push_back(answer);
    auto it = subscribers_.find(answer.task);
    if (it == subscribers_.end()) continue;
    for (const auto& [j, local] : it->second) {
      if (SkipDeducedFanout(j, answer.task, local)) continue;
      Answer translated = answer;
      translated.task = local;
      pending_late_[j].push_back(translated);
    }
  }
}

Result<std::vector<Answer>> MultiQueryScheduler::DirectPublish(
    size_t session, const std::vector<Task>& tasks) {
  std::vector<Task> remapped;
  remapped.reserve(tasks.size());
  for (const Task& task : tasks) {
    Task copy = task;
    copy.id = ResolveGlobal(session, task, nullptr);
    copy.batch_tag = static_cast<int>(session);
    remapped.push_back(std::move(copy));
  }
  int64_t granted = global_budget_.TryDebit(static_cast<int64_t>(remapped.size()));
  if (granted < static_cast<int64_t>(remapped.size())) {
    int64_t denied = static_cast<int64_t>(remapped.size()) - granted;
    stats_.budget_denied += denied;
    Bump(metrics_.budget_denied, denied);
    remapped.resize(static_cast<size_t>(granted));
  }
  if (remapped.empty()) return std::vector<Answer>();
  CDB_ASSIGN_OR_RETURN(std::vector<Answer> answers,
                       platform_->ExecuteRound(remapped, nullptr, nullptr));
  stats_.direct_tasks += static_cast<int64_t>(remapped.size());
  Bump(metrics_.direct_tasks, static_cast<int64_t>(remapped.size()));

  // This session gets its answers back directly; any other subscriber of a
  // shared task receives its copies out of band (its next late-answer drain
  // reconciles them).
  std::vector<Answer> own;
  for (const Answer& answer : answers) {
    answer_cache_[answer.task].push_back(answer);
    auto it = subscribers_.find(answer.task);
    if (it == subscribers_.end()) continue;
    for (const auto& [j, local] : it->second) {
      if (j != session && SkipDeducedFanout(j, answer.task, local)) continue;
      Answer translated = answer;
      translated.task = local;
      if (j == session) {
        own.push_back(std::move(translated));
      } else {
        pending_late_[j].push_back(std::move(translated));
      }
    }
  }
  return own;
}

Result<std::vector<ExecutionResult>> MultiQueryScheduler::RunAll() {
  CDB_CHECK_MSG(!ran_, "RunAll may only run once");
  CDB_CHECK_MSG(!sessions_.empty(), "no queries added");
  ran_ = true;

  while (true) {
    // Advance every session until it parks at kPublish or finishes.
    bool any_waiting = false;
    for (auto& session : sessions_) {
      while (!session->done() && !session->waiting_for_answers()) {
        CDB_ASSIGN_OR_RETURN(bool more, session->Step());
        if (!more) break;
      }
      any_waiting = any_waiting || session->waiting_for_answers();
    }
    if (!any_waiting) break;

    // Merge barrier: resolve every parked session's round against the dedup
    // table, the answer cache, and the global ledger.
    std::vector<SessionBatch> batches;
    std::vector<std::vector<Answer>> delivery(sessions_.size());
    std::set<TaskId> in_flight;  // Globals entering this merged round.
    for (size_t i = 0; i < sessions_.size(); ++i) {
      if (!sessions_[i]->waiting_for_answers()) continue;
      SessionBatch batch;
      batch.session = static_cast<int>(i);
      for (const Task& task : sessions_[i]->pending_tasks()) {
        ++stats_.tasks_requested;
        Bump(metrics_.tasks_requested);
        bool existed = false;
        TaskId g = ResolveGlobal(i, task, &existed);
        if (existed || in_flight.count(g) > 0) {
          // Someone already asked (or is asking) the same question: serve
          // cached answers now; in-flight answers fan out on arrival.
          auto cached = answer_cache_.find(g);
          if (cached != answer_cache_.end() && !cached->second.empty()) {
            ++stats_.cache_hits;
            Bump(metrics_.cache_hits);
            for (const Answer& answer : cached->second) {
              Answer translated = answer;
              translated.task = task.id;
              delivery[i].push_back(std::move(translated));
            }
          } else {
            ++stats_.dedup_hits;
            Bump(metrics_.dedup_hits);
          }
          sessions_[i]->RecordDedupSavings(1);
          continue;
        }
        if (!global_budget_.TrySpend(1)) {
          // Over budget: the ask is dropped; the session's Color phase falls
          // back to the similarity prior for this edge.
          ++stats_.budget_denied;
          Bump(metrics_.budget_denied);
          continue;
        }
        Task copy = task;
        copy.id = g;
        batch.tasks.push_back(std::move(copy));
        in_flight.insert(g);
      }
      batches.push_back(std::move(batch));
    }

    std::vector<Task> merged = MergeRoundBatches(batches);
    if (!merged.empty()) {
      const int64_t tick_begin = platform_->stats().ticks;
      WallTimer wall;
      CDB_ASSIGN_OR_RETURN(std::vector<Answer> answers,
                           platform_->ExecuteRound(merged, nullptr, nullptr));
      if (options_.tracer != nullptr) {
        options_.tracer->AddSpan("scheduler.merged_round", "scheduler",
                                 tick_begin, platform_->stats().ticks,
                                 wall.ElapsedMicros());
      }
      ++stats_.merged_rounds;
      Bump(metrics_.merged_rounds);
      stats_.tasks_published += static_cast<int64_t>(merged.size());
      Bump(metrics_.tasks_published, static_cast<int64_t>(merged.size()));
      for (const Answer& answer : answers) {
        answer_cache_[answer.task].push_back(answer);
        auto it = subscribers_.find(answer.task);
        if (it == subscribers_.end()) continue;
        for (const auto& [j, local] : it->second) {
          if (SkipDeducedFanout(j, answer.task, local)) continue;
          Answer translated = answer;
          translated.task = local;
          if (sessions_[j]->waiting_for_answers()) {
            delivery[j].push_back(std::move(translated));
          } else {
            // Subscriber from an earlier round (already past kPublish):
            // reconcile out of band like a late answer.
            pending_late_[j].push_back(std::move(translated));
          }
        }
      }
    }

    for (size_t i = 0; i < sessions_.size(); ++i) {
      if (sessions_[i]->waiting_for_answers()) {
        sessions_[i]->DeliverAnswers(delivery[i]);
      }
    }
  }

  std::vector<ExecutionResult> results;
  results.reserve(sessions_.size());
  for (auto& session : sessions_) {
    CDB_CHECK(session->done());
    results.push_back(session->TakeResult());
  }
  return results;
}

PlatformStats MultiQueryScheduler::platform_stats() const {
  return platform_->stats();
}

}  // namespace cdb
