// Multi-query execution against one shared crowd platform (Section 2.2: CDB
// as a system serving many requesters).
//
// MultiQueryScheduler steps N QuerySessions concurrently. Each scheduling
// round it advances every live session until it either finishes or parks at
// kPublish, then merges all parked sessions' pending tasks into one shared
// publish (MergeRoundBatches interleaves them so HITs mix queries), executes
// it, and fans the answers back. Three things happen at the merge barrier:
//
//  - Cross-query dedup: tasks with the same question (same tuple pair / same
//    fill cell) are asked once; every subscribed (session, local-task) pair
//    receives a copy of each answer. Answers are cached, so a later query
//    asking an already-answered question pays nothing — the transitive-reuse
//    idea of Wang et al. applied across queries.
//  - Shared batching: one platform round serves every ready session, so the
//    round count of the slowest query bounds the whole workload instead of
//    the sum of all queries' rounds (Marcus et al.'s shared HITs).
//  - Global budget: a BudgetLedger shared by all sessions caps the total
//    tasks published; asks denied by the ledger are dropped and the owning
//    session falls back to similarity-prior coloring for those edges.
//
// Golden warm-up tasks and Collect-phase retry reposts bypass the barrier
// (they are private to one session) but still go through the scheduler's
// channel, which owns the only other ExecuteRound call site — the
// `single-publish-path` lint rule keeps it that way.
#ifndef CDB_EXEC_SCHEDULER_H_
#define CDB_EXEC_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "exec/session.h"

namespace cdb {

struct MultiQueryOptions {
  // The shared market every session publishes into.
  PlatformOptions platform;
  // Cap on total tasks published across all sessions (merged rounds, golden
  // warm-up, and reposts alike); unset = unlimited.
  std::optional<int64_t> global_budget;
  // Ask identical single-choice tasks once across sessions.
  bool dedup_tasks = true;
  // Observability sinks (borrowed, may be null = disabled). Propagated into
  // the shared platform and every added session; the scheduler itself
  // mirrors MultiQueryStats under `scheduler.*` and emits one
  // `scheduler.merged_round` span per merge barrier.
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
};

struct MultiQueryStats {
  int64_t merged_rounds = 0;    // Shared platform rounds executed.
  int64_t tasks_requested = 0;  // Round tasks the sessions asked for.
  int64_t tasks_published = 0;  // Unique tasks actually published in merges.
  int64_t direct_tasks = 0;     // Golden warm-up + repost tasks published.
  int64_t dedup_hits = 0;       // Asks served by a same-round identical ask.
  int64_t cache_hits = 0;       // Asks served from an earlier round's answers.
  int64_t budget_denied = 0;    // Asks dropped by the global ledger.
  // Shared tasks whose answer fan-out was skipped because the subscriber
  // session had already deduced that edge's color (answer propagation):
  // counted once per (task, session), instead of double-charging the ledger
  // with an answer the session can no longer use.
  int64_t dedup_tasks_saved = 0;
};

// Thread affinity: driver-serial. The scheduler, its sessions, and the
// shared platform all run on the one driver thread that calls Run()/Step();
// no member is locked and none may be touched concurrently. The only
// cross-thread state it participates in is the shared BudgetLedger (its own
// capability, see cost/ledger.h) — spends go through the ledger's atomic
// TrySpend/TryDebit primitives, never through a remaining()/Exhausted()
// check followed by a spend.
class MultiQueryScheduler {
 public:
  explicit MultiQueryScheduler(const MultiQueryOptions& options);
  ~MultiQueryScheduler();
  MultiQueryScheduler(const MultiQueryScheduler&) = delete;
  MultiQueryScheduler& operator=(const MultiQueryScheduler&) = delete;

  // Registers a query; returns its index. All queries must be added before
  // RunAll(). Per-session options are honored (budget, retry, quality
  // control, ...) except platform/markets, which the shared platform
  // replaces.
  size_t AddQuery(const ResolvedQuery* query, const ExecutorOptions& options,
                  EdgeTruthFn truth);

  // Steps every session to completion, merging rounds at each barrier.
  // Results are indexed like AddQuery.
  Result<std::vector<ExecutionResult>> RunAll();

  const MultiQueryStats& stats() const { return stats_; }
  PlatformStats platform_stats() const;
  // The session for query `i` (e.g. to inspect its graph after RunAll).
  const QuerySession& session(size_t i) const { return *sessions_.at(i); }
  size_t num_sessions() const { return sessions_.size(); }

 private:
  class Channel;

  // Maps (session, local task) onto the shared id space, registering the
  // subscription; reuses the global id of an identical earlier ask.
  TaskId ResolveGlobal(size_t session, const Task& task, bool* existed);
  std::string DedupKey(size_t session, const Task& task) const;
  // Publishes session-private tasks (golden warm-up, reposts) immediately,
  // returning this session's translated answers; extra copies for other
  // subscribers land in their late queues.
  Result<std::vector<Answer>> DirectPublish(size_t session,
                                            const std::vector<Task>& tasks);
  // Drains the shared platform's late answers into per-session queues.
  void RouteLateAnswers();
  TaskTruth GlobalTaskTruth(const Task& task) const;
  // True (and counted, once per (global, session)) when fan-out of an answer
  // for global task `global` to session `session` should be skipped because
  // the session already deduced local edge `local`'s color.
  bool SkipDeducedFanout(size_t session, TaskId global, TaskId local);

  // Cached registry handles mirroring stats_ (null when metrics disabled).
  struct SchedulerMetrics {
    Counter* merged_rounds = nullptr;
    Counter* tasks_requested = nullptr;
    Counter* tasks_published = nullptr;
    Counter* direct_tasks = nullptr;
    Counter* dedup_hits = nullptr;
    Counter* cache_hits = nullptr;
    Counter* budget_denied = nullptr;
    Counter* dedup_tasks_saved = nullptr;
  };

  MultiQueryOptions options_;
  SchedulerMetrics metrics_;
  std::unique_ptr<CrowdPlatform> platform_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<QuerySession>> sessions_;
  BudgetLedger global_budget_;
  MultiQueryStats stats_;
  bool ran_ = false;

  TaskId next_global_id_ = 0;
  std::map<std::string, TaskId> key_to_global_;
  // Global id -> the first (session, task) that asked it; serves truth
  // lookups for the shared platform.
  std::map<TaskId, std::pair<size_t, Task>> global_owner_;
  // Global id -> (session, local id) pairs that want its answers.
  std::map<TaskId, std::vector<std::pair<size_t, TaskId>>> subscribers_;
  // Global id -> every answer seen so far (serves later duplicate asks).
  std::map<TaskId, std::vector<Answer>> answer_cache_;
  // Per-session queues of translated out-of-band answers / dead letters.
  std::vector<std::vector<Answer>> pending_late_;
  std::vector<std::vector<TaskId>> pending_dead_;
  // (global task, session) pairs already counted under dedup_tasks_saved, so
  // each redundant answer stream is a single saving, not one per answer.
  std::set<std::pair<TaskId, size_t>> deduced_fanout_counted_;
};

}  // namespace cdb

#endif  // CDB_EXEC_SCHEDULER_H_
