// Crowd-powered GROUP BY and ORDER BY (Section 4.2, Remark).
//
// The paper supports these by composition: run the crowd-based selections
// and joins first, then apply existing crowdsourced techniques on the result
// — entity-resolution clustering for grouping [Wang et al. '13, Chai et
// al. '16] and pairwise comparisons for sorting [Marcus et al. '11, Chen et
// al. '13]. This module implements both on top of the crowd platform:
//
//  - CrowdGroupBy: clusters a column's values with yes/no match tasks,
//    exploiting positive transitivity (matched clusters merge, so tasks are
//    saved) and similarity ordering (likely matches asked first).
//  - CrowdOrderBy: sorts values with pairwise "which is larger?" tasks using
//    a crowd-powered merge sort; each round batches independent comparisons.
#ifndef CDB_EXEC_CROWD_GROUP_SORT_H_
#define CDB_EXEC_CROWD_GROUP_SORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "crowd/platform.h"
#include "similarity/similarity.h"

namespace cdb {

// Ground truth for group tasks: whether two values denote the same group.
using GroupTruthFn = std::function<bool(size_t, size_t)>;
// Ground truth for sort tasks: whether values[a] precedes values[b].
using OrderTruthFn = std::function<bool(size_t, size_t)>;

struct CrowdGroupOptions {
  PlatformOptions platform;
  SimilarityFunction sim_fn = SimilarityFunction::kQGramJaccard;
  // Pairs below this similarity are assumed non-matching without asking
  // (the epsilon of Section 4.1 applied to grouping).
  double epsilon = 0.3;
};

struct CrowdGroupResult {
  // group_of[i] = dense group id of values[i].
  std::vector<int> group_of;
  int num_groups = 0;
  int64_t tasks_asked = 0;
  int64_t rounds = 0;
};

// Groups `values` with crowd match tasks. `truth` answers a perfect worker's
// "same group?" question; real workers err per their accuracy.
CrowdGroupResult CrowdGroupBy(const std::vector<std::string>& values,
                              const CrowdGroupOptions& options,
                              const GroupTruthFn& truth);

struct CrowdSortOptions {
  PlatformOptions platform;
};

struct CrowdSortResult {
  // Indexes into the input, in crowd-judged ascending order.
  std::vector<size_t> order;
  int64_t tasks_asked = 0;
  int64_t rounds = 0;
};

// Sorts indexes [0, n) with crowd pairwise comparisons (merge sort; each
// merge level's independent comparisons are one crowdsourcing round batch).
CrowdSortResult CrowdOrderBy(size_t n, const CrowdSortOptions& options,
                             const OrderTruthFn& truth);

}  // namespace cdb

#endif  // CDB_EXEC_CROWD_GROUP_SORT_H_
