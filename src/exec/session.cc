#include "exec/session.h"

#include <algorithm>
#include <limits>
#include <tuple>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "cost/budget.h"
#include "cost/expectation.h"
#include "cost/sampling.h"

namespace cdb {
namespace {

// Registry mirror helper: null counter (metrics disabled) = no-op.
inline void Bump(Counter* counter, int64_t delta = 1) {
  if (counter != nullptr && delta != 0) counter->Increment(delta);
}

// Marker payload for golden warm-up tasks: strictly negative; the known
// truth is parity of the id.
int GoldenTruthChoice(int64_t payload) {
  return static_cast<int>((-payload) % 2);
}

}  // namespace

const char* SessionPhaseName(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::kBuildGraph: return "build_graph";
    case SessionPhase::kSelectTasks: return "select_tasks";
    case SessionPhase::kBatchRound: return "batch_round";
    case SessionPhase::kPublish: return "publish";
    case SessionPhase::kCollect: return "collect";
    case SessionPhase::kInfer: return "infer";
    case SessionPhase::kColor: return "color";
    case SessionPhase::kPrune: return "prune";
    case SessionPhase::kDone: return "done";
  }
  return "unknown";
}

PlatformPublisher::PlatformPublisher(const PlatformOptions& platform,
                                     const std::vector<PlatformOptions>& markets,
                                     TruthProvider truth) {
  if (markets.empty()) {
    single_ = std::make_unique<CrowdPlatform>(platform, std::move(truth));
  } else {
    multi_ = std::make_unique<MultiMarket>(markets, std::move(truth));
  }
}

Result<std::vector<Answer>> PlatformPublisher::Publish(
    const std::vector<Task>& tasks, const AssignmentPolicy* policy,
    const AnswerObserver* observer) {
  return single_ ? single_->ExecuteRound(tasks, policy, observer)
                 : multi_->ExecuteRound(tasks, policy, observer);
}

std::vector<Answer> PlatformPublisher::TakeLateAnswers() {
  return single_ ? single_->TakeLateAnswers() : multi_->TakeLateAnswers();
}

std::vector<TaskId> PlatformPublisher::TakeDeadLetters() {
  return single_ ? single_->TakeDeadLetters() : multi_->TakeDeadLetters();
}

void PlatformPublisher::AdvanceTicks(int64_t ticks) {
  if (single_) {
    single_->AdvanceTicks(ticks);
  } else {
    multi_->AdvanceTicks(ticks);
  }
}

int PlatformPublisher::effective_redundancy() const {
  if (single_) {
    return std::min(single_->options().redundancy,
                    static_cast<int>(single_->workers().size()));
  }
  int lowest = std::numeric_limits<int>::max();
  for (const CrowdPlatform& platform : multi_->platforms()) {
    lowest = std::min(lowest,
                      std::min(platform.options().redundancy,
                               static_cast<int>(platform.workers().size())));
  }
  return lowest;
}

PlatformStats PlatformPublisher::stats() const {
  return single_ ? single_->stats() : multi_->CombinedStats();
}

QuerySession::QuerySession(const ResolvedQuery* query,
                           const ExecutorOptions& options, EdgeTruthFn truth)
    : QuerySession(query, options, std::move(truth), nullptr) {}

QuerySession::QuerySession(const ResolvedQuery* query,
                           const ExecutorOptions& options, EdgeTruthFn truth,
                           TaskPublisher* publisher)
    : query_(query),
      options_(options),
      truth_(std::move(truth)),
      assigner_(&posteriors_, &worker_quality_, /*num_choices=*/2),
      budget_(options.budget) {
  // Observability propagates downward: the owned platform/markets mirror
  // into the same registry and tracer the session was handed.
  options_.platform.metrics = options_.metrics;
  options_.platform.tracer = options_.tracer;
  for (PlatformOptions& market : options_.markets) {
    market.metrics = options_.metrics;
    market.tracer = options_.tracer;
  }
  if (options_.metrics != nullptr) {
    MetricsRegistry& reg = *options_.metrics;
    for (int p = 0; p < kNumSessionPhases; ++p) {
      std::string prefix = std::string("session.phase.") +
                           SessionPhaseName(static_cast<SessionPhase>(p));
      metrics_.phase_steps[static_cast<size_t>(p)] =
          &reg.counter(prefix + ".steps");
      metrics_.phase_tasks[static_cast<size_t>(p)] =
          &reg.counter(prefix + ".tasks");
      metrics_.phase_answers[static_cast<size_t>(p)] =
          &reg.counter(prefix + ".answers");
    }
    metrics_.rounds = &reg.counter("session.rounds");
    metrics_.reposted_tasks = &reg.counter("session.retry.reposted_tasks");
    metrics_.retry_waves = &reg.counter("session.retry.waves");
    metrics_.backoff_ticks = &reg.counter("session.retry.backoff_ticks");
    metrics_.starved_tasks = &reg.counter("session.retry.starved_tasks");
    metrics_.late_answers = &reg.counter("session.late_answers");
    metrics_.recolored_edges = &reg.counter("session.recolored_edges");
    metrics_.fallback_colored = &reg.counter("session.fallback_colored");
    metrics_.dedup_tasks_saved = &reg.counter("session.dedup_tasks_saved");
    metrics_.deduced_edges = &reg.counter("session.deduced_edges");
    metrics_.deduction_invalidations =
        &reg.counter("session.deduction_invalidations");
    metrics_.round_size = &reg.histogram("session.round_size");
  }
  policy_ = assigner_.AsPolicy();
  observer_ = [this](const Answer& answer) {
    auto it = posteriors_.find(answer.task);
    if (it == posteriors_.end()) return;
    double q = 0.7;
    auto wq = worker_quality_.find(answer.worker);
    if (wq != worker_quality_.end()) q = wq->second;
    it->second = PosteriorAfterAnswer(it->second, q, answer.choice);
  };
  if (publisher != nullptr) {
    publisher_ = publisher;
    external_publish_ = true;
  } else {
    // TaskId == EdgeId by construction; negative payloads mark golden
    // warm-up tasks.
    owned_publisher_ = std::make_unique<PlatformPublisher>(
        options_.platform, options_.markets,
        [this](const Task& task) { return TaskTruthFor(task); });
    publisher_ = owned_publisher_.get();
  }
}

QuerySession::~QuerySession() = default;

TaskTruth QuerySession::TaskTruthFor(const Task& task) const {
  TaskTruth truth;
  if (task.payload < 0) {
    truth.correct_choice = GoldenTruthChoice(task.payload);
  } else {
    truth.correct_choice =
        truth_(graph_, static_cast<EdgeId>(task.payload)) ? 0 : 1;
  }
  return truth;
}

bool QuerySession::waiting_for_answers() const {
  return external_publish_ && phase_ == SessionPhase::kPublish;
}

Result<bool> QuerySession::Step() {
  CDB_CHECK_MSG(!waiting_for_answers(),
                "Step() while the scheduler owes this session a round of "
                "answers; call DeliverAnswers() instead");
  if (phase_ == SessionPhase::kDone) return false;
  const SessionPhase entry = phase_;
  const size_t ei = static_cast<size_t>(entry);
  const PhaseCounters before = result_.stats.phases[ei];
  const int64_t tick_begin =
      options_.tracer != nullptr ? publisher_->stats().ticks : 0;
  WallTimer wall;
  ++Counters().steps;
  Result<bool> more = DispatchPhase(entry);
  // Everything the phase body accounted (including reposts and late-answer
  // reconciliation inside it) lands on the entry phase; mirror the delta.
  const PhaseCounters& after = result_.stats.phases[ei];
  Bump(metrics_.phase_steps[ei], after.steps - before.steps);
  Bump(metrics_.phase_tasks[ei], after.tasks - before.tasks);
  Bump(metrics_.phase_answers[ei], after.answers - before.answers);
  if (options_.tracer != nullptr) {
    options_.tracer->AddSpan(
        std::string("session.") + SessionPhaseName(entry), "session",
        tick_begin, publisher_->stats().ticks, wall.ElapsedMicros());
  }
  return more;
}

Result<bool> QuerySession::DispatchPhase(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::kBuildGraph: return StepBuildGraph();
    case SessionPhase::kSelectTasks: return StepSelectTasks();
    case SessionPhase::kBatchRound: return StepBatchRound();
    case SessionPhase::kPublish: return StepPublish();
    case SessionPhase::kCollect: return StepCollect();
    case SessionPhase::kInfer: return StepInfer();
    case SessionPhase::kColor: return StepColor();
    case SessionPhase::kPrune: return StepPrune();
    case SessionPhase::kDone: return false;
  }
  return Status::Internal("unreachable session phase");
}

Result<ExecutionResult> QuerySession::RunToCompletion() {
  CDB_CHECK_MSG(!external_publish_,
                "RunToCompletion drives standalone sessions only; "
                "scheduler-mode sessions are stepped by MultiQueryScheduler");
  while (true) {
    CDB_ASSIGN_OR_RETURN(bool more, Step());
    if (!more) break;
  }
  return TakeResult();
}

ExecutionResult QuerySession::TakeResult() {
  CDB_CHECK(done());
  return std::move(result_);
}

void QuerySession::RecordDedupSavings(int64_t tasks_saved) {
  result_.stats.dedup_tasks_saved += tasks_saved;
  Bump(metrics_.dedup_tasks_saved, tasks_saved);
}

Result<bool> QuerySession::StepBuildGraph() {
  // Route the session's metrics registry into the sim-join funnel counters
  // (simjoin.*) unless the caller already wired a sink of its own.
  GraphOptions graph_options = options_.graph;
  if (graph_options.sim_metrics == nullptr) {
    graph_options.sim_metrics = options_.metrics;
  }
  CDB_ASSIGN_OR_RETURN(graph_, QueryGraph::Build(*query_, graph_options));
  pruner_.emplace(&graph_);
  edge_provenance_.assign(static_cast<size_t>(graph_.num_edges()),
                          static_cast<uint8_t>(EdgeProvenance::kNone));
  if (options_.propagation.enabled) deduction_.emplace(&graph_);

  // Golden warm-up (Appendix E): estimate worker qualities from known-truth
  // tasks before any query task is assigned.
  if (options_.quality_control && options_.golden_tasks > 0) {
    std::vector<Task> golden;
    std::map<TaskId, int> golden_truths;
    for (int k = 0; k < options_.golden_tasks; ++k) {
      Task task;
      task.id = -(k + 1);
      task.payload = -(k + 1);
      task.type = TaskType::kSingleChoice;
      task.question = "golden warm-up";
      task.choices = {"yes", "no"};
      golden_truths[task.id] = GoldenTruthChoice(task.payload);
      golden.push_back(std::move(task));
    }
    std::vector<ChoiceObservation> golden_observations;
    CDB_ASSIGN_OR_RETURN(std::vector<Answer> golden_answers,
                         publisher_->Publish(golden, nullptr, nullptr));
    Counters().tasks += static_cast<int64_t>(golden.size());
    Counters().answers += static_cast<int64_t>(golden_answers.size());
    answers_received_ += static_cast<int64_t>(golden_answers.size());
    for (const Answer& answer : golden_answers) {
      golden_observations.push_back(
          ChoiceObservation{answer.task, answer.worker, answer.choice});
    }
    worker_quality_ = QualityFromGoldenTasks(golden_observations, golden_truths);
  }

  // Sampling order is computed once (the paper fixes the sample-derived order
  // and consumes it with pruning).
  if (!options_.budget && options_.cost_method == CostMethod::kSampling) {
    WallTimer timer;
    SamplingOptions sampling{options_.sampling_samples,
                             options_.platform.seed ^ 0x5eedULL,
                             options_.num_threads,
                             options_.sampling_legacy_selection};
    // The color-independent selection skeleton is built once per graph and
    // shared read-only across the sampler's workers (and rebuilt after a
    // snapshot restore — it is transient state).
    if (!sampling.legacy_selection) {
      structure_cache_.emplace(StructureCache::Build(graph_));
    }
    sampling_order_ = SampleMinCutOrder(
        graph_, sampling, structure_cache_ ? &*structure_cache_ : nullptr);
    result_.stats.selection_ms += timer.ElapsedMs();
  }

  phase_ = SessionPhase::kSelectTasks;
  return true;
}

Result<bool> QuerySession::StepSelectTasks() {
  ReconcileLate();

  // Cost control: order the tasks still worth asking.
  WallTimer timer;
  ordered_.clear();
  if (options_.budget) {
    ordered_ = BudgetNextBatch(graph_);
  } else if (options_.cost_method == CostMethod::kExpectation) {
    for (const ScoredEdge& se : ExpectationOrder(graph_, *pruner_)) {
      ordered_.push_back(se.edge);
    }
  } else {
    for (EdgeId e : sampling_order_) {
      if (graph_.edge(e).color == EdgeColor::kUnknown && pruner_->EdgeValid(e)) {
        ordered_.push_back(e);
      }
    }
  }
  // Deduction-aware ordering hook: the base cost-control order breaks ties;
  // asks that stand to resolve the most other edges move to the front.
  if (options_.propagation.enabled && options_.propagation.expected_yield_order) {
    ReorderByDeductionYield();
  }
  result_.stats.selection_ms += timer.ElapsedMs();

  if (ordered_.empty()) return Finish();
  phase_ = SessionPhase::kBatchRound;
  return true;
}

Result<bool> QuerySession::StepBatchRound() {
  // Latency control: pick this round's non-conflicting batch; in budget mode
  // the whole candidate batch is taken but the ledger caps the spend up
  // front, so requester-side reposts draw from the same budget (every
  // published task is a spend).
  WallTimer timer;
  round_edges_.clear();
  if (options_.budget) {
    round_edges_ = ordered_;
    int64_t granted = budget_.TryDebit(static_cast<int64_t>(round_edges_.size()));
    round_edges_.resize(static_cast<size_t>(granted));
  } else if (options_.round_limit &&
             result_.stats.rounds >=
                 static_cast<int64_t>(*options_.round_limit) - 1) {
    // Last permitted round: flush everything that is left.
    round_edges_ = ordered_;
  } else {
    round_edges_ =
        SelectParallelRound(graph_, *pruner_, ordered_, options_.latency_mode,
                            options_.greedy_round_fraction);
  }
  result_.stats.selection_ms += timer.ElapsedMs();
  if (round_edges_.empty()) return Finish();

  round_tasks_ = MakeTasks(round_edges_);
  if (options_.quality_control) {
    for (const Task& task : round_tasks_) {
      double w = graph_.edge(static_cast<EdgeId>(task.payload)).weight;
      posteriors_[task.id] = {w, 1.0 - w};  // Similarity as the prior.
    }
  }
  phase_ = SessionPhase::kPublish;
  return true;
}

Result<bool> QuerySession::StepPublish() {
  const AssignmentPolicy* round_policy =
      options_.quality_control ? &policy_ : nullptr;
  const AnswerObserver* round_observer =
      options_.quality_control ? &observer_ : nullptr;
  CDB_ASSIGN_OR_RETURN(
      std::vector<Answer> answers,
      publisher_->Publish(round_tasks_, round_policy, round_observer));
  Counters().tasks += static_cast<int64_t>(round_tasks_.size());
  Counters().answers += static_cast<int64_t>(answers.size());
  answers_received_ += static_cast<int64_t>(answers.size());
  Absorb(answers);
  phase_ = SessionPhase::kCollect;
  return true;
}

void QuerySession::DeliverAnswers(const std::vector<Answer>& answers) {
  CDB_CHECK_MSG(waiting_for_answers(),
                "DeliverAnswers on a session that is not parked at kPublish");
  const size_t ei = static_cast<size_t>(SessionPhase::kPublish);
  ++Counters().steps;
  Counters().tasks += static_cast<int64_t>(round_tasks_.size());
  Counters().answers += static_cast<int64_t>(answers.size());
  Bump(metrics_.phase_steps[ei]);
  Bump(metrics_.phase_tasks[ei], static_cast<int64_t>(round_tasks_.size()));
  Bump(metrics_.phase_answers[ei], static_cast<int64_t>(answers.size()));
  answers_received_ += static_cast<int64_t>(answers.size());
  if (options_.quality_control) {
    // The shared platform assigns round-robin (the id spaces differ), so the
    // posterior updates happen on delivery instead of per-arrival.
    for (const Answer& answer : answers) observer_(answer);
  }
  Absorb(answers);
  phase_ = SessionPhase::kCollect;
}

Result<bool> QuerySession::StepCollect() {
  // Requester-side timeout/repost: top up tasks the platform returned short
  // (abandoned, expired, dead-lettered) with capped exponential backoff.
  // Each repost publishes only the shortfall. Reposts go straight to the
  // publisher even in scheduler mode: a shortfall is private to the session
  // that observed it.
  const AssignmentPolicy* round_policy =
      !external_publish_ && options_.quality_control ? &policy_ : nullptr;
  const AnswerObserver* round_observer =
      !external_publish_ && options_.quality_control ? &observer_ : nullptr;
  ExecutionStats& stats = result_.stats;
  if (options_.retry.enabled) {
    const int effective_redundancy = publisher_->effective_redundancy();
    for (int attempt = 1; attempt <= options_.retry.max_reposts; ++attempt) {
      (void)publisher_->TakeDeadLetters();  // Shortfall recomputed below.
      std::vector<Task> reposts;
      for (const Task& task : round_tasks_) {
        auto it = stats.unique_answers_per_task.find(task.id);
        int64_t have = it == stats.unique_answers_per_task.end() ? 0
                                                                 : it->second;
        if (have >= effective_redundancy) continue;
        Task repost = task;
        repost.redundancy_override =
            static_cast<int>(effective_redundancy - have);
        reposts.push_back(std::move(repost));
      }
      if (reposts.empty()) break;
      if (options_.budget) {
        int64_t granted = budget_.TryDebit(static_cast<int64_t>(reposts.size()));
        if (granted == 0) break;  // Flush partial: no budget to retry.
        reposts.resize(static_cast<size_t>(granted));
      }
      int64_t backoff = std::min(
          options_.retry.backoff_base_ticks << (attempt - 1),
          options_.retry.backoff_max_ticks);
      publisher_->AdvanceTicks(backoff);
      Bump(metrics_.retry_waves);
      Bump(metrics_.backoff_ticks, backoff);
      CDB_ASSIGN_OR_RETURN(
          std::vector<Answer> more,
          publisher_->Publish(reposts, round_policy, round_observer));
      stats.reposted_tasks += static_cast<int64_t>(reposts.size());
      Bump(metrics_.reposted_tasks, static_cast<int64_t>(reposts.size()));
      Counters().tasks += static_cast<int64_t>(reposts.size());
      Counters().answers += static_cast<int64_t>(more.size());
      answers_received_ += static_cast<int64_t>(more.size());
      Absorb(more);
    }
    for (const Task& task : round_tasks_) {
      auto it = stats.unique_answers_per_task.find(task.id);
      int64_t have = it == stats.unique_answers_per_task.end() ? 0
                                                               : it->second;
      if (have < effective_redundancy) {
        stats.starved_task_ids.push_back(task.id);
        Bump(metrics_.starved_tasks);
      }
    }
  }
  phase_ = SessionPhase::kInfer;
  return true;
}

Result<bool> QuerySession::StepInfer() {
  inference_ = InferAll();
  phase_ = SessionPhase::kColor;
  return true;
}

Result<bool> QuerySession::StepColor() {
  const bool propagate = options_.propagation.enabled;
  // Crowd-evidenced edges first: their colors are the facts the deduction
  // domains fold in before anything is deduced from them.
  std::vector<EdgeId> answerless;
  for (EdgeId e : round_edges_) {
    int truth_choice = inference_.Truth(e);
    if (propagate && truth_choice < 0) {
      answerless.push_back(e);
      continue;
    }
    EdgeColor color;
    EdgeProvenance provenance;
    if (truth_choice >= 0) {
      color = truth_choice == 0 ? EdgeColor::kBlue : EdgeColor::kRed;
      provenance = EdgeProvenance::kAsked;
    } else {
      // Graceful degradation: no answers ever arrived for this edge (task
      // starved or budget exhausted mid-round). Color by the
      // majority-so-far — with zero observations that is the similarity
      // prior — instead of aborting the query.
      ++result_.stats.fallback_colored;
      Bump(metrics_.fallback_colored);
      color = graph_.edge(e).weight >= 0.5 ? EdgeColor::kBlue
                                           : EdgeColor::kRed;
      provenance = EdgeProvenance::kFallback;
    }
    graph_.SetColor(e, color);
    edge_provenance_[static_cast<size_t>(e)] = static_cast<uint8_t>(provenance);
    if (propagate) deduction_->Observe(e, color);
  }
  // Answerless round edges (starved, budget-denied, dedup-dropped): this
  // round's answers may already imply their color, which beats the
  // similarity-prior fallback. A deduced color keeps kDeduced provenance —
  // the edge was published, so a late answer for it can still arrive and
  // promote it to crowd evidence (ReconcileLate).
  for (EdgeId e : answerless) {
    EdgeColor color = deduction_->Deduce(e);
    EdgeProvenance provenance;
    if (color != EdgeColor::kUnknown) {
      provenance = EdgeProvenance::kDeduced;
      ++result_.stats.deduced_edges;
      Bump(metrics_.deduced_edges);
    } else {
      ++result_.stats.fallback_colored;
      Bump(metrics_.fallback_colored);
      color = graph_.edge(e).weight >= 0.5 ? EdgeColor::kBlue : EdgeColor::kRed;
      provenance = EdgeProvenance::kFallback;
    }
    graph_.SetColor(e, color);
    edge_provenance_[static_cast<size_t>(e)] = static_cast<uint8_t>(provenance);
  }
  if (propagate) PropagateDeductions();
  result_.stats.tasks_asked += static_cast<int64_t>(round_edges_.size());
  result_.stats.round_sizes.push_back(static_cast<int64_t>(round_edges_.size()));
  ++result_.stats.rounds;
  Bump(metrics_.rounds);
  if (metrics_.round_size != nullptr) {
    metrics_.round_size->Observe(static_cast<int64_t>(round_edges_.size()));
  }
  phase_ = SessionPhase::kPrune;
  return true;
}

Result<bool> QuerySession::StepPrune() {
  pruner_->Recompute();
  if (budget_.Exhausted()) return Finish();
  if (options_.round_limit &&
      result_.stats.rounds >= static_cast<int64_t>(*options_.round_limit)) {
    return Finish();
  }
  phase_ = SessionPhase::kSelectTasks;
  return true;
}

Result<bool> QuerySession::Finish() {
  // Fold in any straggler answers still in flight after the last round.
  ReconcileLate();
  // A terminal invalidate-and-rederive can leave edges uncolored (their
  // deduction's premise flipped) with no further round to re-ask them. In
  // unbounded runs the propagation-off executor terminates with every valid
  // edge colored; keep that invariant by closing the stragglers with the
  // similarity-prior fallback. Bounded runs (budget / round limit) may
  // legitimately end partially colored either way.
  if (options_.propagation.enabled && !options_.budget &&
      !options_.round_limit) {
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      if (!graph_.edge_is_crowd(e) ||
          graph_.edge_color(e) != EdgeColor::kUnknown ||
          !pruner_->EdgeValid(e)) {
        continue;
      }
      ++result_.stats.fallback_colored;
      Bump(metrics_.fallback_colored);
      graph_.SetColor(e, graph_.edge(e).weight >= 0.5 ? EdgeColor::kBlue
                                                      : EdgeColor::kRed);
      edge_provenance_[static_cast<size_t>(e)] =
          static_cast<uint8_t>(EdgeProvenance::kFallback);
    }
  }
  ExecutionStats& stats = result_.stats;
  std::sort(stats.starved_task_ids.begin(), stats.starved_task_ids.end());
  stats.starved_task_ids.erase(
      std::unique(stats.starved_task_ids.begin(), stats.starved_task_ids.end()),
      stats.starved_task_ids.end());

  stats.platform = publisher_->stats();
  // In scheduler mode the publisher's stats cover every co-scheduled
  // session; this session's own delivery count is tracked separately.
  stats.worker_answers =
      external_publish_ ? answers_received_ : stats.platform.answers_collected;
  stats.hits_published = stats.platform.hits_published;
  stats.dollars_spent = stats.platform.dollars_spent();
  result_.answers = AssignmentsToAnswers(graph_, FindAnswers(graph_));
  phase_ = SessionPhase::kDone;
  return false;
}

int64_t QuerySession::Absorb(const std::vector<Answer>& batch) {
  int64_t added = 0;
  for (const Answer& answer : batch) {
    if (!seen_observations_.insert({answer.task, answer.worker}).second) {
      continue;
    }
    all_observations_.push_back(
        ChoiceObservation{answer.task, answer.worker, answer.choice});
    ++result_.stats.unique_answers_per_task[answer.task];
    ++added;
  }
  return added;
}

InferenceResult QuerySession::InferAll() {
  InferenceResult inference;
  if (options_.quality_control) {
    EmOptions em;
    em.num_choices = 2;
    em.quality_priors = worker_quality_;
    em.num_threads = options_.num_threads;
    em.metrics = options_.metrics;
    inference = InferSingleChoiceEm(all_observations_, em);
    worker_quality_ = inference.worker_quality;
  } else {
    inference = InferSingleChoiceMajority(all_observations_, 2);
  }
  return inference;
}

void QuerySession::ReconcileLate() {
  // Late-answer reconciliation: answers that arrived after their lease
  // expired (or their task was resolved) still carry signal. Fold them into
  // the observation set, re-infer, and flip any already-colored edge whose
  // majority/EM truth changed.
  std::vector<Answer> late = publisher_->TakeLateAnswers();
  if (late.empty()) return;
  result_.stats.late_answers += static_cast<int64_t>(late.size());
  Bump(metrics_.late_answers, static_cast<int64_t>(late.size()));
  Counters().answers += static_cast<int64_t>(late.size());
  answers_received_ += static_cast<int64_t>(late.size());
  if (Absorb(late) == 0) return;
  InferenceResult inference = InferAll();
  bool flipped = false;
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    const GraphEdge& edge = graph_.edge(e);
    // Reconciliation flips evidence on edges the crowd already colored —
    // nothing else. A kUnknown edge here was pruned away before it was ever
    // asked (or starved with no fallback); a late answer for it must not
    // resurrect it, or the pruner's frontier and the per-phase counters
    // desync. Non-crowd edges are colored from birth and carry no crowd
    // evidence to reconcile.
    if (!edge.is_crowd || edge.color == EdgeColor::kUnknown) continue;
    int truth_choice = inference.Truth(e);
    if (truth_choice < 0) continue;
    EdgeColor want = truth_choice == 0 ? EdgeColor::kBlue : EdgeColor::kRed;
    // Crowd evidence arrived for a color that had none: the deduced (or
    // prior-guessed) color is now backed — or contradicted — by real
    // answers. Either way the edge becomes crowd-evidenced.
    if (edge_provenance_[static_cast<size_t>(e)] !=
        static_cast<uint8_t>(EdgeProvenance::kAsked)) {
      edge_provenance_[static_cast<size_t>(e)] =
          static_cast<uint8_t>(EdgeProvenance::kAsked);
      if (edge.color == want) continue;
    }
    if (graph_.edge(e).color != want) {
      graph_.RecolorEdge(e, want);
      ++result_.stats.recolored_edges;
      Bump(metrics_.recolored_edges);
      flipped = true;
    }
  }
  if (flipped) {
    // Every deduced color is a theorem over the crowd-evidenced ones; a flip
    // withdraws a premise, so the whole closure is invalidated and
    // re-derived rather than patched edge by edge.
    if (options_.propagation.enabled) RebuildDeductions();
    pruner_->Recompute();
  }
}

bool QuerySession::HoldsDeducedColorFor(TaskId task) const {
  if (task < 0 || static_cast<size_t>(task) >= edge_provenance_.size()) {
    return false;
  }
  return edge_provenance_[static_cast<size_t>(task)] ==
         static_cast<uint8_t>(EdgeProvenance::kDeduced);
}

void QuerySession::PropagateDeductions() {
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    if (!graph_.edge_is_crowd(e) ||
        graph_.edge_color(e) != EdgeColor::kUnknown) {
      continue;
    }
    EdgeColor color = deduction_->Deduce(e);
    if (color == EdgeColor::kUnknown) continue;
    graph_.SetColor(e, color);
    edge_provenance_[static_cast<size_t>(e)] =
        static_cast<uint8_t>(EdgeProvenance::kDeduced);
    ++result_.stats.deduced_edges;
    Bump(metrics_.deduced_edges);
  }
}

void QuerySession::RebuildDeductions() {
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    if (edge_provenance_[static_cast<size_t>(e)] !=
        static_cast<uint8_t>(EdgeProvenance::kDeduced)) {
      continue;
    }
    graph_.UncolorEdge(e);
    edge_provenance_[static_cast<size_t>(e)] =
        static_cast<uint8_t>(EdgeProvenance::kNone);
    ++result_.stats.deduction_invalidations;
    Bump(metrics_.deduction_invalidations);
  }
  deduction_->Reset();
  // Ascending re-observation rebuilds the same partition and fact set as any
  // other order would (both are order-independent in the observed set).
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    if (edge_provenance_[static_cast<size_t>(e)] ==
        static_cast<uint8_t>(EdgeProvenance::kAsked)) {
      deduction_->Observe(e, graph_.edge_color(e));
    }
  }
  PropagateDeductions();
}

void QuerySession::ReorderByDeductionYield() {
  if (ordered_.size() < 2) return;
  // yield(e) = the number of still-askable edges between e's endpoint
  // clusters, e included: any answer for e resolves them all (a blue answer
  // merges the clusters and transitivity colors the rest blue; a red answer
  // records the non-match fact and anti-transitivity colors them red).
  // A duplicate — a second edge of a cluster pair that already has an
  // earlier ask in the order — has an expected yield of ~0: its pair's
  // representative resolves it by transitivity before its turn comes. So the
  // re-rank demotes duplicates behind every representative and otherwise
  // preserves the cost-control order (which already minimizes expected asks
  // per edge); the representative of each pair carries the pair's whole
  // yield. By the time the batcher reaches the deferred duplicates, their
  // pair's answer has usually arrived and deduction colors them for free.
  std::set<std::tuple<int, int32_t, int32_t>> represented;
  std::vector<EdgeId> reordered;
  reordered.reserve(ordered_.size());
  std::vector<EdgeId> deferred;
  for (EdgeId e : ordered_) {
    auto [ra, rb] = deduction_->ClusterPair(e);
    if (represented.insert({graph_.edge_pred(e), ra, rb}).second) {
      reordered.push_back(e);
    } else {
      deferred.push_back(e);
    }
  }
  reordered.insert(reordered.end(), deferred.begin(), deferred.end());
  ordered_.swap(reordered);
}

std::string QuerySession::EdgeValueString(VertexId v, int pred) const {
  const Vertex& vertex = graph_.vertex(v);
  if (vertex.rel < graph_.num_base_relations()) {
    const Table* table = query_->tables[vertex.rel];
    const PredicateInfo& info = graph_.predicate(pred);
    size_t col;
    if (pred < static_cast<int>(query_->joins.size())) {
      const ResolvedJoin& join = query_->joins[pred];
      col = info.left_rel == vertex.rel ? join.left_col : join.right_col;
    } else {
      col = query_->selections[pred - query_->joins.size()].col;
    }
    const Value& cell =
        table->row(static_cast<size_t>(vertex.row))[col];
    return cell.is_missing() ? std::string() : cell.ToString();
  }
  // Selection pseudo-vertex: the constant.
  size_t sel = static_cast<size_t>(vertex.rel - graph_.num_base_relations());
  return query_->selections[sel].value;
}

std::vector<Task> QuerySession::MakeTasks(const std::vector<EdgeId>& edges) const {
  std::vector<Task> tasks;
  tasks.reserve(edges.size());
  for (EdgeId e : edges) {
    const GraphEdge& edge = graph_.edge(e);
    tasks.push_back(MakeEdgeTask(/*id=*/e, /*edge=*/e,
                                 EdgeValueString(edge.u, edge.pred),
                                 EdgeValueString(edge.v, edge.pred)));
  }
  return tasks;
}

std::vector<QueryAnswer> AssignmentsToAnswers(const QueryGraph& graph,
                                              const std::vector<Assignment>& as) {
  std::vector<QueryAnswer> answers;
  answers.reserve(as.size());
  for (const Assignment& assignment : as) {
    QueryAnswer answer;
    answer.rows.reserve(graph.num_base_relations());
    for (int rel = 0; rel < graph.num_base_relations(); ++rel) {
      answer.rows.push_back(graph.vertex(assignment[rel]).row);
    }
    answers.push_back(std::move(answer));
  }
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

}  // namespace cdb
