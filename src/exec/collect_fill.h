// Crowd-powered collection semantics (Section 3, Appendix A.1; evaluated in
// Section 6.3.2).
//
// COLLECT gathers new tuples for a CROWD table under the open-world
// assumption. CDB's autocompletion interface shows workers the values other
// workers already contributed, which (a) canonicalizes surface forms and (b)
// steers workers away from duplicates — the Deco baseline lacks both, so its
// workers frequently resubmit already-collected entities and waste budget.
//
// FILL asks the crowd for missing attribute values. CDB stops early when the
// first `agree_needed` answers already agree (high pairwise similarity); the
// baseline always collects the full redundancy.
#ifndef CDB_EXEC_COLLECT_FILL_H_
#define CDB_EXEC_COLLECT_FILL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "similarity/similarity.h"
#include "storage/table.h"

namespace cdb {

// The open world a COLLECT query draws from: entities with canonical names,
// alternative surface forms, and a popularity skew (workers contribute
// popular entities more often).
struct CollectUniverse {
  struct Entity {
    std::string canonical;
    std::vector<std::string> variants;  // Non-canonical surface forms.
  };
  std::vector<Entity> entities;
  double zipf_exponent = 0.8;  // Popularity skew of worker contributions.
};

struct CollectOptions {
  int64_t target_distinct = 100;  // Stop once this many entities collected.
  bool autocomplete = true;       // CDB on, Deco-style baseline off.
  // Probability a worker notices the autocomplete suggestion and picks a new
  // entity instead of re-submitting a collected one.
  double avoid_duplicate_prob = 0.9;
  int64_t max_questions = 1000000;  // Safety valve (open world!).
  uint64_t seed = 11;
};

struct CollectResult {
  int64_t questions_asked = 0;
  int64_t distinct_collected = 0;
  int64_t duplicates = 0;
  std::vector<std::string> collected;  // Canonical forms (autocomplete) or
                                       // raw submissions (baseline, deduped
                                       // by post-hoc entity resolution).
  // questions_asked recorded each time a new distinct entity arrived;
  // index k = questions needed for k+1 distinct. Powers Figure 17(a).
  std::vector<int64_t> questions_at_distinct;
};

CollectResult RunCollect(const CollectUniverse& universe,
                         const CollectOptions& options);

// One FILL work item: the missing cell, its true value, and plausible wrong
// values a confused worker might enter.
struct FillTaskSpec {
  std::string question;
  std::string truth;
  std::vector<std::string> wrong_pool;
};

struct FillOptions {
  int redundancy = 5;
  bool early_stop = true;      // CDB on, Deco-style baseline off.
  int agree_needed = 3;        // Stop once this many answers agree...
  double agree_similarity = 0.8;  // ...at at least this pairwise similarity.
  SimilarityFunction sim_fn = SimilarityFunction::kQGramJaccard;
  double worker_quality_mean = 0.8;
  double worker_quality_stddev = 0.1;
  int num_workers = 50;
  uint64_t seed = 13;
};

struct FillResult {
  int64_t answers_collected = 0;  // Total fill tasks paid for.
  int64_t cells_filled = 0;
  int64_t cells_correct = 0;      // Inferred value == truth.
  std::vector<std::string> values;
};

FillResult RunFill(const std::vector<FillTaskSpec>& specs,
                   const FillOptions& options);

}  // namespace cdb

#endif  // CDB_EXEC_COLLECT_FILL_H_
