// The top-level CDB embedding API: a Database owns a catalog and executes
// any CQL statement — CREATE [CROWD] TABLE, SELECT with CROWDJOIN /
// CROWDEQUAL (optionally BUDGET), FILL and COLLECT — against a configured
// crowd. This is the "CDB framework" entry point of Section 2.1 in library
// form: parser -> graph model -> optimizers -> crowd -> result collection.
//
// Because the crowd is simulated, the embedder supplies a CrowdOracle that
// knows the ground truth a perfect worker would give; simulated workers then
// err according to their sampled accuracies. Deployments against a real
// platform would replace the simulator behind the same seam.
#ifndef CDB_EXEC_DATABASE_H_
#define CDB_EXEC_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/collect_fill.h"
#include "exec/executor.h"
#include "storage/catalog.h"

namespace cdb {

// Ground truth for the simulated crowd, keyed by catalog coordinates.
class CrowdOracle {
 public:
  virtual ~CrowdOracle() = default;

  // Would a perfect worker say these two cells refer to the same thing?
  [[nodiscard]] virtual bool JoinMatches(const std::string& left_table,
                                         const std::string& left_column,
                                         int64_t left_row,
                                         const std::string& right_table,
                                         const std::string& right_column,
                                         int64_t right_row) const = 0;

  // Would a perfect worker say this cell satisfies `CROWDEQUAL constant`?
  [[nodiscard]] virtual bool SelectionMatches(
      const std::string& table, const std::string& column, int64_t row,
      const std::string& constant) const = 0;

  // The true value of a CNULL cell, plus plausible wrong answers.
  virtual FillTaskSpec FillTruth(const std::string& table,
                                 const std::string& column,
                                 int64_t row) const = 0;

  // The open world a COLLECT on `table` draws from.
  virtual CollectUniverse CollectWorld(const std::string& table) const = 0;
};

// A GeneratedDataset-backed implementation lives in datagen/entity_oracle.h.

// One result row of a SELECT: the projected cell values.
struct ResultRow {
  std::vector<Value> values;
};

struct StatementResult {
  std::vector<ResultRow> rows;   // SELECT only.
  int64_t affected = 0;          // FILL: cells filled; COLLECT: tuples added.
  ExecutionStats stats;          // Crowd statistics where applicable.
};

class Database {
 public:
  struct Options {
    ExecutorOptions executor;
    FillOptions fill;
    CollectOptions collect;
  };

  // `oracle` is borrowed and must outlive the Database.
  Database(Options options, const CrowdOracle* oracle)
      : options_(std::move(options)), oracle_(oracle) {}

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  // Parses and executes one CQL statement.
  Result<StatementResult> Execute(const std::string& cql);

  // Executes a ';'-separated script, stopping at the first error; returns
  // the last statement's result.
  Result<StatementResult> ExecuteScript(const std::string& cql);

 private:
  Result<StatementResult> RunSelect(const SelectStatement& stmt);
  Result<StatementResult> RunFillStatement(const FillStatement& stmt);
  Result<StatementResult> RunCollectStatement(const CollectStatement& stmt);

  Options options_;
  const CrowdOracle* oracle_;
  Catalog catalog_;
};

}  // namespace cdb

#endif  // CDB_EXEC_DATABASE_H_
