#include "exec/executor.h"

#include "common/logging.h"

namespace cdb {

CdbExecutor::CdbExecutor(const ResolvedQuery* query,
                         const ExecutorOptions& options, EdgeTruthFn truth)
    : query_(query), options_(options), truth_(std::move(truth)) {}

CdbExecutor::~CdbExecutor() = default;

Result<ExecutionResult> CdbExecutor::Run() {
  session_ = std::make_unique<QuerySession>(query_, options_, truth_);
  return session_->RunToCompletion();
}

const QueryGraph& CdbExecutor::graph() const {
  CDB_CHECK_MSG(session_ != nullptr, "graph() before Run()");
  return session_->graph();
}

const QuerySession& CdbExecutor::session() const {
  CDB_CHECK_MSG(session_ != nullptr, "session() before Run()");
  return *session_;
}

}  // namespace cdb
