#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>

#include "common/logging.h"
#include "cost/budget.h"
#include "cost/expectation.h"
#include "cost/sampling.h"
#include "graph/pruning.h"
#include "latency/scheduler.h"
#include "quality/task_assignment.h"
#include "quality/truth_inference.h"

namespace cdb {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// Uniform front for a single simulated platform or a cross-market deployment
// (Section 2.2): the executor only sees ExecuteRound + stats.
class MarketFront {
 public:
  MarketFront(const ExecutorOptions& options, TruthProvider truth) {
    if (options.markets.empty()) {
      single_ = std::make_unique<CrowdPlatform>(options.platform, std::move(truth));
    } else {
      multi_ = std::make_unique<MultiMarket>(options.markets, std::move(truth));
    }
  }

  std::vector<Answer> ExecuteRound(const std::vector<Task>& tasks,
                                   const AssignmentPolicy* policy,
                                   const AnswerObserver* observer) {
    return single_ ? single_->ExecuteRound(tasks, policy, observer)
                   : multi_->ExecuteRound(tasks, policy, observer);
  }

  PlatformStats stats() const {
    return single_ ? single_->stats() : multi_->CombinedStats();
  }

 private:
  std::unique_ptr<CrowdPlatform> single_;
  std::unique_ptr<MultiMarket> multi_;
};

// Marker payload for golden warm-up tasks: strictly negative; the known
// truth is parity of the id.
int GoldenTruthChoice(int64_t payload) {
  return static_cast<int>((-payload) % 2);
}

}  // namespace

CdbExecutor::CdbExecutor(const ResolvedQuery* query,
                         const ExecutorOptions& options, EdgeTruthFn truth)
    : query_(query), options_(options), truth_(std::move(truth)) {}

std::string CdbExecutor::EdgeValueString(VertexId v, int pred) const {
  const Vertex& vertex = graph_.vertex(v);
  if (vertex.rel < graph_.num_base_relations()) {
    const Table* table = query_->tables[vertex.rel];
    const PredicateInfo& info = graph_.predicate(pred);
    size_t col;
    if (pred < static_cast<int>(query_->joins.size())) {
      const ResolvedJoin& join = query_->joins[pred];
      col = info.left_rel == vertex.rel ? join.left_col : join.right_col;
    } else {
      col = query_->selections[pred - query_->joins.size()].col;
    }
    const Value& cell =
        table->row(static_cast<size_t>(vertex.row))[col];
    return cell.is_missing() ? std::string() : cell.ToString();
  }
  // Selection pseudo-vertex: the constant.
  size_t sel = static_cast<size_t>(vertex.rel - graph_.num_base_relations());
  return query_->selections[sel].value;
}

std::vector<Task> CdbExecutor::MakeTasks(const std::vector<EdgeId>& edges) const {
  std::vector<Task> tasks;
  tasks.reserve(edges.size());
  for (EdgeId e : edges) {
    const GraphEdge& edge = graph_.edge(e);
    tasks.push_back(MakeEdgeTask(/*id=*/e, /*edge=*/e,
                                 EdgeValueString(edge.u, edge.pred),
                                 EdgeValueString(edge.v, edge.pred)));
  }
  return tasks;
}

Result<ExecutionResult> CdbExecutor::Run() {
  CDB_ASSIGN_OR_RETURN(graph_, QueryGraph::Build(*query_, options_.graph));
  Pruner pruner(&graph_);

  ExecutionResult result;
  ExecutionStats& stats = result.stats;

  // The simulated crowd (single market or cross-market). TaskId == EdgeId by
  // construction; negative payloads mark golden warm-up tasks.
  MarketFront platform(options_, [this](const Task& task) {
    TaskTruth truth;
    if (task.payload < 0) {
      truth.correct_choice = GoldenTruthChoice(task.payload);
    } else {
      truth.correct_choice =
          truth_(graph_, static_cast<EdgeId>(task.payload)) ? 0 : 1;
    }
    return truth;
  });

  // Quality-control state (CDB+): accumulated observations, EM worker
  // qualities carried across rounds, and live posteriors for the assigner.
  std::vector<ChoiceObservation> all_observations;
  std::map<int, double> worker_quality;
  std::map<TaskId, std::vector<double>> posteriors;
  EntropyAssigner assigner(&posteriors, &worker_quality, /*num_choices=*/2);
  AssignmentPolicy policy = assigner.AsPolicy();
  AnswerObserver observer = [&](const Answer& answer) {
    auto it = posteriors.find(answer.task);
    if (it == posteriors.end()) return;
    double q = 0.7;
    auto wq = worker_quality.find(answer.worker);
    if (wq != worker_quality.end()) q = wq->second;
    it->second = PosteriorAfterAnswer(it->second, q, answer.choice);
  };

  // Golden warm-up (Appendix E): estimate worker qualities from known-truth
  // tasks before any query task is assigned.
  if (options_.quality_control && options_.golden_tasks > 0) {
    std::vector<Task> golden;
    std::map<TaskId, int> golden_truths;
    for (int k = 0; k < options_.golden_tasks; ++k) {
      Task task;
      task.id = -(k + 1);
      task.payload = -(k + 1);
      task.type = TaskType::kSingleChoice;
      task.question = "golden warm-up";
      task.choices = {"yes", "no"};
      golden_truths[task.id] = GoldenTruthChoice(task.payload);
      golden.push_back(std::move(task));
    }
    std::vector<ChoiceObservation> golden_observations;
    for (const Answer& answer : platform.ExecuteRound(golden, nullptr, nullptr)) {
      golden_observations.push_back(
          ChoiceObservation{answer.task, answer.worker, answer.choice});
    }
    worker_quality = QualityFromGoldenTasks(golden_observations, golden_truths);
  }

  // Sampling order is computed once (the paper fixes the sample-derived order
  // and consumes it with pruning).
  std::vector<EdgeId> sampling_order;
  if (!options_.budget && options_.cost_method == CostMethod::kSampling) {
    Clock::time_point start = Clock::now();
    sampling_order = SampleMinCutOrder(
        graph_, SamplingOptions{options_.sampling_samples,
                                options_.platform.seed ^ 0x5eedULL,
                                options_.num_threads});
    stats.selection_ms += MsSince(start);
  }

  int64_t budget_left = options_.budget.value_or(0);
  while (true) {
    // --- Cost control: pick the tasks of this round. ---
    Clock::time_point start = Clock::now();
    std::vector<EdgeId> round_edges;
    if (options_.budget) {
      round_edges = BudgetNextBatch(graph_);
      if (static_cast<int64_t>(round_edges.size()) > budget_left) {
        round_edges.resize(static_cast<size_t>(budget_left));
      }
    } else {
      std::vector<EdgeId> ordered;
      if (options_.cost_method == CostMethod::kExpectation) {
        for (const ScoredEdge& se : ExpectationOrder(graph_, pruner)) {
          ordered.push_back(se.edge);
        }
      } else {
        for (EdgeId e : sampling_order) {
          if (graph_.edge(e).color == EdgeColor::kUnknown && pruner.EdgeValid(e)) {
            ordered.push_back(e);
          }
        }
      }
      if (ordered.empty()) {
        stats.selection_ms += MsSince(start);
        break;
      }
      if (options_.round_limit &&
          stats.rounds >= static_cast<int64_t>(*options_.round_limit) - 1) {
        // Last permitted round: flush everything that is left.
        round_edges = ordered;
      } else {
        round_edges =
            SelectParallelRound(graph_, pruner, ordered, options_.latency_mode,
                                options_.greedy_round_fraction);
      }
    }
    stats.selection_ms += MsSince(start);
    if (round_edges.empty()) break;

    // --- Publish to the crowd. ---
    std::vector<Task> tasks = MakeTasks(round_edges);
    if (options_.quality_control) {
      for (const Task& task : tasks) {
        double w = graph_.edge(static_cast<EdgeId>(task.payload)).weight;
        posteriors[task.id] = {w, 1.0 - w};  // Similarity as the prior.
      }
    }
    std::vector<Answer> answers = platform.ExecuteRound(
        tasks, options_.quality_control ? &policy : nullptr,
        options_.quality_control ? &observer : nullptr);

    for (const Answer& answer : answers) {
      all_observations.push_back(
          ChoiceObservation{answer.task, answer.worker, answer.choice});
    }

    // --- Quality control: infer the truth of this round's tasks. ---
    InferenceResult inference;
    if (options_.quality_control) {
      EmOptions em;
      em.num_choices = 2;
      em.quality_priors = worker_quality;
      em.num_threads = options_.num_threads;
      inference = InferSingleChoiceEm(all_observations, em);
      worker_quality = inference.worker_quality;
    } else {
      inference = InferSingleChoiceMajority(all_observations, 2);
    }
    for (EdgeId e : round_edges) {
      int truth_choice = inference.Truth(e);
      CDB_CHECK(truth_choice >= 0);
      graph_.SetColor(e, truth_choice == 0 ? EdgeColor::kBlue : EdgeColor::kRed);
    }

    pruner.Recompute();
    stats.tasks_asked += static_cast<int64_t>(round_edges.size());
    stats.round_sizes.push_back(static_cast<int64_t>(round_edges.size()));
    ++stats.rounds;

    if (options_.budget) {
      budget_left -= static_cast<int64_t>(round_edges.size());
      if (budget_left <= 0) break;
    }
    if (options_.round_limit &&
        stats.rounds >= static_cast<int64_t>(*options_.round_limit)) {
      break;
    }
  }

  stats.worker_answers = platform.stats().answers_collected;
  stats.hits_published = platform.stats().hits_published;
  stats.dollars_spent = platform.stats().dollars_spent;
  result.answers = AssignmentsToAnswers(graph_, FindAnswers(graph_));
  return result;
}

std::vector<QueryAnswer> AssignmentsToAnswers(const QueryGraph& graph,
                                              const std::vector<Assignment>& as) {
  std::vector<QueryAnswer> answers;
  answers.reserve(as.size());
  for (const Assignment& assignment : as) {
    QueryAnswer answer;
    answer.rows.reserve(graph.num_base_relations());
    for (int rel = 0; rel < graph.num_base_relations(); ++rel) {
      answer.rows.push_back(graph.vertex(assignment[rel]).row);
    }
    answers.push_back(std::move(answer));
  }
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

}  // namespace cdb
