#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "common/logging.h"
#include "cost/budget.h"
#include "cost/expectation.h"
#include "cost/sampling.h"
#include "graph/pruning.h"
#include "latency/scheduler.h"
#include "quality/task_assignment.h"
#include "quality/truth_inference.h"

namespace cdb {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// Uniform front for a single simulated platform or a cross-market deployment
// (Section 2.2): the executor only sees ExecuteRound + stats.
class MarketFront {
 public:
  MarketFront(const ExecutorOptions& options, TruthProvider truth) {
    if (options.markets.empty()) {
      single_ = std::make_unique<CrowdPlatform>(options.platform, std::move(truth));
    } else {
      multi_ = std::make_unique<MultiMarket>(options.markets, std::move(truth));
    }
  }

  Result<std::vector<Answer>> ExecuteRound(const std::vector<Task>& tasks,
                                           const AssignmentPolicy* policy,
                                           const AnswerObserver* observer) {
    return single_ ? single_->ExecuteRound(tasks, policy, observer)
                   : multi_->ExecuteRound(tasks, policy, observer);
  }

  std::vector<Answer> TakeLateAnswers() {
    return single_ ? single_->TakeLateAnswers() : multi_->TakeLateAnswers();
  }

  std::vector<TaskId> TakeDeadLetters() {
    return single_ ? single_->TakeDeadLetters() : multi_->TakeDeadLetters();
  }

  void AdvanceTicks(int64_t ticks) {
    if (single_) {
      single_->AdvanceTicks(ticks);
    } else {
      multi_->AdvanceTicks(ticks);
    }
  }

  // The redundancy a task can actually reach: the configured redundancy
  // capped by the worker-pool size (min across markets for a deployment).
  int effective_redundancy() const {
    if (single_) {
      return std::min(single_->options().redundancy,
                      static_cast<int>(single_->workers().size()));
    }
    int lowest = std::numeric_limits<int>::max();
    for (const CrowdPlatform& platform : multi_->platforms()) {
      lowest = std::min(lowest,
                        std::min(platform.options().redundancy,
                                 static_cast<int>(platform.workers().size())));
    }
    return lowest;
  }

  PlatformStats stats() const {
    return single_ ? single_->stats() : multi_->CombinedStats();
  }

 private:
  std::unique_ptr<CrowdPlatform> single_;
  std::unique_ptr<MultiMarket> multi_;
};

// Marker payload for golden warm-up tasks: strictly negative; the known
// truth is parity of the id.
int GoldenTruthChoice(int64_t payload) {
  return static_cast<int>((-payload) % 2);
}

}  // namespace

CdbExecutor::CdbExecutor(const ResolvedQuery* query,
                         const ExecutorOptions& options, EdgeTruthFn truth)
    : query_(query), options_(options), truth_(std::move(truth)) {}

std::string CdbExecutor::EdgeValueString(VertexId v, int pred) const {
  const Vertex& vertex = graph_.vertex(v);
  if (vertex.rel < graph_.num_base_relations()) {
    const Table* table = query_->tables[vertex.rel];
    const PredicateInfo& info = graph_.predicate(pred);
    size_t col;
    if (pred < static_cast<int>(query_->joins.size())) {
      const ResolvedJoin& join = query_->joins[pred];
      col = info.left_rel == vertex.rel ? join.left_col : join.right_col;
    } else {
      col = query_->selections[pred - query_->joins.size()].col;
    }
    const Value& cell =
        table->row(static_cast<size_t>(vertex.row))[col];
    return cell.is_missing() ? std::string() : cell.ToString();
  }
  // Selection pseudo-vertex: the constant.
  size_t sel = static_cast<size_t>(vertex.rel - graph_.num_base_relations());
  return query_->selections[sel].value;
}

std::vector<Task> CdbExecutor::MakeTasks(const std::vector<EdgeId>& edges) const {
  std::vector<Task> tasks;
  tasks.reserve(edges.size());
  for (EdgeId e : edges) {
    const GraphEdge& edge = graph_.edge(e);
    tasks.push_back(MakeEdgeTask(/*id=*/e, /*edge=*/e,
                                 EdgeValueString(edge.u, edge.pred),
                                 EdgeValueString(edge.v, edge.pred)));
  }
  return tasks;
}

Result<ExecutionResult> CdbExecutor::Run() {
  CDB_ASSIGN_OR_RETURN(graph_, QueryGraph::Build(*query_, options_.graph));
  Pruner pruner(&graph_);

  ExecutionResult result;
  ExecutionStats& stats = result.stats;

  // The simulated crowd (single market or cross-market). TaskId == EdgeId by
  // construction; negative payloads mark golden warm-up tasks.
  MarketFront platform(options_, [this](const Task& task) {
    TaskTruth truth;
    if (task.payload < 0) {
      truth.correct_choice = GoldenTruthChoice(task.payload);
    } else {
      truth.correct_choice =
          truth_(graph_, static_cast<EdgeId>(task.payload)) ? 0 : 1;
    }
    return truth;
  });

  // Quality-control state (CDB+): accumulated observations, EM worker
  // qualities carried across rounds, and live posteriors for the assigner.
  std::vector<ChoiceObservation> all_observations;
  std::map<int, double> worker_quality;
  std::map<TaskId, std::vector<double>> posteriors;
  EntropyAssigner assigner(&posteriors, &worker_quality, /*num_choices=*/2);
  AssignmentPolicy policy = assigner.AsPolicy();
  AnswerObserver observer = [&](const Answer& answer) {
    auto it = posteriors.find(answer.task);
    if (it == posteriors.end()) return;
    double q = 0.7;
    auto wq = worker_quality.find(answer.worker);
    if (wq != worker_quality.end()) q = wq->second;
    it->second = PosteriorAfterAnswer(it->second, q, answer.choice);
  };

  // Golden warm-up (Appendix E): estimate worker qualities from known-truth
  // tasks before any query task is assigned.
  if (options_.quality_control && options_.golden_tasks > 0) {
    std::vector<Task> golden;
    std::map<TaskId, int> golden_truths;
    for (int k = 0; k < options_.golden_tasks; ++k) {
      Task task;
      task.id = -(k + 1);
      task.payload = -(k + 1);
      task.type = TaskType::kSingleChoice;
      task.question = "golden warm-up";
      task.choices = {"yes", "no"};
      golden_truths[task.id] = GoldenTruthChoice(task.payload);
      golden.push_back(std::move(task));
    }
    std::vector<ChoiceObservation> golden_observations;
    CDB_ASSIGN_OR_RETURN(std::vector<Answer> golden_answers,
                         platform.ExecuteRound(golden, nullptr, nullptr));
    for (const Answer& answer : golden_answers) {
      golden_observations.push_back(
          ChoiceObservation{answer.task, answer.worker, answer.choice});
    }
    worker_quality = QualityFromGoldenTasks(golden_observations, golden_truths);
  }

  // Unique-(task, worker) guard: the fault layer can deliver duplicate and
  // late copies of an answer, and requester reposts can reach workers that
  // already answered; inference must see each observation once.
  std::set<std::pair<TaskId, int>> seen_observations;
  auto absorb = [&](const std::vector<Answer>& batch) {
    int64_t added = 0;
    for (const Answer& answer : batch) {
      if (!seen_observations.insert({answer.task, answer.worker}).second) {
        continue;
      }
      all_observations.push_back(
          ChoiceObservation{answer.task, answer.worker, answer.choice});
      ++stats.unique_answers_per_task[answer.task];
      ++added;
    }
    return added;
  };
  auto infer_all = [&]() {
    InferenceResult inference;
    if (options_.quality_control) {
      EmOptions em;
      em.num_choices = 2;
      em.quality_priors = worker_quality;
      em.num_threads = options_.num_threads;
      inference = InferSingleChoiceEm(all_observations, em);
      worker_quality = inference.worker_quality;
    } else {
      inference = InferSingleChoiceMajority(all_observations, 2);
    }
    return inference;
  };

  // Late-answer reconciliation: answers that arrived after their lease
  // expired (or their task was resolved) still carry signal. Fold them into
  // the observation set, re-infer, and flip any already-colored edge whose
  // majority/EM truth changed.
  auto reconcile_late = [&]() {
    std::vector<Answer> late = platform.TakeLateAnswers();
    if (late.empty()) return;
    stats.late_answers += static_cast<int64_t>(late.size());
    if (absorb(late) == 0) return;
    InferenceResult inference = infer_all();
    bool flipped = false;
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      if (graph_.edge(e).color == EdgeColor::kUnknown) continue;
      int truth_choice = inference.Truth(e);
      if (truth_choice < 0) continue;
      EdgeColor want = truth_choice == 0 ? EdgeColor::kBlue : EdgeColor::kRed;
      if (graph_.edge(e).color != want) {
        graph_.RecolorEdge(e, want);
        ++stats.recolored_edges;
        flipped = true;
      }
    }
    if (flipped) pruner.Recompute();
  };

  // Sampling order is computed once (the paper fixes the sample-derived order
  // and consumes it with pruning).
  std::vector<EdgeId> sampling_order;
  if (!options_.budget && options_.cost_method == CostMethod::kSampling) {
    Clock::time_point start = Clock::now();
    sampling_order = SampleMinCutOrder(
        graph_, SamplingOptions{options_.sampling_samples,
                                options_.platform.seed ^ 0x5eedULL,
                                options_.num_threads});
    stats.selection_ms += MsSince(start);
  }

  int64_t budget_left = options_.budget.value_or(0);
  while (true) {
    reconcile_late();

    // --- Cost control: pick the tasks of this round. ---
    Clock::time_point start = Clock::now();
    std::vector<EdgeId> round_edges;
    if (options_.budget) {
      round_edges = BudgetNextBatch(graph_);
      if (static_cast<int64_t>(round_edges.size()) > budget_left) {
        round_edges.resize(static_cast<size_t>(budget_left));
      }
      // Deduct up front so requester-side reposts draw from the same budget
      // (every published task is a spend).
      budget_left -= static_cast<int64_t>(round_edges.size());
    } else {
      std::vector<EdgeId> ordered;
      if (options_.cost_method == CostMethod::kExpectation) {
        for (const ScoredEdge& se : ExpectationOrder(graph_, pruner)) {
          ordered.push_back(se.edge);
        }
      } else {
        for (EdgeId e : sampling_order) {
          if (graph_.edge(e).color == EdgeColor::kUnknown && pruner.EdgeValid(e)) {
            ordered.push_back(e);
          }
        }
      }
      if (ordered.empty()) {
        stats.selection_ms += MsSince(start);
        break;
      }
      if (options_.round_limit &&
          stats.rounds >= static_cast<int64_t>(*options_.round_limit) - 1) {
        // Last permitted round: flush everything that is left.
        round_edges = ordered;
      } else {
        round_edges =
            SelectParallelRound(graph_, pruner, ordered, options_.latency_mode,
                                options_.greedy_round_fraction);
      }
    }
    stats.selection_ms += MsSince(start);
    if (round_edges.empty()) break;

    // --- Publish to the crowd. ---
    std::vector<Task> tasks = MakeTasks(round_edges);
    if (options_.quality_control) {
      for (const Task& task : tasks) {
        double w = graph_.edge(static_cast<EdgeId>(task.payload)).weight;
        posteriors[task.id] = {w, 1.0 - w};  // Similarity as the prior.
      }
    }
    const AssignmentPolicy* round_policy =
        options_.quality_control ? &policy : nullptr;
    const AnswerObserver* round_observer =
        options_.quality_control ? &observer : nullptr;
    CDB_ASSIGN_OR_RETURN(std::vector<Answer> answers,
                         platform.ExecuteRound(tasks, round_policy,
                                               round_observer));
    absorb(answers);

    // --- Requester-side timeout/repost: top up tasks the platform returned
    // short (abandoned, expired, dead-lettered) with capped exponential
    // backoff. Each repost publishes only the shortfall, and in budget mode
    // draws down the same task budget as first-time publishes. ---
    if (options_.retry.enabled) {
      const int effective_redundancy = platform.effective_redundancy();
      for (int attempt = 1; attempt <= options_.retry.max_reposts; ++attempt) {
        (void)platform.TakeDeadLetters();  // Shortfall recomputed below.
        std::vector<Task> reposts;
        for (const Task& task : tasks) {
          auto it = stats.unique_answers_per_task.find(task.id);
          int64_t have = it == stats.unique_answers_per_task.end() ? 0
                                                                   : it->second;
          if (have >= effective_redundancy) continue;
          Task repost = task;
          repost.redundancy_override =
              static_cast<int>(effective_redundancy - have);
          reposts.push_back(std::move(repost));
        }
        if (reposts.empty()) break;
        if (options_.budget) {
          if (budget_left <= 0) break;  // Flush partial: no budget to retry.
          if (static_cast<int64_t>(reposts.size()) > budget_left) {
            reposts.resize(static_cast<size_t>(budget_left));
          }
          budget_left -= static_cast<int64_t>(reposts.size());
        }
        int64_t backoff = std::min(
            options_.retry.backoff_base_ticks << (attempt - 1),
            options_.retry.backoff_max_ticks);
        platform.AdvanceTicks(backoff);
        CDB_ASSIGN_OR_RETURN(std::vector<Answer> more,
                             platform.ExecuteRound(reposts, round_policy,
                                                   round_observer));
        stats.reposted_tasks += static_cast<int64_t>(reposts.size());
        absorb(more);
      }
      for (const Task& task : tasks) {
        auto it = stats.unique_answers_per_task.find(task.id);
        int64_t have = it == stats.unique_answers_per_task.end() ? 0
                                                                 : it->second;
        if (have < effective_redundancy) {
          stats.starved_task_ids.push_back(task.id);
        }
      }
    }

    // --- Quality control: infer the truth of this round's tasks. ---
    InferenceResult inference = infer_all();
    for (EdgeId e : round_edges) {
      int truth_choice = inference.Truth(e);
      EdgeColor color;
      if (truth_choice >= 0) {
        color = truth_choice == 0 ? EdgeColor::kBlue : EdgeColor::kRed;
      } else {
        // Graceful degradation: no answers ever arrived for this edge (task
        // starved or budget exhausted mid-round). Color by the
        // majority-so-far — with zero observations that is the similarity
        // prior — instead of aborting the query.
        ++stats.fallback_colored;
        color = graph_.edge(e).weight >= 0.5 ? EdgeColor::kBlue
                                             : EdgeColor::kRed;
      }
      graph_.SetColor(e, color);
    }

    pruner.Recompute();
    stats.tasks_asked += static_cast<int64_t>(round_edges.size());
    stats.round_sizes.push_back(static_cast<int64_t>(round_edges.size()));
    ++stats.rounds;

    if (options_.budget && budget_left <= 0) break;
    if (options_.round_limit &&
        stats.rounds >= static_cast<int64_t>(*options_.round_limit)) {
      break;
    }
  }

  // Fold in any straggler answers still in flight after the last round.
  reconcile_late();
  std::sort(stats.starved_task_ids.begin(), stats.starved_task_ids.end());
  stats.starved_task_ids.erase(
      std::unique(stats.starved_task_ids.begin(), stats.starved_task_ids.end()),
      stats.starved_task_ids.end());

  stats.platform = platform.stats();
  stats.worker_answers = stats.platform.answers_collected;
  stats.hits_published = stats.platform.hits_published;
  stats.dollars_spent = stats.platform.dollars_spent;
  result.answers = AssignmentsToAnswers(graph_, FindAnswers(graph_));
  return result;
}

std::vector<QueryAnswer> AssignmentsToAnswers(const QueryGraph& graph,
                                              const std::vector<Assignment>& as) {
  std::vector<QueryAnswer> answers;
  answers.reserve(as.size());
  for (const Assignment& assignment : as) {
    QueryAnswer answer;
    answer.rows.reserve(graph.num_base_relations());
    for (int rel = 0; rel < graph.num_base_relations(); ++rel) {
      answer.rows.push_back(graph.vertex(assignment[rel]).row);
    }
    answers.push_back(std::move(answer));
  }
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

}  // namespace cdb
