// CdbService: the long-running, multi-tenant crowd-query service.
//
// The session layer (session.h) makes one query resumable; the scheduler
// (scheduler.h) merges a handful of queries onto one shared platform. The
// service is the layer above both: it ADMITS queries asynchronously, parks
// thousands of standalone sessions, and steps the runnable ones in waves on
// the shared ThreadPool, with per-tenant budgets deciding who gets in and a
// bounded queue pushing back when submitters outrun the stepper.
//
// Admission control (every rejection is a typed kResourceExhausted, never a
// crash or a silent drop):
//   - bounded submit queue: Submit() fails once max_pending entries wait;
//   - per-tenant budget: each tenant owns a BudgetLedger over crowd tasks,
//     and a query is admitted only if its declared cost fits (TrySpend —
//     all-or-nothing, so one tenant cannot strand a partial grant);
//   - live cap: admitted queries leave the queue only while fewer than
//     max_live_sessions sessions are live, which bounds memory.
//
// Fairness: each wave steps live sessions in tenant round-robin order (one
// session per tenant per turn), so a tenant with 1 query makes the same
// per-wave progress as one with 900.
//
// Checkpointing: every checkpoint_interval waves the service snapshots all
// live sessions (session.h Snapshot()) into an in-memory bundle; a crashed
// service rebuilds by re-submitting each blob through SubmitRestored(). The
// crash-point sweep in tests/service_test.cc proves restore-then-run is
// byte-identical to run-straight-through.
//
// Threading: Submit()/SubmitRestored() are thread-safe producers. Everything
// else is driver-serial — one thread calls StepWave()/RunUntilDrained();
// within a wave, sessions step in parallel via ParallelFor (sessions are
// independent: each owns its platform and RNG streams, and the shared
// MetricsRegistry folds commutative integer sums), so every dump stays
// byte-identical at any num_threads.
#ifndef CDB_EXEC_SERVICE_H_
#define CDB_EXEC_SERVICE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "cost/ledger.h"
#include "exec/session.h"

namespace cdb {

struct ServiceOptions {
  // Admission control knobs (see file comment).
  int max_live_sessions = 1024;  // Concurrently-live session cap.
  int max_pending = 256;         // Bounded submit queue (backpressure).
  // Per-tenant crowd-task budget; nullopt = unlimited tenants.
  std::optional<int64_t> tenant_budget;
  // A query's admission cost when its ExecutorOptions carry no budget.
  int64_t default_query_cost = 1;
  // Snapshot all live sessions every this many waves; 0 disables.
  int checkpoint_interval = 0;
  // Wave-stepping parallelism (ParallelFor semantics: <= 0 = all hardware
  // threads, 1 = serial). Per-session state is bit-identical at any setting.
  int num_threads = 1;
  // Observability sinks (borrowed, may be null). The service emits integer
  // `service.*` counters only — wall-clock latency histograms live in
  // bench/bench_service.cc so MetricsDump stays deterministic.
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
};

// Integer accounting for the service loop; every field also mirrors a
// `service.*` metric when a registry is attached.
struct ServiceStats {
  int64_t submitted = 0;        // Submit() calls that were admitted to queue.
  int64_t rejected_queue = 0;   // Typed rejections: queue full.
  int64_t rejected_budget = 0;  // Typed rejections: tenant budget exhausted.
  int64_t admitted = 0;         // Sessions that became live.
  int64_t completed = 0;        // Sessions that finished with a result.
  int64_t failed = 0;           // Sessions retired with an error status.
  int64_t steps = 0;            // Session phase-steps executed.
  int64_t waves = 0;            // StepWave() calls.
  int64_t checkpoints = 0;      // Checkpoint bundles taken.
  int64_t checkpoint_bytes = 0; // Total bytes across all bundles.
};

class CdbService {
 public:
  explicit CdbService(const ServiceOptions& options);
  ~CdbService();
  CdbService(const CdbService&) = delete;
  CdbService& operator=(const CdbService&) = delete;

  // Queues one query for execution under `tenant`'s budget. Thread-safe.
  // Returns the service-assigned session id, or kResourceExhausted when the
  // queue is full / the tenant's budget cannot cover the query's cost.
  // `query` must outlive the service (sessions borrow it).
  Result<int64_t> Submit(std::string_view tenant, const ResolvedQuery* query,
                         const ExecutorOptions& options, EdgeTruthFn truth)
      CDB_EXCLUDES(mutex_);

  // As Submit(), but the session rehydrates from `snapshot` (a
  // QuerySession::Snapshot() blob) at admission instead of starting fresh.
  // A corrupt blob surfaces as the session's terminal status, not a crash.
  Result<int64_t> SubmitRestored(std::string_view tenant,
                                 const ResolvedQuery* query,
                                 const ExecutorOptions& options,
                                 EdgeTruthFn truth, std::string snapshot)
      CDB_EXCLUDES(mutex_);

  // Driver-serial. Admits from the queue up to the live cap, steps every
  // live session one phase (tenant round-robin order, ParallelFor inside),
  // retires finished ones, and takes a periodic checkpoint. Returns the
  // number of sessions stepped (0 = nothing live or queued).
  int64_t StepWave() CDB_EXCLUDES(mutex_);

  // Driver-serial: waves until no session is live or queued.
  void RunUntilDrained() CDB_EXCLUDES(mutex_);

  // True while any session is live or queued. Driver-serial.
  bool HasWork() const CDB_EXCLUDES(mutex_);

  // The finished session's result (or its terminal error). Draining: a
  // second call for the same id returns kNotFound. Driver-serial.
  Result<ExecutionResult> TakeResult(int64_t session_id);

  // Snapshots every live session now: id -> blob. Also the periodic-
  // checkpoint body. Driver-serial.
  std::map<int64_t, std::string> CheckpointAll();

  // The most recent checkpoint bundle (periodic or manual). Driver-serial.
  const std::map<int64_t, std::string>& last_checkpoint() const {
    return last_checkpoint_;
  }

  ServiceStats stats() const CDB_EXCLUDES(mutex_);

  int64_t num_live() const { return static_cast<int64_t>(live_.size()); }
  int64_t num_pending() const CDB_EXCLUDES(mutex_);

 private:
  struct PendingQuery {
    int64_t id = 0;
    std::string tenant;
    const ResolvedQuery* query = nullptr;
    ExecutorOptions options;
    EdgeTruthFn truth;
    std::string snapshot;  // Empty = fresh session.
    bool restored = false;
  };

  struct LiveSession {
    std::string tenant;
    std::unique_ptr<QuerySession> session;
  };

  // Admission cost of one query under the tenant ledger (see file comment).
  int64_t QueryCost(const ExecutorOptions& options) const;
  // Queue-side admission shared by Submit/SubmitRestored.
  Result<int64_t> Enqueue(PendingQuery pending) CDB_EXCLUDES(mutex_);
  // Moves queued queries into live_ while the live cap allows.
  void AdmitFromQueue() CDB_EXCLUDES(mutex_);
  // Live session ids, one per tenant per turn (wave fairness).
  std::vector<int64_t> WaveOrder() const;
  void Bump(Counter* counter, int64_t delta = 1);

  const ServiceOptions options_;

  mutable Mutex mutex_;
  std::deque<PendingQuery> pending_ CDB_GUARDED_BY(mutex_);
  int64_t next_id_ CDB_GUARDED_BY(mutex_) = 1;
  int64_t submitted_ CDB_GUARDED_BY(mutex_) = 0;
  int64_t rejected_queue_ CDB_GUARDED_BY(mutex_) = 0;
  int64_t rejected_budget_ CDB_GUARDED_BY(mutex_) = 0;
  // Tenant ledgers live for the service's lifetime (ledgers are shared with
  // no one and BudgetLedger is self-locking, so Submit holds mutex_ only for
  // queue state).
  std::map<std::string, std::unique_ptr<BudgetLedger>, std::less<>>
      tenants_ CDB_GUARDED_BY(mutex_);

  // Driver-serial state (see file comment).
  std::map<int64_t, LiveSession> live_;
  std::map<int64_t, Result<ExecutionResult>> finished_;
  std::map<int64_t, std::string> last_checkpoint_;
  ServiceStats driver_stats_;

  // Cached `service.*` registry handles (null when metrics is unset).
  struct ServiceMetrics {
    Counter* submitted = nullptr;
    Counter* rejected_queue = nullptr;
    Counter* rejected_budget = nullptr;
    Counter* admitted = nullptr;
    Counter* completed = nullptr;
    Counter* failed = nullptr;
    Counter* steps = nullptr;
    Counter* waves = nullptr;
    Counter* checkpoints = nullptr;
    Counter* checkpoint_bytes = nullptr;
  };
  ServiceMetrics metrics_;
};

}  // namespace cdb

#endif  // CDB_EXEC_SERVICE_H_
