#include "exec/collect_fill.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "crowd/worker.h"
#include "quality/truth_inference.h"

namespace cdb {

CollectResult RunCollect(const CollectUniverse& universe,
                         const CollectOptions& options) {
  CDB_CHECK(!universe.entities.empty());
  Rng rng(options.seed);
  CollectResult result;
  const int64_t n = static_cast<int64_t>(universe.entities.size());
  const int64_t target = std::min(options.target_distinct, n);
  std::vector<bool> seen(universe.entities.size(), false);

  while (result.distinct_collected < target &&
         result.questions_asked < options.max_questions) {
    ++result.questions_asked;
    // The worker thinks of an entity, popularity-skewed.
    int64_t entity = rng.Zipf(n, universe.zipf_exponent);
    if (options.autocomplete && seen[entity] &&
        rng.Bernoulli(options.avoid_duplicate_prob)) {
      // Autocompletion shows the value is already collected; the worker
      // contributes something else if they can think of one.
      std::vector<int64_t> unseen;
      for (int64_t i = 0; i < n; ++i) {
        if (!seen[i]) unseen.push_back(i);
      }
      if (!unseen.empty()) {
        entity = unseen[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(unseen.size()) - 1))];
      }
    }
    const CollectUniverse::Entity& ent = universe.entities[entity];
    if (seen[entity]) {
      ++result.duplicates;
      continue;  // Post-hoc entity resolution discards it; budget is gone.
    }
    seen[entity] = true;
    ++result.distinct_collected;
    result.questions_at_distinct.push_back(result.questions_asked);
    if (options.autocomplete || ent.variants.empty()) {
      // Autocompletion canonicalizes the surface form.
      result.collected.push_back(ent.canonical);
    } else {
      // Baseline: the worker types whatever variant they know.
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(ent.variants.size())));
      result.collected.push_back(pick == ent.variants.size()
                                     ? ent.canonical
                                     : ent.variants[pick]);
    }
  }
  return result;
}

FillResult RunFill(const std::vector<FillTaskSpec>& specs,
                   const FillOptions& options) {
  Rng rng(options.seed);
  std::vector<SimulatedWorker> workers =
      MakeWorkerPool(options.num_workers, options.worker_quality_mean,
                     options.worker_quality_stddev, rng);
  FillResult result;

  for (size_t i = 0; i < specs.size(); ++i) {
    const FillTaskSpec& spec = specs[i];
    Task task;
    task.id = static_cast<TaskId>(i);
    task.type = TaskType::kFillInBlank;
    task.question = spec.question;
    TaskTruth truth;
    truth.correct_text = spec.truth;
    truth.wrong_text_pool = spec.wrong_pool;

    std::vector<Answer> answers;
    // Distinct workers for this cell, random order.
    std::vector<size_t> order(workers.size());
    for (size_t w = 0; w < order.size(); ++w) order[w] = w;
    rng.Shuffle(order);
    int redundancy = std::min<int>(options.redundancy,
                                   static_cast<int>(workers.size()));
    for (int k = 0; k < redundancy; ++k) {
      answers.push_back(workers[order[static_cast<size_t>(k)]].AnswerTask(
          task, truth, rng));
      ++result.answers_collected;
      if (options.early_stop &&
          static_cast<int>(answers.size()) >= options.agree_needed) {
        // Stop early when agree_needed answers are mutually similar.
        int agree = 0;
        for (size_t a = 0; a < answers.size() && agree < options.agree_needed;
             ++a) {
          int similar = 0;
          for (size_t b = 0; b < answers.size(); ++b) {
            if (a == b) continue;
            if (ComputeSimilarity(options.sim_fn, answers[a].text,
                                  answers[b].text) >= options.agree_similarity) {
              ++similar;
            }
          }
          if (similar + 1 >= options.agree_needed) agree = options.agree_needed;
        }
        if (agree >= options.agree_needed) break;
      }
    }

    std::string value = InferFillInBlank(answers, options.sim_fn);
    ++result.cells_filled;
    if (value == spec.truth) ++result.cells_correct;
    result.values.push_back(std::move(value));
  }
  return result;
}

}  // namespace cdb
