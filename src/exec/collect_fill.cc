#include "exec/collect_fill.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/session.h"
#include "quality/truth_inference.h"

namespace cdb {
namespace {

// True when `agree_needed` of the answers are mutually similar at
// `agree_similarity` — the CDB early-stop test, evaluated after every wave.
bool FillAgreement(const std::vector<Answer>& answers,
                   const FillOptions& options) {
  if (static_cast<int>(answers.size()) < options.agree_needed) return false;
  for (size_t a = 0; a < answers.size(); ++a) {
    int similar = 0;
    for (size_t b = 0; b < answers.size(); ++b) {
      if (a == b) continue;
      if (ComputeSimilarity(options.sim_fn, answers[a].text,
                            answers[b].text) >= options.agree_similarity) {
        ++similar;
      }
    }
    if (similar + 1 >= options.agree_needed) return true;
  }
  return false;
}

}  // namespace

CollectResult RunCollect(const CollectUniverse& universe,
                         const CollectOptions& options) {
  CDB_CHECK(!universe.entities.empty());
  Rng rng(options.seed);
  CollectResult result;
  const int64_t n = static_cast<int64_t>(universe.entities.size());
  const int64_t target = std::min(options.target_distinct, n);
  std::vector<bool> seen(universe.entities.size(), false);

  // The open world is requester-side simulation state: which entity a worker
  // thinks of (and how autocompletion steers them) is drawn here, question by
  // question, because each draw depends on what is already collected. The
  // resulting collection tasks are published through the session publish
  // path in waves — the platform accounts for them and its workers echo the
  // contributed surface form back (kCollection answers with an empty
  // wrong-text pool reproduce the worker's contribution verbatim).
  std::vector<TaskTruth> truths;
  PlatformOptions popt;
  popt.market_name = "SimCollect";
  popt.redundancy = 1;  // One contribution per COLLECT question.
  popt.seed = options.seed;
  PlatformPublisher publisher(popt, [&truths](const Task& task) {
    return truths[static_cast<size_t>(task.id)];
  });

  std::vector<Task> wave;
  // result.collected slot for each task id (duplicates get no slot).
  std::vector<int64_t> slot_of_task;
  auto flush_wave = [&]() {
    if (wave.empty()) return;
    std::vector<Answer> answers =
        publisher.Publish(wave, nullptr, nullptr).value();
    for (const Answer& answer : answers) {
      int64_t slot = slot_of_task[static_cast<size_t>(answer.task)];
      if (slot >= 0) result.collected[static_cast<size_t>(slot)] = answer.text;
    }
    wave.clear();
  };

  constexpr size_t kWaveSize = 50;
  while (result.distinct_collected < target &&
         result.questions_asked < options.max_questions) {
    ++result.questions_asked;
    // The worker thinks of an entity, popularity-skewed.
    int64_t entity = rng.Zipf(n, universe.zipf_exponent);
    if (options.autocomplete && seen[entity] &&
        rng.Bernoulli(options.avoid_duplicate_prob)) {
      // Autocompletion shows the value is already collected; the worker
      // contributes something else if they can think of one.
      std::vector<int64_t> unseen;
      for (int64_t i = 0; i < n; ++i) {
        if (!seen[i]) unseen.push_back(i);
      }
      if (!unseen.empty()) {
        entity = unseen[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(unseen.size()) - 1))];
      }
    }
    const CollectUniverse::Entity& ent = universe.entities[entity];

    Task task;
    task.id = static_cast<TaskId>(truths.size());
    task.type = TaskType::kCollection;
    task.question = "Contribute a value the table is missing";
    TaskTruth truth;
    int64_t slot = -1;
    if (seen[entity]) {
      ++result.duplicates;
      // Post-hoc entity resolution discards it; budget is gone. The worker
      // still submitted the (already collected) canonical form.
      truth.correct_text = ent.canonical;
    } else {
      seen[entity] = true;
      ++result.distinct_collected;
      result.questions_at_distinct.push_back(result.questions_asked);
      if (options.autocomplete || ent.variants.empty()) {
        // Autocompletion canonicalizes the surface form.
        truth.correct_text = ent.canonical;
      } else {
        // Baseline: the worker types whatever variant they know.
        size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(ent.variants.size())));
        truth.correct_text = pick == ent.variants.size() ? ent.canonical
                                                         : ent.variants[pick];
      }
      slot = static_cast<int64_t>(result.collected.size());
      result.collected.emplace_back();
    }
    truths.push_back(std::move(truth));
    slot_of_task.push_back(slot);
    wave.push_back(std::move(task));
    if (wave.size() >= kWaveSize) flush_wave();
  }
  flush_wave();
  return result;
}

FillResult RunFill(const std::vector<FillTaskSpec>& specs,
                   const FillOptions& options) {
  FillResult result;
  if (specs.empty()) return result;

  std::vector<Task> base(specs.size());
  std::vector<TaskTruth> truths(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    base[i].id = static_cast<TaskId>(i);
    base[i].type = TaskType::kFillInBlank;
    base[i].question = specs[i].question;
    truths[i].correct_text = specs[i].truth;
    truths[i].wrong_text_pool = specs[i].wrong_pool;
  }

  PlatformOptions popt;
  popt.market_name = "SimFill";
  popt.num_workers = options.num_workers;
  popt.worker_quality_mean = options.worker_quality_mean;
  popt.worker_quality_stddev = options.worker_quality_stddev;
  popt.redundancy = options.redundancy;
  popt.seed = options.seed;
  PlatformPublisher publisher(popt, [&truths](const Task& task) {
    return truths[static_cast<size_t>(task.id)];
  });

  const int redundancy = std::min(options.redundancy, options.num_workers);
  std::vector<std::vector<Answer>> per_cell(specs.size());
  auto deliver = [&](const std::vector<Answer>& answers) {
    for (const Answer& answer : answers) {
      per_cell[static_cast<size_t>(answer.task)].push_back(answer);
      ++result.answers_collected;
    }
  };

  // First wave: with early stop on, ask only the agreement quorum; the
  // baseline pays the full redundancy in one round.
  const int first_wave =
      options.early_stop ? std::min(options.agree_needed, redundancy)
                         : redundancy;
  std::vector<Task> wave;
  wave.reserve(specs.size());
  for (const Task& task : base) {
    Task t = task;
    t.redundancy_override = first_wave;
    wave.push_back(std::move(t));
  }
  deliver(publisher.Publish(wave, nullptr, nullptr).value());

  // Top-up waves: cells whose answers do not yet agree get one more answer
  // each, up to the redundancy cap — the same per-answer stopping points as
  // asking workers one at a time.
  if (options.early_stop) {
    while (true) {
      std::vector<Task> topup;
      for (size_t i = 0; i < specs.size(); ++i) {
        if (static_cast<int>(per_cell[i].size()) >= redundancy) continue;
        if (FillAgreement(per_cell[i], options)) continue;
        Task t = base[i];
        t.redundancy_override = 1;
        topup.push_back(std::move(t));
      }
      if (topup.empty()) break;
      deliver(publisher.Publish(topup, nullptr, nullptr).value());
    }
  }

  for (size_t i = 0; i < specs.size(); ++i) {
    std::string value = InferFillInBlank(per_cell[i], options.sim_fn);
    ++result.cells_filled;
    if (value == specs[i].truth) ++result.cells_correct;
    result.values.push_back(std::move(value));
  }
  return result;
}

}  // namespace cdb
