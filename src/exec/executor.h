// The CDB query executor (Algorithm 1, Appendix B): build the graph, select
// tasks (cost control), batch the non-conflicting ones per round (latency
// control), publish them to the crowd platform, infer truths and color the
// graph (quality control), and repeat until every valid edge is colored.
//
// Method matrix (the paper's names):
//   CDB     = kExpectation cost method, majority-vote inference.
//   CDB+    = kExpectation + quality_control (EM inference + entropy-based
//             online task assignment).
//   MinCut  = kSampling cost method (per-sample Lemma-1 min-cuts).
// A task budget switches to the Section-5.1.3 budget-aware mode; round_limit
// reproduces the Figure-22 latency-constraint protocol (optimize the first
// r-1 rounds, flush everything in round r).
//
// CdbExecutor is a thin run-to-completion driver over QuerySession
// (session.h), which owns the loop as an explicit phase machine; the option
// and result types live there too.
#ifndef CDB_EXEC_EXECUTOR_H_
#define CDB_EXEC_EXECUTOR_H_

#include <memory>

#include "exec/session.h"

namespace cdb {

class CdbExecutor {
 public:
  // `query` (and the tables it borrows) must outlive the executor.
  CdbExecutor(const ResolvedQuery* query, const ExecutorOptions& options,
              EdgeTruthFn truth);
  ~CdbExecutor();

  // Runs the crowdsourcing loop to completion (a fresh QuerySession stepped
  // until done).
  Result<ExecutionResult> Run();

  // The graph after Run() — e.g. for inspecting colors in tests.
  const QueryGraph& graph() const;

  // The session after Run() — e.g. for inspecting edge provenance when the
  // answer-propagation layer is enabled.
  const QuerySession& session() const;

 private:
  const ResolvedQuery* query_;
  ExecutorOptions options_;
  EdgeTruthFn truth_;
  std::unique_ptr<QuerySession> session_;
};

}  // namespace cdb

#endif  // CDB_EXEC_EXECUTOR_H_
