// The CDB query executor (Algorithm 1, Appendix B): build the graph, select
// tasks (cost control), batch the non-conflicting ones per round (latency
// control), publish them to the crowd platform, infer truths and color the
// graph (quality control), and repeat until every valid edge is colored.
//
// Method matrix (the paper's names):
//   CDB     = kExpectation cost method, majority-vote inference.
//   CDB+    = kExpectation + quality_control (EM inference + entropy-based
//             online task assignment).
//   MinCut  = kSampling cost method (per-sample Lemma-1 min-cuts).
// A task budget switches to the Section-5.1.3 budget-aware mode; round_limit
// reproduces the Figure-22 latency-constraint protocol (optimize the first
// r-1 rounds, flush everything in round r).
#ifndef CDB_EXEC_EXECUTOR_H_
#define CDB_EXEC_EXECUTOR_H_

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/status.h"
#include "cql/analyzer.h"
#include "crowd/platform.h"
#include "graph/candidates.h"
#include "graph/query_graph.h"
#include "latency/scheduler.h"

namespace cdb {

// Simulation oracle: the true answer of an edge's yes/no task.
using EdgeTruthFn = std::function<bool(const QueryGraph&, EdgeId)>;

enum class CostMethod {
  kExpectation,  // Eq. 1 scores (the CDB default).
  kSampling,     // Sample-based min-cut greedy (the MinCut method).
};

// Requester-side robustness policy against an unreliable crowd (see
// PlatformOptions::fault): when a round comes back short — tasks
// dead-lettered by the platform or below the effective redundancy — the
// executor reposts the shortfall with capped exponential backoff (the
// backoff advances the platform's virtual clock, modeling the requester
// waiting before republishing).
struct RetryOptions {
  bool enabled = true;
  int max_reposts = 3;             // Repost attempts per round.
  int64_t backoff_base_ticks = 2;  // Backoff before attempt k: base << (k-1),
  int64_t backoff_max_ticks = 64;  // capped here.
};

struct ExecutorOptions {
  CostMethod cost_method = CostMethod::kExpectation;
  bool quality_control = false;  // CDB+: EM inference + entropy assignment.
  LatencyMode latency_mode = LatencyMode::kVertexGreedy;
  double greedy_round_fraction = 0.34;  // See SelectParallelRound.
  GraphOptions graph;
  PlatformOptions platform;
  // Cross-market deployment (Section 2.2): when non-empty, tasks are
  // partitioned across these simulated markets instead of `platform`.
  std::vector<PlatformOptions> markets;
  // Golden tasks (Appendix E): with quality_control on, publish this many
  // known-truth warm-up tasks first and initialize worker qualities from the
  // answers (instead of the flat 0.7 prior).
  int golden_tasks = 0;
  int sampling_samples = 100;
  // Threads for the optimizer's parallel stages (sampling min-cut, EM truth
  // inference; graph.num_threads covers the build-time similarity joins):
  // <= 0 = all hardware threads, 1 = the exact serial path. Results are
  // bit-identical at every setting.
  int num_threads = 0;
  std::optional<int64_t> budget;     // Budget-aware mode (Section 5.1.3).
  std::optional<int> round_limit;    // Figure-22 latency constraint.
  RetryOptions retry;                // Timeout/repost policy under faults.
};

struct ExecutionStats {
  int64_t tasks_asked = 0;
  int64_t rounds = 0;
  int64_t worker_answers = 0;
  int64_t hits_published = 0;
  double dollars_spent = 0.0;
  double selection_ms = 0.0;  // Time in task selection + round scheduling.
  std::vector<int64_t> round_sizes;
  // Fault-robustness accounting (all zero with a clean crowd).
  int64_t reposted_tasks = 0;    // Requester-side reposts published.
  int64_t late_answers = 0;      // Late answers reconciled into inference.
  int64_t recolored_edges = 0;   // Colors flipped by late-answer evidence.
  int64_t fallback_colored = 0;  // Edges colored by majority-so-far/prior
                                 // because inference had no answers for them.
  // Tasks that stayed below effective redundancy after the retry budget ran
  // out (sorted, unique). The DST harness exempts these from the
  // answers-per-task invariant.
  std::vector<int64_t> starved_task_ids;
  // Unique (task, worker) observations per published task id; lets tests
  // relate result quality to the evidence inference actually saw.
  std::map<int64_t, int64_t> unique_answers_per_task;
  // Final platform-side accounting (combined across markets); the DST
  // harness checks its conservation laws and byte-dumps it for determinism
  // comparisons.
  PlatformStats platform;
};

// One result tuple: the row index per base relation.
struct QueryAnswer {
  std::vector<int64_t> rows;

  friend bool operator==(const QueryAnswer& a, const QueryAnswer& b) {
    return a.rows == b.rows;
  }
  friend bool operator<(const QueryAnswer& a, const QueryAnswer& b) {
    return a.rows < b.rows;
  }
};

struct ExecutionResult {
  std::vector<QueryAnswer> answers;
  ExecutionStats stats;
};

class CdbExecutor {
 public:
  // `query` (and the tables it borrows) must outlive the executor.
  CdbExecutor(const ResolvedQuery* query, const ExecutorOptions& options,
              EdgeTruthFn truth);

  // Runs the crowdsourcing loop to completion.
  Result<ExecutionResult> Run();

  // The graph after Run() — e.g. for inspecting colors in tests.
  const QueryGraph& graph() const { return graph_; }

 private:
  std::vector<Task> MakeTasks(const std::vector<EdgeId>& edges) const;
  std::string EdgeValueString(VertexId v, int col_side_pred) const;

  const ResolvedQuery* query_;
  ExecutorOptions options_;
  EdgeTruthFn truth_;
  QueryGraph graph_;
};

// Converts graph assignments to base-relation row answers (sorted, unique).
std::vector<QueryAnswer> AssignmentsToAnswers(const QueryGraph& graph,
                                              const std::vector<Assignment>& as);

}  // namespace cdb

#endif  // CDB_EXEC_EXECUTOR_H_
