#include "exec/database.h"

#include <algorithm>

#include "common/string_util.h"
#include "cql/parser.h"

namespace cdb {
namespace {

// Adapts a CrowdOracle to the executor's edge-truth callback for one query.
EdgeTruthFn OracleEdgeTruth(const CrowdOracle* oracle,
                            const ResolvedQuery* query) {
  return [oracle, query](const QueryGraph& graph, EdgeId e) -> bool {
    const GraphEdge& edge = graph.edge(e);
    const int p = edge.pred;
    if (p < static_cast<int>(query->joins.size())) {
      const ResolvedJoin& join = query->joins[static_cast<size_t>(p)];
      const Table* lt = query->tables[join.left_rel];
      const Table* rt = query->tables[join.right_rel];
      return oracle->JoinMatches(
          lt->name(), lt->schema().column(join.left_col).name,
          graph.vertex(edge.u).row, rt->name(),
          rt->schema().column(join.right_col).name, graph.vertex(edge.v).row);
    }
    const ResolvedSelection& sel =
        query->selections[static_cast<size_t>(p) - query->joins.size()];
    const Table* table = query->tables[sel.rel];
    return oracle->SelectionMatches(table->name(),
                                    table->schema().column(sel.col).name,
                                    graph.vertex(edge.u).row, sel.value);
  };
}

// Matches a row against FILL/COLLECT WHERE predicates (constant selections
// on already-present values; crowd selections are not supported there).
Result<bool> RowMatches(const Table& table, size_t row,
                        const std::vector<AstPredicate>& predicates) {
  for (const AstPredicate& pred : predicates) {
    if (pred.kind != PredicateKind::kEqualConst) {
      return Status::Unimplemented(
          "FILL/COLLECT WHERE supports only '=' constant predicates");
    }
    CDB_ASSIGN_OR_RETURN(size_t col, table.schema().FindColumn(pred.left.column));
    const Value& cell = table.row(row)[col];
    if (!cell.SqlEquals(Value::Str(pred.constant))) return false;
  }
  return true;
}

}  // namespace

Result<StatementResult> Database::Execute(const std::string& cql) {
  CDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(cql));
  if (const auto* create = std::get_if<CreateTableStatement>(&stmt)) {
    CDB_RETURN_IF_ERROR(ApplyCreateTable(*create, catalog_));
    return StatementResult{};
  }
  if (const auto* select = std::get_if<SelectStatement>(&stmt)) {
    return RunSelect(*select);
  }
  if (const auto* fill = std::get_if<FillStatement>(&stmt)) {
    return RunFillStatement(*fill);
  }
  return RunCollectStatement(std::get<CollectStatement>(stmt));
}

Result<StatementResult> Database::ExecuteScript(const std::string& cql) {
  CDB_ASSIGN_OR_RETURN(std::vector<Statement> script, ParseScript(cql));
  if (script.empty()) return Status::InvalidArgument("empty script");
  StatementResult last;
  for (const Statement& stmt : script) {
    // Re-dispatch through Execute-like logic without reparsing.
    if (const auto* create = std::get_if<CreateTableStatement>(&stmt)) {
      CDB_RETURN_IF_ERROR(ApplyCreateTable(*create, catalog_));
      last = StatementResult{};
    } else if (const auto* select = std::get_if<SelectStatement>(&stmt)) {
      CDB_ASSIGN_OR_RETURN(last, RunSelect(*select));
    } else if (const auto* fill = std::get_if<FillStatement>(&stmt)) {
      CDB_ASSIGN_OR_RETURN(last, RunFillStatement(*fill));
    } else {
      CDB_ASSIGN_OR_RETURN(last,
                           RunCollectStatement(std::get<CollectStatement>(stmt)));
    }
  }
  return last;
}

Result<StatementResult> Database::RunSelect(const SelectStatement& stmt) {
  CDB_ASSIGN_OR_RETURN(ResolvedQuery query, AnalyzeSelect(stmt, catalog_));
  ExecutorOptions executor_options = options_.executor;
  if (query.budget) executor_options.budget = query.budget;
  EdgeTruthFn truth = OracleEdgeTruth(oracle_, &query);
  CdbExecutor executor(&query, executor_options, truth);
  CDB_ASSIGN_OR_RETURN(ExecutionResult run, executor.Run());

  StatementResult result;
  result.stats = run.stats;
  for (const QueryAnswer& answer : run.answers) {
    ResultRow row;
    if (query.select_star) {
      for (size_t rel = 0; rel < query.tables.size(); ++rel) {
        const Row& source =
            query.tables[rel]->row(static_cast<size_t>(answer.rows[rel]));
        row.values.insert(row.values.end(), source.begin(), source.end());
      }
    } else {
      for (const ResolvedProjection& proj : query.projections) {
        row.values.push_back(
            query.tables[proj.rel]->row(static_cast<size_t>(answer.rows[proj.rel]))
                [proj.col]);
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

Result<StatementResult> Database::RunFillStatement(const FillStatement& stmt) {
  CDB_ASSIGN_OR_RETURN(Table* table, catalog_.GetMutableTable(stmt.target.table));
  CDB_ASSIGN_OR_RETURN(size_t col, table->schema().FindColumn(stmt.target.column));
  if (!table->schema().column(col).is_crowd) {
    return Status::FailedPrecondition("column '" + stmt.target.column +
                                      "' is not a CROWD column");
  }
  // Work list: CNULL cells passing the WHERE filter, capped by BUDGET.
  std::vector<size_t> rows;
  std::vector<FillTaskSpec> specs;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    if (!table->row(r)[col].is_cnull()) continue;
    CDB_ASSIGN_OR_RETURN(bool matches, RowMatches(*table, r, stmt.predicates));
    if (!matches) continue;
    rows.push_back(r);
    specs.push_back(
        oracle_->FillTruth(table->name(), stmt.target.column,
                           static_cast<int64_t>(r)));
    if (stmt.budget && static_cast<int64_t>(specs.size() * options_.fill.redundancy) >=
                           *stmt.budget) {
      break;
    }
  }
  FillResult filled = RunFill(specs, options_.fill);
  for (size_t i = 0; i < rows.size(); ++i) {
    CDB_RETURN_IF_ERROR(table->SetCell(rows[i], stmt.target.column,
                                       Value::Str(filled.values[i])));
  }
  StatementResult result;
  result.affected = filled.cells_filled;
  result.stats.worker_answers = filled.answers_collected;
  return result;
}

Result<StatementResult> Database::RunCollectStatement(
    const CollectStatement& stmt) {
  const std::string& table_name = stmt.targets[0].table;
  CDB_ASSIGN_OR_RETURN(Table* table, catalog_.GetMutableTable(table_name));
  if (!table->is_crowd_table()) {
    return Status::FailedPrecondition("table '" + table_name +
                                      "' is not a CROWD table");
  }
  CollectOptions collect_options = options_.collect;
  if (stmt.budget) collect_options.max_questions = *stmt.budget;
  CollectResult collected =
      RunCollect(oracle_->CollectWorld(table_name), collect_options);

  // Materialize: the first COLLECT target column takes the collected value,
  // CROWD columns become CNULL (awaiting FILL), others NULL.
  CDB_ASSIGN_OR_RETURN(size_t value_col,
                       table->schema().FindColumn(stmt.targets[0].column));
  for (const std::string& value : collected.collected) {
    Row row;
    for (size_t c = 0; c < table->schema().num_columns(); ++c) {
      if (c == value_col) {
        row.push_back(Value::Str(value));
      } else if (table->schema().column(c).is_crowd) {
        row.push_back(Value::CNull());
      } else {
        row.push_back(Value::Null());
      }
    }
    CDB_RETURN_IF_ERROR(table->AppendRow(std::move(row)));
  }
  StatementResult result;
  result.affected = collected.distinct_collected;
  result.stats.tasks_asked = collected.questions_asked;
  return result;
}

}  // namespace cdb
