#include "exec/service.h"

#include <optional>
#include <utility>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace cdb {

CdbService::CdbService(const ServiceOptions& options) : options_(options) {
  if (options_.metrics != nullptr) {
    MetricsRegistry& r = *options_.metrics;
    metrics_.submitted = &r.counter("service.submitted");
    metrics_.rejected_queue = &r.counter("service.rejected_queue");
    metrics_.rejected_budget = &r.counter("service.rejected_budget");
    metrics_.admitted = &r.counter("service.admitted");
    metrics_.completed = &r.counter("service.completed");
    metrics_.failed = &r.counter("service.failed");
    metrics_.steps = &r.counter("service.steps");
    metrics_.waves = &r.counter("service.waves");
    metrics_.checkpoints = &r.counter("service.checkpoints");
    metrics_.checkpoint_bytes = &r.counter("service.checkpoint_bytes");
  }
}

CdbService::~CdbService() = default;

void CdbService::Bump(Counter* counter, int64_t delta) {
  if (counter != nullptr) counter->Increment(delta);
}

int64_t CdbService::QueryCost(const ExecutorOptions& options) const {
  return options.budget.value_or(options_.default_query_cost);
}

Result<int64_t> CdbService::Enqueue(PendingQuery pending) {
  const int64_t cost = QueryCost(pending.options);
  MutexLock lock(mutex_);
  if (static_cast<int>(pending_.size()) >= options_.max_pending) {
    ++rejected_queue_;
    Bump(metrics_.rejected_queue);
    return Status::ResourceExhausted(
        "service submit queue is full (max_pending=" +
        std::to_string(options_.max_pending) + "); retry after a wave");
  }
  auto it = tenants_.find(pending.tenant);
  if (it == tenants_.end()) {
    it = tenants_
             .emplace(pending.tenant,
                      std::make_unique<BudgetLedger>(options_.tenant_budget))
             .first;
  }
  // All-or-nothing: a rejected query must not strand a partial grant.
  if (!it->second->TrySpend(cost)) {
    ++rejected_budget_;
    Bump(metrics_.rejected_budget);
    return Status::ResourceExhausted(
        "tenant '" + pending.tenant + "' budget cannot cover query cost " +
        std::to_string(cost));
  }
  const int64_t id = next_id_++;
  pending.id = id;
  ++submitted_;
  Bump(metrics_.submitted);
  pending_.push_back(std::move(pending));
  return id;
}

Result<int64_t> CdbService::Submit(std::string_view tenant,
                                   const ResolvedQuery* query,
                                   const ExecutorOptions& options,
                                   EdgeTruthFn truth) {
  PendingQuery pending;
  pending.tenant = std::string(tenant);
  pending.query = query;
  pending.options = options;
  pending.truth = std::move(truth);
  return Enqueue(std::move(pending));
}

Result<int64_t> CdbService::SubmitRestored(std::string_view tenant,
                                           const ResolvedQuery* query,
                                           const ExecutorOptions& options,
                                           EdgeTruthFn truth,
                                           std::string snapshot) {
  PendingQuery pending;
  pending.tenant = std::string(tenant);
  pending.query = query;
  pending.options = options;
  pending.truth = std::move(truth);
  pending.snapshot = std::move(snapshot);
  pending.restored = true;
  return Enqueue(std::move(pending));
}

void CdbService::AdmitFromQueue() {
  std::vector<PendingQuery> admitted;
  {
    MutexLock lock(mutex_);
    while (!pending_.empty() &&
           static_cast<int>(live_.size()) + static_cast<int>(admitted.size()) <
               options_.max_live_sessions) {
      admitted.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
  }
  // Session construction (graph options copy, platform wiring) happens
  // outside the lock so submitters are never stalled behind it.
  for (PendingQuery& p : admitted) {
    auto session = std::make_unique<QuerySession>(p.query, p.options,
                                                 std::move(p.truth));
    if (p.restored) {
      Status restored = session->Restore(p.snapshot);
      if (!restored.ok()) {
        finished_.emplace(p.id, Result<ExecutionResult>(std::move(restored)));
        ++driver_stats_.failed;
        Bump(metrics_.failed);
        continue;
      }
    }
    ++driver_stats_.admitted;
    Bump(metrics_.admitted);
    live_.emplace(p.id, LiveSession{std::move(p.tenant), std::move(session)});
  }
}

std::vector<int64_t> CdbService::WaveOrder() const {
  // Group by tenant (std::map: deterministic order), then deal one session
  // per tenant per turn so every tenant advances at the same per-wave rate.
  std::map<std::string, std::vector<int64_t>> by_tenant;
  for (const auto& [id, live] : live_) {
    by_tenant[live.tenant].push_back(id);
  }
  std::vector<int64_t> order;
  order.reserve(live_.size());
  size_t turn = 0;
  for (bool dealt = true; dealt; ++turn) {
    dealt = false;
    for (const auto& [tenant, ids] : by_tenant) {
      if (turn < ids.size()) {
        order.push_back(ids[turn]);
        dealt = true;
      }
    }
  }
  return order;
}

int64_t CdbService::StepWave() {
  WallTimer timer;
  AdmitFromQueue();
  const std::vector<int64_t> order = WaveOrder();

  // Step every live session one phase. Sessions are independent (own
  // platform, own RNG streams), so parallel waves leave per-session state
  // bit-identical to serial ones; disjoint slots collect the outcomes.
  std::vector<std::optional<Result<bool>>> outcomes(order.size());
  ParallelFor(
      0, static_cast<int64_t>(order.size()), /*grain=*/1,
      [&](int64_t begin, int64_t end, int /*worker*/) {
        for (int64_t i = begin; i < end; ++i) {
          outcomes[static_cast<size_t>(i)] =
              live_.at(order[static_cast<size_t>(i)]).session->Step();
        }
      },
      options_.num_threads);

  for (size_t i = 0; i < order.size(); ++i) {
    const int64_t id = order[i];
    Result<bool>& outcome = *outcomes[i];
    if (!outcome.ok()) {
      finished_.emplace(id, Result<ExecutionResult>(outcome.status()));
      ++driver_stats_.failed;
      Bump(metrics_.failed);
      live_.erase(id);
      continue;
    }
    if (!outcome.value()) {
      finished_.emplace(id, Result<ExecutionResult>(
                                live_.at(id).session->TakeResult()));
      ++driver_stats_.completed;
      Bump(metrics_.completed);
      live_.erase(id);
    }
  }

  const int64_t stepped = static_cast<int64_t>(order.size());
  driver_stats_.steps += stepped;
  Bump(metrics_.steps, stepped);
  ++driver_stats_.waves;
  Bump(metrics_.waves);

  if (options_.checkpoint_interval > 0 &&
      driver_stats_.waves % options_.checkpoint_interval == 0 &&
      !live_.empty()) {
    CheckpointAll();
  }

  if (options_.tracer != nullptr) {
    const int64_t wave = driver_stats_.waves;
    options_.tracer->AddSpan(
        "service.wave", "service", wave - 1, wave,
        options_.tracer->record_wall() ? timer.ElapsedMicros() : -1);
  }
  return stepped;
}

void CdbService::RunUntilDrained() {
  while (HasWork()) StepWave();
}

bool CdbService::HasWork() const {
  if (!live_.empty()) return true;
  MutexLock lock(mutex_);
  return !pending_.empty();
}

Result<ExecutionResult> CdbService::TakeResult(int64_t session_id) {
  auto it = finished_.find(session_id);
  if (it == finished_.end()) {
    return Status::NotFound("no finished session with id " +
                            std::to_string(session_id));
  }
  Result<ExecutionResult> result = std::move(it->second);
  finished_.erase(it);
  return result;
}

std::map<int64_t, std::string> CdbService::CheckpointAll() {
  std::map<int64_t, std::string> bundle;
  int64_t bytes = 0;
  for (const auto& [id, live] : live_) {
    std::string blob = live.session->Snapshot();
    bytes += static_cast<int64_t>(blob.size());
    bundle.emplace(id, std::move(blob));
  }
  ++driver_stats_.checkpoints;
  driver_stats_.checkpoint_bytes += bytes;
  Bump(metrics_.checkpoints);
  Bump(metrics_.checkpoint_bytes, bytes);
  last_checkpoint_ = bundle;
  return bundle;
}

ServiceStats CdbService::stats() const {
  ServiceStats stats = driver_stats_;
  MutexLock lock(mutex_);
  stats.submitted = submitted_;
  stats.rejected_queue = rejected_queue_;
  stats.rejected_budget = rejected_budget_;
  return stats;
}

int64_t CdbService::num_pending() const {
  MutexLock lock(mutex_);
  return static_cast<int64_t>(pending_.size());
}

}  // namespace cdb
