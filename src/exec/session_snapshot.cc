// QuerySession::Snapshot()/Restore(): the durable checkpoint format behind
// the service layer (exec/service.h).
//
// Layout (version 2, all little-endian, FNV-1a 64 trailer over everything
// before it):
//
//   magic u32 | version u32 | phase u8
//   graph_built bool | [num_edges u32 | color u8 ... | provenance u8 ...]
//   sampling_order | all_observations | worker_quality | posteriors
//   budget spent i64
//   ordered | round_edges | round_tasks | inference
//   answers_received i64 | result (answers + full ExecutionStats)
//   owned_platform bool | [platform state (crowd/platform.cc)]
//   checksum u64
//
// The graph itself is deliberately NOT serialized: QueryGraph::Build is
// deterministic given (query, options), so Restore() rebuilds it and
// re-applies only the snapshot's edge colors. That keeps blobs a few KB for
// graphs with tens of thousands of edges, and it is what ties the snapshot
// to its query — an edge-count or color mismatch is a typed error.
//
// Doubles (posteriors, worker qualities, stats) travel as IEEE-754 bit
// patterns, and observation order is preserved exactly: EM folds floats in
// observation order, so a reordered restore would be numerically different.
// Restore-then-run being byte-identical to run-straight-through (colors,
// MetricsDump, PlatformStatsDump) is asserted by the crash-point sweep in
// tests/service_test.cc.
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/serialize.h"
#include "exec/session.h"

namespace cdb {
namespace {

constexpr uint32_t kSessionSnapshotMagic = 0x43444253U;  // "CDBS".

void PutEdgeList(ByteWriter& writer, const std::vector<EdgeId>& edges) {
  writer.PutU32(static_cast<uint32_t>(edges.size()));
  for (EdgeId e : edges) writer.PutI32(e);
}

Status GetEdgeList(ByteReader& reader, std::vector<EdgeId>* edges) {
  uint32_t n = 0;
  CDB_RETURN_IF_ERROR(reader.GetU32(&n));
  edges->assign(n, kNoEdge);
  for (uint32_t i = 0; i < n; ++i) {
    CDB_RETURN_IF_ERROR(reader.GetI32(&(*edges)[i]));
  }
  return Status::Ok();
}

void PutInt64List(ByteWriter& writer, const std::vector<int64_t>& values) {
  writer.PutU32(static_cast<uint32_t>(values.size()));
  for (int64_t v : values) writer.PutI64(v);
}

Status GetInt64List(ByteReader& reader, std::vector<int64_t>* values) {
  uint32_t n = 0;
  CDB_RETURN_IF_ERROR(reader.GetU32(&n));
  values->assign(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    CDB_RETURN_IF_ERROR(reader.GetI64(&(*values)[i]));
  }
  return Status::Ok();
}

void PutObservations(ByteWriter& writer,
                     const std::vector<ChoiceObservation>& obs) {
  writer.PutU32(static_cast<uint32_t>(obs.size()));
  for (const ChoiceObservation& o : obs) {
    writer.PutI64(o.task);
    writer.PutI32(o.worker);
    writer.PutI32(o.choice);
  }
}

Status GetObservations(ByteReader& reader,
                       std::vector<ChoiceObservation>* obs) {
  uint32_t n = 0;
  CDB_RETURN_IF_ERROR(reader.GetU32(&n));
  obs->assign(n, ChoiceObservation{});
  for (uint32_t i = 0; i < n; ++i) {
    ChoiceObservation& o = (*obs)[i];
    CDB_RETURN_IF_ERROR(reader.GetI64(&o.task));
    CDB_RETURN_IF_ERROR(reader.GetI32(&o.worker));
    CDB_RETURN_IF_ERROR(reader.GetI32(&o.choice));
  }
  return Status::Ok();
}

void PutWorkerQuality(ByteWriter& writer, const std::map<int, double>& wq) {
  writer.PutU32(static_cast<uint32_t>(wq.size()));
  for (const auto& [worker, quality] : wq) {
    writer.PutI32(worker);
    writer.PutDouble(quality);
  }
}

Status GetWorkerQuality(ByteReader& reader, std::map<int, double>* wq) {
  uint32_t n = 0;
  CDB_RETURN_IF_ERROR(reader.GetU32(&n));
  wq->clear();
  for (uint32_t i = 0; i < n; ++i) {
    int32_t worker = 0;
    double quality = 0.0;
    CDB_RETURN_IF_ERROR(reader.GetI32(&worker));
    CDB_RETURN_IF_ERROR(reader.GetDouble(&quality));
    (*wq)[worker] = quality;
  }
  return Status::Ok();
}

void PutPosteriors(ByteWriter& writer,
                   const std::map<TaskId, std::vector<double>>& posteriors) {
  writer.PutU32(static_cast<uint32_t>(posteriors.size()));
  for (const auto& [task, dist] : posteriors) {
    writer.PutI64(task);
    writer.PutU32(static_cast<uint32_t>(dist.size()));
    for (double p : dist) writer.PutDouble(p);
  }
}

Status GetPosteriors(ByteReader& reader,
                     std::map<TaskId, std::vector<double>>* posteriors) {
  uint32_t n = 0;
  CDB_RETURN_IF_ERROR(reader.GetU32(&n));
  posteriors->clear();
  for (uint32_t i = 0; i < n; ++i) {
    TaskId task = 0;
    uint32_t len = 0;
    CDB_RETURN_IF_ERROR(reader.GetI64(&task));
    CDB_RETURN_IF_ERROR(reader.GetU32(&len));
    std::vector<double> dist(len);
    for (uint32_t j = 0; j < len; ++j) {
      CDB_RETURN_IF_ERROR(reader.GetDouble(&dist[j]));
    }
    (*posteriors)[task] = std::move(dist);
  }
  return Status::Ok();
}

void PutTask(ByteWriter& writer, const Task& task) {
  writer.PutI64(task.id);
  writer.PutU8(static_cast<uint8_t>(task.type));
  writer.PutString(task.question);
  writer.PutU32(static_cast<uint32_t>(task.choices.size()));
  for (const std::string& choice : task.choices) writer.PutString(choice);
  writer.PutI64(task.payload);
  writer.PutI32(task.redundancy_override);
  writer.PutI32(task.batch_tag);
}

Status GetTask(ByteReader& reader, Task* task) {
  CDB_RETURN_IF_ERROR(reader.GetI64(&task->id));
  uint8_t type = 0;
  CDB_RETURN_IF_ERROR(reader.GetU8(&type));
  if (type > static_cast<uint8_t>(TaskType::kCollection)) {
    return Status::DataLoss("session snapshot: unknown task type " +
                            std::to_string(type));
  }
  task->type = static_cast<TaskType>(type);
  CDB_RETURN_IF_ERROR(reader.GetString(&task->question));
  uint32_t n = 0;
  CDB_RETURN_IF_ERROR(reader.GetU32(&n));
  task->choices.assign(n, std::string());
  for (uint32_t i = 0; i < n; ++i) {
    CDB_RETURN_IF_ERROR(reader.GetString(&task->choices[i]));
  }
  CDB_RETURN_IF_ERROR(reader.GetI64(&task->payload));
  CDB_RETURN_IF_ERROR(reader.GetI32(&task->redundancy_override));
  CDB_RETURN_IF_ERROR(reader.GetI32(&task->batch_tag));
  return Status::Ok();
}

void PutStats(ByteWriter& writer, const ExecutionStats& stats) {
  writer.PutI64(stats.tasks_asked);
  writer.PutI64(stats.rounds);
  writer.PutI64(stats.worker_answers);
  writer.PutI64(stats.hits_published);
  writer.PutDouble(stats.dollars_spent);
  // selection_ms is deliberately absent: it is a wall-clock profiling
  // accumulator, the one ExecutionStats field that differs between two runs
  // of equal state. Serializing it would break the blob's determinism;
  // a restored session accumulates its own process's timing instead.
  PutInt64List(writer, stats.round_sizes);
  writer.PutI64(stats.reposted_tasks);
  writer.PutI64(stats.late_answers);
  writer.PutI64(stats.recolored_edges);
  writer.PutI64(stats.fallback_colored);
  PutInt64List(writer, stats.starved_task_ids);
  writer.PutU32(static_cast<uint32_t>(stats.unique_answers_per_task.size()));
  for (const auto& [task, n] : stats.unique_answers_per_task) {
    writer.PutI64(task);
    writer.PutI64(n);
  }
  for (const PhaseCounters& pc : stats.phases) {
    writer.PutI64(pc.steps);
    writer.PutI64(pc.tasks);
    writer.PutI64(pc.answers);
  }
  writer.PutI64(stats.dedup_tasks_saved);
  writer.PutI64(stats.deduced_edges);
  writer.PutI64(stats.deduction_invalidations);
  SnapshotPlatformStats(writer, stats.platform);
}

Status GetStats(ByteReader& reader, ExecutionStats* stats) {
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->tasks_asked));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->rounds));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->worker_answers));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->hits_published));
  CDB_RETURN_IF_ERROR(reader.GetDouble(&stats->dollars_spent));
  CDB_RETURN_IF_ERROR(GetInt64List(reader, &stats->round_sizes));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->reposted_tasks));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->late_answers));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->recolored_edges));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->fallback_colored));
  CDB_RETURN_IF_ERROR(GetInt64List(reader, &stats->starved_task_ids));
  uint32_t n = 0;
  CDB_RETURN_IF_ERROR(reader.GetU32(&n));
  stats->unique_answers_per_task.clear();
  for (uint32_t i = 0; i < n; ++i) {
    int64_t task = 0;
    int64_t count = 0;
    CDB_RETURN_IF_ERROR(reader.GetI64(&task));
    CDB_RETURN_IF_ERROR(reader.GetI64(&count));
    stats->unique_answers_per_task[task] = count;
  }
  for (PhaseCounters& pc : stats->phases) {
    CDB_RETURN_IF_ERROR(reader.GetI64(&pc.steps));
    CDB_RETURN_IF_ERROR(reader.GetI64(&pc.tasks));
    CDB_RETURN_IF_ERROR(reader.GetI64(&pc.answers));
  }
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->dedup_tasks_saved));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->deduced_edges));
  CDB_RETURN_IF_ERROR(reader.GetI64(&stats->deduction_invalidations));
  CDB_RETURN_IF_ERROR(RestorePlatformStats(reader, &stats->platform));
  return Status::Ok();
}

}  // namespace

std::string QuerySession::Snapshot() const {
  CDB_CHECK_MSG(!waiting_for_answers(),
                "Snapshot() while the scheduler owes this session a round of "
                "answers; snapshot between scheduling rounds instead");
  ByteWriter writer;
  writer.PutU32(kSessionSnapshotMagic);
  writer.PutU32(kSnapshotVersion);
  writer.PutU8(static_cast<uint8_t>(phase_));

  // Graph colors only; structure rebuilds from the query (file comment).
  const bool graph_built = phase_ != SessionPhase::kBuildGraph;
  writer.PutBool(graph_built);
  if (graph_built) {
    writer.PutU32(static_cast<uint32_t>(graph_.num_edges()));
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      writer.PutU8(static_cast<uint8_t>(graph_.edge(e).color));
    }
    // Color provenance rides next to the colors: a restored session must
    // know which colors are deductions (invalidatable) and which are crowd
    // evidence (the deduction domains' rebuild inputs).
    for (uint8_t provenance : edge_provenance_) writer.PutU8(provenance);
  }

  PutEdgeList(writer, sampling_order_);
  PutObservations(writer, all_observations_);
  PutWorkerQuality(writer, worker_quality_);
  PutPosteriors(writer, posteriors_);
  writer.PutI64(budget_.spent());
  PutEdgeList(writer, ordered_);
  PutEdgeList(writer, round_edges_);
  writer.PutU32(static_cast<uint32_t>(round_tasks_.size()));
  for (const Task& task : round_tasks_) PutTask(writer, task);
  PutPosteriors(writer, inference_.posteriors);
  PutWorkerQuality(writer, inference_.worker_quality);
  writer.PutI64(answers_received_);

  writer.PutU32(static_cast<uint32_t>(result_.answers.size()));
  for (const QueryAnswer& answer : result_.answers) {
    PutInt64List(writer, answer.rows);
  }
  PutStats(writer, result_.stats);

  // Standalone sessions own their platform; its rng/clock/lease state rides
  // in the same blob. Scheduler-mode sessions publish through a shared
  // platform the scheduler checkpoints itself.
  writer.PutBool(!external_publish_);
  if (!external_publish_) {
    owned_publisher_->SnapshotState(writer);
  }

  writer.PutU64(SnapshotChecksum(writer.data()));
  return writer.Take();
}

Status QuerySession::Restore(std::string_view blob) {
  if (phase_ != SessionPhase::kBuildGraph || !all_observations_.empty()) {
    return Status::FailedPrecondition(
        "Restore() requires a freshly-constructed session");
  }
  if (blob.size() < sizeof(uint64_t)) {
    return Status::DataLoss("session snapshot shorter than its checksum");
  }
  std::string_view payload = blob.substr(0, blob.size() - sizeof(uint64_t));
  ByteReader trailer(blob.substr(payload.size()));
  uint64_t checksum = 0;
  CDB_RETURN_IF_ERROR(trailer.GetU64(&checksum));
  if (checksum != SnapshotChecksum(payload)) {
    return Status::DataLoss("session snapshot checksum mismatch");
  }

  ByteReader reader(payload);
  uint32_t magic = 0;
  uint32_t version = 0;
  CDB_RETURN_IF_ERROR(reader.GetU32(&magic));
  CDB_RETURN_IF_ERROR(reader.GetU32(&version));
  if (magic != kSessionSnapshotMagic) {
    return Status::DataLoss("session snapshot magic mismatch");
  }
  if (version != kSnapshotVersion) {
    return Status::FailedPrecondition(
        "session snapshot version " + std::to_string(version) +
        " not supported (expected " + std::to_string(kSnapshotVersion) + ")");
  }
  uint8_t phase_byte = 0;
  CDB_RETURN_IF_ERROR(reader.GetU8(&phase_byte));
  if (phase_byte >= kNumSessionPhases) {
    return Status::DataLoss("session snapshot: phase byte " +
                            std::to_string(phase_byte) + " out of range");
  }

  // Rebuild the graph the same way StepBuildGraph does, minus its side
  // effects: no golden warm-up republish (those answers are in the
  // observation set below), no sim_metrics sink (the registry snapshot
  // already holds the build-time funnel counters — routing them again would
  // double-count), and no re-derived sampling order (restored verbatim, so
  // selection_ms is not double-charged either).
  bool graph_built = false;
  CDB_RETURN_IF_ERROR(reader.GetBool(&graph_built));
  if (graph_built) {
    GraphOptions graph_options = options_.graph;
    graph_options.sim_metrics = nullptr;
    CDB_ASSIGN_OR_RETURN(graph_, QueryGraph::Build(*query_, graph_options));
    uint32_t num_edges = 0;
    CDB_RETURN_IF_ERROR(reader.GetU32(&num_edges));
    if (num_edges != static_cast<uint32_t>(graph_.num_edges())) {
      return Status::FailedPrecondition(
          "session snapshot edge count " + std::to_string(num_edges) +
          " does not match the rebuilt graph (" +
          std::to_string(graph_.num_edges()) +
          " edges); snapshot belongs to a different query");
    }
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      uint8_t color_byte = 0;
      CDB_RETURN_IF_ERROR(reader.GetU8(&color_byte));
      if (color_byte > static_cast<uint8_t>(EdgeColor::kRed)) {
        return Status::DataLoss("session snapshot: edge color byte " +
                                std::to_string(color_byte) + " out of range");
      }
      EdgeColor want = static_cast<EdgeColor>(color_byte);
      EdgeColor have = graph_.edge(e).color;
      if (want == have) continue;
      if (have != EdgeColor::kUnknown) {
        return Status::FailedPrecondition(
            "session snapshot colors disagree with the rebuilt graph's "
            "born-colored edge " + std::to_string(e));
      }
      graph_.SetColor(e, want);
    }
    edge_provenance_.assign(static_cast<size_t>(graph_.num_edges()),
                            static_cast<uint8_t>(EdgeProvenance::kNone));
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      uint8_t provenance = 0;
      CDB_RETURN_IF_ERROR(reader.GetU8(&provenance));
      if (provenance > static_cast<uint8_t>(EdgeProvenance::kFallback)) {
        return Status::DataLoss("session snapshot: edge provenance byte " +
                                std::to_string(provenance) + " out of range");
      }
      edge_provenance_[static_cast<size_t>(e)] = provenance;
    }
    pruner_.emplace(&graph_);
    pruner_->Recompute();
    // The deduction domains are transient: re-observing the crowd-evidenced
    // colors in ascending edge order rebuilds the same partition and fact
    // set the snapshotted session held (both are order-independent in the
    // observed set). Deduced colors are already in the restored graph, so no
    // re-deduction sweep runs — and none is needed, the restored state was
    // already a closure.
    if (options_.propagation.enabled) {
      deduction_.emplace(&graph_);
      for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
        if (edge_provenance_[static_cast<size_t>(e)] ==
            static_cast<uint8_t>(EdgeProvenance::kAsked)) {
          deduction_->Observe(e, graph_.edge_color(e));
        }
      }
    }
    // The optimizer's structure cache is transient: rebuilt from the graph
    // under the same conditions StepBuildGraph uses, never serialized.
    if (!options_.budget && options_.cost_method == CostMethod::kSampling &&
        !options_.sampling_legacy_selection) {
      structure_cache_.emplace(StructureCache::Build(graph_));
    }
  }

  CDB_RETURN_IF_ERROR(GetEdgeList(reader, &sampling_order_));
  CDB_RETURN_IF_ERROR(GetObservations(reader, &all_observations_));
  CDB_RETURN_IF_ERROR(GetWorkerQuality(reader, &worker_quality_));
  CDB_RETURN_IF_ERROR(GetPosteriors(reader, &posteriors_));
  int64_t budget_spent = 0;
  CDB_RETURN_IF_ERROR(reader.GetI64(&budget_spent));
  if (budget_spent < 0) {
    return Status::DataLoss("session snapshot: negative budget spend");
  }
  // Replay the spend through the ledger's own primitive; a fresh ledger with
  // the same limit grants it in full.
  if (budget_.TryDebit(budget_spent) != budget_spent) {
    return Status::FailedPrecondition(
        "session snapshot budget spend exceeds this session's budget limit");
  }
  CDB_RETURN_IF_ERROR(GetEdgeList(reader, &ordered_));
  CDB_RETURN_IF_ERROR(GetEdgeList(reader, &round_edges_));
  uint32_t num_tasks = 0;
  CDB_RETURN_IF_ERROR(reader.GetU32(&num_tasks));
  round_tasks_.assign(num_tasks, Task{});
  for (uint32_t i = 0; i < num_tasks; ++i) {
    CDB_RETURN_IF_ERROR(GetTask(reader, &round_tasks_[i]));
  }
  CDB_RETURN_IF_ERROR(GetPosteriors(reader, &inference_.posteriors));
  CDB_RETURN_IF_ERROR(GetWorkerQuality(reader, &inference_.worker_quality));
  CDB_RETURN_IF_ERROR(reader.GetI64(&answers_received_));

  uint32_t num_answers = 0;
  CDB_RETURN_IF_ERROR(reader.GetU32(&num_answers));
  result_.answers.assign(num_answers, QueryAnswer{});
  for (uint32_t i = 0; i < num_answers; ++i) {
    CDB_RETURN_IF_ERROR(GetInt64List(reader, &result_.answers[i].rows));
  }
  CDB_RETURN_IF_ERROR(GetStats(reader, &result_.stats));

  bool owned_platform = false;
  CDB_RETURN_IF_ERROR(reader.GetBool(&owned_platform));
  if (owned_platform != !external_publish_) {
    return Status::FailedPrecondition(
        "session snapshot publisher mode (standalone vs scheduler) does not "
        "match this session");
  }
  if (owned_platform) {
    CDB_RETURN_IF_ERROR(owned_publisher_->RestoreState(reader));
  }
  if (reader.remaining() != 0) {
    return Status::DataLoss("session snapshot has trailing bytes");
  }

  // Derived state: the dedup guard is a pure index over the observation log.
  seen_observations_.clear();
  for (const ChoiceObservation& o : all_observations_) {
    seen_observations_.insert({o.task, o.worker});
  }
  // publisher_ already points at owned_publisher_ (standalone) or the
  // scheduler's channel (external); only the phase advances.
  phase_ = static_cast<SessionPhase>(phase_byte);
  return Status::Ok();
}

void PlatformPublisher::SnapshotState(ByteWriter& writer) const {
  writer.PutBool(single_ != nullptr);
  if (single_ != nullptr) {
    single_->SnapshotState(writer);
  } else {
    multi_->SnapshotState(writer);
  }
}

Status PlatformPublisher::RestoreState(ByteReader& reader) {
  bool is_single = false;
  CDB_RETURN_IF_ERROR(reader.GetBool(&is_single));
  if (is_single != (single_ != nullptr)) {
    return Status::FailedPrecondition(
        "platform snapshot deployment shape (single vs multi-market) does "
        "not match this publisher");
  }
  return single_ != nullptr ? single_->RestoreState(reader)
                            : multi_->RestoreState(reader);
}

}  // namespace cdb
