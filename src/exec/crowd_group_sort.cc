#include "exec/crowd_group_sort.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/logging.h"
#include "exec/session.h"
#include "quality/truth_inference.h"
#include "similarity/sim_join.h"

namespace cdb {
namespace {

// Majority truth per task from one round of answers, via the shared
// truth-inference module (ties resolve to choice 0, "yes"/"first").
InferenceResult MajorityPerRound(const std::vector<Answer>& answers) {
  std::vector<ChoiceObservation> obs;
  obs.reserve(answers.size());
  for (const Answer& answer : answers) {
    obs.push_back({answer.task, answer.worker, answer.choice});
  }
  return InferSingleChoiceMajority(obs, 2);
}

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int Find(int x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

CrowdGroupResult CrowdGroupBy(const std::vector<std::string>& values,
                              const CrowdGroupOptions& options,
                              const GroupTruthFn& truth) {
  CrowdGroupResult result;
  result.group_of.assign(values.size(), -1);
  if (values.empty()) return result;

  // Candidate pairs above epsilon, most-similar first (likely matches merge
  // clusters early, which saves the most downstream questions).
  std::vector<SimPair> raw =
      SimilarityJoin(values, values, options.sim_fn, options.epsilon);
  std::vector<SimPair> pairs;
  for (const SimPair& pair : raw) {
    if (pair.left < pair.right) pairs.push_back(pair);
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const SimPair& a, const SimPair& b) { return a.sim > b.sim; });

  // Tasks are identified by their index in `pairs`. All rounds go through
  // the session publish path.
  PlatformPublisher publisher(options.platform, [&](const Task& task) {
    const SimPair& pair = pairs[static_cast<size_t>(task.payload)];
    TaskTruth t;
    t.correct_choice = truth(static_cast<size_t>(pair.left),
                             static_cast<size_t>(pair.right))
                           ? 0
                           : 1;
    return t;
  });

  UnionFind clusters(values.size());
  std::vector<std::pair<int, int>> non_matches;
  size_t next = 0;
  std::vector<SimPair> remaining = pairs;
  while (next < remaining.size()) {
    // One round: skip inferable pairs; batch at most one open question per
    // cluster so this round's merges can infer the deferred pairs.
    std::vector<size_t> batch;           // Indexes into `pairs`.
    std::vector<SimPair> deferred;
    std::unordered_set<int> clusters_in_batch;
    for (size_t i = next; i < remaining.size(); ++i) {
      const SimPair& pair = remaining[i];
      int ra = clusters.Find(pair.left);
      int rb = clusters.Find(pair.right);
      if (ra == rb) continue;  // Inferred match (transitivity).
      bool known_non_match = false;
      for (const auto& [x, y] : non_matches) {
        int rx = clusters.Find(x);
        int ry = clusters.Find(y);
        if ((rx == ra && ry == rb) || (rx == rb && ry == ra)) {
          known_non_match = true;
          break;
        }
      }
      if (known_non_match) continue;
      if (clusters_in_batch.count(ra) > 0 || clusters_in_batch.count(rb) > 0) {
        deferred.push_back(pair);
        continue;
      }
      clusters_in_batch.insert(ra);
      clusters_in_batch.insert(rb);
      // Recover the original index for the truth callback.
      batch.push_back(static_cast<size_t>(&pair - remaining.data()));
    }
    if (batch.empty()) break;

    std::vector<Task> tasks;
    std::vector<SimPair> batch_pairs;
    tasks.reserve(batch.size());
    for (size_t bi : batch) {
      const SimPair& pair = remaining[bi];
      // Find the pair's index in the original vector for stable task ids.
      Task task;
      task.id = static_cast<TaskId>(result.tasks_asked + static_cast<int64_t>(tasks.size()));
      task.type = TaskType::kSingleChoice;
      task.question = "Do \"" + values[static_cast<size_t>(pair.left)] +
                      "\" and \"" + values[static_cast<size_t>(pair.right)] +
                      "\" belong to the same group?";
      task.choices = {"yes", "no"};
      // payload must index into `pairs` for the truth provider: locate it.
      task.payload = -1;
      for (size_t pi = 0; pi < pairs.size(); ++pi) {
        if (pairs[pi].left == pair.left && pairs[pi].right == pair.right) {
          task.payload = static_cast<int64_t>(pi);
          break;
        }
      }
      CDB_CHECK(task.payload >= 0);
      batch_pairs.push_back(pair);
      tasks.push_back(std::move(task));
    }
    InferenceResult majority =
        MajorityPerRound(publisher.Publish(tasks, nullptr, nullptr).value());
    for (size_t t = 0; t < tasks.size(); ++t) {
      const SimPair& pair = batch_pairs[t];
      if (majority.Truth(tasks[t].id) == 0) {
        clusters.Union(pair.left, pair.right);
      } else {
        non_matches.push_back({pair.left, pair.right});
      }
    }
    result.tasks_asked += static_cast<int64_t>(tasks.size());
    ++result.rounds;
    remaining = deferred;
    next = 0;
  }

  // Densify cluster ids.
  std::map<int, int> dense;
  for (size_t i = 0; i < values.size(); ++i) {
    int root = clusters.Find(static_cast<int>(i));
    auto [it, inserted] = dense.try_emplace(root, result.num_groups);
    if (inserted) ++result.num_groups;
    result.group_of[i] = it->second;
  }
  return result;
}

CrowdSortResult CrowdOrderBy(size_t n, const CrowdSortOptions& options,
                             const OrderTruthFn& truth) {
  CrowdSortResult result;
  if (n == 0) return result;

  // Merge state: two runs plus cursors; comparisons are asked one per merge
  // per round (within a merge they are inherently sequential), all merges in
  // parallel.
  struct Merge {
    std::vector<size_t> a;
    std::vector<size_t> b;
    size_t ia = 0;
    size_t ib = 0;
    std::vector<size_t> out;
    bool Done() const { return ia >= a.size() && ib >= b.size(); }
  };

  // Tasks carry (a_element, b_element) encoded in the payload.
  struct PendingComparison {
    size_t merge_index;
    size_t left;
    size_t right;
  };
  std::vector<PendingComparison> pending;
  PlatformPublisher publisher(options.platform, [&](const Task& task) {
    const PendingComparison& cmp = pending[static_cast<size_t>(task.payload)];
    TaskTruth t;
    t.correct_choice = truth(cmp.left, cmp.right) ? 0 : 1;
    return t;
  });

  std::vector<std::vector<size_t>> runs(n);
  for (size_t i = 0; i < n; ++i) runs[i] = {i};

  while (runs.size() > 1) {
    std::vector<Merge> merges;
    std::vector<std::vector<size_t>> carry;
    for (size_t i = 0; i + 1 < runs.size(); i += 2) {
      Merge merge;
      merge.a = std::move(runs[i]);
      merge.b = std::move(runs[i + 1]);
      merges.push_back(std::move(merge));
    }
    if (runs.size() % 2 == 1) carry.push_back(std::move(runs.back()));

    while (true) {
      pending.clear();
      std::vector<Task> tasks;
      for (size_t m = 0; m < merges.size(); ++m) {
        Merge& merge = merges[m];
        // Drain exhausted sides without crowd help.
        while (merge.ia < merge.a.size() && merge.ib >= merge.b.size()) {
          merge.out.push_back(merge.a[merge.ia++]);
        }
        while (merge.ib < merge.b.size() && merge.ia >= merge.a.size()) {
          merge.out.push_back(merge.b[merge.ib++]);
        }
        if (merge.Done()) continue;
        Task task;
        task.id = static_cast<TaskId>(result.tasks_asked +
                                      static_cast<int64_t>(tasks.size()));
        task.type = TaskType::kSingleChoice;
        task.question = "Which item comes first?";
        task.choices = {"first", "second"};
        task.payload = static_cast<int64_t>(pending.size());
        pending.push_back({m, merge.a[merge.ia], merge.b[merge.ib]});
        tasks.push_back(std::move(task));
      }
      if (tasks.empty()) break;
      InferenceResult majority =
          MajorityPerRound(publisher.Publish(tasks, nullptr, nullptr).value());
      for (size_t t = 0; t < tasks.size(); ++t) {
        const PendingComparison& cmp = pending[static_cast<size_t>(tasks[t].payload)];
        Merge& merge = merges[cmp.merge_index];
        if (majority.Truth(tasks[t].id) == 0) {
          merge.out.push_back(merge.a[merge.ia++]);
        } else {
          merge.out.push_back(merge.b[merge.ib++]);
        }
      }
      result.tasks_asked += static_cast<int64_t>(tasks.size());
      ++result.rounds;
    }

    runs.clear();
    for (Merge& merge : merges) runs.push_back(std::move(merge.out));
    for (auto& run : carry) runs.push_back(std::move(run));
  }
  result.order = std::move(runs.front());
  return result;
}

}  // namespace cdb
