// The phase-structured query session: Algorithm 1 (Appendix B) as an explicit
// state machine instead of a run-to-completion loop.
//
// A QuerySession advances one phase per Step():
//
//   BuildGraph -> SelectTasks -> BatchRound -> Publish -> Collect
//        ^                          |                        |
//        |                          v (nothing left)         v
//      Prune <- Color <- Infer <----+------------------------+
//        |
//        v (budget/rounds exhausted, or SelectTasks finds nothing)
//      Done
//
// Because every platform interaction happens inside a phase and phases carry
// their own state, a session can be paused between any two Step() calls,
// resumed later, and interleaved with other sessions — the property
// MultiQueryScheduler (scheduler.h) builds on. The phase bodies are the old
// CdbExecutor::Run loop cut at its natural seams, preserving the exact
// sequence of publishes, clock advances, and late-answer drains, so a
// standalone session is byte-identical to the pre-session executor: same
// tasks, same rounds, same PlatformStatsDump, at every thread count.
//
// All crowd traffic leaves through a TaskPublisher. PlatformPublisher is the
// production implementation (one CrowdPlatform or a MultiMarket deployment)
// and, together with the scheduler's shared-platform channel, the only code
// allowed to call CrowdPlatform::ExecuteRound (the `single-publish-path`
// lint rule enforces this).
#ifndef CDB_EXEC_SESSION_H_
#define CDB_EXEC_SESSION_H_

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "cost/ledger.h"
#include "cost/structure_cache.h"
#include "cql/analyzer.h"
#include "crowd/platform.h"
#include "graph/candidates.h"
#include "graph/propagation.h"
#include "graph/pruning.h"
#include "graph/query_graph.h"
#include "latency/scheduler.h"
#include "quality/task_assignment.h"
#include "quality/truth_inference.h"

namespace cdb {

class Histogram;

// Simulation oracle: the true answer of an edge's yes/no task.
using EdgeTruthFn = std::function<bool(const QueryGraph&, EdgeId)>;

enum class CostMethod {
  kExpectation,  // Eq. 1 scores (the CDB default).
  kSampling,     // Sample-based min-cut greedy (the MinCut method).
};

// Requester-side robustness policy against an unreliable crowd (see
// PlatformOptions::fault): when a round comes back short — tasks
// dead-lettered by the platform or below the effective redundancy — the
// Collect phase reposts the shortfall with capped exponential backoff (the
// backoff advances the platform's virtual clock, modeling the requester
// waiting before republishing).
struct RetryOptions {
  bool enabled = true;
  int max_reposts = 3;             // Repost attempts per round.
  int64_t backoff_base_ticks = 2;  // Backoff before attempt k: base << (k-1),
  int64_t backoff_max_ticks = 64;  // capped here.
};

// Answer propagation (ROADMAP item 3; graph/propagation.h): fold each
// round's crowd-evidenced colors into per-predicate match clusters and
// deduce still-unknown edges by transitivity/anti-transitivity before the
// next selection runs, so deducible edges are never published. Off by
// default: the propagation-off executor is byte-identical to the pre-
// propagation one.
struct PropagationOptions {
  bool enabled = false;
  // Re-rank each round's candidate tasks by expected deduction yield (the
  // number of still-askable edges one answer for the task resolves — the
  // expected-optimal labeling-order heuristic), descending, stable over the
  // base cost-control order. Only read when `enabled` is set.
  bool expected_yield_order = true;
};

// How an edge's current color came to be (answer-propagation bookkeeping).
// Only kAsked colors feed the deduction domains: fallback colors are
// similarity-prior guesses, and treating a guess as a fact could merge two
// clusters a crowd answer separated.
enum class EdgeProvenance : uint8_t {
  kNone = 0,      // Uncolored, or a born-colored traditional edge.
  kAsked = 1,     // Crowd evidence (truth inference over real answers).
  kDeduced = 2,   // Transitive/anti-transitive deduction; no crowd evidence.
  kFallback = 3,  // Similarity-prior fallback; no crowd evidence either.
};

struct ExecutorOptions {
  CostMethod cost_method = CostMethod::kExpectation;
  bool quality_control = false;  // CDB+: EM inference + entropy assignment.
  LatencyMode latency_mode = LatencyMode::kVertexGreedy;
  double greedy_round_fraction = 0.34;  // See SelectParallelRound.
  GraphOptions graph;
  PlatformOptions platform;
  // Cross-market deployment (Section 2.2): when non-empty, tasks are
  // partitioned across these simulated markets instead of `platform`.
  std::vector<PlatformOptions> markets;
  // Golden tasks (Appendix E): with quality_control on, publish this many
  // known-truth warm-up tasks first and initialize worker qualities from the
  // answers (instead of the flat 0.7 prior).
  int golden_tasks = 0;
  int sampling_samples = 100;
  // Route the sampling min-cut through the legacy rebuild-per-sample
  // selection instead of the cached flat structures. Byte-identical task
  // orderings and colors either way (the optimizer identity suite proves
  // it); exists for tests and the perf-trajectory benches.
  bool sampling_legacy_selection = false;
  // Threads for the optimizer's parallel stages (sampling min-cut, EM truth
  // inference; graph.num_threads covers the build-time similarity joins):
  // <= 0 = all hardware threads, 1 = the exact serial path. Results are
  // bit-identical at every setting.
  int num_threads = 0;
  std::optional<int64_t> budget;     // Budget-aware mode (Section 5.1.3).
  std::optional<int> round_limit;    // Figure-22 latency constraint.
  RetryOptions retry;                // Timeout/repost policy under faults.
  PropagationOptions propagation;    // Transitive deduction (off = legacy).
  // Observability sinks (borrowed, may be null = disabled). Propagated into
  // the owned platform/markets; the session itself emits `session.*` metrics
  // and one tick-keyed span per Step().
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
};

// The session phases, in Step() order. kDone is terminal.
enum class SessionPhase : uint8_t {
  kBuildGraph = 0,  // Graph + pruner + sampling order + golden warm-up.
  kSelectTasks,     // Late-answer reconciliation + cost-control ordering.
  kBatchRound,      // Latency-control round selection + budget debit.
  kPublish,         // Hand the round's tasks to the TaskPublisher.
  kCollect,         // Requester-side shortfall reposts (RetryOptions).
  kInfer,           // Truth inference over all observations.
  kColor,           // Color this round's edges (fallback: similarity prior).
  kPrune,           // Pruner recompute + termination checks.
  kDone,
};

inline constexpr int kNumSessionPhases = 9;

const char* SessionPhaseName(SessionPhase phase);

// Per-phase accounting: how often the phase ran, and the tasks handed to the
// publisher / answers received (pre-dedup, late ones included) while it was
// the active phase.
struct PhaseCounters {
  int64_t steps = 0;
  int64_t tasks = 0;
  int64_t answers = 0;
};

struct ExecutionStats {
  int64_t tasks_asked = 0;
  int64_t rounds = 0;
  int64_t worker_answers = 0;
  int64_t hits_published = 0;
  double dollars_spent = 0.0;
  double selection_ms = 0.0;  // Time in task selection + round scheduling.
  std::vector<int64_t> round_sizes;
  // Fault-robustness accounting (all zero with a clean crowd).
  int64_t reposted_tasks = 0;    // Requester-side reposts published.
  int64_t late_answers = 0;      // Late answers reconciled into inference.
  int64_t recolored_edges = 0;   // Colors flipped by late-answer evidence.
  int64_t fallback_colored = 0;  // Edges colored by majority-so-far/prior
                                 // because inference had no answers for them.
  // Tasks that stayed below effective redundancy after the retry budget ran
  // out (sorted, unique). The DST harness exempts these from the
  // answers-per-task invariant.
  std::vector<int64_t> starved_task_ids;
  // Unique (task, worker) observations per published task id; lets tests
  // relate result quality to the evidence inference actually saw.
  std::map<int64_t, int64_t> unique_answers_per_task;
  // Per-phase step/task/answer counters, indexed by SessionPhase.
  std::array<PhaseCounters, kNumSessionPhases> phases{};
  // Tasks this session wanted that MultiQueryScheduler served from another
  // session's identical ask instead of publishing again (0 standalone).
  int64_t dedup_tasks_saved = 0;
  // Answer propagation (0 with propagation off): edges colored by
  // transitive/anti-transitive deduction instead of a crowd ask, and deduced
  // colors invalidated because late evidence flipped a premise (cumulative;
  // an edge re-deduced after an invalidation counts in both).
  int64_t deduced_edges = 0;
  int64_t deduction_invalidations = 0;
  // Final platform-side accounting (combined across markets); the DST
  // harness checks its conservation laws and byte-dumps it for determinism
  // comparisons.
  PlatformStats platform;
};

// One result tuple: the row index per base relation.
struct QueryAnswer {
  std::vector<int64_t> rows;

  friend bool operator==(const QueryAnswer& a, const QueryAnswer& b) {
    return a.rows == b.rows;
  }
  friend bool operator<(const QueryAnswer& a, const QueryAnswer& b) {
    return a.rows < b.rows;
  }
};

struct ExecutionResult {
  std::vector<QueryAnswer> answers;
  ExecutionStats stats;
};

// Where a session's crowd traffic goes. Publish() blocks until the round
// resolves and returns the on-time answers; the remaining calls mirror the
// CrowdPlatform fault-layer surface.
class TaskPublisher {
 public:
  virtual ~TaskPublisher() = default;

  virtual Result<std::vector<Answer>> Publish(
      const std::vector<Task>& tasks, const AssignmentPolicy* policy,
      const AnswerObserver* observer) = 0;
  virtual std::vector<Answer> TakeLateAnswers() = 0;
  virtual std::vector<TaskId> TakeDeadLetters() = 0;
  virtual void AdvanceTicks(int64_t ticks) = 0;
  // The redundancy a task can actually reach: the configured redundancy
  // capped by the worker-pool size (min across markets for a deployment).
  virtual int effective_redundancy() const = 0;
  virtual PlatformStats stats() const = 0;
};

// The production publisher: a single simulated platform or a cross-market
// deployment (Section 2.2) behind the uniform TaskPublisher surface.
class PlatformPublisher : public TaskPublisher {
 public:
  // Uses `markets` when non-empty, else `platform`.
  PlatformPublisher(const PlatformOptions& platform,
                    const std::vector<PlatformOptions>& markets,
                    TruthProvider truth);
  PlatformPublisher(const PlatformOptions& platform, TruthProvider truth)
      : PlatformPublisher(platform, {}, std::move(truth)) {}

  Result<std::vector<Answer>> Publish(const std::vector<Task>& tasks,
                                      const AssignmentPolicy* policy,
                                      const AnswerObserver* observer) override;
  std::vector<Answer> TakeLateAnswers() override;
  std::vector<TaskId> TakeDeadLetters() override;
  void AdvanceTicks(int64_t ticks) override;
  int effective_redundancy() const override;
  PlatformStats stats() const override;

  // Snapshot/restore of the wrapped deployment's cross-round state (see
  // CrowdPlatform::SnapshotState).
  void SnapshotState(ByteWriter& writer) const;
  Status RestoreState(ByteReader& reader);

  // The wrapped single platform; null for a multi-market deployment.
  CrowdPlatform* single_platform() { return single_.get(); }

 private:
  std::unique_ptr<CrowdPlatform> single_;
  std::unique_ptr<MultiMarket> multi_;
};

// One query's crowdsourcing run as a resumable state machine. See the file
// comment for the phase diagram.
//
// Thread affinity: driver-serial — a session is stepped by exactly one
// driver thread (its own Run loop, or the MultiQueryScheduler's round loop)
// and holds no locks. Parallelism lives below it (ParallelFor stages inside
// graph build/sampling) and beside it (the shared BudgetLedger, whose
// single-acquisition TryDebit/TrySpend calls are the session's only
// concurrency-safe touch points).
class QuerySession {
 public:
  // Standalone: the session builds its own PlatformPublisher from
  // options.platform / options.markets and drives rounds itself.
  // `query` (and the tables it borrows) must outlive the session.
  QuerySession(const ResolvedQuery* query, const ExecutorOptions& options,
               EdgeTruthFn truth);

  // Scheduler mode: crowd traffic goes through `publisher` (borrowed, must
  // outlive the session). The session parks at kPublish with pending_tasks()
  // exposed until the scheduler calls DeliverAnswers(); golden warm-up and
  // Collect-phase reposts still go through `publisher` directly.
  QuerySession(const ResolvedQuery* query, const ExecutorOptions& options,
               EdgeTruthFn truth, TaskPublisher* publisher);

  ~QuerySession();
  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  // Advances exactly one phase. Returns true while the session has more work
  // and false once it is done. Must not be called while
  // waiting_for_answers(); RunToCompletion() and the scheduler handle that.
  Result<bool> Step();

  // Steps the session to completion (standalone sessions only) and returns
  // the result.
  Result<ExecutionResult> RunToCompletion();

  SessionPhase phase() const { return phase_; }
  bool done() const { return phase_ == SessionPhase::kDone; }

  // Scheduler mode: true when the session sits at kPublish with a round
  // ready; the scheduler reads pending_tasks(), publishes them (merged and
  // deduplicated with other sessions), and resumes via DeliverAnswers().
  bool waiting_for_answers() const;
  const std::vector<Task>& pending_tasks() const { return round_tasks_; }
  void DeliverAnswers(const std::vector<Answer>& answers);

  // Ground truth for one of this session's tasks (golden or edge); the
  // scheduler's shared platform routes truth lookups back here.
  TaskTruth TaskTruthFor(const Task& task) const;

  // Scheduler accounting hook: this many of the session's asks were served
  // by another session's identical task.
  void RecordDedupSavings(int64_t tasks_saved);

  // True when `task` is one of this session's edge tasks and its edge
  // currently holds a deduced (not crowd-evidenced) color. The scheduler's
  // answer fan-out skips such sessions: a deduced color makes the shared
  // answer redundant, and serving it anyway would double-charge the dedup
  // ledger (scheduler.dedup_tasks_saved counts the skip instead).
  bool HoldsDeducedColorFor(TaskId task) const;

  // Provenance of edge `e`'s current color (tests and invariant sweeps).
  EdgeProvenance edge_provenance(EdgeId e) const {
    return static_cast<EdgeProvenance>(edge_provenance_[static_cast<size_t>(e)]);
  }

  // The final result; valid once done(). Leaves the session drained.
  ExecutionResult TakeResult();

  const QueryGraph& graph() const { return graph_; }
  const ExecutionStats& stats() const { return result_.stats; }

  // --- Durable snapshot/resume (the service-layer checkpoint format) ---
  //
  // Snapshot() serializes every byte of cross-step session state — phase,
  // graph edge colors, quality-control observations and posteriors, budget
  // spend, round bookkeeping, accumulated stats, and (standalone sessions)
  // the owned platform's rng/clock/lease state — into a versioned,
  // checksummed blob. The dump is deterministic: equal state produces equal
  // bytes, at any thread count.
  //
  // Restore() rehydrates a freshly-constructed session (same query, options,
  // and truth oracle as the snapshotted one) from such a blob. The query
  // graph is not serialized; it is rebuilt deterministically from the query
  // and the snapshot's colors are re-applied, so a blob stays small while
  // restore-then-run remains byte-identical to run-straight-through — the
  // crash-point sweep in tests/service_test.cc proves this at every phase
  // boundary, clean and faulty, at 1 and 8 threads.
  //
  // Errors are typed, never crashes: a truncated or bit-flipped blob yields
  // kDataLoss, an unknown snapshot version kFailedPrecondition, and a blob
  // from a mismatched platform configuration kFailedPrecondition.
  //
  // Scheduler-mode caveat: a session publishing through an external
  // TaskPublisher snapshots its own state only — the shared platform belongs
  // to the scheduler. Snapshot() must not be called while
  // waiting_for_answers() (the merge barrier owes the session a round).
  [[nodiscard]] std::string Snapshot() const;
  Status Restore(std::string_view blob);

  // The snapshot format version Snapshot() writes (bumped on any layout
  // change; Restore() rejects other versions with a typed error).
  // Version 2 added per-edge color provenance and the propagation counters.
  static constexpr uint32_t kSnapshotVersion = 2;

 private:
  // Runs the body of `phase` (Step() wraps this with per-phase accounting).
  Result<bool> DispatchPhase(SessionPhase phase);
  Result<bool> StepBuildGraph();
  Result<bool> StepSelectTasks();
  Result<bool> StepBatchRound();
  Result<bool> StepPublish();
  Result<bool> StepCollect();
  Result<bool> StepInfer();
  Result<bool> StepColor();
  Result<bool> StepPrune();
  // Terminal transition: final late-answer reconciliation + result assembly.
  Result<bool> Finish();

  // Unique-(task, worker) guard: the fault layer can deliver duplicate and
  // late copies of an answer, and requester reposts can reach workers that
  // already answered; inference must see each observation once. Returns the
  // number of observations actually added.
  int64_t Absorb(const std::vector<Answer>& batch);
  InferenceResult InferAll();
  void ReconcileLate();
  // Answer propagation (all no-ops unless options_.propagation.enabled):
  // colors every unknown crowd edge the deduction domains imply (one
  // ascending sweep is the full closure — Deduce() never mutates the
  // domains, and a deduced color adds nothing they do not already imply).
  void PropagateDeductions();
  // Invalidate-and-rederive after crowd evidence changed: uncolors every
  // deduced edge, resets the domains, re-observes the crowd-evidenced
  // colors, and re-runs the sweep.
  void RebuildDeductions();
  // Stable-sorts ordered_ by descending expected deduction yield.
  void ReorderByDeductionYield();
  std::vector<Task> MakeTasks(const std::vector<EdgeId>& edges) const;
  std::string EdgeValueString(VertexId v, int pred) const;
  PhaseCounters& Counters() {
    return result_.stats.phases[static_cast<size_t>(phase_)];
  }

  // Cached registry handles (all null when options_.metrics is unset).
  // Per-phase counters live under `session.phase.<name>.*`, the rest under
  // `session.*`; each mirrors the like-named ExecutionStats field.
  struct SessionMetrics {
    std::array<Counter*, kNumSessionPhases> phase_steps{};
    std::array<Counter*, kNumSessionPhases> phase_tasks{};
    std::array<Counter*, kNumSessionPhases> phase_answers{};
    Counter* rounds = nullptr;
    Counter* reposted_tasks = nullptr;
    Counter* retry_waves = nullptr;
    Counter* backoff_ticks = nullptr;
    Counter* starved_tasks = nullptr;
    Counter* late_answers = nullptr;
    Counter* recolored_edges = nullptr;
    Counter* fallback_colored = nullptr;
    Counter* dedup_tasks_saved = nullptr;
    Counter* deduced_edges = nullptr;
    Counter* deduction_invalidations = nullptr;
    Histogram* round_size = nullptr;
  };

  // Every QuerySession member must either be handled by Snapshot()/Restore()
  // (named in exec/session_snapshot.cc) or carry a
  // `// cdb-snapshot: transient(<reason>)` marker — the snapshot-discipline
  // lint rule fails the build otherwise, so state silently dropped from
  // checkpoints cannot happen by accident.
  // cdb-snapshot: transient(borrowed query; the restoring caller supplies it)
  const ResolvedQuery* query_;
  // cdb-snapshot: transient(construction input; restore requires equal options)
  ExecutorOptions options_;
  // cdb-snapshot: transient(registry handles; re-registered at construction)
  SessionMetrics metrics_;
  // cdb-snapshot: transient(oracle callback; the restoring caller supplies it)
  EdgeTruthFn truth_;
  QueryGraph graph_;
  std::optional<Pruner> pruner_;
  // Per-edge EdgeProvenance values, sized with the graph; serialized so a
  // restored session knows which colors are deductions.
  std::vector<uint8_t> edge_provenance_;
  // cdb-snapshot: transient(pure index over the graph's colors and
  // edge_provenance_; Restore() re-observes the crowd-evidenced colors in
  // ascending edge order, which rebuilds the same partition and fact set —
  // both are order-independent in the observed edge set)
  std::optional<DeductionState> deduction_;
  // cdb-snapshot: transient(color-independent optimizer structures; rebuilt
  // deterministically from the restored graph, never serialized)
  std::optional<StructureCache> structure_cache_;

  std::unique_ptr<PlatformPublisher> owned_publisher_;
  // cdb-snapshot: transient(alias set at construction; points at
  // owned_publisher_ or the scheduler's external channel, never replaced)
  TaskPublisher* publisher_ = nullptr;
  bool external_publish_ = false;

  // Quality-control state (CDB+): accumulated observations, EM worker
  // qualities carried across rounds, and live posteriors for the assigner.
  std::vector<ChoiceObservation> all_observations_;
  std::map<int, double> worker_quality_;
  std::map<TaskId, std::vector<double>> posteriors_;
  // cdb-snapshot: transient(pure view over posteriors_/worker_quality_)
  EntropyAssigner assigner_;
  // cdb-snapshot: transient(stateless callback rebuilt in the constructor)
  AssignmentPolicy policy_;
  // cdb-snapshot: transient(stateless callback rebuilt in the constructor)
  AnswerObserver observer_;

  std::set<std::pair<TaskId, int>> seen_observations_;
  std::vector<EdgeId> sampling_order_;
  BudgetLedger budget_;

  SessionPhase phase_ = SessionPhase::kBuildGraph;
  std::vector<EdgeId> ordered_;      // SelectTasks -> BatchRound.
  std::vector<EdgeId> round_edges_;  // BatchRound -> Color.
  std::vector<Task> round_tasks_;    // BatchRound -> Publish/Collect.
  InferenceResult inference_;        // Infer -> Color.
  int64_t answers_received_ = 0;     // Deliveries incl. fan-out, pre-dedup.
  ExecutionResult result_;
};

// Converts graph assignments to base-relation row answers (sorted, unique).
std::vector<QueryAnswer> AssignmentsToAnswers(const QueryGraph& graph,
                                              const std::vector<Assignment>& as);

}  // namespace cdb

#endif  // CDB_EXEC_SESSION_H_
