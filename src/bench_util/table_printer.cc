#include "bench_util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"

namespace cdb {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += c == 0 ? "| " : " | ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    line += " |\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += '|';
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatDouble(double value, int decimals) {
  return StrPrintf("%.*f", decimals, value);
}

std::string FormatCount(double value) { return StrPrintf("%.0f", value); }

}  // namespace cdb
