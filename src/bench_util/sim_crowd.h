// SimCrowd: a FoundationDB-style deterministic simulation harness for the
// unreliable-crowd stack. One call = one fully seeded end-to-end run of the
// CDB executor over the paper's mini example with a FaultProfile injected,
// followed by an invariant sweep:
//   - termination (the executor returned instead of spinning),
//   - no double-spend (dollars_spent == hits_published * price_per_hit),
//   - lease conservation (leases == on-time non-duplicate answers + abandons
//     + late answers; expiries <= abandons + late answers),
//   - answers-per-task >= effective redundancy for every non-starved task,
//   - budget bounds (tasks published and dollars spent never exceed it).
// Everything (worker behavior, fault schedule, executor decisions) derives
// from SimCrowdConfig::seed, so two runs with the same config are
// byte-identical — the determinism tests compare stats_dump/color_dump
// across repeated runs and thread counts.
#ifndef CDB_BENCH_UTIL_SIM_CROWD_H_
#define CDB_BENCH_UTIL_SIM_CROWD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/executor.h"

namespace cdb {

struct SimCrowdConfig {
  uint64_t seed = 1;
  FaultProfile fault;
  int num_workers = 30;
  int redundancy = 3;
  // Perfect workers by default: under faults the answer *schedule* differs
  // from a clean run, so result-equality checks need accuracy noise off.
  double worker_quality_mean = 1.0;
  double worker_quality_stddev = 0.0;
  bool quality_control = false;     // CDB+ (EM + entropy assignment).
  CostMethod cost_method = CostMethod::kExpectation;
  int num_threads = 1;              // Optimizer threads (EM, sampling).
  std::optional<int64_t> budget;    // Budget-aware mode (Section 5.1.3).
  RetryOptions retry;               // Requester-side repost policy.
  PropagationOptions propagation;   // Answer-propagation deduction layer.
  // Observability sinks (borrowed, may be null): the determinism tests point
  // these at a registry/tracer and byte-compare MetricsDump()/DumpJson()
  // across thread counts, exactly like stats_dump/color_dump.
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
};

struct SimCrowdReport {
  ExecutionResult result;
  // Canonical byte dumps for determinism comparisons.
  std::string stats_dump;  // PlatformStatsDump of the final platform stats.
  std::string color_dump;  // One "e=<B|R|U>" line per graph edge.
  // Human-readable invariant violations; empty means the run is sound.
  std::vector<std::string> violations;
};

// Runs the executor once under `config` and sweeps the invariants. Returns
// an error only when the executor itself fails (e.g. clean-crowd
// exhaustion); invariant breaks are reported in `violations` so tests can
// print all of them at once.
Result<SimCrowdReport> RunSimCrowd(const SimCrowdConfig& config);

}  // namespace cdb

#endif  // CDB_BENCH_UTIL_SIM_CROWD_H_
