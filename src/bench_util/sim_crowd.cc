#include "bench_util/sim_crowd.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <variant>

#include "bench_util/metrics.h"
#include "cql/parser.h"
#include "datagen/mini_example.h"
#include "graph/propagation.h"
#include "graph/pruning.h"

namespace cdb {
namespace {

void Violate(std::vector<std::string>* violations, std::string message) {
  violations->push_back(std::move(message));
}

std::string FormatInt(const char* what, int64_t a, int64_t b) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), "%s: %lld vs %lld", what,
                static_cast<long long>(a), static_cast<long long>(b));
  return buffer;
}

}  // namespace

Result<SimCrowdReport> RunSimCrowd(const SimCrowdConfig& config) {
  GeneratedDataset dataset = MakeMiniPaperExample();
  CDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(kMiniExampleQuery));
  CDB_ASSIGN_OR_RETURN(
      ResolvedQuery query,
      AnalyzeSelect(std::get<SelectStatement>(stmt), dataset.catalog));

  ExecutorOptions options;
  options.cost_method = config.cost_method;
  options.quality_control = config.quality_control;
  options.num_threads = config.num_threads;
  options.budget = config.budget;
  options.retry = config.retry;
  options.propagation = config.propagation;
  options.platform.seed = config.seed;
  options.platform.num_workers = config.num_workers;
  options.platform.redundancy = config.redundancy;
  options.platform.worker_quality_mean = config.worker_quality_mean;
  options.platform.worker_quality_stddev = config.worker_quality_stddev;
  options.platform.fault = config.fault;
  options.metrics = config.metrics;
  options.tracer = config.tracer;

  EdgeTruthFn truth = MakeEdgeTruth(&dataset, &query);
  CdbExecutor executor(&query, options, truth);
  CDB_ASSIGN_OR_RETURN(ExecutionResult result, executor.Run());

  SimCrowdReport report;
  report.result = result;
  const ExecutionStats& stats = result.stats;
  const PlatformStats& ps = stats.platform;
  report.stats_dump = PlatformStatsDump(ps);
  std::vector<std::string>* v = &report.violations;

  // Canonical edge-color dump (the graph's edge order is deterministic).
  const QueryGraph& graph = executor.graph();
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    char line[32];
    char c = graph.edge(e).color == EdgeColor::kBlue
                 ? 'B'
                 : graph.edge(e).color == EdgeColor::kRed ? 'R' : 'U';
    std::snprintf(line, sizeof(line), "%d=%c\n", e, c);
    report.color_dump += line;
  }

  // --- Termination: the executor must leave no valid edge uncolored.
  // Budget mode legitimately stops early (Section 5.1.3 returns the best
  // partial result), so the check applies only to unbounded runs. ---
  if (!config.budget) {
    Pruner pruner(const_cast<QueryGraph*>(&graph));
    if (!pruner.RemainingTasks().empty()) {
      Violate(v,
              FormatInt("uncolored valid edges remain",
                        static_cast<int64_t>(pruner.RemainingTasks().size()),
                        0));
    }
  }

  // --- Color integrity: non-crowd (traditional-predicate) edges are colored
  // from birth and must stay colored — late-answer reconciliation flipping
  // or resurrecting one would desync the pruner. ---
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (!graph.edge(e).is_crowd &&
        graph.edge(e).color == EdgeColor::kUnknown) {
      Violate(v, FormatInt("non-crowd edge left uncolored", e, 0));
    }
  }

  // --- No double-spend: pricing is a pure function of HITs, checked in
  // exact integer micro-dollars. ---
  int64_t expected_micro =
      ps.hits_published * MicroDollars(options.platform.price_per_hit);
  if (ps.micro_dollars_spent != expected_micro) {
    Violate(v, FormatInt("double-spend: micro_dollars_spent vs hits * price",
                         ps.micro_dollars_spent, expected_micro));
  }

  // --- Lease conservation (fault layer only; the clean path leases
  // nothing). Every granted lease is settled exactly once: an on-time
  // non-duplicate delivery, an abandonment, or a late delivery. ---
  if (config.fault.Active()) {
    int64_t settled =
        (ps.answers_collected - ps.duplicates) + ps.abandons + ps.late_answers;
    if (ps.leases_granted != settled) {
      Violate(v, FormatInt("lease conservation: granted vs settled",
                           ps.leases_granted, settled));
    }
    if (ps.expiries > ps.abandons + ps.late_answers) {
      Violate(v, FormatInt("expiries exceed abandons + late answers",
                           ps.expiries, ps.abandons + ps.late_answers));
    }
    if (ps.dead_lettered < static_cast<int64_t>(0)) {
      Violate(v, FormatInt("negative dead-letter count", ps.dead_lettered, 0));
    }
  }

  // --- Redundancy floor: every asked task must have reached the effective
  // redundancy unless the executor explicitly recorded it as starved (the
  // retry budget ran out) or never retried at all. ---
  if (config.retry.enabled) {
    int64_t floor = std::min(static_cast<int64_t>(config.redundancy),
                             static_cast<int64_t>(config.num_workers));
    for (const auto& [task, count] : stats.unique_answers_per_task) {
      if (task < 0) continue;  // Golden warm-up tasks.
      bool starved =
          std::find(stats.starved_task_ids.begin(),
                    stats.starved_task_ids.end(),
                    task) != stats.starved_task_ids.end();
      if (!starved && count < floor) {
        Violate(v, FormatInt("task below effective redundancy", task, count));
      }
    }
  }

  // --- Budget bounds: published tasks (first posts + reposts) and dollars
  // never exceed the task budget. Golden warm-up tasks are outside it. ---
  if (config.budget) {
    int64_t cap = *config.budget;
    if (ps.tasks_published > cap) {
      Violate(v, FormatInt("tasks published exceed budget", ps.tasks_published,
                           cap));
    }
    int64_t micro_cap = cap * MicroDollars(options.platform.price_per_hit);
    if (ps.micro_dollars_spent > micro_cap) {
      Violate(v, FormatInt("micro-dollars exceed budget cap",
                           ps.micro_dollars_spent, micro_cap));
    }
  }

  // --- Answer accounting: the executor's observation counts can never
  // exceed what the platform says it delivered. ---
  int64_t unique_total = 0;
  for (const auto& [task, count] : stats.unique_answers_per_task) {
    unique_total += count;
  }
  if (unique_total > ps.answers_collected + ps.late_answers) {
    Violate(v, FormatInt("unique observations exceed deliveries", unique_total,
                         ps.answers_collected + ps.late_answers));
  }

  // --- Cluster consistency (answer propagation): rebuild every predicate's
  // match clusters from the crowd-evidenced colors alone and check each
  // deduced color against them — no pair may end up both matched and
  // non-matched. Noise-free crowds only: noisy majority votes can already be
  // mutually inconsistent before any deduction happens. ---
  if (config.propagation.enabled && config.worker_quality_mean == 1.0 &&
      config.worker_quality_stddev == 0.0) {
    const QuerySession& session = executor.session();
    std::map<int, MatchClusters> domains;
    auto domain = [&](int pred) -> MatchClusters& {
      return domains.try_emplace(pred, graph.num_vertices()).first->second;
    };
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const GraphEdge& edge = graph.edge(e);
      if (!edge.is_crowd ||
          session.edge_provenance(e) != EdgeProvenance::kAsked) {
        continue;
      }
      if (edge.color == EdgeColor::kBlue) {
        domain(edge.pred).Union(edge.u, edge.v);
      } else if (edge.color == EdgeColor::kRed) {
        domain(edge.pred).AddNonMatch(edge.u, edge.v);
      }
    }
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const GraphEdge& edge = graph.edge(e);
      if (!edge.is_crowd ||
          session.edge_provenance(e) != EdgeProvenance::kDeduced) {
        continue;
      }
      MatchClusters& d = domain(edge.pred);
      if (edge.color == EdgeColor::kBlue && !d.SameCluster(edge.u, edge.v)) {
        Violate(v, FormatInt("deduced match outside its cluster", e, 0));
      }
      if (edge.color == EdgeColor::kRed &&
          (d.SameCluster(edge.u, edge.v) ||
           !d.KnownNonMatch(edge.u, edge.v))) {
        Violate(v, FormatInt("deduced non-match contradicts clusters", e, 0));
      }
    }
  }

  return report;
}

}  // namespace cdb
