// Fixed-width console tables for the bench binaries: each bench prints the
// same rows/series as the corresponding paper figure or table.
#ifndef CDB_BENCH_UTIL_TABLE_PRINTER_H_
#define CDB_BENCH_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace cdb {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> row);

  // Renders header, separator, and rows with aligned columns.
  std::string ToString() const;
  void Print() const;  // To stdout.

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Numeric formatting helpers for bench output.
std::string FormatDouble(double value, int decimals = 1);
std::string FormatCount(double value);

}  // namespace cdb

#endif  // CDB_BENCH_UTIL_TABLE_PRINTER_H_
