#include "bench_util/metrics.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"

namespace cdb {
namespace {

// Entity vector for the column a resolved predicate side references.
const std::vector<int64_t>* ColumnEntities(const GeneratedDataset& dataset,
                                           const ResolvedQuery& query, int rel,
                                           size_t col) {
  const Table* table = query.tables[rel];
  return &dataset.Entities(table->name(), table->schema().column(col).name);
}

}  // namespace

PrecisionRecall ComputeF1(const std::vector<QueryAnswer>& returned,
                          const std::vector<QueryAnswer>& truth) {
  PrecisionRecall out;
  out.returned = static_cast<int64_t>(returned.size());
  out.truth = static_cast<int64_t>(truth.size());
  // Both inputs are sorted-unique by construction; intersect.
  size_t i = 0;
  size_t j = 0;
  while (i < returned.size() && j < truth.size()) {
    if (returned[i] < truth[j]) {
      ++i;
    } else if (truth[j] < returned[i]) {
      ++j;
    } else {
      ++out.correct;
      ++i;
      ++j;
    }
  }
  out.precision = out.returned > 0
                      ? static_cast<double>(out.correct) / static_cast<double>(out.returned)
                      : 0.0;
  out.recall = out.truth > 0
                   ? static_cast<double>(out.correct) / static_cast<double>(out.truth)
                   : 0.0;
  out.f1 = (out.precision + out.recall) > 0
               ? 2.0 * out.precision * out.recall / (out.precision + out.recall)
               : 0.0;
  return out;
}

std::vector<QueryAnswer> TrueAnswers(const GeneratedDataset& dataset,
                                     const ResolvedQuery& query) {
  const int num_tables = static_cast<int>(query.tables.size());

  // Row candidates per relation after selection predicates.
  std::vector<std::vector<int64_t>> rows(num_tables);
  for (int rel = 0; rel < num_tables; ++rel) {
    size_t n = query.tables[rel]->num_rows();
    rows[rel].reserve(n);
    for (size_t r = 0; r < n; ++r) rows[rel].push_back(static_cast<int64_t>(r));
  }
  for (const ResolvedSelection& sel : query.selections) {
    const std::vector<int64_t>* entities =
        ColumnEntities(dataset, query, sel.rel, sel.col);
    const Table* table = query.tables[sel.rel];
    int64_t target =
        dataset.ConstantEntity(table->name(),
                               table->schema().column(sel.col).name, sel.value);
    std::vector<int64_t> filtered;
    for (int64_t r : rows[sel.rel]) {
      if (target != kNoEntity && (*entities)[static_cast<size_t>(r)] == target) {
        filtered.push_back(r);
      }
    }
    rows[sel.rel] = std::move(filtered);
  }

  // BFS relation order over join predicates.
  std::vector<int> order = {0};
  std::vector<bool> placed(num_tables, false);
  placed[0] = true;
  std::vector<std::vector<int>> back_joins(num_tables);
  for (size_t head = 0; head < order.size(); ++head) {
    for (size_t j = 0; j < query.joins.size(); ++j) {
      const ResolvedJoin& join = query.joins[j];
      int a = join.left_rel;
      int b = join.right_rel;
      if (placed[a] && !placed[b]) {
        placed[b] = true;
        order.push_back(b);
      } else if (placed[b] && !placed[a]) {
        placed[a] = true;
        order.push_back(a);
      }
    }
    if (order.size() == static_cast<size_t>(num_tables)) break;
  }
  std::vector<int> position(num_tables, -1);
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = static_cast<int>(i);
  std::vector<std::vector<const ResolvedJoin*>> joins_at(order.size());
  for (const ResolvedJoin& join : query.joins) {
    int later = std::max(position[join.left_rel], position[join.right_rel]);
    joins_at[static_cast<size_t>(later)].push_back(&join);
  }

  // Backtracking with entity hash indexes per (relation, column).
  std::vector<QueryAnswer> answers;
  std::vector<int64_t> assignment(num_tables, -1);
  std::function<void(size_t)> recurse = [&](size_t depth) {
    if (depth == order.size()) {
      QueryAnswer answer;
      answer.rows.assign(assignment.begin(), assignment.end());
      answers.push_back(std::move(answer));
      return;
    }
    int rel = order[depth];
    for (int64_t r : rows[rel]) {
      bool ok = true;
      for (const ResolvedJoin* join : joins_at[depth]) {
        int other = join->left_rel == rel ? join->right_rel : join->left_rel;
        size_t my_col = join->left_rel == rel ? join->left_col : join->right_col;
        size_t other_col = join->left_rel == rel ? join->right_col : join->left_col;
        const std::vector<int64_t>* my_ent =
            ColumnEntities(dataset, query, rel, my_col);
        const std::vector<int64_t>* other_ent =
            ColumnEntities(dataset, query, other, other_col);
        int64_t mine = (*my_ent)[static_cast<size_t>(r)];
        int64_t theirs = (*other_ent)[static_cast<size_t>(assignment[other])];
        if (mine == kNoEntity || mine != theirs) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      assignment[rel] = r;
      recurse(depth + 1);
      assignment[rel] = -1;
    }
  };
  recurse(0);
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

EdgeTruthFn MakeEdgeTruth(const GeneratedDataset* dataset,
                          const ResolvedQuery* query) {
  return [dataset, query](const QueryGraph& graph, EdgeId e) -> bool {
    const GraphEdge& edge = graph.edge(e);
    const int p = edge.pred;
    if (p < static_cast<int>(query->joins.size())) {
      const ResolvedJoin& join = query->joins[static_cast<size_t>(p)];
      const Table* lt = query->tables[join.left_rel];
      const Table* rt = query->tables[join.right_rel];
      const std::vector<int64_t>& le = dataset->Entities(
          lt->name(), lt->schema().column(join.left_col).name);
      const std::vector<int64_t>& re = dataset->Entities(
          rt->name(), rt->schema().column(join.right_col).name);
      int64_t a = le[static_cast<size_t>(graph.vertex(edge.u).row)];
      int64_t b = re[static_cast<size_t>(graph.vertex(edge.v).row)];
      return a != kNoEntity && a == b;
    }
    const ResolvedSelection& sel =
        query->selections[static_cast<size_t>(p) - query->joins.size()];
    const Table* table = query->tables[sel.rel];
    const std::vector<int64_t>& entities =
        dataset->Entities(table->name(), table->schema().column(sel.col).name);
    int64_t target = dataset->ConstantEntity(
        table->name(), table->schema().column(sel.col).name, sel.value);
    return target != kNoEntity &&
           entities[static_cast<size_t>(graph.vertex(edge.u).row)] == target;
  };
}

}  // namespace cdb
