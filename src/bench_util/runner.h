// Runs one of the nine evaluated methods (Section 6.1's competitor list) on
// a CQL query over a generated dataset, with a simulated crowd, and reports
// the paper's three metrics averaged over repetitions.
#ifndef CDB_BENCH_UTIL_RUNNER_H_
#define CDB_BENCH_UTIL_RUNNER_H_

#include <optional>
#include <string>
#include <vector>

#include "bench_util/metrics.h"
#include "common/status.h"
#include "datagen/dataset.h"
#include "exec/session.h"
#include "graph/query_graph.h"
#include "latency/scheduler.h"

namespace cdb {

enum class Method {
  kCrowdDb,
  kQurk,
  kDeco,
  kOptTree,
  kTrans,
  kAcd,
  kMinCut,
  kCdb,
  kCdbPlus,
};

const char* MethodName(Method method);
std::vector<Method> AllMethods();

struct RunConfig {
  double worker_quality = 0.8;
  LatencyMode latency_mode = LatencyMode::kVertexGreedy;
  double worker_quality_stddev = 0.1;
  int num_workers = 50;
  int redundancy = 5;
  int repetitions = 3;  // The paper averages 1000 runs; scale to taste.
  GraphOptions graph;
  int sampling_samples = 100;
  std::optional<int64_t> budget;
  std::optional<int> round_limit;
  uint64_t seed = 1;
  // Answer propagation (CDB family only): deduce colors by transitive
  // closure between rounds instead of asking the crowd. Off by default so
  // existing benches keep the legacy task counts.
  PropagationOptions propagation;
  // Optimizer thread count (<= 0 = all hardware threads, 1 = serial); metric
  // outputs are bit-identical either way, only selection_ms moves.
  int num_threads = 0;
  // Observability sinks (borrowed, may be null = disabled); wired into the
  // executor (CDB family) or the baseline's platform so every repetition
  // mirrors into the same registry/tracer.
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
};

struct RunOutcome {
  double tasks = 0.0;
  double rounds = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double selection_ms = 0.0;
  double answers = 0.0;
  // Full stats of the last repetition — per-phase counters and platform
  // accounting for benches that break the run down by session phase.
  ExecutionStats sample_stats;
};

// Parses + analyzes `cql` against the dataset's catalog and executes it with
// the given method `config.repetitions` times (distinct seeds), averaging
// the metrics.
Result<RunOutcome> RunMethod(Method method, const GeneratedDataset& dataset,
                             const std::string& cql, const RunConfig& config);

}  // namespace cdb

#endif  // CDB_BENCH_UTIL_RUNNER_H_
