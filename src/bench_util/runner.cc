#include "bench_util/runner.h"

#include "baselines/budget_baseline.h"
#include "baselines/er_join.h"
#include "baselines/tree_executor.h"
#include "common/logging.h"
#include "cql/parser.h"
#include "exec/executor.h"

namespace cdb {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kCrowdDb:
      return "CrowdDB";
    case Method::kQurk:
      return "Qurk";
    case Method::kDeco:
      return "Deco";
    case Method::kOptTree:
      return "OptTree";
    case Method::kTrans:
      return "Trans";
    case Method::kAcd:
      return "ACD";
    case Method::kMinCut:
      return "MinCut";
    case Method::kCdb:
      return "CDB";
    case Method::kCdbPlus:
      return "CDB+";
  }
  return "?";
}

std::vector<Method> AllMethods() {
  return {Method::kQurk,    Method::kCrowdDb, Method::kDeco,
          Method::kOptTree, Method::kAcd,     Method::kTrans,
          Method::kMinCut,  Method::kCdb,     Method::kCdbPlus};
}

namespace {

PlatformOptions MakePlatform(const RunConfig& config, uint64_t seed) {
  PlatformOptions platform;
  platform.num_workers = config.num_workers;
  platform.worker_quality_mean = config.worker_quality;
  platform.worker_quality_stddev = config.worker_quality_stddev;
  platform.redundancy = config.redundancy;
  platform.seed = seed;
  platform.metrics = config.metrics;
  platform.tracer = config.tracer;
  return platform;
}

Result<ExecutionResult> RunOnce(Method method, const ResolvedQuery& query,
                                const RunConfig& config, EdgeTruthFn truth,
                                uint64_t seed) {
  switch (method) {
    case Method::kCrowdDb:
    case Method::kQurk:
    case Method::kDeco:
    case Method::kOptTree: {
      TreeExecutorOptions options;
      options.policy = method == Method::kCrowdDb  ? TreePolicy::kCrowdDb
                       : method == Method::kQurk   ? TreePolicy::kQurk
                       : method == Method::kDeco   ? TreePolicy::kDeco
                                                   : TreePolicy::kOptTree;
      options.graph = config.graph;
      options.platform = MakePlatform(config, seed);
      return TreeModelExecutor(&query, options, truth).Run();
    }
    case Method::kTrans:
    case Method::kAcd: {
      ErExecutorOptions options;
      options.method = method == Method::kTrans ? ErMethod::kTrans : ErMethod::kAcd;
      options.graph = config.graph;
      options.platform = MakePlatform(config, seed);
      return ErJoinExecutor(&query, options, truth).Run();
    }
    case Method::kMinCut:
    case Method::kCdb:
    case Method::kCdbPlus: {
      ExecutorOptions options;
      options.cost_method =
          method == Method::kMinCut ? CostMethod::kSampling : CostMethod::kExpectation;
      options.quality_control = method == Method::kCdbPlus;
      options.latency_mode = config.latency_mode;
      options.graph = config.graph;
      options.platform = MakePlatform(config, seed);
      options.sampling_samples = config.sampling_samples;
      options.budget = config.budget;
      options.round_limit = config.round_limit;
      options.propagation = config.propagation;
      options.num_threads = config.num_threads;
      options.graph.num_threads = config.num_threads;
      options.metrics = config.metrics;
      options.tracer = config.tracer;
      return CdbExecutor(&query, options, truth).Run();
    }
  }
  return Status::InvalidArgument("unknown method");
}

}  // namespace

Result<RunOutcome> RunMethod(Method method, const GeneratedDataset& dataset,
                             const std::string& cql, const RunConfig& config) {
  CDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(cql));
  const SelectStatement* select = std::get_if<SelectStatement>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("runner needs a SELECT statement");
  }
  CDB_ASSIGN_OR_RETURN(ResolvedQuery query,
                       AnalyzeSelect(*select, dataset.catalog));
  EdgeTruthFn truth = MakeEdgeTruth(&dataset, &query);
  std::vector<QueryAnswer> reference = TrueAnswers(dataset, query);

  RunOutcome total;
  CDB_CHECK(config.repetitions > 0);
  for (int rep = 0; rep < config.repetitions; ++rep) {
    uint64_t seed = config.seed + 7919ULL * static_cast<uint64_t>(rep);
    CDB_ASSIGN_OR_RETURN(ExecutionResult result,
                         RunOnce(method, query, config, truth, seed));
    PrecisionRecall pr = ComputeF1(result.answers, reference);
    total.tasks += static_cast<double>(result.stats.tasks_asked);
    total.rounds += static_cast<double>(result.stats.rounds);
    total.precision += pr.precision;
    total.recall += pr.recall;
    total.f1 += pr.f1;
    total.selection_ms += result.stats.selection_ms;
    total.answers += static_cast<double>(result.answers.size());
    if (rep + 1 == config.repetitions) total.sample_stats = result.stats;
  }
  const double n = static_cast<double>(config.repetitions);
  total.tasks /= n;
  total.rounds /= n;
  total.precision /= n;
  total.recall /= n;
  total.f1 /= n;
  total.selection_ms /= n;
  total.answers /= n;
  return total;
}

}  // namespace cdb
