// Evaluation metrics (Section 6.1): cost is #tasks, latency is #rounds, and
// quality is the F-measure of returned tuples against the ground truth
// computed directly from entity links (independent of the graph and its
// epsilon pruning, so similarity-threshold misses count against recall).
#ifndef CDB_BENCH_UTIL_METRICS_H_
#define CDB_BENCH_UTIL_METRICS_H_

#include <vector>

#include "cql/analyzer.h"
#include "datagen/dataset.h"
#include "exec/executor.h"

namespace cdb {

struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  int64_t returned = 0;
  int64_t correct = 0;
  int64_t truth = 0;
};

PrecisionRecall ComputeF1(const std::vector<QueryAnswer>& returned,
                          const std::vector<QueryAnswer>& truth);

// Evaluates the query purely on ground-truth entity links (exact hash joins
// over entity ids): the reference answer set.
std::vector<QueryAnswer> TrueAnswers(const GeneratedDataset& dataset,
                                     const ResolvedQuery& query);

// The simulation oracle for executors: an edge's task is truly "yes" iff the
// entities behind the two cells agree (or, for selections, the cell's entity
// is the constant's entity).
EdgeTruthFn MakeEdgeTruth(const GeneratedDataset* dataset,
                          const ResolvedQuery* query);

}  // namespace cdb

#endif  // CDB_BENCH_UTIL_METRICS_H_
