// The five representative CQL queries per dataset (Table 4): 2J, 2J1S, 3J,
// 3J1S, 3J2S — covering chain, star and tree join structures with
// CROWDJOIN and CROWDEQUAL predicates.
#ifndef CDB_BENCH_UTIL_QUERIES_H_
#define CDB_BENCH_UTIL_QUERIES_H_

#include <string>
#include <vector>

namespace cdb {

struct BenchmarkQuery {
  std::string label;  // "2J", "2J1S", "3J", "3J1S", "3J2S".
  std::string cql;
};

std::vector<BenchmarkQuery> PaperQueries();
std::vector<BenchmarkQuery> AwardQueries();

}  // namespace cdb

#endif  // CDB_BENCH_UTIL_QUERIES_H_
