#include "bench_util/queries.h"

namespace cdb {

std::vector<BenchmarkQuery> PaperQueries() {
  return {
      {"2J",
       "SELECT Paper.title, Researcher.affiliation, Citation.number "
       "FROM Paper, Citation, Researcher "
       "WHERE Paper.title CROWDJOIN Citation.title "
       "AND Paper.author CROWDJOIN Researcher.name"},
      {"2J1S",
       "SELECT Paper.title, Researcher.affiliation, Citation.number "
       "FROM Paper, Citation, Researcher "
       "WHERE Paper.title CROWDJOIN Citation.title "
       "AND Paper.author CROWDJOIN Researcher.name "
       "AND Paper.conference CROWDEQUAL 'sigmod'"},
      {"3J",
       "SELECT Paper.title, Citation.number, University.country "
       "FROM Paper, Citation, Researcher, University "
       "WHERE Paper.title CROWDJOIN Citation.title "
       "AND Paper.author CROWDJOIN Researcher.name "
       "AND University.name CROWDJOIN Researcher.affiliation"},
      {"3J1S",
       "SELECT Paper.title, Citation.number "
       "FROM Paper, Citation, Researcher, University "
       "WHERE Paper.title CROWDJOIN Citation.title "
       "AND Paper.author CROWDJOIN Researcher.name "
       "AND University.name CROWDJOIN Researcher.affiliation "
       "AND University.country CROWDEQUAL 'USA'"},
      {"3J2S",
       "SELECT Paper.title, Citation.number "
       "FROM Paper, Citation, Researcher, University "
       "WHERE Paper.title CROWDJOIN Citation.title "
       "AND Paper.author CROWDJOIN Researcher.name "
       "AND University.name CROWDJOIN Researcher.affiliation "
       "AND Paper.conference CROWDEQUAL 'sigmod' "
       "AND University.country CROWDEQUAL 'USA'"},
  };
}

std::vector<BenchmarkQuery> AwardQueries() {
  return {
      {"2J",
       "SELECT Winner.award, City.country "
       "FROM Winner, City, Celebrity "
       "WHERE Winner.name CROWDJOIN Celebrity.name "
       "AND Celebrity.birthplace CROWDJOIN City.birthplace"},
      {"2J1S",
       "SELECT Winner.award, City.country "
       "FROM Winner, City, Celebrity "
       "WHERE Winner.name CROWDJOIN Celebrity.name "
       "AND Celebrity.birthplace CROWDJOIN City.birthplace "
       "AND City.country CROWDEQUAL 'England'"},
      {"3J",
       "SELECT Winner.name, Award.place "
       "FROM Winner, City, Celebrity, Award "
       "WHERE Winner.name CROWDJOIN Celebrity.name "
       "AND Celebrity.birthplace CROWDJOIN City.birthplace "
       "AND Winner.award CROWDJOIN Award.name"},
      {"3J1S",
       "SELECT Winner.name, City.country "
       "FROM Winner, City, Celebrity, Award "
       "WHERE Winner.name CROWDJOIN Celebrity.name "
       "AND Celebrity.birthplace CROWDJOIN City.birthplace "
       "AND Winner.award CROWDJOIN Award.name "
       "AND Award.place CROWDEQUAL 'Los Angeles'"},
      {"3J2S",
       "SELECT Winner.name, City.country "
       "FROM Winner, City, Celebrity, Award "
       "WHERE Winner.name CROWDJOIN Celebrity.name "
       "AND Celebrity.birthplace CROWDJOIN City.birthplace "
       "AND Winner.award CROWDJOIN Award.name "
       "AND City.country CROWDEQUAL 'England' "
       "AND Award.place CROWDEQUAL 'Los Angeles'"},
  };
}

}  // namespace cdb
