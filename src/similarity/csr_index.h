// Flat (CSR) layouts for the similarity-join hot paths.
//
// The probe loops used to chase std::unordered_map buckets per token; both
// the posting-list indexes and the per-record token sets are now two plain
// arrays — `offsets[]` indexed by a dense key and one contiguous payload
// array — so a probe is a bounds computation plus a linear scan of
// contiguous memory.
//
// Determinism: CsrIndex is built count-then-fill. The caller emits its
// (key, value) pairs twice in the same order; pass one sizes each posting
// list, pass two appends values in emission order. Postings for a key
// therefore appear exactly in emission order — emitting right-hand records
// in ascending j reproduces, list for list, the order the old
// `unordered_map<Token, vector<j>>` index produced with push_back, which is
// what keeps the probe output bit-identical to the legacy kernel.
#ifndef CDB_SIMILARITY_CSR_INDEX_H_
#define CDB_SIMILARITY_CSR_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cdb {

// Posting-list index over dense integer keys in [0, num_keys).
class CsrIndex {
 public:
  CsrIndex() = default;

  // Builds by invoking `emit` twice with a sink callback `sink(key, value)`.
  // Both invocations must produce the same (key, value) sequence.
  template <typename EmitFn>
  static CsrIndex Build(size_t num_keys, EmitFn&& emit) {
    CsrIndex index;
    index.offsets_.assign(num_keys + 1, 0);
    // Pass 1: count per key (shifted by one so the prefix sum lands directly
    // in offsets_).
    emit([&](int32_t key, int32_t /*value*/) {
      ++index.offsets_[static_cast<size_t>(key) + 1];
    });
    for (size_t k = 1; k <= num_keys; ++k) {
      index.offsets_[k] += index.offsets_[k - 1];
    }
    index.postings_.resize(static_cast<size_t>(index.offsets_[num_keys]));
    // Pass 2: fill in emission order using a per-key write cursor.
    std::vector<int64_t> cursor(index.offsets_.begin(),
                                index.offsets_.end() - 1);
    emit([&](int32_t key, int32_t value) {
      index.postings_[static_cast<size_t>(cursor[static_cast<size_t>(key)]++)] =
          value;
    });
    return index;
  }

  size_t num_keys() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t num_postings() const { return postings_.size(); }

  // The posting list of `key` as a [begin, end) pointer pair.
  std::pair<const int32_t*, const int32_t*> Postings(int32_t key) const {
    const size_t k = static_cast<size_t>(key);
    return {postings_.data() + offsets_[k], postings_.data() + offsets_[k + 1]};
  }

 private:
  std::vector<int64_t> offsets_;   // num_keys + 1 entries.
  std::vector<int32_t> postings_;  // One contiguous payload array.
};

// Structure-of-arrays token storage: every record's sorted dense-id token
// set lives in one flat arena; record r owns ids [offsets[r], offsets[r+1]).
// Probe threads touch two contiguous arrays instead of a vector-of-vectors'
// scattered heap blocks.
class TokenArena {
 public:
  TokenArena() = default;

  // Allocates spans from per-record set sizes (serial prefix sum). Ids are
  // filled afterwards through MutableSpan — safe to fill from ParallelFor
  // since spans are disjoint.
  explicit TokenArena(const std::vector<int32_t>& sizes) {
    offsets_.resize(sizes.size() + 1);
    offsets_[0] = 0;
    for (size_t r = 0; r < sizes.size(); ++r) {
      offsets_[r + 1] = offsets_[r] + sizes[r];
    }
    ids_.resize(static_cast<size_t>(offsets_.back()));
  }

  size_t num_records() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t size(size_t r) const {
    return static_cast<size_t>(offsets_[r + 1] - offsets_[r]);
  }
  const int32_t* begin(size_t r) const { return ids_.data() + offsets_[r]; }
  const int32_t* end(size_t r) const { return ids_.data() + offsets_[r + 1]; }
  int32_t* MutableSpan(size_t r) { return ids_.data() + offsets_[r]; }

 private:
  std::vector<int64_t> offsets_;
  std::vector<int32_t> ids_;
};

}  // namespace cdb

#endif  // CDB_SIMILARITY_CSR_INDEX_H_
