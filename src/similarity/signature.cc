#include "similarity/signature.h"

#include <cmath>

namespace cdb {

TokenSignature SignatureOfIds(const int32_t* ids, size_t n) {
  TokenSignature sig = 0;
  for (size_t i = 0; i < n; ++i) sig |= TokenBit(ids[i]);
  return sig;
}

TokenSignature SignatureOfGrams(std::string_view s) {
  if (s.empty()) return 0;
  if (s.size() < 2) {
    // Whole-string token, mixed from its single byte with a tag bit so "a"
    // and the 2-gram "a\0" cannot alias.
    uint64_t code = 0x100u | static_cast<uint8_t>(s[0]);
    return TokenSignature{1} << (MixToken64(code) & 63);
  }
  TokenSignature sig = 0;
  for (size_t i = 0; i + 2 <= s.size(); ++i) {
    uint64_t code = (static_cast<uint64_t>(static_cast<uint8_t>(s[i])) << 8) |
                    static_cast<uint8_t>(s[i + 1]);
    sig |= TokenSignature{1} << (MixToken64(code) & 63);
  }
  return sig;
}

bool SignatureRejectsJaccard(TokenSignature a, TokenSignature b, size_t size_a,
                             size_t size_b, double threshold) {
  // J >= t  requires  δ (1 + t) <= (1 - t)(a + b); reject when the lower
  // bound on δ already exceeds the right-hand side.
  double lb = static_cast<double>(SignatureHamming(a, b));
  double total = static_cast<double>(size_a + size_b);
  return lb * (1.0 + threshold) > (1.0 - threshold) * total + kSignatureSlack;
}

bool SignatureRejectsCosine(TokenSignature a, TokenSignature b, size_t size_a,
                            size_t size_b, double threshold) {
  // C >= t  requires  δ <= a + b - 2 t sqrt(a b).
  double lb = static_cast<double>(SignatureHamming(a, b));
  double bound = static_cast<double>(size_a + size_b) -
                 2.0 * threshold *
                     std::sqrt(static_cast<double>(size_a) *
                               static_cast<double>(size_b));
  return lb > bound + kSignatureSlack;
}

bool SignatureRejectsEditDistance(TokenSignature a, TokenSignature b,
                                  size_t max_dist) {
  return static_cast<size_t>(SignatureHamming(a, b)) > 4 * max_dist;
}

}  // namespace cdb
