#include "similarity/similarity.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "similarity/tokenizer.h"

namespace cdb {

const char* SimilarityFunctionName(SimilarityFunction fn) {
  switch (fn) {
    case SimilarityFunction::kNoSim:
      return "NoSim";
    case SimilarityFunction::kEditDistance:
      return "ED";
    case SimilarityFunction::kWordJaccard:
      return "JAC";
    case SimilarityFunction::kQGramJaccard:
      return "CDB(2gram-Jaccard)";
    case SimilarityFunction::kQGramCosine:
      return "COS(2gram)";
  }
  return "?";
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string.
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t sub_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + sub_cost});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

double NormalizedEditSimilarity(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(max_len);
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = SortedIntersectionSize(a, b);
  size_t uni = a.size() + b.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double CosineSimilarity(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t inter = SortedIntersectionSize(a, b);
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(a.size()) * static_cast<double>(b.size()));
}

double ComputeSimilarity(SimilarityFunction fn, std::string_view a,
                         std::string_view b) {
  switch (fn) {
    case SimilarityFunction::kNoSim:
      return 0.5;
    case SimilarityFunction::kEditDistance: {
      // Compare case-insensitively like the token-based measures do.
      return NormalizedEditSimilarity(ToLower(std::string(a)),
                                      ToLower(std::string(b)));
    }
    case SimilarityFunction::kWordJaccard:
      return JaccardSimilarity(WordTokenSet(a), WordTokenSet(b));
    case SimilarityFunction::kQGramJaccard:
      return JaccardSimilarity(QGramSet(a, 2), QGramSet(b, 2));
    case SimilarityFunction::kQGramCosine:
      return CosineSimilarity(QGramSet(a, 2), QGramSet(b, 2));
  }
  return 0.0;
}

}  // namespace cdb
