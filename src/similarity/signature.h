// Bit-parallel record signatures for the similarity-join pre-filter.
//
// Each record's token set is folded into a 64-bit signature: one bit per
// token, chosen by a fixed 64-bit mix of the token. Signatures support an
// XOR+popcount test that lower-bounds the symmetric difference of two token
// sets:
//
//   every bit set in sig(A) ^ sig(B) is set by at least one token of A or B
//   that the other side cannot also contain (a shared token sets the same bit
//   on both sides, so its bit never survives the XOR), and one token sets
//   exactly one bit, hence
//
//       popcount(sig(A) ^ sig(B))  <=  |A △ B|.
//
// The bound is one-sided (collisions can only shrink the popcount, never
// inflate it), which makes every filter built on it *admissible*: a pair is
// rejected only when the bound already proves the exact similarity is below
// the threshold, so the filtered join's output is bit-identical to the
// unfiltered one. With |A| = a, |B| = b and δ = |A △ B| (so the overlap is
// (a + b - δ) / 2):
//
//   Jaccard  >= t  requires  δ <= (1 - t)(a + b) / (1 + t)
//   Cosine   >= t  requires  δ <= a + b - 2 t sqrt(a b)
//   ED       <= τ  requires  δ(2-gram sets) <= 4 τ   (one edit creates and
//            destroys at most q = 2 grams, so it moves the set symmetric
//            difference by at most 2 q = 4)
//
// Rejection tests add a small slack (kSignatureSlack) before comparing
// against the real-valued bounds so floating-point rounding can only make
// the filter weaker (admit a pair verification then rejects), never wrong.
#ifndef CDB_SIMILARITY_SIGNATURE_H_
#define CDB_SIMILARITY_SIGNATURE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cdb {

using TokenSignature = uint64_t;

// Rounding slack for the real-valued bound comparisons. Far above the
// rounding error of doubles at the set sizes we handle (<= 2^31) and far
// below the integer granularity of the popcount, so it can only keep a
// borderline pair alive for exact verification.
inline constexpr double kSignatureSlack = 1e-9;

// Fixed 64-bit finalizer (splitmix64): the token -> bit mapping must be a
// pure function so signatures are reproducible across runs and threads.
constexpr uint64_t MixToken64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// The single bit a token id occupies.
constexpr TokenSignature TokenBit(int32_t id) {
  return TokenSignature{1} << (MixToken64(static_cast<uint64_t>(
                                   static_cast<uint32_t>(id))) &
                               63);
}

// Signature of a dense-id token set (order and duplicates are irrelevant:
// OR is idempotent and commutative).
TokenSignature SignatureOfIds(const int32_t* ids, size_t n);

// 2-gram signature computed directly from the bytes of `s` (no dictionary,
// no allocation), mirroring the tokenizer's short-string rule: strings
// shorter than 2 contribute the whole string as a single token. Used by the
// edit-distance kernel, whose bound must be stated against the exact strings
// fed to the verifier.
TokenSignature SignatureOfGrams(std::string_view s);

// popcount(a ^ b): a lower bound on the symmetric difference of the two
// underlying token sets.
inline int SignatureHamming(TokenSignature a, TokenSignature b) {
  return std::popcount(a ^ b);
}

// True when the signatures prove Jaccard(A, B) < threshold for sets of the
// given sizes. Never true for a pair whose exact Jaccard reaches the
// threshold (admissible).
bool SignatureRejectsJaccard(TokenSignature a, TokenSignature b, size_t size_a,
                             size_t size_b, double threshold);

// As above for cosine over the set sizes.
bool SignatureRejectsCosine(TokenSignature a, TokenSignature b, size_t size_a,
                            size_t size_b, double threshold);

// True when the 2-gram signatures prove ED(a, b) > max_dist (integer bound,
// no slack needed).
bool SignatureRejectsEditDistance(TokenSignature a, TokenSignature b,
                                  size_t max_dist);

}  // namespace cdb

#endif  // CDB_SIMILARITY_SIGNATURE_H_
