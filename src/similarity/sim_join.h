// Similarity join: find all cross-table string pairs with similarity >= a
// threshold without enumerating the cross product.
//
// Section 4.1 of the paper relies on prefix-filtering similarity-join
// techniques [Bayardo et al. WWW'07] to build the query graph: only pairs
// with sim >= epsilon (default 0.3) become edges. This module implements an
// AllPairs-style prefix filter for the token-based measures and a
// length/q-gram filter plus banded verification for edit distance.
#ifndef CDB_SIMILARITY_SIM_JOIN_H_
#define CDB_SIMILARITY_SIM_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "similarity/similarity.h"

namespace cdb {

// One joined pair: indexes into the left/right input vectors plus the exact
// similarity under the requested function.
struct SimPair {
  int32_t left = 0;
  int32_t right = 0;
  double sim = 0.0;
};

struct SimJoinOptions {
  // Threads for candidate verification (the left relation is partitioned
  // into chunks probing a shared read-only index): <= 0 uses all hardware
  // threads, 1 runs serially. Output is bit-identical at every thread count —
  // chunk results are concatenated in chunk order, which is left-index order.
  int num_threads = 0;
};

// Returns all pairs (i, j) with ComputeSimilarity(fn, left[i], right[j]) >=
// threshold. Exact (verification recomputes the true similarity); the filter
// only prunes. For kNoSim every pair has similarity 0.5, so the result is the
// full cross product when threshold <= 0.5 and empty otherwise. Pairs are
// emitted in ascending (left, right) order.
std::vector<SimPair> SimilarityJoin(const std::vector<std::string>& left,
                                    const std::vector<std::string>& right,
                                    SimilarityFunction fn, double threshold,
                                    const SimJoinOptions& options = {});

// One-vs-many variant used for CROWDEQUAL selection predicates: returns the
// indexes i (with similarity) such that sim(values[i], query) >= threshold.
std::vector<SimPair> SimilaritySearch(const std::vector<std::string>& values,
                                      const std::string& query,
                                      SimilarityFunction fn, double threshold);

// Banded Levenshtein: returns the edit distance if it is <= max_dist, and
// max_dist + 1 otherwise (early termination). Exposed for testing.
size_t BoundedEditDistance(const std::string& a, const std::string& b,
                           size_t max_dist);

}  // namespace cdb

#endif  // CDB_SIMILARITY_SIM_JOIN_H_
