// Similarity join: find all cross-table string pairs with similarity >= a
// threshold without enumerating the cross product.
//
// Section 4.1 of the paper relies on prefix-filtering similarity-join
// techniques [Bayardo et al. WWW'07] to build the query graph: only pairs
// with sim >= epsilon (default 0.3) become edges. This module implements an
// AllPairs-style prefix filter for the token-based measures and a
// length/q-gram filter plus banded verification for edit distance.
//
// Two kernels produce bit-identical output (ctest -L simjoin proves it):
//
//   kFlat    The default. Posting lists live in CSR arrays (csr_index.h),
//            encoded token sets in a flat SoA arena, and a 64-bit
//            XOR+popcount signature pre-filter (signature.h) rejects
//            provably-below-threshold pairs before the exact verify, which
//            itself is a linear merge over dense TokenIds instead of a
//            re-comparison of string sets.
//   kLegacy  The original hash-map kernel, kept as the bit-identity oracle
//            for tests and as the baseline the perf-trajectory artifact
//            (BENCH_simjoin.json) measures speedups against.
#ifndef CDB_SIMILARITY_SIM_JOIN_H_
#define CDB_SIMILARITY_SIM_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "similarity/similarity.h"

namespace cdb {

class MetricsRegistry;

// One joined pair: indexes into the left/right input vectors plus the exact
// similarity under the requested function.
struct SimPair {
  int32_t left = 0;
  int32_t right = 0;
  double sim = 0.0;
};

enum class SimJoinKernel : uint8_t {
  kFlat,    // CSR posting lists + SoA token arena + signature pre-filter.
  kLegacy,  // Hash-map reference kernel (bit-identity oracle).
};

const char* SimJoinKernelName(SimJoinKernel kernel);

struct SimJoinOptions {
  // Threads for candidate verification (the left relation is partitioned
  // into chunks probing a shared read-only index): <= 0 uses all hardware
  // threads, 1 runs serially. Output is bit-identical at every thread count —
  // chunk results are concatenated in chunk order, which is left-index order.
  int num_threads = 0;
  // Which kernel runs the join. Both emit byte-identical SimPair vectors;
  // kLegacy exists for the identity proof and the perf baseline.
  SimJoinKernel kernel = SimJoinKernel::kFlat;
  // Admissible XOR+popcount pre-filter ahead of exact verification (flat
  // kernel only). Never changes the output — it rejects a pair only when the
  // signature bound already proves the similarity misses the threshold (see
  // similarity/signature.h) — only the amount of exact verification work.
  bool signature_filter = true;
  // Optional funnel sink (borrowed, may be null = disabled). The kernels
  // count simjoin.candidates (pairs surviving candidate generation — index
  // lookup + dedup for the token joins, length + shared-gram filters for
  // edit distance), simjoin.signature_rejects (killed by the signature
  // bound), simjoin.verified (reaching exact verification) and simjoin.pairs
  // (emitted). candidates == signature_rejects + verified always.
  MetricsRegistry* metrics = nullptr;
};

// Returns all pairs (i, j) with ComputeSimilarity(fn, left[i], right[j]) >=
// threshold. Exact (verification recomputes the true similarity); the filter
// only prunes. For kNoSim every pair has similarity 0.5, so the result is the
// full cross product when threshold <= 0.5 and empty otherwise. Pairs are
// emitted in ascending (left, right) order.
std::vector<SimPair> SimilarityJoin(const std::vector<std::string>& left,
                                    const std::vector<std::string>& right,
                                    SimilarityFunction fn, double threshold,
                                    const SimJoinOptions& options = {});

// One-vs-many variant used for CROWDEQUAL selection predicates: returns the
// indexes i (with similarity) such that sim(values[i], query) >= threshold.
std::vector<SimPair> SimilaritySearch(const std::vector<std::string>& values,
                                      const std::string& query,
                                      SimilarityFunction fn, double threshold);

// Banded Levenshtein: returns the edit distance if it is <= max_dist, and
// max_dist + 1 otherwise (early termination). Exposed for testing.
size_t BoundedEditDistance(const std::string& a, const std::string& b,
                           size_t max_dist);

}  // namespace cdb

#endif  // CDB_SIMILARITY_SIM_JOIN_H_
