// Tokenizers feeding the similarity functions.
//
// CDB estimates the matching probability of a crowd edge from string
// similarity (Section 4.1). The paper's default is Jaccard over 2-gram sets;
// the appendix (Figures 23-24) also evaluates word-token Jaccard, normalized
// edit distance, and a no-similarity baseline.
#ifndef CDB_SIMILARITY_TOKENIZER_H_
#define CDB_SIMILARITY_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace cdb {

// Returns the set (sorted, deduplicated) of character q-grams of the
// lowercased string. Strings shorter than q yield a single token equal to the
// whole string, so very short values still compare meaningfully.
std::vector<std::string> QGramSet(std::string_view s, int q);

// Returns the set (sorted, deduplicated) of lowercased whitespace-separated
// word tokens, with punctuation stripped from token edges.
std::vector<std::string> WordTokenSet(std::string_view s);

// Size of the intersection of two sorted unique token vectors.
size_t SortedIntersectionSize(const std::vector<std::string>& a,
                              const std::vector<std::string>& b);

}  // namespace cdb

#endif  // CDB_SIMILARITY_TOKENIZER_H_
