// String-similarity functions used to estimate crowd-edge matching
// probabilities (Section 4.1, Appendix D).
#ifndef CDB_SIMILARITY_SIMILARITY_H_
#define CDB_SIMILARITY_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

namespace cdb {

// Which estimator to use for edge weights. Mirrors the appendix-D ablation:
//   kNoSim   — no estimation; every candidate pair gets probability 0.5.
//   kEditDistance — 1 - ED(a,b) / max(|a|,|b|).
//   kWordJaccard  — Jaccard over word-token sets.
//   kQGramJaccard — Jaccard over 2-gram sets (the paper's default, "CDB").
//   kQGramCosine  — cosine over 2-gram sets (extra; used by fill-in-blank
//                   truth inference where the paper allows any measure).
enum class SimilarityFunction {
  kNoSim,
  kEditDistance,
  kWordJaccard,
  kQGramJaccard,
  kQGramCosine,
};

const char* SimilarityFunctionName(SimilarityFunction fn);

// Levenshtein distance (unit costs). O(|a|*|b|) with O(min) memory.
size_t EditDistance(std::string_view a, std::string_view b);

// 1 - ED/max-length, in [0,1]; both empty => 1.
double NormalizedEditSimilarity(std::string_view a, std::string_view b);

// Jaccard = |A∩B| / |A∪B| over sorted unique token sets; both empty => 1.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

// Cosine = |A∩B| / sqrt(|A|*|B|) over sorted unique token sets.
double CosineSimilarity(const std::vector<std::string>& a,
                        const std::vector<std::string>& b);

// Dispatches on `fn` and computes the similarity of two raw strings. For
// kNoSim returns 0.5 regardless of input.
double ComputeSimilarity(SimilarityFunction fn, std::string_view a,
                         std::string_view b);

}  // namespace cdb

#endif  // CDB_SIMILARITY_SIMILARITY_H_
