#include "similarity/tokenizer.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace cdb {
namespace {

void SortUnique(std::vector<std::string>& tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
}

std::string StripPunct(std::string_view token) {
  size_t begin = 0;
  size_t end = token.size();
  while (begin < end && std::ispunct(static_cast<unsigned char>(token[begin]))) ++begin;
  while (end > begin && std::ispunct(static_cast<unsigned char>(token[end - 1]))) --end;
  return std::string(token.substr(begin, end - begin));
}

}  // namespace

std::vector<std::string> QGramSet(std::string_view s, int q) {
  std::string lower = ToLower(Trim(s));
  std::vector<std::string> grams;
  if (lower.empty()) return grams;
  if (static_cast<int>(lower.size()) < q) {
    grams.push_back(lower);
    return grams;
  }
  grams.reserve(lower.size() - q + 1);
  for (size_t i = 0; i + q <= lower.size(); ++i) {
    grams.push_back(lower.substr(i, q));
  }
  SortUnique(grams);
  return grams;
}

std::vector<std::string> WordTokenSet(std::string_view s) {
  std::vector<std::string> tokens;
  for (const std::string& raw : SplitWhitespace(ToLower(s))) {
    std::string token = StripPunct(raw);
    if (!token.empty()) tokens.push_back(std::move(token));
  }
  SortUnique(tokens);
  return tokens;
}

size_t SortedIntersectionSize(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace cdb
