#include "similarity/sim_join.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "similarity/csr_index.h"
#include "similarity/signature.h"
#include "similarity/tokenizer.h"

namespace cdb {
namespace {

using TokenId = int32_t;

// Maps token strings to dense ids ordered by ascending global frequency, the
// canonical ordering for prefix filtering (rare tokens first makes prefixes
// selective). The hash map lives only in the build/encode phase — probe loops
// see dense ids and flat arrays.
class TokenDictionary {
 public:
  // Builds the dictionary from the two sides of the join directly (no
  // concatenated copy of the token sets).
  TokenDictionary(const std::vector<std::vector<std::string>>& left_sets,
                  const std::vector<std::vector<std::string>>& right_sets) {
    std::unordered_map<std::string, int64_t> freq;
    for (const auto* sets : {&left_sets, &right_sets}) {
      for (const auto& set : *sets) {
        for (const auto& token : set) ++freq[token];  // cdb-lint: disable=flat-index-hot-path dictionary build phase, not a probe loop
      }
    }
    std::vector<std::pair<int64_t, std::string>> by_freq;
    by_freq.reserve(freq.size());
    for (auto& [token, count] : freq) by_freq.emplace_back(count, token);
    std::sort(by_freq.begin(), by_freq.end());
    ids_.reserve(by_freq.size());
    for (size_t i = 0; i < by_freq.size(); ++i) {
      ids_.emplace(by_freq[i].second, static_cast<TokenId>(i));
    }
  }

  size_t size() const { return ids_.size(); }

  // Translates a token set into sorted ids (ascending frequency order).
  std::vector<TokenId> Encode(const std::vector<std::string>& set) const {
    std::vector<TokenId> out(set.size());
    EncodeInto(set, out.data());
    return out;
  }

  // As Encode, but writes into a caller-owned span (the SoA arena).
  void EncodeInto(const std::vector<std::string>& set, TokenId* out) const {
    for (size_t k = 0; k < set.size(); ++k) {
      auto it = ids_.find(set[k]);  // cdb-lint: disable=flat-index-hot-path one lookup per token in the encode phase, not a probe loop
      CDB_DCHECK(it != ids_.end());
      out[k] = it->second;
    }
    std::sort(out, out + set.size());
  }

 private:
  std::unordered_map<std::string, TokenId> ids_;
};

// Chunk size for partitioning the left relation across the pool: a handful
// of chunks per thread for balance, but coarse enough that the per-chunk
// scratch (seen stamps sized by the right relation) amortizes.
int64_t ProbeGrain(size_t left_size, int num_threads) {
  int64_t chunks = static_cast<int64_t>(ResolveNumThreads(num_threads)) * 4;
  return std::max<int64_t>(static_cast<int64_t>(left_size) / chunks, 16);
}

// Concatenates per-chunk outputs in chunk order. Chunks are contiguous
// ascending ranges of the left relation, so this is exactly the serial
// (ascending left index) output order.
std::vector<SimPair> ConcatChunks(std::vector<std::vector<SimPair>> chunks) {
  size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.size();
  std::vector<SimPair> out;
  out.reserve(total);
  for (auto& chunk : chunks) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

// --- Funnel accounting -----------------------------------------------------
// Counter handles are registered once per join; chunks accumulate locally and
// flush one atomic add per counter per chunk, so the hot loop never touches
// an atomic and the folded totals stay deterministic (integer sums).

struct FunnelCounters {
  Counter* candidates = nullptr;
  Counter* signature_rejects = nullptr;
  Counter* verified = nullptr;
  Counter* pairs = nullptr;
};

FunnelCounters MakeFunnel(MetricsRegistry* metrics) {
  FunnelCounters funnel;
  if (metrics != nullptr) {
    funnel.candidates = &metrics->counter("simjoin.candidates");
    funnel.signature_rejects = &metrics->counter("simjoin.signature_rejects");
    funnel.verified = &metrics->counter("simjoin.verified");
    funnel.pairs = &metrics->counter("simjoin.pairs");
  }
  return funnel;
}

struct FunnelDelta {
  int64_t candidates = 0;
  int64_t signature_rejects = 0;
  int64_t verified = 0;
  int64_t pairs = 0;

  void Flush(const FunnelCounters& funnel) const {
    if (funnel.candidates == nullptr) return;
    funnel.candidates->Increment(candidates);
    funnel.signature_rejects->Increment(signature_rejects);
    funnel.verified->Increment(verified);
    funnel.pairs->Increment(pairs);
  }
};

// --- Shared tokenize/prefix plumbing ---------------------------------------

std::vector<std::vector<std::string>> TokenizeAll(
    const std::vector<std::string>& values, SimilarityFunction fn,
    int num_threads) {
  std::vector<std::vector<std::string>> out(values.size());
  ParallelFor(
      0, static_cast<int64_t>(values.size()), /*grain=*/64,
      [&](int64_t begin, int64_t end, int /*chunk*/) {
        for (int64_t i = begin; i < end; ++i) {
          const std::string& v = values[static_cast<size_t>(i)];
          switch (fn) {
            case SimilarityFunction::kWordJaccard:
              out[static_cast<size_t>(i)] = WordTokenSet(v);
              break;
            case SimilarityFunction::kQGramJaccard:
            case SimilarityFunction::kQGramCosine:
              out[static_cast<size_t>(i)] = QGramSet(v, 2);
              break;
            default:
              CDB_CHECK_MSG(false, "TokenizeAll: not a token-based function");
          }
        }
      },
      num_threads);
  return out;
}

// Jaccard prefix length: a record of size n must share a token within its
// first n - ceil(t * n) + 1 tokens with any record it joins at threshold t.
size_t JaccardPrefixLength(size_t n, double t) {
  if (n == 0) return 0;
  size_t required = static_cast<size_t>(std::ceil(t * static_cast<double>(n)));
  if (required == 0) required = 1;
  if (required > n) return 0;  // Cannot reach the threshold at all.
  return n - required + 1;
}

// Cosine prefix length: overlap must be >= t^2 * n against any partner.
size_t CosinePrefixLength(size_t n, double t) {
  if (n == 0) return 0;
  size_t required =
      static_cast<size_t>(std::ceil(t * t * static_cast<double>(n)));
  if (required == 0) required = 1;
  if (required > n) return 0;
  return n - required + 1;
}

// --- Exact verification over encoded ids -----------------------------------
// The legacy kernel re-verifies each candidate from the string token sets.
// The flat kernel merges the already-encoded sorted TokenId spans instead.
// Encoding is a bijection on the tokens present, so intersection and set
// sizes — and therefore the sim doubles computed from them with the exact
// formulas of similarity.cc — are bit-identical.

// Smallest intersection count m (m <= min(na, nb)) whose Jaccard, computed
// with the verifier's exact double formula, reaches the threshold; returns
// min(na, nb) + 1 when even full overlap misses it. Division of a
// nondecreasing integer numerator by a nonincreasing positive denominator is
// monotone under rounding, so "inter >= required" is exactly "sim >=
// threshold".
size_t RequiredIntersectionJaccard(size_t na, size_t nb, double t) {
  const size_t cap = std::min(na, nb);
  const size_t total = na + nb;
  auto reaches = [&](size_t m) {
    return static_cast<double>(m) / static_cast<double>(total - m) >= t;
  };
  size_t m = static_cast<size_t>(
      std::min(t * static_cast<double>(total) / (1.0 + t),
               static_cast<double>(cap)));
  while (m > 0 && reaches(m - 1)) --m;
  while (m <= cap && !reaches(m)) ++m;
  return m;
}

// As above for cosine: sim(m) = m / sqrt(na * nb).
size_t RequiredIntersectionCosine(size_t na, size_t nb, double t) {
  const size_t cap = std::min(na, nb);
  const double denom = std::sqrt(static_cast<double>(na) *
                                 static_cast<double>(nb));
  auto reaches = [&](size_t m) {
    return static_cast<double>(m) / denom >= t;
  };
  size_t m = static_cast<size_t>(
      std::min(t * denom, static_cast<double>(cap)));
  while (m > 0 && reaches(m - 1)) --m;
  while (m <= cap && !reaches(m)) ++m;
  return m;
}

// Sorted-span intersection size with early abandon: returns any value <
// `required` once even a full overlap of the remaining elements cannot reach
// it (the caller only tests `>= required`, which the monotone construction
// of `required` makes equivalent to the exact sim test).
size_t IntersectIdsAbandon(const TokenId* a, size_t na, const TokenId* b,
                           size_t nb, size_t required) {
  size_t i = 0;
  size_t j = 0;
  size_t inter = 0;
  while (i < na && j < nb) {
    if (inter + std::min(na - i, nb - j) < required) return inter;
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  return inter;
}

// --- Token prefix join: flat kernel ----------------------------------------

std::vector<SimPair> TokenPrefixJoinFlat(const std::vector<std::string>& left,
                                         const std::vector<std::string>& right,
                                         SimilarityFunction fn,
                                         double threshold,
                                         const SimJoinOptions& options) {
  std::vector<std::vector<std::string>> left_tokens =
      TokenizeAll(left, fn, options.num_threads);
  std::vector<std::vector<std::string>> right_tokens =
      TokenizeAll(right, fn, options.num_threads);
  TokenDictionary dict(left_tokens, right_tokens);

  // SoA encode: all token ids in two flat arenas, one span per record,
  // filled in parallel (spans are disjoint).
  auto set_sizes = [](const std::vector<std::vector<std::string>>& sets) {
    std::vector<int32_t> sizes(sets.size());
    for (size_t r = 0; r < sets.size(); ++r) {
      sizes[r] = static_cast<int32_t>(sets[r].size());
    }
    return sizes;
  };
  TokenArena left_arena(set_sizes(left_tokens));
  TokenArena right_arena(set_sizes(right_tokens));
  std::vector<TokenSignature> left_sig(left.size());
  std::vector<TokenSignature> right_sig(right.size());
  auto encode_side = [&](const std::vector<std::vector<std::string>>& tokens,
                         TokenArena& arena, std::vector<TokenSignature>& sig) {
    ParallelFor(
        0, static_cast<int64_t>(tokens.size()), /*grain=*/64,
        [&](int64_t begin, int64_t end, int /*chunk*/) {
          for (int64_t r = begin; r < end; ++r) {
            size_t rec = static_cast<size_t>(r);
            dict.EncodeInto(tokens[rec], arena.MutableSpan(rec));
            sig[rec] = SignatureOfIds(arena.begin(rec), arena.size(rec));
          }
        },
        options.num_threads);
  };
  encode_side(left_tokens, left_arena, left_sig);
  encode_side(right_tokens, right_arena, right_sig);

  const bool cosine = fn == SimilarityFunction::kQGramCosine;
  auto prefix_len = [&](size_t n) {
    return cosine ? CosinePrefixLength(n, threshold)
                  : JaccardPrefixLength(n, threshold);
  };

  // CSR inverted index over the prefixes of the right side. Count-then-fill
  // with ascending-j emission keeps every posting list in ascending-j order —
  // the order the legacy unordered_map index produced with push_back.
  CsrIndex index = CsrIndex::Build(
      dict.size(), [&](const auto& sink) {
        for (size_t j = 0; j < right.size(); ++j) {
          size_t plen = prefix_len(right_arena.size(j));
          const TokenId* ids = right_arena.begin(j);
          for (size_t k = 0; k < plen; ++k) {
            sink(ids[k], static_cast<int32_t>(j));
          }
        }
      });

  const FunnelCounters funnel = MakeFunnel(options.metrics);
  const bool use_signature = options.signature_filter;
  const int64_t grain = ProbeGrain(left.size(), options.num_threads);
  const int64_t num_chunks =
      left.empty() ? 0 : (static_cast<int64_t>(left.size()) + grain - 1) / grain;
  std::vector<std::vector<SimPair>> chunk_out(static_cast<size_t>(num_chunks));
  ParallelFor(
      0, static_cast<int64_t>(left.size()), grain,
      [&](int64_t begin, int64_t end, int chunk) {
        std::vector<SimPair>& out = chunk_out[static_cast<size_t>(chunk)];
        FunnelDelta delta;
        // Thread-local dedup scratch: stamps are per-probe, so a fresh vector
        // per chunk reproduces the serial semantics exactly.
        std::vector<int32_t> seen_stamp(right.size(), -1);
        for (int64_t li = begin; li < end; ++li) {
          size_t i = static_cast<size_t>(li);
          const size_t na = left_arena.size(i);
          const TokenId* a = left_arena.begin(i);
          size_t plen = prefix_len(na);
          for (size_t k = 0; k < plen; ++k) {
            auto [p, p_end] = index.Postings(a[k]);
            for (; p != p_end; ++p) {
              const int32_t j = *p;
              if (seen_stamp[static_cast<size_t>(j)] ==
                  static_cast<int32_t>(i)) {
                continue;
              }
              seen_stamp[static_cast<size_t>(j)] = static_cast<int32_t>(i);
              ++delta.candidates;
              const size_t nb = right_arena.size(static_cast<size_t>(j));
              if (use_signature) {
                const bool rejected =
                    cosine ? SignatureRejectsCosine(
                                 left_sig[i],
                                 right_sig[static_cast<size_t>(j)], na, nb,
                                 threshold)
                           : SignatureRejectsJaccard(
                                 left_sig[i],
                                 right_sig[static_cast<size_t>(j)], na, nb,
                                 threshold);
                if (rejected) {
                  ++delta.signature_rejects;
                  continue;
                }
              }
              ++delta.verified;
              // Exact verify: linear merge over the sorted id spans, with an
              // admissible early abandon below the required intersection.
              const size_t required =
                  cosine ? RequiredIntersectionCosine(na, nb, threshold)
                         : RequiredIntersectionJaccard(na, nb, threshold);
              if (required > std::min(na, nb)) continue;
              const TokenId* b = right_arena.begin(static_cast<size_t>(j));
              size_t inter = IntersectIdsAbandon(a, na, b, nb, required);
              if (inter < required) continue;
              double sim =
                  cosine
                      ? static_cast<double>(inter) /
                            std::sqrt(static_cast<double>(na) *
                                      static_cast<double>(nb))
                      : static_cast<double>(inter) /
                            static_cast<double>(na + nb - inter);
              out.push_back({static_cast<int32_t>(i), j, sim});
              ++delta.pairs;
            }
          }
        }
        delta.Flush(funnel);
      },
      options.num_threads);
  return ConcatChunks(std::move(chunk_out));
}

// --- Token prefix join: legacy kernel --------------------------------------
// The original hash-map implementation, preserved verbatim as the
// bit-identity oracle and the perf baseline. Do not "optimize" it: its value
// is being an independent derivation of the same output.

std::vector<SimPair> TokenPrefixJoinLegacy(
    const std::vector<std::string>& left, const std::vector<std::string>& right,
    SimilarityFunction fn, double threshold, const SimJoinOptions& options) {
  std::vector<std::vector<std::string>> left_tokens =
      TokenizeAll(left, fn, options.num_threads);
  std::vector<std::vector<std::string>> right_tokens =
      TokenizeAll(right, fn, options.num_threads);
  TokenDictionary dict(left_tokens, right_tokens);

  std::vector<std::vector<TokenId>> left_ids(left.size());
  std::vector<std::vector<TokenId>> right_ids(right.size());
  ParallelFor(
      0, static_cast<int64_t>(left.size()), /*grain=*/64,
      [&](int64_t begin, int64_t end, int /*chunk*/) {
        for (int64_t i = begin; i < end; ++i) {
          left_ids[static_cast<size_t>(i)] =
              dict.Encode(left_tokens[static_cast<size_t>(i)]);
        }
      },
      options.num_threads);
  ParallelFor(
      0, static_cast<int64_t>(right.size()), /*grain=*/64,
      [&](int64_t begin, int64_t end, int /*chunk*/) {
        for (int64_t j = begin; j < end; ++j) {
          right_ids[static_cast<size_t>(j)] =
              dict.Encode(right_tokens[static_cast<size_t>(j)]);
        }
      },
      options.num_threads);

  const bool cosine = fn == SimilarityFunction::kQGramCosine;
  auto prefix_len = [&](size_t n) {
    return cosine ? CosinePrefixLength(n, threshold)
                  : JaccardPrefixLength(n, threshold);
  };

  // Inverted index over the prefixes of the right side. Built serially so
  // posting lists stay in ascending-j order, then shared read-only across
  // the probe threads.
  std::unordered_map<TokenId, std::vector<int32_t>> index;
  for (size_t j = 0; j < right.size(); ++j) {
    size_t plen = prefix_len(right_ids[j].size());
    for (size_t k = 0; k < plen; ++k) index[right_ids[j][k]].push_back(static_cast<int32_t>(j));  // cdb-lint: disable=flat-index-hot-path legacy reference kernel
  }

  const FunnelCounters funnel = MakeFunnel(options.metrics);
  const int64_t grain = ProbeGrain(left.size(), options.num_threads);
  const int64_t num_chunks =
      left.empty() ? 0 : (static_cast<int64_t>(left.size()) + grain - 1) / grain;
  std::vector<std::vector<SimPair>> chunk_out(static_cast<size_t>(num_chunks));
  ParallelFor(
      0, static_cast<int64_t>(left.size()), grain,
      [&](int64_t begin, int64_t end, int chunk) {
        std::vector<SimPair>& out = chunk_out[static_cast<size_t>(chunk)];
        FunnelDelta delta;
        // Thread-local dedup scratch: stamps are per-probe, so a fresh vector
        // per chunk reproduces the serial semantics exactly.
        std::vector<int32_t> seen_stamp(right.size(), -1);
        for (int64_t li = begin; li < end; ++li) {
          size_t i = static_cast<size_t>(li);
          size_t plen = prefix_len(left_ids[i].size());
          for (size_t k = 0; k < plen; ++k) {
            auto it = index.find(left_ids[i][k]);  // cdb-lint: disable=flat-index-hot-path legacy reference kernel
            if (it == index.end()) continue;
            for (int32_t j : it->second) {
              if (seen_stamp[j] == static_cast<int32_t>(i)) continue;
              seen_stamp[j] = static_cast<int32_t>(i);
              ++delta.candidates;
              ++delta.verified;
              // Verify with the exact similarity.
              double sim;
              if (cosine) {
                sim = CosineSimilarity(left_tokens[i], right_tokens[static_cast<size_t>(j)]);
              } else {
                sim = JaccardSimilarity(left_tokens[i], right_tokens[static_cast<size_t>(j)]);
              }
              if (sim >= threshold) {
                out.push_back({static_cast<int32_t>(i), j, sim});
                ++delta.pairs;
              }
            }
          }
        }
        delta.Flush(funnel);
      },
      options.num_threads);
  return ConcatChunks(std::move(chunk_out));
}

// --- Edit-distance join ----------------------------------------------------

// Right lengths L compatible with a left string of length n at threshold t:
// for L <= n the pair's max_len is n, so L >= n - floor((1-t) * n); for
// L > n the max_len is L, so L - floor((1-t) * L) <= n — the left side of
// which is nondecreasing in L, so the upper bound is found by scanning up.
std::pair<size_t, size_t> EdLengthRange(size_t n, size_t max_right_len,
                                        double threshold) {
  size_t slack =
      static_cast<size_t>(std::floor((1.0 - threshold) * static_cast<double>(n)));
  size_t lo = n > slack ? n - slack : 0;
  size_t hi = std::min(n, max_right_len);
  for (size_t L = n + 1; L <= max_right_len; ++L) {
    size_t max_dist = static_cast<size_t>(
        std::floor((1.0 - threshold) * static_cast<double>(L)));
    if (L - n > max_dist) break;
    hi = L;
  }
  return {lo, hi};
}

std::vector<SimPair> EditDistanceJoinFlat(const std::vector<std::string>& left,
                                          const std::vector<std::string>& right,
                                          double threshold,
                                          const SimJoinOptions& options) {
  // Candidate generation mirrors the legacy kernel: the length filter always
  // applies (served by a length-keyed CSR); the shared-2-gram filter applies
  // only when the count bound (max_len - 1) - 2*tau is positive. On top, the
  // 2-gram signature bound (popcount(xor) <= 4 * ED, see signature.h) rejects
  // pairs whose banded verification would provably exceed tau.
  std::vector<std::string> left_lower(left.size());
  std::vector<std::string> right_lower(right.size());
  for (size_t i = 0; i < left.size(); ++i) left_lower[i] = ToLower(left[i]);
  for (size_t j = 0; j < right.size(); ++j) right_lower[j] = ToLower(right[j]);

  // Gram sets on both sides, encoded once into flat arenas (the legacy
  // kernel re-materialized the left gram set per probe).
  std::vector<std::vector<std::string>> left_grams(left.size());
  std::vector<std::vector<std::string>> right_grams(right.size());
  auto tokenize_grams = [&](const std::vector<std::string>& lower,
                            std::vector<std::vector<std::string>>& grams) {
    ParallelFor(
        0, static_cast<int64_t>(lower.size()), /*grain=*/64,
        [&](int64_t begin, int64_t end, int /*chunk*/) {
          for (int64_t r = begin; r < end; ++r) {
            grams[static_cast<size_t>(r)] =
                QGramSet(lower[static_cast<size_t>(r)], 2);
          }
        },
        options.num_threads);
  };
  tokenize_grams(left_lower, left_grams);
  tokenize_grams(right_lower, right_grams);
  TokenDictionary dict(left_grams, right_grams);

  auto set_sizes = [](const std::vector<std::vector<std::string>>& sets) {
    std::vector<int32_t> sizes(sets.size());
    for (size_t r = 0; r < sets.size(); ++r) {
      sizes[r] = static_cast<int32_t>(sets[r].size());
    }
    return sizes;
  };
  TokenArena left_arena(set_sizes(left_grams));
  TokenArena right_arena(set_sizes(right_grams));
  // Signatures come from the raw (untrimmed) lowercased bytes so the
  // admissibility bound is stated against the exact strings the banded
  // verifier sees; the gram arenas (QGramSet, trimmed) feed only the
  // legacy-compatible shared-gram filter.
  std::vector<TokenSignature> left_sig(left.size());
  std::vector<TokenSignature> right_sig(right.size());
  auto encode_side = [&](const std::vector<std::string>& lower,
                         const std::vector<std::vector<std::string>>& grams,
                         TokenArena& arena, std::vector<TokenSignature>& sig) {
    ParallelFor(
        0, static_cast<int64_t>(lower.size()), /*grain=*/64,
        [&](int64_t begin, int64_t end, int /*chunk*/) {
          for (int64_t r = begin; r < end; ++r) {
            size_t rec = static_cast<size_t>(r);
            dict.EncodeInto(grams[rec], arena.MutableSpan(rec));
            sig[rec] = SignatureOfGrams(lower[rec]);
          }
        },
        options.num_threads);
  };
  encode_side(left_lower, left_grams, left_arena, left_sig);
  encode_side(right_lower, right_grams, right_arena, right_sig);

  size_t max_right_len = 0;
  for (const std::string& b : right_lower) {
    max_right_len = std::max(max_right_len, b.size());
  }

  // CSR gram index and length-keyed candidate index over the right side,
  // both count-then-fill with ascending-j emission.
  CsrIndex gram_index = CsrIndex::Build(
      dict.size(), [&](const auto& sink) {
        for (size_t j = 0; j < right.size(); ++j) {
          const TokenId* ids = right_arena.begin(j);
          const size_t n = right_arena.size(j);
          for (size_t k = 0; k < n; ++k) sink(ids[k], static_cast<int32_t>(j));
        }
      });
  CsrIndex by_len = CsrIndex::Build(
      max_right_len + 1, [&](const auto& sink) {
        for (size_t j = 0; j < right.size(); ++j) {
          sink(static_cast<int32_t>(right_lower[j].size()),
               static_cast<int32_t>(j));
        }
      });

  const FunnelCounters funnel = MakeFunnel(options.metrics);
  const bool use_signature = options.signature_filter;
  const int64_t grain = ProbeGrain(left.size(), options.num_threads);
  const int64_t num_chunks =
      left.empty() ? 0 : (static_cast<int64_t>(left.size()) + grain - 1) / grain;
  std::vector<std::vector<SimPair>> chunk_out(static_cast<size_t>(num_chunks));
  ParallelFor(
      0, static_cast<int64_t>(left.size()), grain,
      [&](int64_t begin, int64_t end, int chunk) {
        std::vector<SimPair>& out = chunk_out[static_cast<size_t>(chunk)];
        FunnelDelta delta;
        std::vector<int32_t> shared_stamp(right.size(), -1);
        std::vector<int32_t> candidates;
        for (int64_t li = begin; li < end; ++li) {
          size_t i = static_cast<size_t>(li);
          const std::string& a = left_lower[i];
          // Mark the right records sharing a 2-gram with `a`: a linear scan
          // over contiguous CSR postings per gram id.
          const TokenId* agrams = left_arena.begin(i);
          const size_t agram_count = left_arena.size(i);
          for (size_t g = 0; g < agram_count; ++g) {
            auto [p, p_end] = gram_index.Postings(agrams[g]);
            for (; p != p_end; ++p) {
              shared_stamp[static_cast<size_t>(*p)] = static_cast<int32_t>(i);
            }
          }
          // Gather length-compatible candidates, restoring ascending-j order
          // across buckets so the output matches a full scan's ordering.
          auto [len_lo, len_hi] = EdLengthRange(a.size(), max_right_len, threshold);
          candidates.clear();
          for (size_t L = len_lo; L <= len_hi && L <= max_right_len; ++L) {
            auto [p, p_end] = by_len.Postings(static_cast<int32_t>(L));
            candidates.insert(candidates.end(), p, p_end);
          }
          std::sort(candidates.begin(), candidates.end());
          for (int32_t cj : candidates) {
            size_t j = static_cast<size_t>(cj);
            const std::string& b = right_lower[j];
            size_t max_len = std::max(a.size(), b.size());
            if (max_len == 0) {
              out.push_back({static_cast<int32_t>(i), cj, 1.0});
              continue;
            }
            auto max_dist = static_cast<size_t>(
                std::floor((1.0 - threshold) * static_cast<double>(max_len)));
            size_t diff = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
            if (diff > max_dist) continue;
            bool gram_filter_applies =
                static_cast<int64_t>(max_len) - 1 - 2 * static_cast<int64_t>(max_dist) > 0;
            if (gram_filter_applies && shared_stamp[j] != static_cast<int32_t>(i)) {
              continue;
            }
            ++delta.candidates;
            if (use_signature &&
                SignatureRejectsEditDistance(left_sig[i], right_sig[j],
                                             max_dist)) {
              ++delta.signature_rejects;
              continue;
            }
            ++delta.verified;
            size_t dist = BoundedEditDistance(a, b, max_dist);
            if (dist <= max_dist) {
              double sim =
                  1.0 - static_cast<double>(dist) / static_cast<double>(max_len);
              if (sim >= threshold) {
                out.push_back({static_cast<int32_t>(i), cj, sim});
                ++delta.pairs;
              }
            }
          }
        }
        delta.Flush(funnel);
      },
      options.num_threads);
  return ConcatChunks(std::move(chunk_out));
}

// The original hash-map kernel (bit-identity oracle / perf baseline). One
// deviation from the seed implementation: the left gram sets are precomputed
// outside the probe loop instead of materializing a fresh
// std::vector<std::string> per probe, which changes allocations but not
// output.
std::vector<SimPair> EditDistanceJoinLegacy(
    const std::vector<std::string>& left, const std::vector<std::string>& right,
    double threshold, const SimJoinOptions& options) {
  std::vector<std::string> left_lower(left.size());
  std::vector<std::string> right_lower(right.size());
  for (size_t i = 0; i < left.size(); ++i) left_lower[i] = ToLower(left[i]);
  for (size_t j = 0; j < right.size(); ++j) right_lower[j] = ToLower(right[j]);

  std::vector<std::vector<std::string>> left_grams(left.size());
  for (size_t i = 0; i < left.size(); ++i) {
    left_grams[i] = QGramSet(left_lower[i], 2);
  }

  std::unordered_map<std::string, std::vector<int32_t>> index;
  size_t max_right_len = 0;
  for (size_t j = 0; j < right.size(); ++j) {
    max_right_len = std::max(max_right_len, right_lower[j].size());
    for (const auto& gram : QGramSet(right_lower[j], 2)) {
      index[gram].push_back(static_cast<int32_t>(j));  // cdb-lint: disable=flat-index-hot-path legacy reference kernel
    }
  }
  // Length-bucketed candidate index: by_len[L] lists the right records of
  // length L in ascending order.
  std::vector<std::vector<int32_t>> by_len(max_right_len + 1);
  for (size_t j = 0; j < right.size(); ++j) {
    by_len[right_lower[j].size()].push_back(static_cast<int32_t>(j));
  }

  const FunnelCounters funnel = MakeFunnel(options.metrics);
  const int64_t grain = ProbeGrain(left.size(), options.num_threads);
  const int64_t num_chunks =
      left.empty() ? 0 : (static_cast<int64_t>(left.size()) + grain - 1) / grain;
  std::vector<std::vector<SimPair>> chunk_out(static_cast<size_t>(num_chunks));
  ParallelFor(
      0, static_cast<int64_t>(left.size()), grain,
      [&](int64_t begin, int64_t end, int chunk) {
        std::vector<SimPair>& out = chunk_out[static_cast<size_t>(chunk)];
        FunnelDelta delta;
        std::vector<int32_t> shared_stamp(right.size(), -1);
        std::vector<int32_t> candidates;
        for (int64_t li = begin; li < end; ++li) {
          size_t i = static_cast<size_t>(li);
          const std::string& a = left_lower[i];
          for (const auto& gram : left_grams[i]) {
            auto it = index.find(gram);  // cdb-lint: disable=flat-index-hot-path legacy reference kernel
            if (it == index.end()) continue;
            for (int32_t j : it->second) shared_stamp[j] = static_cast<int32_t>(i);
          }
          // Gather length-compatible candidates, restoring ascending-j order
          // across buckets so the output matches a full scan's ordering.
          auto [len_lo, len_hi] = EdLengthRange(a.size(), max_right_len, threshold);
          candidates.clear();
          for (size_t L = len_lo; L <= len_hi && L < by_len.size(); ++L) {
            candidates.insert(candidates.end(), by_len[L].begin(), by_len[L].end());
          }
          std::sort(candidates.begin(), candidates.end());
          for (int32_t cj : candidates) {
            size_t j = static_cast<size_t>(cj);
            const std::string& b = right_lower[j];
            size_t max_len = std::max(a.size(), b.size());
            if (max_len == 0) {
              out.push_back({static_cast<int32_t>(i), cj, 1.0});
              continue;
            }
            auto max_dist = static_cast<size_t>(
                std::floor((1.0 - threshold) * static_cast<double>(max_len)));
            size_t diff = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
            if (diff > max_dist) continue;
            bool gram_filter_applies =
                static_cast<int64_t>(max_len) - 1 - 2 * static_cast<int64_t>(max_dist) > 0;
            if (gram_filter_applies && shared_stamp[j] != static_cast<int32_t>(i)) {
              continue;
            }
            ++delta.candidates;
            ++delta.verified;
            size_t dist = BoundedEditDistance(a, b, max_dist);
            if (dist <= max_dist) {
              double sim =
                  1.0 - static_cast<double>(dist) / static_cast<double>(max_len);
              if (sim >= threshold) {
                out.push_back({static_cast<int32_t>(i), cj, sim});
                ++delta.pairs;
              }
            }
          }
        }
        delta.Flush(funnel);
      },
      options.num_threads);
  return ConcatChunks(std::move(chunk_out));
}

std::vector<SimPair> CrossProduct(size_t n_left, size_t n_right, double sim) {
  std::vector<SimPair> out;
  out.reserve(n_left * n_right);
  for (size_t i = 0; i < n_left; ++i) {
    for (size_t j = 0; j < n_right; ++j) {
      out.push_back({static_cast<int32_t>(i), static_cast<int32_t>(j), sim});
    }
  }
  return out;
}

}  // namespace

size_t BoundedEditDistance(const std::string& a, const std::string& b,
                           size_t max_dist) {
  const size_t n = a.size();
  const size_t m = b.size();
  size_t diff = n > m ? n - m : m - n;
  if (diff > max_dist) return max_dist + 1;
  const size_t kInf = max_dist + 1;
  // Banded DP: only cells with |i - j| <= max_dist can be <= max_dist.
  std::vector<size_t> prev(m + 1, kInf);
  std::vector<size_t> cur(m + 1, kInf);
  for (size_t j = 0; j <= std::min(m, max_dist); ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    size_t lo = i > max_dist ? i - max_dist : 0;
    size_t hi = std::min(m, i + max_dist);
    std::fill(cur.begin(), cur.end(), kInf);
    if (lo == 0) cur[0] = i <= max_dist ? i : kInf;
    size_t row_min = kInf;
    for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      size_t del = prev[j] == kInf ? kInf : prev[j] + 1;
      size_t ins = cur[j - 1] == kInf ? kInf : cur[j - 1] + 1;
      cur[j] = std::min({sub, del, ins, kInf});
      row_min = std::min(row_min, cur[j]);
    }
    if (lo == 0) row_min = std::min(row_min, cur[0]);
    if (row_min > max_dist) return max_dist + 1;  // Early abandon.
    std::swap(prev, cur);
  }
  return std::min(prev[m], kInf);
}

const char* SimJoinKernelName(SimJoinKernel kernel) {
  switch (kernel) {
    case SimJoinKernel::kFlat:
      return "flat";
    case SimJoinKernel::kLegacy:
      return "legacy";
  }
  return "?";
}

std::vector<SimPair> SimilarityJoin(const std::vector<std::string>& left,
                                    const std::vector<std::string>& right,
                                    SimilarityFunction fn, double threshold,
                                    const SimJoinOptions& options) {
  const bool flat = options.kernel == SimJoinKernel::kFlat;
  switch (fn) {
    case SimilarityFunction::kNoSim:
      if (threshold <= 0.5) return CrossProduct(left.size(), right.size(), 0.5);
      return {};
    case SimilarityFunction::kEditDistance:
      return flat ? EditDistanceJoinFlat(left, right, threshold, options)
                  : EditDistanceJoinLegacy(left, right, threshold, options);
    case SimilarityFunction::kWordJaccard:
    case SimilarityFunction::kQGramJaccard:
    case SimilarityFunction::kQGramCosine:
      return flat ? TokenPrefixJoinFlat(left, right, fn, threshold, options)
                  : TokenPrefixJoinLegacy(left, right, fn, threshold, options);
  }
  return {};
}

std::vector<SimPair> SimilaritySearch(const std::vector<std::string>& values,
                                      const std::string& query,
                                      SimilarityFunction fn, double threshold) {
  // One query string: the scan is linear anyway, so compute exactly.
  std::vector<SimPair> out;
  for (size_t i = 0; i < values.size(); ++i) {
    double sim = ComputeSimilarity(fn, values[i], query);
    if (sim >= threshold) out.push_back({static_cast<int32_t>(i), 0, sim});
  }
  return out;
}

}  // namespace cdb
