#include "similarity/sim_join.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "similarity/tokenizer.h"

namespace cdb {
namespace {

using TokenId = int32_t;

// Maps token strings to dense ids ordered by ascending global frequency, the
// canonical ordering for prefix filtering (rare tokens first makes prefixes
// selective).
class TokenDictionary {
 public:
  // Builds the dictionary from the two sides of the join directly (no
  // concatenated copy of the token sets).
  TokenDictionary(const std::vector<std::vector<std::string>>& left_sets,
                  const std::vector<std::vector<std::string>>& right_sets) {
    std::unordered_map<std::string, int64_t> freq;
    for (const auto* sets : {&left_sets, &right_sets}) {
      for (const auto& set : *sets) {
        for (const auto& token : set) ++freq[token];
      }
    }
    std::vector<std::pair<int64_t, std::string>> by_freq;
    by_freq.reserve(freq.size());
    for (auto& [token, count] : freq) by_freq.emplace_back(count, token);
    std::sort(by_freq.begin(), by_freq.end());
    ids_.reserve(by_freq.size());
    for (size_t i = 0; i < by_freq.size(); ++i) {
      ids_.emplace(by_freq[i].second, static_cast<TokenId>(i));
    }
  }

  // Translates a token set into sorted ids (ascending frequency order).
  std::vector<TokenId> Encode(const std::vector<std::string>& set) const {
    std::vector<TokenId> out;
    out.reserve(set.size());
    for (const auto& token : set) {
      auto it = ids_.find(token);
      CDB_DCHECK(it != ids_.end());
      out.push_back(it->second);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::unordered_map<std::string, TokenId> ids_;
};

// Chunk size for partitioning the left relation across the pool: a handful
// of chunks per thread for balance, but coarse enough that the per-chunk
// scratch (seen stamps sized by the right relation) amortizes.
int64_t ProbeGrain(size_t left_size, int num_threads) {
  int64_t chunks = static_cast<int64_t>(ResolveNumThreads(num_threads)) * 4;
  return std::max<int64_t>(static_cast<int64_t>(left_size) / chunks, 16);
}

// Concatenates per-chunk outputs in chunk order. Chunks are contiguous
// ascending ranges of the left relation, so this is exactly the serial
// (ascending left index) output order.
std::vector<SimPair> ConcatChunks(std::vector<std::vector<SimPair>> chunks) {
  size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.size();
  std::vector<SimPair> out;
  out.reserve(total);
  for (auto& chunk : chunks) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

std::vector<std::vector<std::string>> TokenizeAll(
    const std::vector<std::string>& values, SimilarityFunction fn,
    int num_threads) {
  std::vector<std::vector<std::string>> out(values.size());
  ParallelFor(
      0, static_cast<int64_t>(values.size()), /*grain=*/64,
      [&](int64_t begin, int64_t end, int /*chunk*/) {
        for (int64_t i = begin; i < end; ++i) {
          const std::string& v = values[static_cast<size_t>(i)];
          switch (fn) {
            case SimilarityFunction::kWordJaccard:
              out[static_cast<size_t>(i)] = WordTokenSet(v);
              break;
            case SimilarityFunction::kQGramJaccard:
            case SimilarityFunction::kQGramCosine:
              out[static_cast<size_t>(i)] = QGramSet(v, 2);
              break;
            default:
              CDB_CHECK_MSG(false, "TokenizeAll: not a token-based function");
          }
        }
      },
      num_threads);
  return out;
}

// Jaccard prefix length: a record of size n must share a token within its
// first n - ceil(t * n) + 1 tokens with any record it joins at threshold t.
size_t JaccardPrefixLength(size_t n, double t) {
  if (n == 0) return 0;
  size_t required = static_cast<size_t>(std::ceil(t * static_cast<double>(n)));
  if (required == 0) required = 1;
  if (required > n) return 0;  // Cannot reach the threshold at all.
  return n - required + 1;
}

// Cosine prefix length: overlap must be >= t^2 * n against any partner.
size_t CosinePrefixLength(size_t n, double t) {
  if (n == 0) return 0;
  size_t required =
      static_cast<size_t>(std::ceil(t * t * static_cast<double>(n)));
  if (required == 0) required = 1;
  if (required > n) return 0;
  return n - required + 1;
}

std::vector<SimPair> TokenPrefixJoin(const std::vector<std::string>& left,
                                     const std::vector<std::string>& right,
                                     SimilarityFunction fn, double threshold,
                                     const SimJoinOptions& options) {
  std::vector<std::vector<std::string>> left_tokens =
      TokenizeAll(left, fn, options.num_threads);
  std::vector<std::vector<std::string>> right_tokens =
      TokenizeAll(right, fn, options.num_threads);
  TokenDictionary dict(left_tokens, right_tokens);

  std::vector<std::vector<TokenId>> left_ids(left.size());
  std::vector<std::vector<TokenId>> right_ids(right.size());
  ParallelFor(
      0, static_cast<int64_t>(left.size()), /*grain=*/64,
      [&](int64_t begin, int64_t end, int /*chunk*/) {
        for (int64_t i = begin; i < end; ++i) {
          left_ids[static_cast<size_t>(i)] =
              dict.Encode(left_tokens[static_cast<size_t>(i)]);
        }
      },
      options.num_threads);
  ParallelFor(
      0, static_cast<int64_t>(right.size()), /*grain=*/64,
      [&](int64_t begin, int64_t end, int /*chunk*/) {
        for (int64_t j = begin; j < end; ++j) {
          right_ids[static_cast<size_t>(j)] =
              dict.Encode(right_tokens[static_cast<size_t>(j)]);
        }
      },
      options.num_threads);

  const bool cosine = fn == SimilarityFunction::kQGramCosine;
  auto prefix_len = [&](size_t n) {
    return cosine ? CosinePrefixLength(n, threshold)
                  : JaccardPrefixLength(n, threshold);
  };

  // Inverted index over the prefixes of the right side. Built serially so
  // posting lists stay in ascending-j order, then shared read-only across
  // the probe threads.
  std::unordered_map<TokenId, std::vector<int32_t>> index;
  for (size_t j = 0; j < right.size(); ++j) {
    size_t plen = prefix_len(right_ids[j].size());
    for (size_t k = 0; k < plen; ++k) index[right_ids[j][k]].push_back(static_cast<int32_t>(j));
  }

  const int64_t grain = ProbeGrain(left.size(), options.num_threads);
  const int64_t num_chunks =
      left.empty() ? 0 : (static_cast<int64_t>(left.size()) + grain - 1) / grain;
  std::vector<std::vector<SimPair>> chunk_out(static_cast<size_t>(num_chunks));
  ParallelFor(
      0, static_cast<int64_t>(left.size()), grain,
      [&](int64_t begin, int64_t end, int chunk) {
        std::vector<SimPair>& out = chunk_out[static_cast<size_t>(chunk)];
        // Thread-local dedup scratch: stamps are per-probe, so a fresh vector
        // per chunk reproduces the serial semantics exactly.
        std::vector<int32_t> seen_stamp(right.size(), -1);
        for (int64_t li = begin; li < end; ++li) {
          size_t i = static_cast<size_t>(li);
          size_t plen = prefix_len(left_ids[i].size());
          for (size_t k = 0; k < plen; ++k) {
            auto it = index.find(left_ids[i][k]);
            if (it == index.end()) continue;
            for (int32_t j : it->second) {
              if (seen_stamp[j] == static_cast<int32_t>(i)) continue;
              seen_stamp[j] = static_cast<int32_t>(i);
              // Verify with the exact similarity.
              double sim;
              if (cosine) {
                sim = CosineSimilarity(left_tokens[i], right_tokens[static_cast<size_t>(j)]);
              } else {
                sim = JaccardSimilarity(left_tokens[i], right_tokens[static_cast<size_t>(j)]);
              }
              if (sim >= threshold) {
                out.push_back({static_cast<int32_t>(i), j, sim});
              }
            }
          }
        }
      },
      options.num_threads);
  return ConcatChunks(std::move(chunk_out));
}

std::vector<SimPair> EditDistanceJoin(const std::vector<std::string>& left,
                                      const std::vector<std::string>& right,
                                      double threshold,
                                      const SimJoinOptions& options) {
  // Candidate generation: the length filter (|len(a)-len(b)| <= tau) always
  // applies and is served by a length-bucketed index, so only
  // length-compatible right records are visited per left record; the
  // shared-2-gram filter applies only when the count bound
  // (max_len - 1) - 2*tau is positive — strings within tau edits then must
  // share at least one 2-gram. At permissive thresholds the bound can be
  // non-positive, in which case we verify the pair directly (banded
  // Levenshtein with early abandon keeps that cheap).
  std::vector<std::string> left_lower(left.size());
  std::vector<std::string> right_lower(right.size());
  for (size_t i = 0; i < left.size(); ++i) left_lower[i] = ToLower(left[i]);
  for (size_t j = 0; j < right.size(); ++j) right_lower[j] = ToLower(right[j]);

  std::unordered_map<std::string, std::vector<int32_t>> index;
  size_t max_right_len = 0;
  for (size_t j = 0; j < right.size(); ++j) {
    max_right_len = std::max(max_right_len, right_lower[j].size());
    for (const auto& gram : QGramSet(right_lower[j], 2)) {
      index[gram].push_back(static_cast<int32_t>(j));
    }
  }
  // Length-bucketed candidate index: by_len[L] lists the right records of
  // length L in ascending order.
  std::vector<std::vector<int32_t>> by_len(max_right_len + 1);
  for (size_t j = 0; j < right.size(); ++j) {
    by_len[right_lower[j].size()].push_back(static_cast<int32_t>(j));
  }

  // Right lengths L compatible with a left string of length n at threshold t:
  // for L <= n the pair's max_len is n, so L >= n - floor((1-t) * n); for
  // L > n the max_len is L, so L - floor((1-t) * L) <= n — the left side of
  // which is nondecreasing in L, so the upper bound is found by scanning up.
  auto length_range = [&](size_t n) -> std::pair<size_t, size_t> {
    size_t slack =
        static_cast<size_t>(std::floor((1.0 - threshold) * static_cast<double>(n)));
    size_t lo = n > slack ? n - slack : 0;
    size_t hi = std::min(n, max_right_len);
    for (size_t L = n + 1; L <= max_right_len; ++L) {
      size_t max_dist = static_cast<size_t>(
          std::floor((1.0 - threshold) * static_cast<double>(L)));
      if (L - n > max_dist) break;
      hi = L;
    }
    return {lo, hi};
  };

  const int64_t grain = ProbeGrain(left.size(), options.num_threads);
  const int64_t num_chunks =
      left.empty() ? 0 : (static_cast<int64_t>(left.size()) + grain - 1) / grain;
  std::vector<std::vector<SimPair>> chunk_out(static_cast<size_t>(num_chunks));
  ParallelFor(
      0, static_cast<int64_t>(left.size()), grain,
      [&](int64_t begin, int64_t end, int chunk) {
        std::vector<SimPair>& out = chunk_out[static_cast<size_t>(chunk)];
        std::vector<int32_t> shared_stamp(right.size(), -1);
        std::vector<int32_t> candidates;
        for (int64_t li = begin; li < end; ++li) {
          size_t i = static_cast<size_t>(li);
          const std::string& a = left_lower[i];
          for (const auto& gram : QGramSet(a, 2)) {
            auto it = index.find(gram);
            if (it == index.end()) continue;
            for (int32_t j : it->second) shared_stamp[j] = static_cast<int32_t>(i);
          }
          // Gather length-compatible candidates, restoring ascending-j order
          // across buckets so the output matches a full scan's ordering.
          auto [len_lo, len_hi] = length_range(a.size());
          candidates.clear();
          for (size_t L = len_lo; L <= len_hi && L < by_len.size(); ++L) {
            candidates.insert(candidates.end(), by_len[L].begin(), by_len[L].end());
          }
          std::sort(candidates.begin(), candidates.end());
          for (int32_t cj : candidates) {
            size_t j = static_cast<size_t>(cj);
            const std::string& b = right_lower[j];
            size_t max_len = std::max(a.size(), b.size());
            if (max_len == 0) {
              out.push_back({static_cast<int32_t>(i), cj, 1.0});
              continue;
            }
            auto max_dist = static_cast<size_t>(
                std::floor((1.0 - threshold) * static_cast<double>(max_len)));
            size_t diff = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
            if (diff > max_dist) continue;
            bool gram_filter_applies =
                static_cast<int64_t>(max_len) - 1 - 2 * static_cast<int64_t>(max_dist) > 0;
            if (gram_filter_applies && shared_stamp[j] != static_cast<int32_t>(i)) {
              continue;
            }
            size_t dist = BoundedEditDistance(a, b, max_dist);
            if (dist <= max_dist) {
              double sim =
                  1.0 - static_cast<double>(dist) / static_cast<double>(max_len);
              if (sim >= threshold) {
                out.push_back({static_cast<int32_t>(i), cj, sim});
              }
            }
          }
        }
      },
      options.num_threads);
  return ConcatChunks(std::move(chunk_out));
}

std::vector<SimPair> CrossProduct(size_t n_left, size_t n_right, double sim) {
  std::vector<SimPair> out;
  out.reserve(n_left * n_right);
  for (size_t i = 0; i < n_left; ++i) {
    for (size_t j = 0; j < n_right; ++j) {
      out.push_back({static_cast<int32_t>(i), static_cast<int32_t>(j), sim});
    }
  }
  return out;
}

}  // namespace

size_t BoundedEditDistance(const std::string& a, const std::string& b,
                           size_t max_dist) {
  const size_t n = a.size();
  const size_t m = b.size();
  size_t diff = n > m ? n - m : m - n;
  if (diff > max_dist) return max_dist + 1;
  const size_t kInf = max_dist + 1;
  // Banded DP: only cells with |i - j| <= max_dist can be <= max_dist.
  std::vector<size_t> prev(m + 1, kInf);
  std::vector<size_t> cur(m + 1, kInf);
  for (size_t j = 0; j <= std::min(m, max_dist); ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    size_t lo = i > max_dist ? i - max_dist : 0;
    size_t hi = std::min(m, i + max_dist);
    std::fill(cur.begin(), cur.end(), kInf);
    if (lo == 0) cur[0] = i <= max_dist ? i : kInf;
    size_t row_min = kInf;
    for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      size_t del = prev[j] == kInf ? kInf : prev[j] + 1;
      size_t ins = cur[j - 1] == kInf ? kInf : cur[j - 1] + 1;
      cur[j] = std::min({sub, del, ins, kInf});
      row_min = std::min(row_min, cur[j]);
    }
    if (lo == 0) row_min = std::min(row_min, cur[0]);
    if (row_min > max_dist) return max_dist + 1;  // Early abandon.
    std::swap(prev, cur);
  }
  return std::min(prev[m], kInf);
}

std::vector<SimPair> SimilarityJoin(const std::vector<std::string>& left,
                                    const std::vector<std::string>& right,
                                    SimilarityFunction fn, double threshold,
                                    const SimJoinOptions& options) {
  switch (fn) {
    case SimilarityFunction::kNoSim:
      if (threshold <= 0.5) return CrossProduct(left.size(), right.size(), 0.5);
      return {};
    case SimilarityFunction::kEditDistance:
      return EditDistanceJoin(left, right, threshold, options);
    case SimilarityFunction::kWordJaccard:
    case SimilarityFunction::kQGramJaccard:
    case SimilarityFunction::kQGramCosine:
      return TokenPrefixJoin(left, right, fn, threshold, options);
  }
  return {};
}

std::vector<SimPair> SimilaritySearch(const std::vector<std::string>& values,
                                      const std::string& query,
                                      SimilarityFunction fn, double threshold) {
  // One query string: the scan is linear anyway, so compute exactly.
  std::vector<SimPair> out;
  for (size_t i = 0; i < values.size(); ++i) {
    double sim = ComputeSimilarity(fn, values[i], query);
    if (sim >= threshold) out.push_back({static_cast<int32_t>(i), 0, sim});
  }
  return out;
}

}  // namespace cdb
