// Common shape of a generated benchmark dataset: the relational tables plus
// the ground truth the crowd simulator and the metrics need.
//
// Ground truth is kept as entity ids: two cells match (a crowd edge is truly
// BLUE) iff their columns' entity vectors agree. Selection constants also map
// to entity ids (e.g. "USA" to the USA country entity), so CROWDEQUAL truth
// is entity equality as well.
#ifndef CDB_DATAGEN_DATASET_H_
#define CDB_DATAGEN_DATASET_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "storage/catalog.h"

namespace cdb {

inline constexpr int64_t kNoEntity = -1;

struct GeneratedDataset {
  Catalog catalog;

  // Key: lowercase "table.column". Value: entity id per row (kNoEntity when
  // the cell refers to nothing in the shared entity space).
  std::map<std::string, std::vector<int64_t>> entity_of;

  // Key: lowercase "table.column|constant". Value: the entity a selection
  // constant denotes.
  std::map<std::string, int64_t> constant_entity;

  // Convenience accessors (abort on unknown keys — generator bugs).
  const std::vector<int64_t>& Entities(const std::string& table,
                                       const std::string& column) const;
  int64_t ConstantEntity(const std::string& table, const std::string& column,
                         const std::string& constant) const;
  static std::string ColumnKey(const std::string& table,
                               const std::string& column);
  static std::string ConstantKey(const std::string& table,
                                 const std::string& column,
                                 const std::string& constant);
};

}  // namespace cdb

#endif  // CDB_DATAGEN_DATASET_H_
