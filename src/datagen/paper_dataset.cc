#include "datagen/paper_dataset.h"

#include <algorithm>
#include <cctype>
#include <iterator>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "datagen/perturb.h"

namespace cdb {
namespace {

// External (off-table) entity ids live far above the in-table id spaces so
// they never collide.
constexpr int64_t kExternalBase = 1'000'000;

// A wide first-name pool keeps shared-first-name author pairs (the classic
// 0.4-similarity RED edges of the paper's Figure 4) present but not so dense
// that the graph degenerates into a clique.
// The "common" name pools; most names are synthesized (see SynthNamePart).
const char* const kFirstNames[] = {
    "Michael",  "David",    "Samuel",   "Hector",   "Surajit",  "Aditya",
    "Bruce",    "Jennifer", "Rakesh",   "Joseph",   "Peter",    "Laura",
    "Daniel",   "Anhai",    "Magdalena", "Jiannan",  "Volker",   "Stefan",
    "Divesh",   "Jeffrey",
};

const char* const kLastNames[] = {
    "Franklin",  "DeWitt",    "Madden",   "Croft",    "Jagadish", "Chaudhuri",
    "Garcia-Molina", "Parameswaran", "Dahlin", "Jordan", "Hunter", "Thomas",
    "Stonebraker", "Gray",     "Codd",     "Widom",    "Ullman",   "Halevy",
    "Abiteboul", "Vardi",
};

const char* const kTitleLead[] = {
    "", "Towards", "On", "Revisiting", "Rethinking", "A Study of",
};

const char* const kTitleAdjective[] = {
    "Efficient", "Scalable",  "Adaptive",   "Distributed", "Optimal",
    "Parallel",  "Incremental", "Crowdsourced", "Robust",  "Approximate",
    "Interactive", "Declarative", "Cost-Effective", "Online", "Secure",
};

// Title cores are compound (topic x task) so that two distinct works rarely
// share the whole core phrase; sharing only one word stays below epsilon.
const char* const kTitleTopic[] = {
    "Query",       "Entity",     "Data",      "Graph",      "Stream",
    "Index",       "Schema",     "Transaction", "View",     "Record",
    "Keyword",     "Crowd",      "Knowledge", "Cache",      "Storage",
    "Log",         "Cluster",    "Sample",    "Feature",    "Model",
    "Tensor",      "Workload",   "Cardinality", "Provenance", "Cube",
    "Sketch",      "Bitmap",     "Histogram", "Partition",  "Replica",
};

// Short task words: sharing just one word must stay below epsilon.
const char* const kTitleTask[] = {
    "Search",  "Cleaning", "Matching", "Tuning",  "Pruning", "Scaling",
    "Mining",  "Ranking",  "Probing",  "Caching", "Hashing", "Sorting",
    "Joins",   "Repair",   "Lookup",   "Sync",
};

// Suffixes are short: a shared tail phrase alone must stay well below the
// epsilon threshold (long shared suffixes were measured to put ~10% of all
// title pairs above 0.3 two-gram Jaccard).
const char* const kTitleSuffix[] = {
    "at Scale",   "in Practice", "Revisited",  "by Example", "in Parallel",
    "on GPUs",    "for Streams", "under Skew", "in Theory",  "Done Right",
};

const char* const kPlaceSyllables[] = {
    "ka",   "ver",  "ton",  "ridge", "field", "ham",  "ber",  "lin",
    "mont", "clair", "wes", "ox",    "brad",  "ches", "dor",  "fair",
    "glen", "hart", "iron", "jas",   "kel",   "lun",  "mar",  "nor",
    "park", "quin", "ros",  "stan",  "tren",  "ul",   "vin",  "wood",
    "yor",  "zan",  "ash",  "bel",   "cor",   "dun",  "ell",  "fen",
    "gor",  "hol",  "ing",  "jor",   "kil",   "lor",  "mun",  "nev",
    "ost",  "pel",  "rud",  "sel",   "tor",   "urb",  "val",  "wyn",
    "xan",  "yel",  "zor",  "alb",   "bru",   "cre",  "dra",  "fro",
};

struct Country {
  const char* canonical;
  std::vector<const char*> variants;
};

const Country kCountries[] = {
    {"USA", {"USA", "US", "United States"}},
    {"UK", {"UK", "United Kingdom", "U.K."}},
    {"China", {"China", "P.R. China", "PR China"}},
    {"Germany", {"Germany", "Deutschland"}},
    {"Canada", {"Canada"}},
    {"France", {"France"}},
    {"Japan", {"Japan"}},
    {"Australia", {"Australia"}},
};

struct Conference {
  const char* canonical;
  std::vector<const char*> variants;
};

const Conference kConferences[] = {
    {"sigmod", {"sigmod16", "sigmod14", "sigmod 2015", "acm sigmod", "sigmod10"}},
    {"vldb", {"vldb14", "vldb 2016", "pvldb"}},
    {"icde", {"icde15", "icde 2013"}},
    {"sigir", {"sigir", "sigir12"}},
    {"kdd", {"kdd16", "acm kdd"}},
    {"www", {"www13", "www 2015"}},
};

template <typename T, size_t N>
const T& Pick(const T (&pool)[N], Rng& rng) {
  return pool[static_cast<size_t>(rng.UniformInt(0, N - 1))];
}

std::string Capitalize(std::string s) {
  if (!s.empty()) s[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(s[0])));
  return s;
}

std::string MakePlace(Rng& rng, std::unordered_set<std::string>& used) {
  // Bimodal, like real institution names: a minority of short place names
  // collide with each other (above the epsilon threshold when the type word
  // is also shared); long 4-5 syllable names stay distinctive.
  bool ambiguous = rng.Bernoulli(0.25);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::string place = Pick(kPlaceSyllables, rng);
    place += Pick(kPlaceSyllables, rng);
    if (!ambiguous) {
      place += Pick(kPlaceSyllables, rng);
      place += Pick(kPlaceSyllables, rng);
      if (rng.Bernoulli(0.5)) place += Pick(kPlaceSyllables, rng);
    }
    place = Capitalize(place);
    if (used.insert(place).second) return place;
  }
  CDB_CHECK_MSG(false, "place-name pool exhausted");
  return "";
}

// Synthetic distinctive name parts: effectively collision-free.
std::string SynthNamePart(Rng& rng) {
  static constexpr const char* kEndings[] = {"a", "o", "i", "us", "en", "ez"};
  std::string part = Capitalize(std::string(Pick(kPlaceSyllables, rng)));
  part += Pick(kPlaceSyllables, rng);
  part += Pick(kEndings, rng);
  return part;
}

// Real-world name ambiguity is bimodal: most people have distinctive names
// (1-2 candidate matches above epsilon); a minority carry common first/last
// names and collide widely. That heterogeneity is what gives tuple-level
// optimization its leverage — different chains have their "narrow spot" at
// different predicates (Figure 1).
std::string MakePersonName(Rng& rng) {
  bool common_first = rng.Bernoulli(0.25);
  bool common_last = rng.Bernoulli(0.25);
  std::string name =
      common_first ? Pick(kFirstNames, rng) : SynthNamePart(rng);
  if (rng.Bernoulli(0.4)) {
    name += " ";
    name += static_cast<char>('A' + rng.UniformInt(0, 25));
    name += ".";
  }
  name += " ";
  name += common_last ? Pick(kLastNames, rng) : SynthNamePart(rng);
  return name;
}

// Distinct entities must carry distinct names: the crowd cannot tell two
// people called exactly "Michael Franklin" apart, so duplicate entity names
// would inject irreducible truth noise (and densify the graph with
// similarity-1 non-matches). Retry with middle initials until unique.
std::string MakeUniquePersonName(Rng& rng,
                                 std::unordered_set<std::string>& used) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::string name = MakePersonName(rng);
    if (attempt > 2 && name.find('.') == std::string::npos) {
      // Force a distinguishing middle initial once plain names collide.
      size_t space = name.find(' ');
      name.insert(space + 1, std::string(1, static_cast<char>(
                                                'A' + rng.UniformInt(0, 25))) +
                                 ". ");
    }
    if (used.insert(name).second) return name;
  }
  CDB_CHECK_MSG(false, "person-name pool exhausted");
  return "";
}

// Titles mix a distinctive system name ("Kaverlin: ...") with formulaic
// tails, like real database papers: distinct works usually fall below the
// epsilon threshold while same-core-and-suffix pairs form moderate-weight
// near-miss edges.
std::string MakeSystemName(Rng& rng) {
  std::string name = Capitalize(std::string(Pick(kPlaceSyllables, rng)));
  name += Pick(kPlaceSyllables, rng);
  name += Pick(kPlaceSyllables, rng);
  name += rng.Bernoulli(0.25) ? "DB" : "";
  return name;
}

// A unique "flavor" word (e.g. "Kaverlin-aware") lengthens every title with
// content no other work shares, so pairs that coincide on one or two
// formulaic pieces still fall below the epsilon threshold.
std::string MakeFlavorWord(Rng& rng) {
  // Raw unique syllables: no shared "-aware"-style suffix mass.
  std::string word = Capitalize(std::string(Pick(kPlaceSyllables, rng)));
  word += Pick(kPlaceSyllables, rng);
  if (rng.Bernoulli(0.5)) word += Pick(kPlaceSyllables, rng);
  return word;
}

std::string MakeTitle(Rng& rng) {
  std::string title;
  if (rng.Bernoulli(0.12)) {
    // A "generic" title assembled mostly from the formulaic pools: these
    // collide with other generic works (the ambiguous-title minority). Half
    // of them still carry a flavor word, which moderates the collision
    // degree to a realistic handful of candidates.
    const char* lead = Pick(kTitleLead, rng);
    if (*lead != '\0') {
      title += lead;
      title += ' ';
    }
    title += Pick(kTitleAdjective, rng);
    title += ' ';
    if (rng.Bernoulli(0.5)) {
      title += MakeFlavorWord(rng);
      title += ' ';
    }
    title += Pick(kTitleTopic, rng);
    title += ' ';
    title += Pick(kTitleTask, rng);
    title += ' ';
    title += Pick(kTitleSuffix, rng);
    return title;
  }
  // A distinctive title: unique system and flavor words keep it below the
  // epsilon threshold against everything but its own citations.
  title += MakeSystemName(rng);
  title += ": ";
  if (rng.Bernoulli(0.5)) {
    title += Pick(kTitleAdjective, rng);
    title += ' ';
  }
  title += MakeFlavorWord(rng);
  title += ' ';
  title += Pick(kTitleTopic, rng);
  title += ' ';
  title += Pick(kTitleTask, rng);
  return title;
}

std::string MakeUniqueTitle(Rng& rng, std::unordered_set<std::string>& used) {
  for (int attempt = 0; attempt < 500; ++attempt) {
    std::string title = MakeTitle(rng);
    if (used.insert(title).second) return title;
  }
  CDB_CHECK_MSG(false, "title pool exhausted");
  return "";
}

int64_t Scaled(int64_t n, double scale) {
  return std::max<int64_t>(1, static_cast<int64_t>(n * scale));
}

}  // namespace

GeneratedDataset GeneratePaperDataset(const PaperDatasetOptions& options) {
  Rng rng(options.seed);
  GeneratedDataset ds;

  const int64_t num_papers = Scaled(options.num_papers, options.scale);
  const int64_t num_citations = Scaled(options.num_citations, options.scale);
  const int64_t num_researchers = Scaled(options.num_researchers, options.scale);
  const int64_t num_universities = Scaled(options.num_universities, options.scale);

  // --- Entities ---
  struct UnivEntity {
    std::string name;
    std::string city;
    int country;
  };
  std::unordered_set<std::string> used_places;
  std::vector<UnivEntity> universities;
  universities.reserve(num_universities);
  for (int64_t i = 0; i < num_universities; ++i) {
    std::string place = MakePlace(rng, used_places);
    // Single-word institution types: the shared type word alone stays below
    // the epsilon threshold against long place names.
    // Many short type words: sharing one contributes too few 2-grams to
    // cross the epsilon threshold against long place names.
    static constexpr const char* kInstitutionTypes[] = {
        "University", "College", "Institute", "Polytech", "Academy",
        "Seminary",   "School",  "Faculty",   "Campus",   "Center",
        "Lyceum",     "Atheneum",
    };
    std::string type = Pick(kInstitutionTypes, rng);
    std::string name = rng.Bernoulli(0.3) ? type + " of " + place
                                          : place + " " + type;
    int country = rng.Bernoulli(0.6)
                      ? 0  // USA
                      : static_cast<int>(rng.UniformInt(
                            1, static_cast<int64_t>(std::size(kCountries)) - 1));
    universities.push_back({name, place, country});
  }

  struct ResearcherEntity {
    std::string name;
    int64_t univ;  // Entity id, or external.
  };
  std::vector<ResearcherEntity> researchers;
  researchers.reserve(num_researchers);
  std::unordered_set<std::string> used_names;
  for (int64_t i = 0; i < num_researchers; ++i) {
    int64_t univ = rng.Bernoulli(options.researcher_univ_known)
                       ? rng.UniformInt(0, num_universities - 1)
                       : kExternalBase + i;
    researchers.push_back({MakeUniquePersonName(rng, used_names), univ});
  }

  struct PaperEntity {
    std::string title;
    int64_t author;  // Researcher entity id, or external.
    int conference;
  };
  std::vector<PaperEntity> papers;
  papers.reserve(num_papers);
  std::unordered_set<std::string> used_titles;
  for (int64_t i = 0; i < num_papers; ++i) {
    int64_t author = rng.Bernoulli(options.paper_author_known)
                         ? rng.UniformInt(0, num_researchers - 1)
                         : kExternalBase + i;
    int conference = static_cast<int>(
        rng.UniformInt(0, static_cast<int64_t>(std::size(kConferences)) - 1));
    papers.push_back({MakeUniqueTitle(rng, used_titles), author, conference});
  }

  // --- Tables ---
  auto add = [&](Table table) { CDB_CHECK(ds.catalog.AddTable(std::move(table)).ok()); };

  // University(name, city, country).
  {
    Table table("University",
                Schema({{"name", ValueType::kString, false},
                        {"city", ValueType::kString, false},
                        {"country", ValueType::kString, false}}));
    std::vector<int64_t>& name_ent = ds.entity_of[GeneratedDataset::ColumnKey("University", "name")];
    std::vector<int64_t>& country_ent = ds.entity_of[GeneratedDataset::ColumnKey("University", "country")];
    for (int64_t i = 0; i < num_universities; ++i) {
      const UnivEntity& u = universities[static_cast<size_t>(i)];
      const Country& c = kCountries[u.country];
      std::string country = c.variants[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(c.variants.size()) - 1))];
      CDB_CHECK(table
                    .AppendRow({Value::Str(u.name), Value::Str(u.city),
                                Value::Str(country)})
                    .ok());
      name_ent.push_back(i);
      country_ent.push_back(u.country);
    }
    add(std::move(table));
    for (const Country& c : kCountries) {
      for (const char* variant : c.variants) {
        ds.constant_entity[GeneratedDataset::ConstantKey("University", "country", variant)] =
            static_cast<int64_t>(&c - kCountries);
      }
    }
  }

  // Researcher(affiliation, name, gender).
  {
    Table table("Researcher",
                Schema({{"affiliation", ValueType::kString, false},
                        {"name", ValueType::kString, false},
                        {"gender", ValueType::kString, true}}));
    std::vector<int64_t>& aff_ent = ds.entity_of[GeneratedDataset::ColumnKey("Researcher", "affiliation")];
    std::vector<int64_t>& name_ent = ds.entity_of[GeneratedDataset::ColumnKey("Researcher", "name")];
    for (int64_t i = 0; i < num_researchers; ++i) {
      const ResearcherEntity& r = researchers[static_cast<size_t>(i)];
      std::string affiliation =
          r.univ < num_universities
              ? PerturbOrgName(universities[static_cast<size_t>(r.univ)].name, rng)
              : "Unknown Laboratory " + std::to_string(i);
      CDB_CHECK(table
                    .AppendRow({Value::Str(affiliation), Value::Str(r.name),
                                rng.Bernoulli(0.5) ? Value::Str("male")
                                                   : Value::Str("female")})
                    .ok());
      aff_ent.push_back(r.univ);
      name_ent.push_back(i);
    }
    add(std::move(table));
  }

  // Paper(author, title, conference).
  {
    Table table("Paper", Schema({{"author", ValueType::kString, false},
                                 {"title", ValueType::kString, false},
                                 {"conference", ValueType::kString, false}}));
    std::vector<int64_t>& author_ent = ds.entity_of[GeneratedDataset::ColumnKey("Paper", "author")];
    std::vector<int64_t>& title_ent = ds.entity_of[GeneratedDataset::ColumnKey("Paper", "title")];
    std::vector<int64_t>& conf_ent = ds.entity_of[GeneratedDataset::ColumnKey("Paper", "conference")];
    for (int64_t i = 0; i < num_papers; ++i) {
      const PaperEntity& p = papers[static_cast<size_t>(i)];
      std::string author =
          p.author < num_researchers
              ? PerturbPersonName(researchers[static_cast<size_t>(p.author)].name, rng)
              : MakeUniquePersonName(rng, used_names);
      const Conference& conf = kConferences[p.conference];
      std::string conference = conf.variants[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(conf.variants.size()) - 1))];
      CDB_CHECK(table
                    .AppendRow({Value::Str(author), Value::Str(p.title),
                                Value::Str(conference)})
                    .ok());
      author_ent.push_back(p.author);
      title_ent.push_back(i);
      conf_ent.push_back(p.conference);
    }
    add(std::move(table));
    for (const Conference& conf : kConferences) {
      for (const char* variant : conf.variants) {
        ds.constant_entity[GeneratedDataset::ConstantKey("Paper", "conference", variant)] =
            static_cast<int64_t>(&conf - kConferences);
      }
      ds.constant_entity[GeneratedDataset::ConstantKey("Paper", "conference", conf.canonical)] =
          static_cast<int64_t>(&conf - kConferences);
    }
  }

  // Citation(title, number).
  {
    Table table("Citation", Schema({{"title", ValueType::kString, false},
                                    {"number", ValueType::kInt64, false}}));
    std::vector<int64_t>& title_ent = ds.entity_of[GeneratedDataset::ColumnKey("Citation", "title")];
    for (int64_t i = 0; i < num_citations; ++i) {
      double roll = rng.Uniform();
      std::string title;
      int64_t entity;
      if (roll < options.citation_real) {
        // A real citation: light perturbation, same entity.
        int64_t paper = rng.UniformInt(0, num_papers - 1);
        title = PerturbTitle(papers[static_cast<size_t>(paper)].title, rng);
        entity = paper;
      } else if (roll < options.citation_real + options.citation_near_miss) {
        // A near miss: shares words with a real paper but is another work.
        int64_t paper = rng.UniformInt(0, num_papers - 1);
        title = papers[static_cast<size_t>(paper)].title;
        title = DropRandomWord(title, rng);
        title += ' ';
        title += Pick(kTitleSuffix, rng);
        entity = kExternalBase + i;
      } else {
        title = MakeUniqueTitle(rng, used_titles);
        entity = kExternalBase + i;
      }
      CDB_CHECK(table
                    .AppendRow({Value::Str(title),
                                Value::Int(rng.UniformInt(0, 120))})
                    .ok());
      title_ent.push_back(entity);
    }
    add(std::move(table));
  }

  return ds;
}

}  // namespace cdb
