// CrowdOracle implementation backed by a GeneratedDataset's entity links —
// the simulation ground truth used by the Database front-end for the
// benchmark datasets and the Table-1 miniature.
#ifndef CDB_DATAGEN_ENTITY_ORACLE_H_
#define CDB_DATAGEN_ENTITY_ORACLE_H_

#include "datagen/dataset.h"
#include "exec/database.h"

namespace cdb {

class EntityOracle : public CrowdOracle {
 public:
  // `dataset` is borrowed and must outlive the oracle.
  explicit EntityOracle(const GeneratedDataset* dataset) : dataset_(dataset) {}

  [[nodiscard]] bool JoinMatches(const std::string& left_table,
                                 const std::string& left_column,
                                 int64_t left_row,
                                 const std::string& right_table,
                                 const std::string& right_column,
                                 int64_t right_row) const override;

  [[nodiscard]] bool SelectionMatches(const std::string& table,
                                      const std::string& column, int64_t row,
                                      const std::string& constant)
      const override;

  // Fill truth: the entity id rendered as a stable string when the column
  // has entity links, else a deterministic per-cell value; the wrong pool
  // holds two perturbations.
  FillTaskSpec FillTruth(const std::string& table, const std::string& column,
                         int64_t row) const override;

  // Collect world: an open world of 100 synthetic entities named after the
  // table (each with one abbreviated variant).
  CollectUniverse CollectWorld(const std::string& table) const override;

 private:
  const int64_t* EntityOrNull(const std::string& table,
                              const std::string& column, int64_t row) const;

  const GeneratedDataset* dataset_;
};

}  // namespace cdb

#endif  // CDB_DATAGEN_ENTITY_ORACLE_H_
