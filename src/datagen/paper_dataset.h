// Synthetic stand-in for the paper's `paper` benchmark dataset (Table 2):
// four tables — Paper(author, title, conference), Citation(title, number),
// Researcher(affiliation, name, gender), University(name, city, country) —
// generated at the same cardinalities with ground-truth entity links and
// realistic string variety (the paper crawled ACM/DBLP; see DESIGN.md for
// why the substitution preserves the evaluation's shape).
#ifndef CDB_DATAGEN_PAPER_DATASET_H_
#define CDB_DATAGEN_PAPER_DATASET_H_

#include <cstdint>

#include "datagen/dataset.h"

namespace cdb {

struct PaperDatasetOptions {
  // Table-2 cardinalities.
  int64_t num_papers = 676;
  int64_t num_citations = 1239;
  int64_t num_researchers = 911;
  int64_t num_universities = 830;
  // Scales every cardinality (e.g. 0.2 for fast unit tests).
  double scale = 1.0;
  // Fractions controlling ground-truth density.
  double paper_author_known = 0.6;   // Paper author appears in Researcher.
  double citation_real = 0.4;        // Citation refers to a real paper.
  double citation_near_miss = 0.15;  // Citation similar to a paper, no match.
  double researcher_univ_known = 0.65;
  uint64_t seed = 97;
};

GeneratedDataset GeneratePaperDataset(const PaperDatasetOptions& options);

}  // namespace cdb

#endif  // CDB_DATAGEN_PAPER_DATASET_H_
