#include "datagen/string_corpus.h"

#include <cstddef>

#include "common/logging.h"
#include "common/random.h"
#include "datagen/perturb.h"

namespace cdb {
namespace {

const char* const kSyllables[] = {
    "ka", "ver", "ton", "ridge", "field", "ham", "ber", "lin",
    "mont", "clair", "wes", "ox", "brad", "ches", "dor", "fair",
    "glen", "hart", "iron", "jas", "kel", "lun", "mar", "nor",
    "park", "quin", "ros", "stan", "tren", "ul", "vin", "wood",
    "yor", "zan", "ash", "bel", "cor", "dun", "ell", "fen",
};

constexpr size_t kNumSyllables = sizeof(kSyllables) / sizeof(kSyllables[0]);

std::string MakeWord(Rng& rng) {
  std::string word = kSyllables[rng.UniformInt(
      0, static_cast<int64_t>(kNumSyllables) - 1)];
  int extra = static_cast<int>(rng.UniformInt(1, 2));
  for (int k = 0; k < extra; ++k) {
    word += kSyllables[rng.UniformInt(0,
                                      static_cast<int64_t>(kNumSyllables) - 1)];
  }
  return word;
}

// Fresh record: min..max vocabulary words, Zipf-weighted.
std::string MakeRecord(const std::vector<std::string>& vocab,
                       const StringCorpusOptions& options, Rng& rng) {
  int words = static_cast<int>(
      rng.UniformInt(options.min_words, options.max_words));
  std::string out;
  for (int w = 0; w < words; ++w) {
    if (w > 0) out += ' ';
    out += vocab[static_cast<size_t>(
        rng.Zipf(static_cast<int64_t>(vocab.size()), options.zipf_s))];
  }
  return out;
}

std::string PerturbRecord(const std::string& base, Rng& rng) {
  switch (rng.UniformInt(0, 3)) {
    case 0:
      return IntroduceTypo(base, rng);
    case 1:
      return DropRandomWord(base, rng);
    case 2:
      return IntroduceTypo(IntroduceTypo(base, rng), rng);
    default:
      return base;  // Exact duplicate.
  }
}

}  // namespace

StringCorpus GenerateStringCorpus(const StringCorpusOptions& options) {
  CDB_CHECK(options.min_words >= 1 && options.max_words >= options.min_words);
  CDB_CHECK(options.vocabulary >= 1);

  // Vocabulary: one dedicated stream so it does not depend on the record
  // counts. Words may repeat in the pool; that only skews frequencies, which
  // the Zipf draw does anyway.
  std::vector<std::string> vocab;
  vocab.reserve(static_cast<size_t>(options.vocabulary));
  {
    Rng vocab_rng(options.seed, /*stream=*/0);
    for (int w = 0; w < options.vocabulary; ++w) {
      vocab.push_back(MakeWord(vocab_rng));
    }
  }

  StringCorpus corpus;
  corpus.left.resize(static_cast<size_t>(options.num_left));
  corpus.right.resize(static_cast<size_t>(options.num_right));
  // Record i draws from its own stream, so any record is reproducible in
  // isolation and the corpus does not change if generation is ever
  // parallelized. Streams: 0 = vocabulary, 1 + i = left i,
  // 1 + num_left + j = right j.
  for (int64_t i = 0; i < options.num_left; ++i) {
    Rng rng(options.seed, static_cast<uint64_t>(1 + i));
    corpus.left[static_cast<size_t>(i)] = MakeRecord(vocab, options, rng);
  }
  for (int64_t j = 0; j < options.num_right; ++j) {
    Rng rng(options.seed, static_cast<uint64_t>(1 + options.num_left + j));
    if (options.num_left > 0 && rng.Bernoulli(options.match_fraction)) {
      const std::string& base = corpus.left[static_cast<size_t>(
          rng.UniformInt(0, options.num_left - 1))];
      corpus.right[static_cast<size_t>(j)] = PerturbRecord(base, rng);
    } else {
      corpus.right[static_cast<size_t>(j)] = MakeRecord(vocab, options, rng);
    }
  }
  return corpus;
}

}  // namespace cdb
