#include "datagen/perturb.h"

#include <cctype>

#include "common/logging.h"
#include "common/string_util.h"
#include "datagen/dataset.h"

namespace cdb {

const std::vector<int64_t>& GeneratedDataset::Entities(
    const std::string& table, const std::string& column) const {
  auto it = entity_of.find(ColumnKey(table, column));
  CDB_CHECK_MSG(it != entity_of.end(), "unknown entity column");
  return it->second;
}

int64_t GeneratedDataset::ConstantEntity(const std::string& table,
                                         const std::string& column,
                                         const std::string& constant) const {
  auto it = constant_entity.find(ConstantKey(table, column, constant));
  return it == constant_entity.end() ? kNoEntity : it->second;
}

std::string GeneratedDataset::ColumnKey(const std::string& table,
                                        const std::string& column) {
  return ToLower(table) + "." + ToLower(column);
}

std::string GeneratedDataset::ConstantKey(const std::string& table,
                                          const std::string& column,
                                          const std::string& constant) {
  return ColumnKey(table, column) + "|" + ToLower(constant);
}

std::string IntroduceTypo(const std::string& s, Rng& rng) {
  if (s.empty()) return s;
  std::string out = s;
  size_t pos = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1));
  char letter = static_cast<char>('a' + rng.UniformInt(0, 25));
  switch (rng.UniformInt(0, 2)) {
    case 0:  // Substitute.
      out[pos] = letter;
      break;
    case 1:  // Insert.
      out.insert(out.begin() + static_cast<int64_t>(pos), letter);
      break;
    default:  // Delete.
      out.erase(out.begin() + static_cast<int64_t>(pos));
      break;
  }
  return out;
}

std::string AbbreviateOrgWords(const std::string& s, Rng& rng) {
  static constexpr struct {
    const char* full;
    const char* abbrev;
  } kAbbreviations[] = {
      {"university", "univ."}, {"university", "uni."},
      {"department", "dept."}, {"department", "depart"},
      {"institute", "inst."},  {"technology", "tech."},
      {"international", "intl."},
  };
  std::vector<std::string> words = SplitWhitespace(s);
  std::vector<std::string> out;
  for (std::string& word : words) {
    std::string lower = ToLower(word);
    bool replaced = false;
    for (const auto& entry : kAbbreviations) {
      if (lower == entry.full && rng.Bernoulli(0.7)) {
        std::string abbrev = entry.abbrev;
        // Preserve leading capitalization.
        if (!word.empty() && std::isupper(static_cast<unsigned char>(word[0]))) {
          abbrev[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(abbrev[0])));
        }
        out.push_back(abbrev);
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      if ((lower == "of" || lower == "the") && rng.Bernoulli(0.25)) continue;
      out.push_back(word);
    }
  }
  return Join(out, " ");
}

std::string DropRandomWord(const std::string& s, Rng& rng) {
  std::vector<std::string> words = SplitWhitespace(s);
  if (words.size() <= 1) return s;
  size_t drop = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(words.size()) - 1));
  words.erase(words.begin() + static_cast<int64_t>(drop));
  return Join(words, " ");
}

std::string PerturbPersonName(const std::string& name, Rng& rng) {
  std::vector<std::string> words = SplitWhitespace(name);
  if (words.empty()) return name;
  switch (rng.UniformInt(0, 4)) {
    case 0: {  // First name to initial: "Michael Franklin" -> "M. Franklin".
      if (words[0].size() > 1) words[0] = words[0].substr(0, 1) + ".";
      break;
    }
    case 1: {  // Drop the middle token(s).
      if (words.size() > 2) words.erase(words.begin() + 1, words.end() - 1);
      break;
    }
    case 2: {  // Swap to "Last First".
      if (words.size() >= 2) std::swap(words.front(), words.back());
      break;
    }
    case 3: {  // Typo in one token.
      size_t i = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(words.size()) - 1));
      words[i] = IntroduceTypo(words[i], rng);
      break;
    }
    default:  // Keep as-is (exact duplicates happen too).
      break;
  }
  return Join(words, " ");
}

std::string PerturbTitle(const std::string& title, Rng& rng) {
  std::string out = title;
  if (rng.Bernoulli(0.4)) out = DropRandomWord(out, rng);
  if (rng.Bernoulli(0.3)) out = IntroduceTypo(out, rng);
  if (rng.Bernoulli(0.3)) {
    // Singular/plural jitter on the last word.
    if (!out.empty() && out.back() == 's') {
      out.pop_back();
    } else {
      out.push_back('s');
    }
  }
  return out;
}

std::string PerturbOrgName(const std::string& name, Rng& rng) {
  std::string out = AbbreviateOrgWords(name, rng);
  if (rng.Bernoulli(0.15)) out = IntroduceTypo(out, rng);
  return out;
}

}  // namespace cdb
