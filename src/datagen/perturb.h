// String perturbations producing the surface variety crowdsourced joins must
// resolve: abbreviations ("University" -> "Univ."), initialisms ("W. Bruce
// Croft" -> "Bruce W Croft"), typos, dropped words, and synonym variants
// ("USA" / "US" / "United States"). The generators use these to create
// true-match pairs at varying similarity plus near-miss pairs that form RED
// edges above the epsilon threshold.
#ifndef CDB_DATAGEN_PERTURB_H_
#define CDB_DATAGEN_PERTURB_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace cdb {

// One random single-character typo (substitute, insert, or delete).
std::string IntroduceTypo(const std::string& s, Rng& rng);

// Abbreviates known long words ("University" -> "Univ.", "Department" ->
// "Dept.", "Institute" -> "Inst.") and may drop "of"/"the".
std::string AbbreviateOrgWords(const std::string& s, Rng& rng);

// Drops a uniformly chosen word (no-op for single-word strings).
std::string DropRandomWord(const std::string& s, Rng& rng);

// Person-name variant: may reduce first/middle names to initials, drop the
// middle name, or swap token order — the classic author-name mess.
std::string PerturbPersonName(const std::string& name, Rng& rng);

// Title variant: drops or typos words, may singularize/pluralize endings.
std::string PerturbTitle(const std::string& title, Rng& rng);

// Organization-name variant: abbreviations plus occasional typo.
std::string PerturbOrgName(const std::string& name, Rng& rng);

}  // namespace cdb

#endif  // CDB_DATAGEN_PERTURB_H_
