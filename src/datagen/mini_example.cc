#include "datagen/mini_example.h"

#include "common/logging.h"

namespace cdb {
namespace {

// Entity id spaces for the miniature example. Researcher entities are the
// researcher indexes 0..11; universities 0..11; papers 0..7; countries
// 100=USA, 101=UK; conferences 200=sigmod, 201=sigir, 202=acm-generic.
// kNone marks cells matching nothing.
constexpr int64_t kNone = kNoEntity;

struct PaperRow {
  const char* author;
  const char* title;
  const char* conference;
  int64_t author_entity;
  int64_t conf_entity;
};

constexpr PaperRow kPapers[] = {
    {"Michael J. Franklin", "APrivateClean: Data Cleaning and Differential Privacy.", "sigmod16", 2, 200},
    {"Samuel Madden", "Querying continuous functions in a database system.", "sigmod08", kNone, 200},
    {"David J. DeWitt", "Query processing on smart SSDs: opportunities and challenges.", "acm sigmod", 5, 200},
    {"W. Bruce Croft", "Optimization strategies for complex queries", "sigir", 7, 201},
    {"H. V. Jagadish", "CrowdMatcher: crowd-assisted schema matching", "sigmod14", 8, 200},
    {"Hector Garcia-Molina", "Exploiting Correlations for Expensive Predicate Evaluation.", "sigmod15", 9, 200},
    {"Aditya G. Parameswaran", "DataSift: a crowd-powered search toolkit", "sigmod14", kNone, 200},
    {"Surajit Chaudhuri", "Dynamically generating portals for entity-oriented web queries.", "sigmod10", 11, 200},
};

struct ResearcherRow {
  const char* affiliation;
  const char* name;
  int64_t univ_entity;
};

constexpr ResearcherRow kResearchers[] = {
    {"University of California", "Michael I. Jordan", 0},
    {"University of California Berkery", "Michael Dahlin", 1},
    {"University of Chicago", "Michael Franklin", 2},
    {"Duke Uni.", "David J. Madden", 3},
    {"University of Minnesota", "David D. Thomas", 4},
    {"University of Wisconsin", "David DeWitt", 5},
    {"Department of Nutrition", "David J. Hunter", 6},
    {"University of Massachusetts", "Bruce W Croft", 7},
    {"University of Michigan", "H. Jagadish", 8},
    {"University of Stanford", "Molina Hector", 9},
    {"University of Cambridge", "Nandan Parameswaran", 10},
    {"Microsoft Cambridge", "S. Chaudhuri", 11},
};

struct CitationRow {
  const char* title;
  int64_t number;
  int64_t paper_entity;  // Which paper it truly cites.
};

constexpr CitationRow kCitations[] = {
    {"Towards a Unified Framework for Data Cleaning and Data Privacy.", 0, kNone},
    {"Query continuous functions in database system", 56, 1},
    {"ConQuer: A System for Efficient Querying Over Inconsistent Database.", 13, kNone},
    {"Webfind: An Architecture and System for Querying Web Database.", 17, kNone},
    {"Adaptive Query Processing and the Grid: Opportunities and Challenges.", 27, kNone},
    {"Optimal strategy for complex queries", 94, 3},
    {"CrowdMatcher: crowd-assisted schema match", 9, 4},
    {"Exploit Correlations for Expensive Predicate Evaluation", 0, 5},
    {"DataSift: An Expressive and Accurate Crowd-Powered Search Toolkit.", 16, 6},
    {"A crowd powered search toolkit", 4, kNone},
    {"A Crowd Powered System for Similarity Search", 0, kNone},
    {"Query portals: dynamically generating portals for entity-oriented web queries.", 1, 7},
};

struct UniversityRow {
  const char* name;
  const char* country;
  int64_t country_entity;
};

constexpr UniversityRow kUniversities[] = {
    {"Univ. of California", "USA", 100},
    {"Univ. of California Berkery", "USA", 100},
    {"Univ. of Chicago", "USA", 100},
    {"Duke Univ.", "USA", 100},
    {"Univ. of Minnesota", "US", 100},
    {"Univ. of Wisconsin", "US", 100},
    {"Depart of Nutrition", "US", 100},
    {"Univ. of Massachusetts", "US", 100},
    {"Univ. of Michigan", "US", 100},
    {"Univ. of Stanford", "USA", 100},
    {"Univ. of Cambridge", "UK", 101},
    {"Microsoft", "US", 100},
};

}  // namespace

const char kMiniExampleQuery[] =
    "SELECT * FROM Paper, Researcher, Citation, University "
    "WHERE Paper.Author CROWDJOIN Researcher.Name "
    "AND Paper.Title CROWDJOIN Citation.Title "
    "AND Researcher.Affiliation CROWDJOIN University.Name";

GeneratedDataset MakeMiniPaperExample() {
  GeneratedDataset ds;
  auto add = [&](Table table) { CDB_CHECK(ds.catalog.AddTable(std::move(table)).ok()); };

  {
    Table table("Paper", Schema({{"author", ValueType::kString, false},
                                 {"title", ValueType::kString, false},
                                 {"conference", ValueType::kString, false}}));
    auto& author = ds.entity_of[GeneratedDataset::ColumnKey("Paper", "author")];
    auto& title = ds.entity_of[GeneratedDataset::ColumnKey("Paper", "title")];
    auto& conf = ds.entity_of[GeneratedDataset::ColumnKey("Paper", "conference")];
    int64_t i = 0;
    for (const PaperRow& row : kPapers) {
      CDB_CHECK(table
                    .AppendRow({Value::Str(row.author), Value::Str(row.title),
                                Value::Str(row.conference)})
                    .ok());
      author.push_back(row.author_entity);
      title.push_back(i++);
      conf.push_back(row.conf_entity);
    }
    add(std::move(table));
    ds.constant_entity[GeneratedDataset::ConstantKey("Paper", "conference", "sigmod")] = 200;
    ds.constant_entity[GeneratedDataset::ConstantKey("Paper", "conference", "SIGMOD")] = 200;
  }
  {
    Table table("Researcher",
                Schema({{"affiliation", ValueType::kString, false},
                        {"name", ValueType::kString, false},
                        {"gender", ValueType::kString, true}}));
    auto& aff = ds.entity_of[GeneratedDataset::ColumnKey("Researcher", "affiliation")];
    auto& name = ds.entity_of[GeneratedDataset::ColumnKey("Researcher", "name")];
    int64_t i = 0;
    for (const ResearcherRow& row : kResearchers) {
      CDB_CHECK(table
                    .AppendRow({Value::Str(row.affiliation), Value::Str(row.name),
                                Value::CNull()})
                    .ok());
      aff.push_back(row.univ_entity);
      name.push_back(i++);
    }
    add(std::move(table));
  }
  {
    Table table("Citation", Schema({{"title", ValueType::kString, false},
                                    {"number", ValueType::kInt64, false}}));
    auto& title = ds.entity_of[GeneratedDataset::ColumnKey("Citation", "title")];
    int64_t i = 500;  // Unmatched citations get unique entities.
    for (const CitationRow& row : kCitations) {
      CDB_CHECK(table.AppendRow({Value::Str(row.title), Value::Int(row.number)}).ok());
      title.push_back(row.paper_entity == kNone ? i++ : row.paper_entity);
    }
    add(std::move(table));
  }
  {
    Table table("University", Schema({{"name", ValueType::kString, false},
                                      {"city", ValueType::kString, true},
                                      {"country", ValueType::kString, false}}));
    auto& name = ds.entity_of[GeneratedDataset::ColumnKey("University", "name")];
    auto& country = ds.entity_of[GeneratedDataset::ColumnKey("University", "country")];
    int64_t i = 0;
    for (const UniversityRow& row : kUniversities) {
      CDB_CHECK(table
                    .AppendRow({Value::Str(row.name), Value::CNull(),
                                Value::Str(row.country)})
                    .ok());
      name.push_back(i++);
      country.push_back(row.country_entity);
    }
    add(std::move(table));
    ds.constant_entity[GeneratedDataset::ConstantKey("University", "country", "USA")] = 100;
    ds.constant_entity[GeneratedDataset::ConstantKey("University", "country", "US")] = 100;
    ds.constant_entity[GeneratedDataset::ConstantKey("University", "country", "UK")] = 101;
  }
  return ds;
}

}  // namespace cdb
