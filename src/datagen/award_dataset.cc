#include "datagen/award_dataset.h"

#include <algorithm>
#include <cctype>
#include <iterator>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "datagen/perturb.h"

namespace cdb {
namespace {

constexpr int64_t kExternalBase = 1'000'000;

const char* const kFirstNames[] = {
    "Meryl",   "Daniel", "Leonardo", "Katharine", "Audrey", "Marlon",
    "Ingrid",  "Humphrey", "Cate",   "Anthony",  "Julia",  "Denzel",
    "Sophia",  "Robert", "Emma",     "Jack",     "Grace",  "Sidney",
    "Vivien",  "Gregory", "Elizabeth", "James",  "Natalie", "Morgan",
    "Halle",   "Russell", "Nicole",  "Sean",     "Judi",   "Philip",
};

const char* const kLastNames[] = {
    "Streep",   "Day-Lewis", "DiCaprio", "Hepburn", "Brando",  "Bergman",
    "Bogart",   "Blanchett", "Hopkins",  "Roberts", "Washington", "Loren",
    "De Niro",  "Thompson",  "Nicholson", "Kelly",  "Poitier", "Leigh",
    "Peck",     "Taylor",    "Stewart",  "Portman", "Freeman", "Berry",
    "Crowe",    "Kidman",    "Penn",     "Dench",   "Hoffman", "McQueen",
};

const char* const kAwardKind[] = {
    "Academy Award", "Golden Globe", "BAFTA Award",  "Emmy Award",
    "Guild Award",   "Critics Prize", "Tony Award",
    "Grammy Award",  "Cannes Prize",  "Venice Cup",   "Berlin Bear",
    "Saturn Award",
};

// Compound categories (genre x craft) keep distinct awards below the
// similarity threshold while same-category pairs form near-miss edges.
const char* const kAwardGenre[] = {
    "Drama",   "Comedy",    "Musical",  "Thriller", "Documentary",
    "Animation", "Western", "Mystery",  "Romance",  "Adventure",
};

const char* const kAwardCraft[] = {
    "Actor",       "Actress",       "Director",  "Screenplay",
    "Score",       "Ensemble",      "Cinematography", "Editing",
    "Newcomer",    "Production",    "Costume",   "Choreography",
};

const char* const kCitySyllables[] = {
    "spring", "green", "river", "lake", "hill", "stone", "clear", "fair",
    "grand",  "maple", "cedar", "pine", "oak",  "elm",   "ash",   "birch",
    "north",  "south", "east",  "west", "new",  "old",   "san",   "santa",
    "port",   "fort",  "mount", "glen", "brook", "dale",  "ville", "burg",
};

struct Country {
  const char* canonical;
  std::vector<const char*> variants;
};

const Country kCountries[] = {
    {"USA", {"USA", "US", "United States"}},
    {"England", {"England", "UK", "United Kingdom"}},
    {"France", {"France"}},
    {"Italy", {"Italy", "Italia"}},
    {"Spain", {"Spain", "Espana"}},
    {"Sweden", {"Sweden"}},
    {"Australia", {"Australia"}},
    {"India", {"India"}},
};

template <typename T, size_t N>
const T& Pick(const T (&pool)[N], Rng& rng) {
  return pool[static_cast<size_t>(rng.UniformInt(0, N - 1))];
}

std::string Capitalize(std::string s) {
  if (!s.empty()) s[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(s[0])));
  return s;
}

std::string MakeCity(Rng& rng, std::unordered_set<std::string>& used) {
  // 3-4 syllables: long enough that unrelated cities stay below epsilon.
  for (int attempt = 0; attempt < 2000; ++attempt) {
    std::string city = Capitalize(std::string(Pick(kCitySyllables, rng)));
    city += Pick(kCitySyllables, rng);
    city += Pick(kCitySyllables, rng);
    if (rng.Bernoulli(0.5)) city += Pick(kCitySyllables, rng);
    if (used.insert(city).second) return city;
  }
  CDB_CHECK_MSG(false, "city-name pool exhausted");
  return "";
}

std::string MakePersonName(Rng& rng) {
  std::string name = Pick(kFirstNames, rng);
  if (rng.Bernoulli(0.3)) {
    name += " ";
    name += static_cast<char>('A' + rng.UniformInt(0, 25));
    name += ".";
  }
  name += " ";
  name += Pick(kLastNames, rng);
  return name;
}

// Distinct celebrities carry distinct names; see paper_dataset.cc for why.
std::string MakeUniquePersonName(Rng& rng,
                                 std::unordered_set<std::string>& used) {
  for (int attempt = 0; attempt < 400; ++attempt) {
    std::string name = MakePersonName(rng);
    if (attempt > 2) {
      size_t space = name.find(' ');
      name.insert(space + 1, std::string(1, static_cast<char>(
                                                'A' + rng.UniformInt(0, 25))) +
                                 ". ");
    }
    if (used.insert(name).second) return name;
  }
  CDB_CHECK_MSG(false, "person-name pool exhausted");
  return "";
}

std::string MakeAwardName(Rng& rng) {
  std::string name = Pick(kAwardKind, rng);
  name += " for Best ";
  name += Pick(kAwardGenre, rng);
  name += " ";
  name += Pick(kAwardCraft, rng);
  if (rng.Bernoulli(0.5)) {
    name += " ";
    name += std::to_string(1950 + rng.UniformInt(0, 70));
  }
  return name;
}

int64_t Scaled(int64_t n, double scale) {
  return std::max<int64_t>(1, static_cast<int64_t>(n * scale));
}

}  // namespace

GeneratedDataset GenerateAwardDataset(const AwardDatasetOptions& options) {
  Rng rng(options.seed);
  GeneratedDataset ds;

  const int64_t num_celebrities = Scaled(options.num_celebrities, options.scale);
  const int64_t num_cities = Scaled(options.num_cities, options.scale);
  const int64_t num_winners = Scaled(options.num_winners, options.scale);
  const int64_t num_awards = Scaled(options.num_awards, options.scale);

  // --- Entities ---
  struct CityEntity {
    std::string name;
    int country;
  };
  std::unordered_set<std::string> used_cities;
  std::vector<CityEntity> cities;
  cities.reserve(num_cities);
  for (int64_t i = 0; i < num_cities; ++i) {
    int country = rng.Bernoulli(0.5)
                      ? 0
                      : static_cast<int>(rng.UniformInt(
                            1, static_cast<int64_t>(std::size(kCountries)) - 1));
    cities.push_back({MakeCity(rng, used_cities), country});
  }

  struct CelebrityEntity {
    std::string name;
    int64_t city;
    std::string birthday;
  };
  std::vector<CelebrityEntity> celebrities;
  celebrities.reserve(num_celebrities);
  std::unordered_set<std::string> used_names;
  for (int64_t i = 0; i < num_celebrities; ++i) {
    int64_t city = rng.Bernoulli(options.celebrity_city_known)
                       ? rng.UniformInt(0, num_cities - 1)
                       : kExternalBase + i;
    std::string birthday = StrPrintf(
        "%04lld-%02lld-%02lld", static_cast<long long>(1930 + rng.UniformInt(0, 70)),
        static_cast<long long>(rng.UniformInt(1, 12)),
        static_cast<long long>(rng.UniformInt(1, 28)));
    celebrities.push_back({MakeUniquePersonName(rng, used_names), city, birthday});
  }

  std::vector<std::string> award_names;
  award_names.reserve(num_awards);
  std::unordered_set<std::string> used_awards;
  for (int64_t i = 0; i < num_awards; ++i) {
    std::string name;
    for (int attempt = 0; attempt < 400; ++attempt) {
      name = MakeAwardName(rng);
      if (used_awards.insert(name).second) break;
      name.clear();
    }
    CDB_CHECK(!name.empty());
    award_names.push_back(std::move(name));
  }

  auto add = [&](Table table) { CDB_CHECK(ds.catalog.AddTable(std::move(table)).ok()); };

  // Celebrity(name, birthplace, birthday).
  {
    Table table("Celebrity", Schema({{"name", ValueType::kString, false},
                                     {"birthplace", ValueType::kString, false},
                                     {"birthday", ValueType::kString, false}}));
    auto& name_ent = ds.entity_of[GeneratedDataset::ColumnKey("Celebrity", "name")];
    auto& place_ent = ds.entity_of[GeneratedDataset::ColumnKey("Celebrity", "birthplace")];
    for (int64_t i = 0; i < num_celebrities; ++i) {
      const CelebrityEntity& c = celebrities[static_cast<size_t>(i)];
      std::string birthplace =
          c.city < num_cities
              ? (rng.Bernoulli(0.5)
                     ? cities[static_cast<size_t>(c.city)].name
                     : IntroduceTypo(cities[static_cast<size_t>(c.city)].name, rng))
              : "Smallville " + std::to_string(i);
      CDB_CHECK(table
                    .AppendRow({Value::Str(c.name), Value::Str(birthplace),
                                Value::Str(c.birthday)})
                    .ok());
      name_ent.push_back(i);
      place_ent.push_back(c.city);
    }
    add(std::move(table));
  }

  // City(birthplace, country).
  {
    Table table("City", Schema({{"birthplace", ValueType::kString, false},
                                {"country", ValueType::kString, false}}));
    auto& place_ent = ds.entity_of[GeneratedDataset::ColumnKey("City", "birthplace")];
    auto& country_ent = ds.entity_of[GeneratedDataset::ColumnKey("City", "country")];
    for (int64_t i = 0; i < num_cities; ++i) {
      const CityEntity& c = cities[static_cast<size_t>(i)];
      const Country& country = kCountries[c.country];
      std::string country_str = country.variants[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(country.variants.size()) - 1))];
      CDB_CHECK(table.AppendRow({Value::Str(c.name), Value::Str(country_str)}).ok());
      place_ent.push_back(i);
      country_ent.push_back(c.country);
    }
    add(std::move(table));
    for (const Country& c : kCountries) {
      for (const char* variant : c.variants) {
        ds.constant_entity[GeneratedDataset::ConstantKey("City", "country", variant)] =
            static_cast<int64_t>(&c - kCountries);
      }
    }
  }

  // Winner(name, award).
  {
    Table table("Winner", Schema({{"name", ValueType::kString, false},
                                  {"award", ValueType::kString, false}}));
    auto& name_ent = ds.entity_of[GeneratedDataset::ColumnKey("Winner", "name")];
    auto& award_ent = ds.entity_of[GeneratedDataset::ColumnKey("Winner", "award")];
    for (int64_t i = 0; i < num_winners; ++i) {
      int64_t celeb = rng.Bernoulli(options.winner_known)
                          ? rng.UniformInt(0, num_celebrities - 1)
                          : kExternalBase + i;
      std::string name = celeb < num_celebrities
                             ? PerturbPersonName(
                                   celebrities[static_cast<size_t>(celeb)].name, rng)
                             : MakeUniquePersonName(rng, used_names);
      int64_t award = rng.Bernoulli(options.winner_award_known)
                          ? rng.UniformInt(0, num_awards - 1)
                          : kExternalBase + i;
      std::string award_str =
          award < num_awards
              ? PerturbTitle(award_names[static_cast<size_t>(award)], rng)
              : MakeAwardName(rng);
      CDB_CHECK(table.AppendRow({Value::Str(name), Value::Str(award_str)}).ok());
      name_ent.push_back(celeb);
      award_ent.push_back(award);
    }
    add(std::move(table));
  }

  // Award(name, place).
  {
    Table table("Award", Schema({{"name", ValueType::kString, false},
                                 {"place", ValueType::kString, false}}));
    auto& name_ent = ds.entity_of[GeneratedDataset::ColumnKey("Award", "name")];
    auto& place_ent = ds.entity_of[GeneratedDataset::ColumnKey("Award", "place")];
    std::vector<std::pair<const char*, int64_t>> places = {
        {"Los Angeles", 0}, {"Hollywood", 1}, {"London", 2},
        {"New York", 3},    {"Cannes", 4},    {"Venice", 5},
    };
    for (int64_t i = 0; i < num_awards; ++i) {
      auto [place, place_id] = places[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(places.size()) - 1))];
      CDB_CHECK(table.AppendRow({Value::Str(award_names[static_cast<size_t>(i)]),
                                 Value::Str(place)})
                    .ok());
      name_ent.push_back(i);
      place_ent.push_back(place_id);
    }
    add(std::move(table));
    for (const auto& [place, place_id] : places) {
      ds.constant_entity[GeneratedDataset::ConstantKey("Award", "place", place)] = place_id;
    }
  }

  return ds;
}

}  // namespace cdb
