// Scalable string corpora for the similarity-join micro-benchmarks and the
// kernel bit-identity tests.
//
// The paper-shaped datasets (paper_dataset.h) top out around 10^3 records —
// the cardinalities of Table 2. The sim-join perf work needs 10^4-10^5
// record workloads whose candidate structure resembles real dirty data:
// Zipf-weighted vocabulary (frequent tokens create broad posting lists,
// rare tokens selective prefixes) and a controlled fraction of perturbed
// near-duplicates so verification actually emits pairs. Everything is
// deterministic in the seed.
#ifndef CDB_DATAGEN_STRING_CORPUS_H_
#define CDB_DATAGEN_STRING_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cdb {

struct StringCorpusOptions {
  // Record counts per side. The benches use 10^4 and 10^5.
  int64_t num_left = 10000;
  int64_t num_right = 10000;
  // Fraction of right records derived from a random left record by
  // perturbation (typo / dropped word / abbreviation) — these survive
  // verification at moderate thresholds; the rest are fresh records that
  // mostly die in the filter stack.
  double match_fraction = 0.2;
  // Words per record, uniform in [min_words, max_words].
  int min_words = 3;
  int max_words = 8;
  // Distinct words in the vocabulary; drawn Zipf(zipf_s) so a few words are
  // very frequent (stress the posting lists) and most are rare (feed the
  // prefix filter).
  int vocabulary = 4000;
  double zipf_s = 1.0;
  uint64_t seed = 20260809;
};

struct StringCorpus {
  std::vector<std::string> left;
  std::vector<std::string> right;
};

// Generates the two sides of a join input. Deterministic in `options`
// (record i is derived from Rng stream (seed, i), so the corpus is also
// independent of generation order).
StringCorpus GenerateStringCorpus(const StringCorpusOptions& options);

}  // namespace cdb

#endif  // CDB_DATAGEN_STRING_CORPUS_H_
