// Synthetic stand-in for the paper's `award` benchmark dataset (Table 3):
// Celebrity(name, birthplace, birthday), City(birthplace, country),
// Winner(name, award), Award(name, place) — the paper crawled DBpedia/Yago;
// we generate the same cardinalities with ground-truth entity links.
#ifndef CDB_DATAGEN_AWARD_DATASET_H_
#define CDB_DATAGEN_AWARD_DATASET_H_

#include <cstdint>

#include "datagen/dataset.h"

namespace cdb {

struct AwardDatasetOptions {
  // Table-3 cardinalities.
  int64_t num_celebrities = 1498;
  int64_t num_cities = 3220;
  int64_t num_winners = 2669;
  int64_t num_awards = 1192;
  double scale = 1.0;
  double winner_known = 0.8;       // Winner appears in Celebrity.
  double winner_award_known = 0.85;  // Winner's award appears in Award.
  double celebrity_city_known = 0.9;
  uint64_t seed = 131;
};

GeneratedDataset GenerateAwardDataset(const AwardDatasetOptions& options);

}  // namespace cdb

#endif  // CDB_DATAGEN_AWARD_DATASET_H_
