#include "datagen/entity_oracle.h"

#include "common/string_util.h"

namespace cdb {

const int64_t* EntityOracle::EntityOrNull(const std::string& table,
                                          const std::string& column,
                                          int64_t row) const {
  auto it = dataset_->entity_of.find(GeneratedDataset::ColumnKey(table, column));
  if (it == dataset_->entity_of.end()) return nullptr;
  if (row < 0 || static_cast<size_t>(row) >= it->second.size()) return nullptr;
  return &it->second[static_cast<size_t>(row)];
}

bool EntityOracle::JoinMatches(const std::string& left_table,
                               const std::string& left_column, int64_t left_row,
                               const std::string& right_table,
                               const std::string& right_column,
                               int64_t right_row) const {
  const int64_t* a = EntityOrNull(left_table, left_column, left_row);
  const int64_t* b = EntityOrNull(right_table, right_column, right_row);
  return a != nullptr && b != nullptr && *a != kNoEntity && *a == *b;
}

bool EntityOracle::SelectionMatches(const std::string& table,
                                    const std::string& column, int64_t row,
                                    const std::string& constant) const {
  const int64_t* entity = EntityOrNull(table, column, row);
  if (entity == nullptr) return false;
  int64_t target = dataset_->ConstantEntity(table, column, constant);
  return target != kNoEntity && *entity == target;
}

FillTaskSpec EntityOracle::FillTruth(const std::string& table,
                                     const std::string& column,
                                     int64_t row) const {
  FillTaskSpec spec;
  spec.question = "value of " + table + "." + column + " in row " +
                  std::to_string(row);
  const int64_t* entity = EntityOrNull(table, column, row);
  spec.truth = entity != nullptr && *entity != kNoEntity
                   ? StrPrintf("entity-%lld", static_cast<long long>(*entity))
                   : StrPrintf("%s-%s-%lld", ToLower(table).c_str(),
                               ToLower(column).c_str(),
                               static_cast<long long>(row));
  spec.wrong_pool = {spec.truth + "-mistaken", "unknown " + column};
  return spec;
}

CollectUniverse EntityOracle::CollectWorld(const std::string& table) const {
  CollectUniverse universe;
  for (int i = 0; i < 100; ++i) {
    CollectUniverse::Entity entity;
    entity.canonical = StrPrintf("%s item %03d", table.c_str(), i);
    entity.variants = {StrPrintf("%.3s. item %03d", table.c_str(), i)};
    universe.entities.push_back(std::move(entity));
  }
  return universe;
}

}  // namespace cdb
