// The paper's running example: the four miniature tables of Table 1 /
// Figure 4 (8 papers, 12 researchers, 12 citations, 12 universities), with
// ground-truth entity links chosen so the real-world matches hold (e.g.
// "Surajit Chaudhuri" == "S. Chaudhuri", "Microsoft Cambridge" ==
// "Microsoft"). Used by tests, the quickstart example, and the Figure-1
// motivating bench.
#ifndef CDB_DATAGEN_MINI_EXAMPLE_H_
#define CDB_DATAGEN_MINI_EXAMPLE_H_

#include "datagen/dataset.h"

namespace cdb {

GeneratedDataset MakeMiniPaperExample();

// The paper's 3-join example query over the miniature tables (Figure 4):
//   SELECT * FROM Paper, Researcher, Citation, University
//   WHERE Paper.Author CROWDJOIN Researcher.Name
//     AND Paper.Title CROWDJOIN Citation.Title
//     AND Researcher.Affiliation CROWDJOIN University.Name
extern const char kMiniExampleQuery[];

}  // namespace cdb

#endif  // CDB_DATAGEN_MINI_EXAMPLE_H_
