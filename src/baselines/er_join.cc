#include "baselines/er_join.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "exec/session.h"
#include "graph/propagation.h"
#include "quality/truth_inference.h"

namespace cdb {

// Cluster bookkeeping lives in MatchClusters (graph/propagation.h), shared
// with the executor's answer-propagation layer. Its non-match facts are
// keyed at current cluster roots and re-rooted inside Union(), which retires
// the old per-round SnapshotNonMatches step: facts snapshotted at
// round-start roots went stale the moment a union re-rooted a cluster, so a
// KnownNonMatch probe could miss a deducible non-match and re-ask (or batch)
// the pair.

const char* ErMethodName(ErMethod method) {
  return method == ErMethod::kTrans ? "Trans" : "ACD";
}

ErJoinExecutor::ErJoinExecutor(const ResolvedQuery* query,
                               const ErExecutorOptions& options,
                               EdgeTruthFn truth)
    : query_(query), options_(options), truth_(std::move(truth)) {}

Result<ExecutionResult> ErJoinExecutor::Run() {
  CDB_ASSIGN_OR_RETURN(graph_, QueryGraph::Build(*query_, options_.graph));

  ExecutionResult result;
  ExecutionStats& stats = result.stats;

  PlatformPublisher publisher(options_.platform, [this](const Task& task) {
    TaskTruth truth;
    truth.correct_choice =
        truth_(graph_, static_cast<EdgeId>(task.payload)) ? 0 : 1;
    return truth;
  });

  // Joins in cost-based order, like the paper configures Trans/ACD.
  std::vector<int> order =
      ChoosePredicateOrder(graph_, TreePolicy::kDeco, nullptr);

  auto edge_blue = [this](EdgeId e) {
    return graph_.edge(e).color == EdgeColor::kBlue;
  };

  const bool infer_nonmatch = options_.method == ErMethod::kTrans;
  std::vector<int> executed;
  std::vector<uint8_t> active(graph_.num_vertices(), 1);

  for (int p : order) {
    // Candidate pairs of this predicate between active tuples, by descending
    // similarity (the ER ordering that maximizes inference).
    std::vector<EdgeId> pairs;
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      const GraphEdge& edge = graph_.edge(e);
      if (edge.pred != p || !edge.is_crowd || edge.color != EdgeColor::kUnknown) {
        continue;
      }
      if (active[edge.u] && active[edge.v]) pairs.push_back(e);
    }
    std::stable_sort(pairs.begin(), pairs.end(), [&](EdgeId a, EdgeId b) {
      return graph_.edge(a).weight > graph_.edge(b).weight;
    });

    MatchClusters clusters(graph_.num_vertices());
    size_t next = 0;
    while (next < pairs.size()) {
      // One ER round: walk the remaining pairs in order; infer what we can;
      // batch the rest, but only one ask per cluster pair so that the
      // answers arriving this round can still infer the deferred pairs.
      std::vector<EdgeId> batch;
      std::unordered_set<int64_t> clusters_in_batch;
      std::vector<EdgeId> deferred;
      for (size_t i = next; i < pairs.size(); ++i) {
        EdgeId e = pairs[i];
        const GraphEdge& edge = graph_.edge(e);
        if (clusters.SameCluster(edge.u, edge.v)) {
          graph_.SetColor(e, EdgeColor::kBlue);  // Inferred by transitivity.
          continue;
        }
        if (infer_nonmatch && clusters.KnownNonMatch(edge.u, edge.v)) {
          graph_.SetColor(e, EdgeColor::kRed);
          continue;
        }
        int ru = clusters.Find(edge.u);
        int rv = clusters.Find(edge.v);
        if (clusters_in_batch.count(ru) > 0 || clusters_in_batch.count(rv) > 0) {
          deferred.push_back(e);
          continue;
        }
        clusters_in_batch.insert(ru);
        clusters_in_batch.insert(rv);
        batch.push_back(e);
      }
      if (batch.empty()) break;  // Everything left was inferred.

      std::vector<Task> tasks;
      tasks.reserve(batch.size());
      for (EdgeId e : batch) {
        Task task;
        task.id = e;
        task.type = TaskType::kSingleChoice;
        task.question = "entity-resolution pair check";
        task.choices = {"yes", "no"};
        task.payload = e;
        tasks.push_back(std::move(task));
      }
      std::vector<Answer> answers = publisher.Publish(tasks, nullptr, nullptr).value();
      // Majority voting is memoryless: infer from this round's answers only
      // (re-running over the full history made long ER runs quadratic).
      std::vector<ChoiceObservation> round_observations;
      round_observations.reserve(answers.size());
      for (const Answer& answer : answers) {
        round_observations.push_back(
            ChoiceObservation{answer.task, answer.worker, answer.choice});
      }
      InferenceResult inference =
          InferSingleChoiceMajority(round_observations, 2);
      for (EdgeId e : batch) {
        const GraphEdge& edge = graph_.edge(e);
        bool matched = inference.Truth(e) == 0;
        graph_.SetColor(e, matched ? EdgeColor::kBlue : EdgeColor::kRed);
        if (matched) {
          clusters.Union(edge.u, edge.v);
        } else if (infer_nonmatch) {
          clusters.AddNonMatch(edge.u, edge.v);
        }
      }
      stats.tasks_asked += static_cast<int64_t>(batch.size());
      stats.round_sizes.push_back(static_cast<int64_t>(batch.size()));
      ++stats.rounds;

      // Re-scan from the first remaining pair (colors may now be inferable).
      pairs = deferred;
      next = 0;
    }

    executed.push_back(p);
    active = ActiveVertices(graph_, executed, edge_blue);
  }

  stats.worker_answers = publisher.stats().answers_collected;
  stats.hits_published = publisher.stats().hits_published;
  stats.dollars_spent = publisher.stats().dollars_spent();
  result.answers = AssignmentsToAnswers(graph_, FindAnswers(graph_));
  return result;
}

}  // namespace cdb
