#include "baselines/budget_baseline.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/session.h"
#include "graph/candidates.h"
#include "quality/truth_inference.h"

namespace cdb {
namespace {

// BFS relation order with, for each relation after the first, the predicates
// connecting it back to earlier relations.
struct TraversalPlan {
  std::vector<int> order;
  std::vector<std::vector<int>> back_preds;  // Parallel to `order`.
};

TraversalPlan BuildTraversalPlan(const QueryGraph& graph) {
  TraversalPlan plan;
  std::vector<bool> placed(graph.num_relations(), false);
  plan.order.push_back(0);
  placed[0] = true;
  for (size_t head = 0; head < plan.order.size(); ++head) {
    int rel = plan.order[head];
    for (int p : graph.relation_predicates(rel)) {
      const PredicateInfo& info = graph.predicate(p);
      int other = info.left_rel == rel ? info.right_rel : info.left_rel;
      if (!placed[other]) {
        placed[other] = true;
        plan.order.push_back(other);
      }
    }
  }
  plan.back_preds.resize(plan.order.size());
  std::vector<int> position(graph.num_relations(), -1);
  for (size_t i = 0; i < plan.order.size(); ++i) position[plan.order[i]] = static_cast<int>(i);
  for (int p = 0; p < graph.num_predicates(); ++p) {
    const PredicateInfo& info = graph.predicate(p);
    int later = std::max(position[info.left_rel], position[info.right_rel]);
    plan.back_preds[static_cast<size_t>(later)].push_back(p);
  }
  return plan;
}

}  // namespace

BudgetBaselineExecutor::BudgetBaselineExecutor(
    const ResolvedQuery* query, const BudgetBaselineOptions& options,
    EdgeTruthFn truth)
    : query_(query), options_(options), truth_(std::move(truth)) {}

Result<ExecutionResult> BudgetBaselineExecutor::Run() {
  CDB_ASSIGN_OR_RETURN(graph_, QueryGraph::Build(*query_, options_.graph));

  ExecutionResult result;
  ExecutionStats& stats = result.stats;

  PlatformPublisher publisher(options_.platform, [this](const Task& task) {
    TaskTruth truth;
    truth.correct_choice =
        truth_(graph_, static_cast<EdgeId>(task.payload)) ? 0 : 1;
    return truth;
  });

  int64_t budget_left = options_.budget;
  std::vector<ChoiceObservation> observations;

  // Asks one edge through the crowd (sequentially — the baseline is a
  // depth-first traversal) and colors it. Returns its resulting color.
  auto ask = [&](EdgeId e) {
    Task task;
    task.id = e;
    task.type = TaskType::kSingleChoice;
    task.question = "budget-baseline pair check";
    task.choices = {"yes", "no"};
    task.payload = e;
    std::vector<Answer> answers = publisher.Publish({task}, nullptr, nullptr).value();
    for (const Answer& answer : answers) {
      observations.push_back(
          ChoiceObservation{answer.task, answer.worker, answer.choice});
    }
    InferenceResult inference = InferSingleChoiceMajority(observations, 2);
    graph_.SetColor(e, inference.Truth(e) == 0 ? EdgeColor::kBlue
                                               : EdgeColor::kRed);
    --budget_left;
    ++stats.tasks_asked;
    ++stats.rounds;
    return graph_.edge(e).color;
  };

  TraversalPlan plan = BuildTraversalPlan(graph_);
  Assignment assignment(graph_.num_relations(), kNoVertex);
  std::vector<Assignment> found;

  // Depth-first greedy extension; returns false when the budget ran out.
  std::function<bool(size_t)> extend = [&](size_t depth) -> bool {
    if (depth == plan.order.size()) {
      found.push_back(assignment);
      return true;
    }
    const int rel = plan.order[depth];
    const std::vector<int>& back = plan.back_preds[depth];
    CDB_CHECK(!back.empty());
    // Candidates come from the first back predicate's edges at the anchor.
    const PredicateInfo& info0 = graph_.predicate(back[0]);
    int anchor = info0.left_rel == rel ? info0.right_rel : info0.left_rel;
    std::vector<EdgeId> frontier = graph_.IncidentEdges(assignment[anchor], back[0]);
    std::stable_sort(frontier.begin(), frontier.end(), [&](EdgeId a, EdgeId b) {
      return graph_.edge(a).weight > graph_.edge(b).weight;
    });
    for (EdgeId e0 : frontier) {
      VertexId w = graph_.Opposite(e0, assignment[anchor]);
      bool all_blue = true;
      for (int p : back) {
        const PredicateInfo& info = graph_.predicate(p);
        int other = info.left_rel == rel ? info.right_rel : info.left_rel;
        EdgeId e = FindEdgeBetween(graph_, w, assignment[other], p);
        if (e == kNoEdge) {
          all_blue = false;
          break;
        }
        if (graph_.edge(e).color == EdgeColor::kUnknown) {
          if (budget_left <= 0) return false;
          ask(e);
        }
        if (graph_.edge(e).color != EdgeColor::kBlue) {
          all_blue = false;
          break;
        }
      }
      if (!all_blue) continue;
      assignment[rel] = w;
      if (!extend(depth + 1)) {
        assignment[rel] = kNoVertex;
        return false;
      }
      assignment[rel] = kNoVertex;
    }
    return true;
  };

  // Outer loop: start from each tuple of the first relation, preferring the
  // ones with the heaviest outgoing edge.
  std::vector<VertexId> starts = graph_.relation_vertices(plan.order[0]);
  std::vector<EdgeId> incident;  // Reused across comparator calls.
  std::stable_sort(starts.begin(), starts.end(), [&](VertexId a, VertexId b) {
    auto best_weight = [&](VertexId v) {
      double best = 0.0;
      incident.clear();
      graph_.AppendIncidentEdges(v, &incident);
      for (EdgeId e : incident) {
        best = std::max(best, graph_.edge(e).weight);
      }
      return best;
    };
    return best_weight(a) > best_weight(b);
  });
  for (VertexId start : starts) {
    if (budget_left <= 0) break;
    assignment.assign(static_cast<size_t>(graph_.num_relations()), kNoVertex);
    assignment[plan.order[0]] = start;
    if (!extend(1)) break;
  }

  stats.worker_answers = publisher.stats().answers_collected;
  stats.hits_published = publisher.stats().hits_published;
  stats.dollars_spent = publisher.stats().dollars_spent();
  result.answers = AssignmentsToAnswers(graph_, found);
  return result;
}

}  // namespace cdb
