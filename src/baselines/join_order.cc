#include "baselines/join_order.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace cdb {

std::vector<uint8_t> ActiveVertices(const QueryGraph& graph,
                                    const std::vector<int>& executed,
                                    const std::function<bool(EdgeId)>& edge_blue) {
  std::vector<std::vector<int>> preds_of_rel(graph.num_relations());
  for (int p : executed) {
    const PredicateInfo& info = graph.predicate(p);
    preds_of_rel[info.left_rel].push_back(p);
    preds_of_rel[info.right_rel].push_back(p);
  }
  std::vector<uint8_t> active(graph.num_vertices(), 1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (!active[v]) continue;
      for (int p : preds_of_rel[graph.vertex(v).rel]) {
        bool supported = false;
        for (EdgeId e : graph.IncidentEdges(v, p)) {
          if (edge_blue(e) && active[graph.Opposite(e, v)]) {
            supported = true;
            break;
          }
        }
        if (!supported) {
          active[v] = 0;
          changed = true;
          break;
        }
      }
    }
  }
  return active;
}

namespace {

// Static metric policies (CrowdDB / Qurk): selections first, then joins by
// the metric ascending.
std::vector<int> StaticOrder(const QueryGraph& graph,
                             const std::function<double(int)>& join_metric) {
  std::vector<int> selections;
  std::vector<int> joins;
  for (int p = 0; p < graph.num_predicates(); ++p) {
    (graph.predicate(p).is_selection ? selections : joins).push_back(p);
  }
  std::stable_sort(joins.begin(), joins.end(), [&](int a, int b) {
    return join_metric(a) < join_metric(b);
  });
  selections.insert(selections.end(), joins.begin(), joins.end());
  return selections;
}

// Deco's cost-based greedy: pick at each step the predicate whose expected
// number of asked pairs is smallest, propagating expected survival
// probabilities through edge weights.
std::vector<int> DecoOrder(const QueryGraph& graph) {
  std::vector<double> active_prob(graph.num_vertices(), 1.0);
  std::vector<bool> done(graph.num_predicates(), false);
  std::vector<int> order;

  // Pre-index edges per predicate.
  std::vector<std::vector<EdgeId>> edges_of(graph.num_predicates());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    edges_of[graph.edge(e).pred].push_back(e);
  }

  for (int step = 0; step < graph.num_predicates(); ++step) {
    int best = -1;
    double best_cost = std::numeric_limits<double>::max();
    for (int p = 0; p < graph.num_predicates(); ++p) {
      if (done[p]) continue;
      double cost = 0.0;
      for (EdgeId e : edges_of[p]) {
        const GraphEdge& edge = graph.edge(e);
        if (!edge.is_crowd) continue;  // Traditional edges are free.
        cost += active_prob[edge.u] * active_prob[edge.v];
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = p;
      }
    }
    CDB_CHECK(best >= 0);
    done[best] = true;
    order.push_back(best);
    // Update expected survival of the touched vertices.
    std::vector<double> no_match(graph.num_vertices(), 1.0);
    for (EdgeId e : edges_of[best]) {
      const GraphEdge& edge = graph.edge(e);
      no_match[edge.u] *= 1.0 - edge.weight * active_prob[edge.v];
      no_match[edge.v] *= 1.0 - edge.weight * active_prob[edge.u];
    }
    const PredicateInfo& info = graph.predicate(best);
    for (int rel : {info.left_rel, info.right_rel}) {
      for (VertexId v : graph.relation_vertices(rel)) {
        active_prob[v] *= 1.0 - no_match[v];
      }
    }
  }
  return order;
}

void Permute(std::vector<int>& preds, size_t k,
             std::vector<std::vector<int>>& out) {
  if (k == preds.size()) {
    out.push_back(preds);
    return;
  }
  for (size_t i = k; i < preds.size(); ++i) {
    std::swap(preds[k], preds[i]);
    Permute(preds, k + 1, out);
    std::swap(preds[k], preds[i]);
  }
}

}  // namespace

const char* TreePolicyName(TreePolicy policy) {
  switch (policy) {
    case TreePolicy::kCrowdDb:
      return "CrowdDB";
    case TreePolicy::kQurk:
      return "Qurk";
    case TreePolicy::kDeco:
      return "Deco";
    case TreePolicy::kOptTree:
      return "OptTree";
  }
  return "?";
}

int64_t TreeModelCost(const QueryGraph& graph, const std::vector<int>& order,
                      const OracleColors& colors) {
  CDB_CHECK(colors.size() == static_cast<size_t>(graph.num_edges()));
  std::vector<uint8_t> asked(graph.num_edges(), 0);
  std::vector<int> executed;
  int64_t cost = 0;
  auto edge_blue = [&](EdgeId e) {
    if (!graph.edge(e).is_crowd) return graph.edge(e).color == EdgeColor::kBlue;
    return asked[e] != 0 && colors[e] == EdgeColor::kBlue;
  };
  std::vector<uint8_t> active(graph.num_vertices(), 1);
  for (int p : order) {
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const GraphEdge& edge = graph.edge(e);
      if (edge.pred != p || !edge.is_crowd || asked[e]) continue;
      if (active[edge.u] && active[edge.v]) {
        asked[e] = 1;
        ++cost;
      }
    }
    executed.push_back(p);
    active = ActiveVertices(graph, executed, edge_blue);
  }
  return cost;
}

std::vector<std::vector<int>> AllPredicateOrders(const QueryGraph& graph) {
  std::vector<int> preds(graph.num_predicates());
  for (int p = 0; p < graph.num_predicates(); ++p) preds[p] = p;
  std::vector<std::vector<int>> out;
  Permute(preds, 0, out);
  return out;
}

std::vector<int> ChoosePredicateOrder(const QueryGraph& graph,
                                      TreePolicy policy,
                                      const OracleColors* oracle) {
  switch (policy) {
    case TreePolicy::kCrowdDb:
      // Rule-based: push selections down, then joins in the order the query
      // wrote them (CrowdDB does not cost-order joins).
      return StaticOrder(graph, [&](int p) { return static_cast<double>(p); });
    case TreePolicy::kQurk:
      // Rule-based: predicates exactly in query order (Qurk optimizes the
      // implementation of a single join, not the join order).
      {
        std::vector<int> order(static_cast<size_t>(graph.num_predicates()));
        for (int p = 0; p < graph.num_predicates(); ++p) {
          order[static_cast<size_t>(p)] = p;
        }
        return order;
      }
    case TreePolicy::kDeco:
      return DecoOrder(graph);
    case TreePolicy::kOptTree: {
      CDB_CHECK_MSG(oracle != nullptr, "OptTree needs oracle colors");
      std::vector<int> best_order;
      int64_t best_cost = std::numeric_limits<int64_t>::max();
      for (const std::vector<int>& order : AllPredicateOrders(graph)) {
        int64_t cost = TreeModelCost(graph, order, *oracle);
        if (cost < best_cost) {
          best_cost = cost;
          best_order = order;
        }
      }
      return best_order;
    }
  }
  return {};
}

}  // namespace cdb
