// Join-order policies for the tree (table-level) model that the competitor
// systems use (Section 2.2, Section 6.1):
//   CrowdDB — rule-based: push selections down, join smaller tables first.
//   Qurk    — rule-based: selections first, joins by fewest candidate pairs.
//   Deco    — cost-based: greedy on the estimated number of tasks the next
//             predicate would ask, propagating expected selectivities.
//   OptTree — oracle-optimal: enumerate every prefix-connected predicate
//             order, cost each with the true colors, keep the cheapest.
#ifndef CDB_BASELINES_JOIN_ORDER_H_
#define CDB_BASELINES_JOIN_ORDER_H_

#include <functional>
#include <vector>

#include "graph/query_graph.h"

namespace cdb {

enum class TreePolicy { kCrowdDb, kQurk, kDeco, kOptTree };

const char* TreePolicyName(TreePolicy policy);

// True colors per edge, used only by kOptTree.
using OracleColors = std::vector<EdgeColor>;

// Returns a predicate execution order (every predicate exactly once; each
// prefix connected over the touched relations). `oracle` may be null except
// for kOptTree.
std::vector<int> ChoosePredicateOrder(const QueryGraph& graph,
                                      TreePolicy policy,
                                      const OracleColors* oracle);

// Exact cost of executing `order` under the tree model with known colors:
// per predicate, every not-yet-colored crowd edge between semi-join-surviving
// tuples is asked. Exposed for OptTree and tests.
int64_t TreeModelCost(const QueryGraph& graph, const std::vector<int>& order,
                      const OracleColors& colors);

// All predicate orders (used by OptTree; factorial in the number of
// predicates, which is at most 5 in the benchmark).
std::vector<std::vector<int>> AllPredicateOrders(const QueryGraph& graph);

// Semi-join survival under the tree model: a vertex of a relation touched by
// the executed predicates survives iff, for every executed predicate incident
// to its relation, it has an `edge_blue` edge to a surviving vertex.
// Untouched relations keep all vertices. Shared by the tree-model cost
// simulation and the live tree/ER executors.
std::vector<uint8_t> ActiveVertices(const QueryGraph& graph,
                                    const std::vector<int>& executed,
                                    const std::function<bool(EdgeId)>& edge_blue);

}  // namespace cdb

#endif  // CDB_BASELINES_JOIN_ORDER_H_
