// The tree (table-level) query model used by CrowdDB, Qurk, Deco and the
// OptTree oracle: predicates execute in a chosen order; each predicate asks
// every pair of semi-join-surviving tuples in one crowdsourcing round, so the
// number of rounds equals the number of predicates. This is the
// coarse-grained model the paper's graph model is compared against.
#ifndef CDB_BASELINES_TREE_EXECUTOR_H_
#define CDB_BASELINES_TREE_EXECUTOR_H_

#include "baselines/join_order.h"
#include "exec/executor.h"

namespace cdb {

struct TreeExecutorOptions {
  TreePolicy policy = TreePolicy::kDeco;
  GraphOptions graph;
  PlatformOptions platform;
};

class TreeModelExecutor {
 public:
  TreeModelExecutor(const ResolvedQuery* query,
                    const TreeExecutorOptions& options, EdgeTruthFn truth);

  Result<ExecutionResult> Run();

  const QueryGraph& graph() const { return graph_; }

 private:
  const ResolvedQuery* query_;
  TreeExecutorOptions options_;
  EdgeTruthFn truth_;
  QueryGraph graph_;
};

}  // namespace cdb

#endif  // CDB_BASELINES_TREE_EXECUTOR_H_
