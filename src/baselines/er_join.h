// Crowdsourced entity-resolution join baselines (Section 6.1):
//   Trans [Wang et al., SIGMOD'13] — exploits transitivity in both
//     directions: tuples in one cluster match; clusters recorded as
//     non-matching stay apart. Saves many questions but one wrong answer
//     poisons whole clusters, so quality degrades sharply.
//   ACD [Wang et al., SIGMOD'15] — correlation-clustering flavored: only
//     positive transitivity is trusted; non-matches are always verified with
//     the crowd. Costs more than Trans, errs less.
//
// Both process one join at a time (ordered by the cost-based policy) and need
// several rounds per join, because a pair can only be asked once the answers
// that might infer it are in — the paper observes ~5x the rounds of the
// graph-based methods.
#ifndef CDB_BASELINES_ER_JOIN_H_
#define CDB_BASELINES_ER_JOIN_H_

#include "baselines/join_order.h"
#include "exec/executor.h"

namespace cdb {

enum class ErMethod { kTrans, kAcd };

const char* ErMethodName(ErMethod method);

struct ErExecutorOptions {
  ErMethod method = ErMethod::kTrans;
  GraphOptions graph;
  PlatformOptions platform;
};

class ErJoinExecutor {
 public:
  ErJoinExecutor(const ResolvedQuery* query, const ErExecutorOptions& options,
                 EdgeTruthFn truth);

  Result<ExecutionResult> Run();

  const QueryGraph& graph() const { return graph_; }

 private:
  const ResolvedQuery* query_;
  ErExecutorOptions options_;
  EdgeTruthFn truth_;
  QueryGraph graph_;
};

}  // namespace cdb

#endif  // CDB_BASELINES_ER_JOIN_H_
