#include "baselines/tree_executor.h"

#include "common/logging.h"
#include "common/trace.h"
#include "exec/session.h"
#include "quality/truth_inference.h"

namespace cdb {

TreeModelExecutor::TreeModelExecutor(const ResolvedQuery* query,
                                     const TreeExecutorOptions& options,
                                     EdgeTruthFn truth)
    : query_(query), options_(options), truth_(std::move(truth)) {}

Result<ExecutionResult> TreeModelExecutor::Run() {
  CDB_ASSIGN_OR_RETURN(graph_, QueryGraph::Build(*query_, options_.graph));

  ExecutionResult result;
  ExecutionStats& stats = result.stats;

  PlatformPublisher publisher(options_.platform, [this](const Task& task) {
    TaskTruth truth;
    truth.correct_choice =
        truth_(graph_, static_cast<EdgeId>(task.payload)) ? 0 : 1;
    return truth;
  });

  // OptTree consults the true colors for its order; the execution itself
  // still goes through the crowd like every other method.
  WallTimer timer;
  OracleColors oracle;
  if (options_.policy == TreePolicy::kOptTree) {
    oracle.resize(graph_.num_edges());
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      oracle[e] = graph_.edge(e).is_crowd
                      ? (truth_(graph_, e) ? EdgeColor::kBlue : EdgeColor::kRed)
                      : graph_.edge(e).color;
    }
  }
  std::vector<int> order = ChoosePredicateOrder(
      graph_, options_.policy,
      options_.policy == TreePolicy::kOptTree ? &oracle : nullptr);
  stats.selection_ms += timer.ElapsedMs();

  auto edge_blue = [this](EdgeId e) {
    return graph_.edge(e).color == EdgeColor::kBlue;
  };

  std::vector<ChoiceObservation> observations;
  std::vector<int> executed;
  std::vector<uint8_t> active(graph_.num_vertices(), 1);
  for (int p : order) {
    // Ask every unasked crowd edge of this predicate between active tuples.
    std::vector<Task> tasks;
    std::vector<EdgeId> asked_edges;
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      const GraphEdge& edge = graph_.edge(e);
      if (edge.pred != p || !edge.is_crowd ||
          edge.color != EdgeColor::kUnknown) {
        continue;
      }
      if (!active[edge.u] || !active[edge.v]) continue;
      Task task;
      task.id = e;
      task.type = TaskType::kSingleChoice;
      task.question = "tree-model pair check";
      task.choices = {"yes", "no"};
      task.payload = e;
      tasks.push_back(std::move(task));
      asked_edges.push_back(e);
    }
    if (!tasks.empty()) {
      std::vector<Answer> answers = publisher.Publish(tasks, nullptr, nullptr).value();
      for (const Answer& answer : answers) {
        observations.push_back(
            ChoiceObservation{answer.task, answer.worker, answer.choice});
      }
      InferenceResult inference = InferSingleChoiceMajority(observations, 2);
      for (EdgeId e : asked_edges) {
        int truth_choice = inference.Truth(e);
        CDB_CHECK(truth_choice >= 0);
        graph_.SetColor(e,
                        truth_choice == 0 ? EdgeColor::kBlue : EdgeColor::kRed);
      }
      stats.tasks_asked += static_cast<int64_t>(asked_edges.size());
      stats.round_sizes.push_back(static_cast<int64_t>(asked_edges.size()));
    } else {
      stats.round_sizes.push_back(0);
    }
    // Every predicate is one round in the tree model, even a free one
    // (traditional predicates complete instantly but still gate the next
    // join's input).
    ++stats.rounds;
    executed.push_back(p);
    active = ActiveVertices(graph_, executed, edge_blue);
  }

  stats.worker_answers = publisher.stats().answers_collected;
  stats.hits_published = publisher.stats().hits_published;
  stats.dollars_spent = publisher.stats().dollars_spent();
  result.answers = AssignmentsToAnswers(graph_, FindAnswers(graph_));
  return result;
}

}  // namespace cdb
