// The budget baseline of Section 6.3.3: pick the highest-probability edge
// out of the first table (with respect to the best table order) and extend
// it depth-first, always following the highest-weight remaining edge, asking
// each edge as it is traversed, until the budget runs out. Compared against
// CDB's candidate-expectation budget mode in Figures 18-19.
#ifndef CDB_BASELINES_BUDGET_BASELINE_H_
#define CDB_BASELINES_BUDGET_BASELINE_H_

#include "exec/executor.h"

namespace cdb {

struct BudgetBaselineOptions {
  int64_t budget = 100;
  GraphOptions graph;
  PlatformOptions platform;
};

class BudgetBaselineExecutor {
 public:
  BudgetBaselineExecutor(const ResolvedQuery* query,
                         const BudgetBaselineOptions& options,
                         EdgeTruthFn truth);

  Result<ExecutionResult> Run();

  const QueryGraph& graph() const { return graph_; }

 private:
  const ResolvedQuery* query_;
  BudgetBaselineOptions options_;
  EdgeTruthFn truth_;
  QueryGraph graph_;
};

}  // namespace cdb

#endif  // CDB_BASELINES_BUDGET_BASELINE_H_
