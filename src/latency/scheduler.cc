#include "latency/scheduler.h"

#include <algorithm>

#include "graph/candidates.h"

namespace cdb {
namespace {

std::vector<EdgeId> VertexGreedyRound(const QueryGraph& graph,
                                      const std::vector<EdgeId>& ordered_tasks) {
  // partner_rel[v] = the single relation v's round edges point to, or -1.
  // An edge joins the round iff each endpoint is either unused or already
  // paired with the same partner relation (the paper's same-table rule:
  // edges sharing a tuple toward two different relations can lie in one
  // candidate and must be sequenced; edges sharing a tuple toward two
  // different tuples of one relation never can).
  std::vector<int> partner_rel(graph.num_vertices(), -1);
  std::vector<EdgeId> round;
  for (EdgeId e : ordered_tasks) {
    const GraphEdge& edge = graph.edge(e);
    int u_partner = graph.vertex(edge.v).rel;
    int v_partner = graph.vertex(edge.u).rel;
    if (partner_rel[edge.u] != -1 && partner_rel[edge.u] != u_partner) continue;
    if (partner_rel[edge.v] != -1 && partner_rel[edge.v] != v_partner) continue;
    partner_rel[edge.u] = u_partner;
    partner_rel[edge.v] = v_partner;
    round.push_back(e);
  }
  return round;
}

std::vector<EdgeId> ExactPrefixRound(const QueryGraph& graph,
                                     const Pruner& pruner,
                                     const std::vector<EdgeId>& ordered_tasks) {
  std::vector<int> component = ValidComponents(graph, pruner);

  // Group the ordered tasks by component, preserving order.
  int num_components = 0;
  for (int c : component) num_components = std::max(num_components, c + 1);
  std::vector<std::vector<EdgeId>> per_component(num_components);
  for (EdgeId e : ordered_tasks) {
    int c = component[graph.edge(e).u];
    if (c >= 0) per_component[c].push_back(e);
  }

  std::vector<EdgeId> round;
  for (const std::vector<EdgeId>& tasks : per_component) {
    // Longest prefix with pairwise non-conflict edges (Section 5.2 verbatim).
    std::vector<EdgeId> prefix;
    for (EdgeId e : tasks) {
      bool conflicts = false;
      for (EdgeId sel : prefix) {
        if (EdgesConflict(graph, e, sel)) {
          conflicts = true;
          break;
        }
      }
      if (conflicts) break;
      prefix.push_back(e);
    }
    round.insert(round.end(), prefix.begin(), prefix.end());
  }
  return round;
}

}  // namespace

std::vector<int> ValidComponents(const QueryGraph& graph, const Pruner& pruner) {
  std::vector<int> label(graph.num_vertices(), -1);
  std::vector<int> parent(graph.num_vertices());
  for (int i = 0; i < graph.num_vertices(); ++i) parent[i] = i;
  auto find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (!pruner.EdgeValid(e)) continue;
    const GraphEdge& edge = graph.edge(e);
    parent[find(edge.u)] = find(edge.v);
  }
  int next_label = 0;
  std::vector<int> root_label(graph.num_vertices(), -1);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (!pruner.VertexAlive(v)) continue;
    int root = find(v);
    if (root_label[root] == -1) root_label[root] = next_label++;
    label[v] = root_label[root];
  }
  return label;
}

std::vector<EdgeId> SelectParallelRound(const QueryGraph& graph,
                                        const Pruner& pruner,
                                        const std::vector<EdgeId>& ordered_tasks,
                                        LatencyMode mode,
                                        double greedy_round_fraction) {
  if (ordered_tasks.empty()) return {};
  if (mode == LatencyMode::kVertexGreedy) {
    std::vector<EdgeId> round = VertexGreedyRound(graph, ordered_tasks);
    size_t cap = std::max<size_t>(
        32, static_cast<size_t>(static_cast<double>(ordered_tasks.size()) *
                                greedy_round_fraction));
    if (round.size() > cap) round.resize(cap);
    return round;
  }
  return ExactPrefixRound(graph, pruner, ordered_tasks);
}

std::vector<Task> MergeRoundBatches(const std::vector<SessionBatch>& batches) {
  std::vector<Task> merged;
  size_t total = 0;
  size_t widest = 0;
  for (const SessionBatch& batch : batches) {
    total += batch.tasks.size();
    widest = std::max(widest, batch.tasks.size());
  }
  merged.reserve(total);
  for (size_t k = 0; k < widest; ++k) {
    for (const SessionBatch& batch : batches) {
      if (k >= batch.tasks.size()) continue;
      Task task = batch.tasks[k];
      task.batch_tag = batch.session;
      merged.push_back(std::move(task));
    }
  }
  return merged;
}

}  // namespace cdb
