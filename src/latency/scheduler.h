// Latency control (Section 5.2): decide which tasks can be asked in the same
// round. Two edges conflict when they can appear in the same candidate —
// asking one might prune the other, so they must be sequenced.
//
// Two scheduling modes:
//
//  - kVertexGreedy (default): edges are admitted in expectation order and
//    skipped on conflict, where conflict is detected with the paper's
//    same-table rule applied per vertex: an edge (u, v) joins the round
//    unless u or v already has a round edge toward a *different* relation
//    (those pairs share a tuple and can extend each other into one
//    candidate). Pairs sharing no tuple are admitted optimistically: for
//    them co-candidacy requires a third linking edge, which is rare, and the
//    worst case is asking an edge that could have been inferred — a small
//    cost bound we measure in bench_ablation_latency. This keeps rounds
//    near the number of predicates, matching the paper's reported latency.
//
//  - kExactPrefix: the paper's literal Section-5.2 algorithm — per connected
//    component, the longest prefix of the ordered task list in which every
//    pair passes the exact same-candidate test. Exact but slow on large
//    components, and the strict prefix rule terminates rounds early.
#ifndef CDB_LATENCY_SCHEDULER_H_
#define CDB_LATENCY_SCHEDULER_H_

#include <vector>

#include "crowd/task.h"
#include "graph/pruning.h"
#include "graph/query_graph.h"

namespace cdb {

enum class LatencyMode {
  kVertexGreedy,
  kExactPrefix,
};

// Connected-component label per vertex over currently valid edges; dead
// vertices get label -1. Exposed for tests.
std::vector<int> ValidComponents(const QueryGraph& graph, const Pruner& pruner);

// Selects the tasks for one parallel round from `ordered_tasks` (descending
// expectation, all valid unknown crowd edges). Never returns an empty set
// when ordered_tasks is non-empty.
//
// `greedy_round_fraction` caps a vertex-greedy round at that fraction of the
// remaining tasks (minimum 32): asking the highest-expectation tasks first
// and letting their answers prune the rest recovers most of the sequential
// method's cost advantage while keeping the round count small — the
// cost/latency knob of Section 5.2 (see bench_fig22_cost_latency).
std::vector<EdgeId> SelectParallelRound(
    const QueryGraph& graph, const Pruner& pruner,
    const std::vector<EdgeId>& ordered_tasks,
    LatencyMode mode = LatencyMode::kVertexGreedy,
    double greedy_round_fraction = 0.34);

// One session's contribution to a merged multi-query round.
struct SessionBatch {
  int session = -1;          // Becomes batch_tag on the merged tasks.
  std::vector<Task> tasks;   // Already remapped to the shared id space.
};

// Merges per-session rounds into one publishable task list by round-robin
// interleave across sessions (task k of session A, task k of session B, ...),
// so the HIT packing downstream mixes queries instead of concatenating them —
// the cross-query batching of Marcus et al.'s shared HITs. Stamps each task's
// batch_tag with its session. Deterministic: depends only on the input order.
std::vector<Task> MergeRoundBatches(const std::vector<SessionBatch>& batches);

}  // namespace cdb

#endif  // CDB_LATENCY_SCHEDULER_H_
