#include "cost/sampling.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "cost/known_color.h"
#include "cost/structure_cache.h"
#include "graph/structure.h"

namespace cdb {
namespace {

// The reduction target the sample chunks merge into. This is the documented
// pattern for worker-local reduction state: chunks accumulate into a local
// (unshared) buffer and fold it into the CDB_GUARDED_BY totals under the
// struct's own mutex, so the guard relationship is a declared capability the
// clang analysis (and tools/cdb_analyze.py) can check — not a free-floating
// function-local mutex whose scope the analyzer cannot see.
struct OccurrenceReduction {
  explicit OccurrenceReduction(size_t num_edges) : totals(num_edges, 0) {}

  Mutex mu;
  std::vector<int64_t> totals CDB_GUARDED_BY(mu);

  void Fold(const std::vector<int64_t>& local) CDB_EXCLUDES(mu) {
    MutexLock lock(mu);
    for (size_t e = 0; e < totals.size(); ++e) totals[e] += local[e];
  }

  // Hands the folded totals to the (now single-threaded) caller.
  std::vector<int64_t> Take() CDB_EXCLUDES(mu) {
    MutexLock lock(mu);
    return std::move(totals);
  }
};

// Draws the coloring of sample `s` into `colors`: known colors are kept,
// unknown edges are BLUE with probability omega(e). Scans the SoA columns;
// the Rng consumption order (unknown edges in ascending id) is part of the
// bit-identity contract with the legacy path.
void SampleColors(const QueryGraph& graph, uint64_t seed, int64_t s,
                  std::vector<EdgeColor>* colors) {
  Rng rng(seed, static_cast<uint64_t>(s));
  const std::vector<uint8_t>& known = graph.edge_colors();
  const std::vector<double>& weights = graph.edge_weights();
  colors->resize(known.size());
  for (size_t e = 0; e < known.size(); ++e) {
    (*colors)[e] =
        known[e] != static_cast<uint8_t>(EdgeColor::kUnknown)
            ? static_cast<EdgeColor>(known[e])
            : (rng.Bernoulli(weights[e]) ? EdgeColor::kBlue : EdgeColor::kRed);
  }
}

}  // namespace

std::vector<EdgeId> SampleMinCutOrder(const QueryGraph& graph,
                                      const SamplingOptions& options) {
  return SampleMinCutOrder(graph, options, nullptr);
}

std::vector<EdgeId> SampleMinCutOrder(const QueryGraph& graph,
                                      const SamplingOptions& options,
                                      const StructureCache* cache) {
  OccurrenceReduction reduction(static_cast<size_t>(graph.num_edges()));

  // The color-independent selection skeleton is built once and shared
  // read-only by all workers (unless the caller supplied one, or the legacy
  // oracle path was requested).
  std::optional<StructureCache> local_cache;
  if (!options.legacy_selection && cache == nullptr) {
    local_cache.emplace(StructureCache::Build(graph));
    cache = &*local_cache;
  }

  // Each sample is seeded independently as Rng(seed, s), so colorings do not
  // depend on how samples are batched into chunks; occurrence counts merge by
  // integer addition, which is order-insensitive. Together that makes the
  // output bit-identical at every thread count.
  ParallelFor(
      0, options.num_samples, /*grain=*/1,
      [&](int64_t chunk_begin, int64_t chunk_end, int /*chunk*/) {
        std::vector<int64_t> local(graph.num_edges(), 0);
        // Per-worker scratch, reused across this chunk's samples
        // (reset-not-rebuild: buffers keep their capacity).
        SelectionArena arena;
        for (int64_t s = chunk_begin; s < chunk_end; ++s) {
          SampleColors(graph, options.seed, s, &arena.colors);
          if (options.legacy_selection) {
            for (EdgeId e : SelectTasksKnownColors(graph, arena.colors)) {
              ++local[e];
            }
          } else {
            SelectTasksKnownColors(graph, arena.colors, *cache, &arena,
                                   &arena.selected);
            for (EdgeId e : arena.selected) ++local[e];
          }
        }
        reduction.Fold(local);
      },
      options.num_threads);
  const std::vector<int64_t> occurrences = reduction.Take();

  // Unknown crowd edges, by descending occurrence; never-selected edges
  // trail, ordered by weight (more likely BLUE, thus more likely needed).
  std::vector<EdgeId> order;
  const std::vector<uint8_t>& colors = graph.edge_colors();
  const std::vector<uint8_t>& is_crowd = graph.edge_crowd_flags();
  const std::vector<double>& weights = graph.edge_weights();
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (is_crowd[e] != 0 &&
        colors[e] == static_cast<uint8_t>(EdgeColor::kUnknown)) {
      order.push_back(e);
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    if (occurrences[a] != occurrences[b]) return occurrences[a] > occurrences[b];
    return weights[a] > weights[b];
  });
  return order;
}

}  // namespace cdb
