#include "cost/sampling.h"

#include <algorithm>
#include <mutex>

#include "common/thread_pool.h"
#include "cost/known_color.h"
#include "graph/structure.h"

namespace cdb {

std::vector<EdgeId> SampleMinCutOrder(const QueryGraph& graph,
                                      const SamplingOptions& options) {
  std::vector<int64_t> occurrences(graph.num_edges(), 0);
  std::mutex mu;

  // Each sample is seeded independently as Rng(seed, s), so colorings do not
  // depend on how samples are batched into chunks; occurrence counts merge by
  // integer addition, which is order-insensitive. Together that makes the
  // output bit-identical at every thread count.
  ParallelFor(
      0, options.num_samples, /*grain=*/1,
      [&](int64_t chunk_begin, int64_t chunk_end, int /*chunk*/) {
        std::vector<int64_t> local(graph.num_edges(), 0);
        std::vector<EdgeColor> colors(graph.num_edges());
        for (int64_t s = chunk_begin; s < chunk_end; ++s) {
          Rng rng(options.seed, static_cast<uint64_t>(s));
          // Sample a possible graph: each unknown edge is BLUE with
          // probability omega(e); known colors are kept.
          for (EdgeId e = 0; e < graph.num_edges(); ++e) {
            const GraphEdge& edge = graph.edge(e);
            colors[e] = edge.color != EdgeColor::kUnknown
                            ? edge.color
                            : (rng.Bernoulli(edge.weight) ? EdgeColor::kBlue
                                                          : EdgeColor::kRed);
          }
          for (EdgeId e : SelectTasksKnownColors(graph, colors)) ++local[e];
        }
        std::lock_guard<std::mutex> lock(mu);
        for (EdgeId e = 0; e < graph.num_edges(); ++e) occurrences[e] += local[e];
      },
      options.num_threads);

  // Unknown crowd edges, by descending occurrence; never-selected edges
  // trail, ordered by weight (more likely BLUE, thus more likely needed).
  std::vector<EdgeId> order;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const GraphEdge& edge = graph.edge(e);
    if (edge.is_crowd && edge.color == EdgeColor::kUnknown) order.push_back(e);
  }
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    if (occurrences[a] != occurrences[b]) return occurrences[a] > occurrences[b];
    return graph.edge(a).weight > graph.edge(b).weight;
  });
  return order;
}

}  // namespace cdb
