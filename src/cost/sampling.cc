#include "cost/sampling.h"

#include <algorithm>

#include "cost/known_color.h"
#include "graph/structure.h"

namespace cdb {

std::vector<EdgeId> SampleMinCutOrder(const QueryGraph& graph,
                                      const SamplingOptions& options) {
  Rng rng(options.seed);
  std::vector<int64_t> occurrences(graph.num_edges(), 0);

  std::vector<EdgeColor> colors(graph.num_edges());
  for (int s = 0; s < options.num_samples; ++s) {
    // Sample a possible graph: each unknown edge is BLUE with probability
    // omega(e); known colors are kept.
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const GraphEdge& edge = graph.edge(e);
      colors[e] = edge.color != EdgeColor::kUnknown
                      ? edge.color
                      : (rng.Bernoulli(edge.weight) ? EdgeColor::kBlue
                                                    : EdgeColor::kRed);
    }
    for (EdgeId e : SelectTasksKnownColors(graph, colors)) ++occurrences[e];
  }

  // Unknown crowd edges, by descending occurrence; never-selected edges
  // trail, ordered by weight (more likely BLUE, thus more likely needed).
  std::vector<EdgeId> order;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const GraphEdge& edge = graph.edge(e);
    if (edge.is_crowd && edge.color == EdgeColor::kUnknown) order.push_back(e);
  }
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    if (occurrences[a] != occurrences[b]) return occurrences[a] > occurrences[b];
    return graph.edge(a).weight > graph.edge(b).weight;
  });
  return order;
}

}  // namespace cdb
