#include "cost/sampling.h"

#include <algorithm>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "cost/known_color.h"
#include "graph/structure.h"

namespace cdb {
namespace {

// The reduction target the sample chunks merge into. This is the documented
// pattern for worker-local reduction state: chunks accumulate into a local
// (unshared) buffer and fold it into the CDB_GUARDED_BY totals under the
// struct's own mutex, so the guard relationship is a declared capability the
// clang analysis (and tools/cdb_analyze.py) can check — not a free-floating
// function-local mutex whose scope the analyzer cannot see.
struct OccurrenceReduction {
  explicit OccurrenceReduction(size_t num_edges) : totals(num_edges, 0) {}

  Mutex mu;
  std::vector<int64_t> totals CDB_GUARDED_BY(mu);

  void Fold(const std::vector<int64_t>& local) CDB_EXCLUDES(mu) {
    MutexLock lock(mu);
    for (size_t e = 0; e < totals.size(); ++e) totals[e] += local[e];
  }

  // Hands the folded totals to the (now single-threaded) caller.
  std::vector<int64_t> Take() CDB_EXCLUDES(mu) {
    MutexLock lock(mu);
    return std::move(totals);
  }
};

}  // namespace

std::vector<EdgeId> SampleMinCutOrder(const QueryGraph& graph,
                                      const SamplingOptions& options) {
  OccurrenceReduction reduction(static_cast<size_t>(graph.num_edges()));

  // Each sample is seeded independently as Rng(seed, s), so colorings do not
  // depend on how samples are batched into chunks; occurrence counts merge by
  // integer addition, which is order-insensitive. Together that makes the
  // output bit-identical at every thread count.
  ParallelFor(
      0, options.num_samples, /*grain=*/1,
      [&](int64_t chunk_begin, int64_t chunk_end, int /*chunk*/) {
        std::vector<int64_t> local(graph.num_edges(), 0);
        std::vector<EdgeColor> colors(graph.num_edges());
        for (int64_t s = chunk_begin; s < chunk_end; ++s) {
          Rng rng(options.seed, static_cast<uint64_t>(s));
          // Sample a possible graph: each unknown edge is BLUE with
          // probability omega(e); known colors are kept.
          for (EdgeId e = 0; e < graph.num_edges(); ++e) {
            const GraphEdge& edge = graph.edge(e);
            colors[e] = edge.color != EdgeColor::kUnknown
                            ? edge.color
                            : (rng.Bernoulli(edge.weight) ? EdgeColor::kBlue
                                                          : EdgeColor::kRed);
          }
          for (EdgeId e : SelectTasksKnownColors(graph, colors)) ++local[e];
        }
        reduction.Fold(local);
      },
      options.num_threads);
  const std::vector<int64_t> occurrences = reduction.Take();

  // Unknown crowd edges, by descending occurrence; never-selected edges
  // trail, ordered by weight (more likely BLUE, thus more likely needed).
  std::vector<EdgeId> order;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const GraphEdge& edge = graph.edge(e);
    if (edge.is_crowd && edge.color == EdgeColor::kUnknown) order.push_back(e);
  }
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    if (occurrences[a] != occurrences[b]) return occurrences[a] > occurrences[b];
    return graph.edge(a).weight > graph.edge(b).weight;
  });
  return order;
}

}  // namespace cdb
