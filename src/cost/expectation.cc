#include "cost/expectation.h"

#include <algorithm>
#include <vector>

namespace cdb {
namespace {

// The probability that an edge turns out RED: zero once confirmed BLUE.
double RedProbability(const GraphEdge& edge) {
  switch (edge.color) {
    case EdgeColor::kBlue:
      return 0.0;
    case EdgeColor::kRed:
      return 1.0;  // Unused: RED edges are never valid.
    case EdgeColor::kUnknown:
      return 1.0 - edge.weight;
  }
  return 0.0;
}

// Flat memo over the dense (vertex, predicate) key space — the per-slot
// term of Eq. 1 is recomputed at most once per ordering pass.
struct TermMemo {
  explicit TermMemo(size_t num_slots)
      : value(num_slots, 0.0), computed(num_slots, 0) {}

  std::vector<double> value;
  std::vector<uint8_t> computed;
};

// One Eq.-1 term: the expectation contribution of endpoint `v` for predicate
// `p` — Prob(all of v's p-edges RED) * (#edges invalidated) / x.
double EndpointTerm(const QueryGraph& graph, Pruner& pruner, VertexId v, int p,
                    TermMemo& memo) {
  const size_t key =
      static_cast<size_t>(v) * static_cast<size_t>(graph.num_predicates()) +
      static_cast<size_t>(p);
  if (memo.computed[key]) return memo.value[key];

  std::vector<EdgeId> valid_edges;
  double red_all = 1.0;
  for (EdgeId e : graph.IncidentEdges(v, p)) {
    if (!pruner.EdgeValid(e)) continue;
    valid_edges.push_back(e);
    red_all *= RedProbability(graph.edge(e));
  }
  double term = 0.0;
  if (!valid_edges.empty() && red_all > 0.0) {
    int64_t alpha = pruner.SimulateCutInvalidation(valid_edges);
    term = red_all * static_cast<double>(alpha) /
           static_cast<double>(valid_edges.size());
  }
  memo.value[key] = term;
  memo.computed[key] = 1;
  return term;
}

size_t NumSlots(const QueryGraph& graph) {
  return static_cast<size_t>(graph.num_vertices()) *
         static_cast<size_t>(graph.num_predicates());
}

}  // namespace

double PruningExpectation(const QueryGraph& graph, Pruner& pruner, EdgeId e) {
  TermMemo memo(NumSlots(graph));
  const GraphEdge& edge = graph.edge(e);
  return EndpointTerm(graph, pruner, edge.u, edge.pred, memo) +
         EndpointTerm(graph, pruner, edge.v, edge.pred, memo);
}

std::vector<ScoredEdge> ExpectationOrder(const QueryGraph& graph,
                                         Pruner& pruner) {
  TermMemo memo(NumSlots(graph));
  std::vector<ScoredEdge> out;
  for (EdgeId e : pruner.RemainingTasks()) {
    const GraphEdge& edge = graph.edge(e);
    double expectation = EndpointTerm(graph, pruner, edge.u, edge.pred, memo) +
                         EndpointTerm(graph, pruner, edge.v, edge.pred, memo);
    out.push_back({e, expectation});
  }
  std::stable_sort(out.begin(), out.end(),
                   [&](const ScoredEdge& a, const ScoredEdge& b) {
                     if (a.expectation != b.expectation) {
                       return a.expectation > b.expectation;
                     }
                     // Lower weight first: more likely RED, prunes sooner.
                     return graph.edge(a.edge).weight < graph.edge(b.edge).weight;
                   });
  return out;
}

}  // namespace cdb
