#include "cost/expectation.h"

#include <algorithm>
#include <unordered_map>

namespace cdb {
namespace {

// The probability that an edge turns out RED: zero once confirmed BLUE.
double RedProbability(const GraphEdge& edge) {
  switch (edge.color) {
    case EdgeColor::kBlue:
      return 0.0;
    case EdgeColor::kRed:
      return 1.0;  // Unused: RED edges are never valid.
    case EdgeColor::kUnknown:
      return 1.0 - edge.weight;
  }
  return 0.0;
}

// One Eq.-1 term: the expectation contribution of endpoint `v` for predicate
// `p` — Prob(all of v's p-edges RED) * (#edges invalidated) / x.
double EndpointTerm(const QueryGraph& graph, Pruner& pruner, VertexId v, int p,
                    std::unordered_map<int64_t, double>& cache) {
  int64_t key = static_cast<int64_t>(v) * graph.num_predicates() + p;
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  std::vector<EdgeId> valid_edges;
  double red_all = 1.0;
  for (EdgeId e : graph.IncidentEdges(v, p)) {
    if (!pruner.EdgeValid(e)) continue;
    valid_edges.push_back(e);
    red_all *= RedProbability(graph.edge(e));
  }
  double term = 0.0;
  if (!valid_edges.empty() && red_all > 0.0) {
    int64_t alpha = pruner.SimulateCutInvalidation(valid_edges);
    term = red_all * static_cast<double>(alpha) /
           static_cast<double>(valid_edges.size());
  }
  cache.emplace(key, term);
  return term;
}

}  // namespace

double PruningExpectation(const QueryGraph& graph, Pruner& pruner, EdgeId e) {
  std::unordered_map<int64_t, double> cache;
  const GraphEdge& edge = graph.edge(e);
  return EndpointTerm(graph, pruner, edge.u, edge.pred, cache) +
         EndpointTerm(graph, pruner, edge.v, edge.pred, cache);
}

std::vector<ScoredEdge> ExpectationOrder(const QueryGraph& graph,
                                         Pruner& pruner) {
  std::unordered_map<int64_t, double> cache;
  std::vector<ScoredEdge> out;
  for (EdgeId e : pruner.RemainingTasks()) {
    const GraphEdge& edge = graph.edge(e);
    double expectation = EndpointTerm(graph, pruner, edge.u, edge.pred, cache) +
                         EndpointTerm(graph, pruner, edge.v, edge.pred, cache);
    out.push_back({e, expectation});
  }
  std::stable_sort(out.begin(), out.end(),
                   [&](const ScoredEdge& a, const ScoredEdge& b) {
                     if (a.expectation != b.expectation) {
                       return a.expectation > b.expectation;
                     }
                     // Lower weight first: more likely RED, prunes sooner.
                     return graph.edge(a.edge).weight < graph.edge(b.edge).weight;
                   });
  return out;
}

}  // namespace cdb
