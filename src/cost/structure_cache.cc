#include "cost/structure_cache.h"

namespace cdb {

StructureCache StructureCache::Build(const QueryGraph& graph) {
  StructureCache cache;
  cache.rel_graph = BuildRelGraph(graph);
  cache.structure = Classify(cache.rel_graph);
  if (cache.structure == JoinStructure::kStar) {
    cache.star_center = StarCenter(cache.rel_graph);
    cache.star = BuildStarCache(graph, cache.rel_graph, cache.star_center);
  } else {
    cache.plan = BuildChainPlan(graph);
    cache.min_cut = BuildMinCutCache(graph, cache.rel_graph, cache.plan);
  }
  return cache;
}

void SelectTasksKnownColors(const QueryGraph& graph,
                            const std::vector<EdgeColor>& colors,
                            const StructureCache& cache, SelectionArena* arena,
                            std::vector<EdgeId>* out) {
  if (cache.structure == JoinStructure::kStar) {
    StarSelection(graph, cache.star, colors, out);
    return;
  }
  out->clear();
  ChainMinCutSelection(graph, cache.min_cut, colors, &arena->flow, out);
}

}  // namespace cdb
