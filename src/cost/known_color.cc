#include "cost/known_color.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "flow/min_cut.h"

namespace cdb {

std::vector<EdgeId> StarSelection(const QueryGraph& graph,
                                  const RelGraph& rel_graph, int center_rel,
                                  const std::vector<EdgeColor>& colors) {
  std::vector<EdgeId> out;
  for (VertexId t : graph.relation_vertices(center_rel)) {
    // Partition t's edges by incident group; a group is "satisfied" if some
    // neighbor tuple realizes all its predicates in BLUE.
    bool all_groups_satisfied = true;
    std::vector<std::vector<EdgeId>> group_edges;
    for (int g : rel_graph.adjacent_groups[center_rel]) {
      const RelGraph::Group& group = rel_graph.groups[g];
      std::vector<EdgeId> edges;
      // Per neighbor w: all predicates must have a BLUE edge for the group to
      // be satisfied through w.
      bool satisfied = false;
      // Collect neighbors via the first predicate, then check the rest.
      const int p0 = group.preds[0];
      for (EdgeId e0 : graph.IncidentEdges(t, p0)) {
        VertexId w = graph.Opposite(e0, t);
        bool w_all_blue = colors[e0] == EdgeColor::kBlue;
        edges.push_back(e0);
        for (size_t k = 1; k < group.preds.size(); ++k) {
          EdgeId ek = kNoEdge;
          for (EdgeId cand : graph.IncidentEdges(t, group.preds[k])) {
            if (graph.Opposite(cand, t) == w) {
              ek = cand;
              break;
            }
          }
          if (ek == kNoEdge) {
            w_all_blue = false;
          } else {
            edges.push_back(ek);
            w_all_blue = w_all_blue && colors[ek] == EdgeColor::kBlue;
          }
        }
        satisfied = satisfied || w_all_blue;
      }
      // Parallel predicates may also have edges not reachable via p0; include
      // them so "ask all edges of t" is complete.
      for (size_t k = 1; k < group.preds.size(); ++k) {
        for (EdgeId e : graph.IncidentEdges(t, group.preds[k])) {
          if (std::find(edges.begin(), edges.end(), e) == edges.end()) {
            edges.push_back(e);
          }
        }
      }
      all_groups_satisfied = all_groups_satisfied && satisfied;
      group_edges.push_back(std::move(edges));
    }
    if (group_edges.empty()) continue;

    if (all_groups_satisfied) {
      // Every leaf relation is matched: every edge of t participates in (or
      // refutes a candidate sharing tuples with) an answer; ask them all.
      for (const auto& edges : group_edges) {
        out.insert(out.end(), edges.begin(), edges.end());
      }
    } else {
      // Some group is all-RED: asking the cheapest such group refutes every
      // candidate through t and prunes the rest.
      size_t best = std::numeric_limits<size_t>::max();
      const std::vector<EdgeId>* best_edges = nullptr;
      for (size_t gi = 0; gi < group_edges.size(); ++gi) {
        const std::vector<EdgeId>& edges = group_edges[gi];
        bool any_blue_pair = false;
        // Re-derive satisfaction cheaply: a group with any BLUE edge may
        // still be unsatisfied when predicates are parallel, but for the
        // common single-predicate group BLUE edge == satisfied.
        for (EdgeId e : edges) {
          if (colors[e] == EdgeColor::kBlue) {
            any_blue_pair = true;
            break;
          }
        }
        if (any_blue_pair) continue;
        if (edges.size() < best) {
          best = edges.size();
          best_edges = &edges;
        }
      }
      if (best_edges == nullptr) {
        // Only parallel-predicate groups are unsatisfied while every group
        // has a blue edge; fall back to asking everything for this tuple.
        for (const auto& edges : group_edges) {
          out.insert(out.end(), edges.begin(), edges.end());
        }
      } else {
        out.insert(out.end(), best_edges->begin(), best_edges->end());
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<EdgeId> StarSelection(const QueryGraph& graph, int center_rel,
                                  const std::vector<EdgeColor>& colors) {
  return StarSelection(graph, BuildRelGraph(graph), center_rel, colors);
}

StarCache BuildStarCache(const QueryGraph& graph, const RelGraph& rel_graph,
                         int center_rel) {
  StarCache cache;
  cache.center_rel = center_rel;
  cache.num_groups =
      static_cast<int>(rel_graph.adjacent_groups[center_rel].size());
  for (int g : rel_graph.adjacent_groups[center_rel]) {
    cache.group_pred_counts.push_back(
        static_cast<int32_t>(rel_graph.groups[g].preds.size()));
  }
  cache.bucket_offsets.push_back(0);
  cache.unit_offsets.push_back(0);
  // Replays the legacy bucket construction exactly (including the
  // std::find-based dedup of parallel-predicate extras) so bucket contents,
  // order, and — crucially for the cheapest-group tie-break — bucket sizes
  // match the oracle byte for byte.
  for (VertexId t : graph.relation_vertices(center_rel)) {
    for (int g : rel_graph.adjacent_groups[center_rel]) {
      const RelGraph::Group& group = rel_graph.groups[g];
      std::vector<EdgeId> edges;
      const int p0 = group.preds[0];
      for (EdgeId e0 : graph.IncidentEdges(t, p0)) {
        VertexId w = graph.Opposite(e0, t);
        edges.push_back(e0);
        cache.unit_members.push_back(e0);
        for (size_t k = 1; k < group.preds.size(); ++k) {
          EdgeId ek = kNoEdge;
          for (EdgeId cand : graph.IncidentEdges(t, group.preds[k])) {
            if (graph.Opposite(cand, t) == w) {
              ek = cand;
              break;
            }
          }
          if (ek != kNoEdge) edges.push_back(ek);
          cache.unit_members.push_back(ek);
        }
      }
      for (size_t k = 1; k < group.preds.size(); ++k) {
        for (EdgeId e : graph.IncidentEdges(t, group.preds[k])) {
          if (std::find(edges.begin(), edges.end(), e) == edges.end()) {
            edges.push_back(e);
          }
        }
      }
      cache.bucket_edges.insert(cache.bucket_edges.end(), edges.begin(),
                                edges.end());
      cache.bucket_offsets.push_back(
          static_cast<uint32_t>(cache.bucket_edges.size()));
      cache.unit_offsets.push_back(
          static_cast<uint32_t>(cache.unit_members.size()));
    }
  }
  return cache;
}

void StarSelection(const QueryGraph& graph, const StarCache& cache,
                   const std::vector<EdgeColor>& colors,
                   std::vector<EdgeId>* out) {
  out->clear();
  if (cache.num_groups == 0) return;
  const size_t num_tuples =
      graph.relation_vertices(cache.center_rel).size();
  for (size_t ti = 0; ti < num_tuples; ++ti) {
    const size_t base = ti * static_cast<size_t>(cache.num_groups);
    // A group is satisfied iff some unit has every member present and BLUE.
    bool all_groups_satisfied = true;
    for (int gi = 0; gi < cache.num_groups; ++gi) {
      const size_t slot = base + static_cast<size_t>(gi);
      const int32_t pred_count = cache.group_pred_counts[gi];
      bool satisfied = false;
      for (uint32_t u = cache.unit_offsets[slot];
           !satisfied && u < cache.unit_offsets[slot + 1];
           u += static_cast<uint32_t>(pred_count)) {
        bool unit_blue = true;
        for (int32_t k = 0; k < pred_count; ++k) {
          const EdgeId e = cache.unit_members[u + static_cast<uint32_t>(k)];
          if (e == kNoEdge || colors[e] != EdgeColor::kBlue) {
            unit_blue = false;
            break;
          }
        }
        satisfied = unit_blue;
      }
      all_groups_satisfied = all_groups_satisfied && satisfied;
    }

    int chosen = -1;  // -1 = ask every bucket of this tuple.
    if (!all_groups_satisfied) {
      size_t best = std::numeric_limits<size_t>::max();
      for (int gi = 0; gi < cache.num_groups; ++gi) {
        const size_t slot = base + static_cast<size_t>(gi);
        bool any_blue = false;
        for (uint32_t b = cache.bucket_offsets[slot];
             b < cache.bucket_offsets[slot + 1]; ++b) {
          if (colors[cache.bucket_edges[b]] == EdgeColor::kBlue) {
            any_blue = true;
            break;
          }
        }
        if (any_blue) continue;
        const size_t size =
            cache.bucket_offsets[slot + 1] - cache.bucket_offsets[slot];
        if (size < best) {
          best = size;
          chosen = gi;
        }
      }
    }
    if (chosen >= 0) {
      const size_t slot = base + static_cast<size_t>(chosen);
      out->insert(out->end(),
                  cache.bucket_edges.data() + cache.bucket_offsets[slot],
                  cache.bucket_edges.data() + cache.bucket_offsets[slot + 1]);
    } else {
      // All buckets of ti are contiguous in bucket_edges.
      out->insert(
          out->end(), cache.bucket_edges.data() + cache.bucket_offsets[base],
          cache.bucket_edges.data() +
              cache.bucket_offsets[base + static_cast<size_t>(cache.num_groups)]);
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

std::vector<EdgeId> SelectTasksKnownColors(const QueryGraph& graph,
                                           const std::vector<EdgeColor>& colors) {
  RelGraph rel_graph = BuildRelGraph(graph);
  if (Classify(rel_graph) == JoinStructure::kStar) {
    return StarSelection(graph, rel_graph, StarCenter(rel_graph), colors);
  }
  ChainPlan plan = BuildChainPlan(graph);
  return ChainMinCutSelection(graph, plan, colors).AllEdges();
}

}  // namespace cdb
