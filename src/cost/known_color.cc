#include "cost/known_color.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "flow/min_cut.h"

namespace cdb {

std::vector<EdgeId> StarSelection(const QueryGraph& graph, int center_rel,
                                  const std::vector<EdgeColor>& colors) {
  RelGraph rel_graph = BuildRelGraph(graph);
  std::vector<EdgeId> out;
  for (VertexId t : graph.relation_vertices(center_rel)) {
    // Partition t's edges by incident group; a group is "satisfied" if some
    // neighbor tuple realizes all its predicates in BLUE.
    bool all_groups_satisfied = true;
    std::vector<std::vector<EdgeId>> group_edges;
    for (int g : rel_graph.adjacent_groups[center_rel]) {
      const RelGraph::Group& group = rel_graph.groups[g];
      std::vector<EdgeId> edges;
      // Per neighbor w: all predicates must have a BLUE edge for the group to
      // be satisfied through w.
      bool satisfied = false;
      // Collect neighbors via the first predicate, then check the rest.
      const int p0 = group.preds[0];
      for (EdgeId e0 : graph.IncidentEdges(t, p0)) {
        VertexId w = graph.Opposite(e0, t);
        bool w_all_blue = colors[e0] == EdgeColor::kBlue;
        edges.push_back(e0);
        for (size_t k = 1; k < group.preds.size(); ++k) {
          EdgeId ek = kNoEdge;
          for (EdgeId cand : graph.IncidentEdges(t, group.preds[k])) {
            if (graph.Opposite(cand, t) == w) {
              ek = cand;
              break;
            }
          }
          if (ek == kNoEdge) {
            w_all_blue = false;
          } else {
            edges.push_back(ek);
            w_all_blue = w_all_blue && colors[ek] == EdgeColor::kBlue;
          }
        }
        satisfied = satisfied || w_all_blue;
      }
      // Parallel predicates may also have edges not reachable via p0; include
      // them so "ask all edges of t" is complete.
      for (size_t k = 1; k < group.preds.size(); ++k) {
        for (EdgeId e : graph.IncidentEdges(t, group.preds[k])) {
          if (std::find(edges.begin(), edges.end(), e) == edges.end()) {
            edges.push_back(e);
          }
        }
      }
      all_groups_satisfied = all_groups_satisfied && satisfied;
      group_edges.push_back(std::move(edges));
    }
    if (group_edges.empty()) continue;

    if (all_groups_satisfied) {
      // Every leaf relation is matched: every edge of t participates in (or
      // refutes a candidate sharing tuples with) an answer; ask them all.
      for (const auto& edges : group_edges) {
        out.insert(out.end(), edges.begin(), edges.end());
      }
    } else {
      // Some group is all-RED: asking the cheapest such group refutes every
      // candidate through t and prunes the rest.
      size_t best = std::numeric_limits<size_t>::max();
      const std::vector<EdgeId>* best_edges = nullptr;
      for (size_t gi = 0; gi < group_edges.size(); ++gi) {
        const std::vector<EdgeId>& edges = group_edges[gi];
        bool any_blue_pair = false;
        // Re-derive satisfaction cheaply: a group with any BLUE edge may
        // still be unsatisfied when predicates are parallel, but for the
        // common single-predicate group BLUE edge == satisfied.
        for (EdgeId e : edges) {
          if (colors[e] == EdgeColor::kBlue) {
            any_blue_pair = true;
            break;
          }
        }
        if (any_blue_pair) continue;
        if (edges.size() < best) {
          best = edges.size();
          best_edges = &edges;
        }
      }
      if (best_edges == nullptr) {
        // Only parallel-predicate groups are unsatisfied while every group
        // has a blue edge; fall back to asking everything for this tuple.
        for (const auto& edges : group_edges) {
          out.insert(out.end(), edges.begin(), edges.end());
        }
      } else {
        out.insert(out.end(), best_edges->begin(), best_edges->end());
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<EdgeId> SelectTasksKnownColors(const QueryGraph& graph,
                                           const std::vector<EdgeColor>& colors) {
  RelGraph rel_graph = BuildRelGraph(graph);
  if (Classify(rel_graph) == JoinStructure::kStar) {
    return StarSelection(graph, StarCenter(rel_graph), colors);
  }
  ChainPlan plan = BuildChainPlan(graph);
  return ChainMinCutSelection(graph, plan, colors).AllEdges();
}

}  // namespace cdb
