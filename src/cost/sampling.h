// Sample-based min-cut greedy (Section 5.1.2). Selecting the minimum edge
// set that resolves S sampled possible graphs is NP-hard (Lemma 2, reduction
// from set cover); the greedy samples S colorings from the edge matching
// probabilities, runs the Lemma-1 known-color selection on each, and asks
// edges in descending order of occurrence across samples.
#ifndef CDB_COST_SAMPLING_H_
#define CDB_COST_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/query_graph.h"

namespace cdb {

struct StructureCache;

struct SamplingOptions {
  int num_samples = 100;  // The paper's real experiments use 100 samples.
  uint64_t seed = 1;
  // Threads for the per-sample selections (samples are independent, so they
  // parallelize embarrassingly): <= 0 uses all hardware threads, 1 runs
  // serially. Each sample s draws from Rng(seed, s), so the result is
  // bit-identical at every thread count.
  int num_threads = 0;
  // Run every sample through the legacy rebuild-per-call selection instead
  // of the cached flat path. Byte-identical output, much slower; exists as
  // the identity oracle for tests and the perf-trajectory benches.
  bool legacy_selection = false;
};

// Returns the currently-unknown crowd edges ordered by descending occurrence
// count over the per-sample selections; edges selected in no sample follow,
// ordered by descending weight (they may still need asking later).
std::vector<EdgeId> SampleMinCutOrder(const QueryGraph& graph,
                                      const SamplingOptions& options);

// Same, reusing a caller-built StructureCache (ignored on the legacy path;
// built internally when null). The cache is shared read-only across worker
// threads; per-worker scratch arenas are reused across that worker's samples.
std::vector<EdgeId> SampleMinCutOrder(const QueryGraph& graph,
                                      const SamplingOptions& options,
                                      const StructureCache* cache);

}  // namespace cdb

#endif  // CDB_COST_SAMPLING_H_
