#include "cost/ledger.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace cdb {

BudgetLedger::BudgetLedger(std::optional<int64_t> limit) : limit_(limit) {
  if (limit_) CDB_CHECK(*limit_ >= 0);
}

std::optional<int64_t> BudgetLedger::remaining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!limit_) return std::nullopt;
  return std::max<int64_t>(0, *limit_ - spent_);
}

bool BudgetLedger::Exhausted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return limit_.has_value() && spent_ >= *limit_;
}

int64_t BudgetLedger::TryDebit(int64_t want) {
  CDB_CHECK(want >= 0);
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t granted = want;
  if (limit_) granted = std::min(want, std::max<int64_t>(0, *limit_ - spent_));
  // Saturating add: an unlimited ledger granting huge debits must not wrap
  // the spend counter into UB.
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  spent_ = granted > kMax - spent_ ? kMax : spent_ + granted;
  return granted;
}

int64_t BudgetLedger::spent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spent_;
}

}  // namespace cdb
