#include "cost/ledger.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace cdb {

BudgetLedger::BudgetLedger(std::optional<int64_t> limit) : limit_(limit) {
  if (limit_) CDB_CHECK(*limit_ >= 0);
}

bool BudgetLedger::limited() const {
  MutexLock lock(mutex_);
  return limit_.has_value();
}

int64_t BudgetLedger::RemainingLocked() const {
  mutex_.AssertHeld();
  if (!limit_) return std::numeric_limits<int64_t>::max();
  return std::max<int64_t>(0, *limit_ - spent_);
}

void BudgetLedger::RecordSpendLocked(int64_t granted) {
  mutex_.AssertHeld();
  // Saturating add: an unlimited ledger granting huge debits must not wrap
  // the spend counter into UB.
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  spent_ = granted > kMax - spent_ ? kMax : spent_ + granted;
}

std::optional<int64_t> BudgetLedger::remaining() const {
  MutexLock lock(mutex_);
  if (!limit_) return std::nullopt;
  return RemainingLocked();
}

bool BudgetLedger::Exhausted() const {
  MutexLock lock(mutex_);
  return limit_.has_value() && RemainingLocked() == 0;
}

int64_t BudgetLedger::TryDebit(int64_t want) {
  CDB_CHECK(want >= 0);
  MutexLock lock(mutex_);
  const int64_t granted = std::min(want, RemainingLocked());
  RecordSpendLocked(granted);
  return granted;
}

bool BudgetLedger::TrySpend(int64_t amount) {
  CDB_CHECK(amount >= 0);
  MutexLock lock(mutex_);
  if (amount > RemainingLocked()) return false;
  RecordSpendLocked(amount);
  return true;
}

int64_t BudgetLedger::spent() const {
  MutexLock lock(mutex_);
  return spent_;
}

}  // namespace cdb
