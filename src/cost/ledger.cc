#include "cost/ledger.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace cdb {

BudgetLedger::BudgetLedger(std::optional<int64_t> limit) : limit_(limit) {
  if (limit_) CDB_CHECK(*limit_ >= 0);
}

int64_t BudgetLedger::remaining() const {
  if (!limit_) return std::numeric_limits<int64_t>::max();
  return std::max<int64_t>(0, *limit_ - spent_);
}

int64_t BudgetLedger::TryDebit(int64_t want) {
  CDB_CHECK(want >= 0);
  int64_t granted = std::min(want, remaining());
  spent_ += granted;
  return granted;
}

}  // namespace cdb
