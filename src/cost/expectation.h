// Expectation-based task selection (Section 5.1.2, Equation 1).
//
// For an edge e = (t, t'), the pruning expectation combines two terms: the
// probability that *all* of t's edges for e's predicate are RED (which would
// invalidate alpha further edges) amortized over those x edges, plus the
// symmetric term for t'. Edges are asked in descending expectation order so
// that likely-RED, high-impact edges come first and prune the most work.
#ifndef CDB_COST_EXPECTATION_H_
#define CDB_COST_EXPECTATION_H_

#include <vector>

#include "graph/pruning.h"
#include "graph/query_graph.h"

namespace cdb {

struct ScoredEdge {
  EdgeId edge = kNoEdge;
  double expectation = 0.0;
};

// Scores all remaining (valid, unknown, crowd) edges by Eq. 1 and returns
// them in descending expectation order (ties broken by ascending weight —
// smaller weight means more likely RED, hence more likely to prune).
// `pruner` must be up to date; it is used read-only apart from temporary
// cut simulations that are rolled back.
std::vector<ScoredEdge> ExpectationOrder(const QueryGraph& graph,
                                         Pruner& pruner);

// Eq. 1 for a single edge, exposed for tests (the paper's worked example
// E(p1, r1) = 1.27 is covered by a unit test).
double PruningExpectation(const QueryGraph& graph, Pruner& pruner, EdgeId e);

}  // namespace cdb

#endif  // CDB_COST_EXPECTATION_H_
