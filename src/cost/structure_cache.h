// Per-graph cache of the optimizer's color-independent structures
// (Section 5.1): the relation-level multigraph, the join-structure
// classification, the chain transformation, and the flat skeletons of the
// two known-color selection rules. Built once per graph build (or
// snapshot restore) and shared read-only by every sample of every round —
// the structures depend only on the edge set, never on colors.
#ifndef CDB_COST_STRUCTURE_CACHE_H_
#define CDB_COST_STRUCTURE_CACHE_H_

#include <vector>

#include "cost/known_color.h"
#include "flow/min_cut.h"
#include "graph/query_graph.h"
#include "graph/structure.h"

namespace cdb {

struct StructureCache {
  RelGraph rel_graph;
  JoinStructure structure = JoinStructure::kChain;
  // Star queries use the per-center-tuple rule; everything else goes through
  // the chain transformation + Lemma-1 min cut.
  int star_center = -1;
  StarCache star;      // Populated iff structure == kStar.
  ChainPlan plan;      // Populated iff structure != kStar.
  MinCutCache min_cut; // Populated iff structure != kStar.

  static StructureCache Build(const QueryGraph& graph);
};

// Per-worker scratch for repeated cached selections. Reused across samples;
// a fresh arena and a reused one produce byte-identical selections.
struct SelectionArena {
  FlowArena flow;
  std::vector<EdgeColor> colors;  // Sampled-coloring buffer (sampler use).
  std::vector<EdgeId> selected;   // Per-sample selection buffer.
};

// Cached equivalent of SelectTasksKnownColors(graph, colors): fills `out`
// (cleared first) with a byte-identical edge sequence.
void SelectTasksKnownColors(const QueryGraph& graph,
                            const std::vector<EdgeColor>& colors,
                            const StructureCache& cache, SelectionArena* arena,
                            std::vector<EdgeId>* out);

}  // namespace cdb

#endif  // CDB_COST_STRUCTURE_CACHE_H_
