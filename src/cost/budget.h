// Budget-aware task selection (Section 5.1.3). With a hard budget of B
// tasks, CDB maximizes found answers instead of minimizing total cost: it
// repeatedly picks the surviving candidate with the highest answer
// expectation Pr(C) = prod of edge weights, asks that candidate's unasked
// edges (descending weight), updates the graph, and repeats until B tasks
// are spent.
#ifndef CDB_COST_BUDGET_H_
#define CDB_COST_BUDGET_H_

#include <vector>

#include "graph/query_graph.h"

namespace cdb {

// The next batch under budget semantics: the unknown crowd edges of the
// highest-probability surviving candidate that still has unknown edges,
// ordered by descending weight. Empty when every surviving candidate is
// fully colored.
std::vector<EdgeId> BudgetNextBatch(const QueryGraph& graph);

}  // namespace cdb

#endif  // CDB_COST_BUDGET_H_
