#include "cost/budget.h"

#include <algorithm>

#include "graph/candidates.h"

namespace cdb {

std::vector<EdgeId> BudgetNextBatch(const QueryGraph& graph) {
  std::optional<ScoredCandidate> best =
      BestCandidate(graph, /*require_unknown=*/true);
  if (!best) return {};
  std::vector<EdgeId> batch;
  for (EdgeId e : AssignmentEdges(graph, best->assignment)) {
    const GraphEdge& edge = graph.edge(e);
    if (edge.is_crowd && edge.color == EdgeColor::kUnknown) batch.push_back(e);
  }
  std::stable_sort(batch.begin(), batch.end(), [&](EdgeId a, EdgeId b) {
    return graph.edge(a).weight > graph.edge(b).weight;
  });
  return batch;
}

}  // namespace cdb
