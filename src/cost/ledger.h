// Shared task-budget accounting (Section 5.1.3). A BudgetLedger is the one
// place budget is debited: a QuerySession draws its per-round publishes and
// retry reposts from its own ledger, and MultiQueryScheduler drives a global
// ledger shared by every session so concurrent queries cannot overspend a
// common budget. A ledger without a limit grants everything.
//
// The unlimited case is explicit: remaining() returns nullopt instead of an
// INT64_MAX sentinel, so a caller adding slack ("remaining() + reposts")
// cannot silently overflow. Spend accounting saturates at INT64_MAX for the
// same reason. The ledger is internally mutex-guarded because the
// MultiQueryScheduler debits it across parked sessions and future drivers
// may do so from worker threads.
#ifndef CDB_COST_LEDGER_H_
#define CDB_COST_LEDGER_H_

#include <cstdint>
#include <mutex>
#include <optional>

namespace cdb {

class BudgetLedger {
 public:
  // No limit: every debit is granted in full.
  BudgetLedger() = default;
  explicit BudgetLedger(std::optional<int64_t> limit);
  BudgetLedger(const BudgetLedger&) = delete;
  BudgetLedger& operator=(const BudgetLedger&) = delete;

  [[nodiscard]] bool limited() const { return limit_.has_value(); }

  // Tasks still grantable; nullopt when unlimited. Callers doing arithmetic
  // must handle the unlimited case explicitly — there is no sentinel to
  // overflow.
  [[nodiscard]] std::optional<int64_t> remaining() const;

  // True iff the ledger is limited and fully spent. The unlimited ledger is
  // never exhausted.
  [[nodiscard]] bool Exhausted() const;

  // Grants min(want, remaining()) tasks (all of `want` when unlimited),
  // records the spend, and returns the granted count. `want` must be >= 0.
  int64_t TryDebit(int64_t want);

  [[nodiscard]] int64_t spent() const;

 private:
  mutable std::mutex mutex_;
  std::optional<int64_t> limit_;
  int64_t spent_ = 0;
};

}  // namespace cdb

#endif  // CDB_COST_LEDGER_H_
