// Shared task-budget accounting (Section 5.1.3). A BudgetLedger is the one
// place budget is debited: a QuerySession draws its per-round publishes and
// retry reposts from its own ledger, and MultiQueryScheduler drives a global
// ledger shared by every session so concurrent queries cannot overspend a
// common budget. A ledger without a limit grants everything.
//
// The unlimited case is explicit: remaining() returns nullopt instead of an
// INT64_MAX sentinel, so a caller adding slack ("remaining() + reposts")
// cannot silently overflow. Spend accounting saturates at INT64_MAX for the
// same reason. The ledger is internally mutex-guarded because the
// MultiQueryScheduler debits it across parked sessions and future drivers
// may do so from worker threads.
//
// Check-then-act is banned: remaining() and Exhausted() are observational
// only (termination checks, reporting). Any sequence that *tests* either and
// then spends races between the two lock acquisitions the moment a second
// session shares the ledger — another debitor can drain the budget in the
// gap. Spending therefore happens only through the two single-acquisition
// primitives: TryDebit (partial grant: take what is left) and TrySpend
// (all-or-nothing: exact amount or no spend). tools/cdb_analyze.py and the
// thread-safety annotations below make this class the repo's reference
// CDB_CAPABILITY pattern: every guarded member names its capability, public
// entry points declare CDB_EXCLUDES(mutex_), and the shared locked core is
// an AssertHeld-style CDB_REQUIRES helper.
#ifndef CDB_COST_LEDGER_H_
#define CDB_COST_LEDGER_H_

#include <cstdint>
#include <optional>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cdb {

class BudgetLedger {
 public:
  // No limit: every debit is granted in full.
  BudgetLedger() = default;
  explicit BudgetLedger(std::optional<int64_t> limit);
  BudgetLedger(const BudgetLedger&) = delete;
  BudgetLedger& operator=(const BudgetLedger&) = delete;

  [[nodiscard]] bool limited() const CDB_EXCLUDES(mutex_);

  // Tasks still grantable; nullopt when unlimited. Callers doing arithmetic
  // must handle the unlimited case explicitly — there is no sentinel to
  // overflow. Observational: the value may be stale by the time it is used;
  // never follow it with a spend (use TryDebit/TrySpend).
  [[nodiscard]] std::optional<int64_t> remaining() const CDB_EXCLUDES(mutex_);

  // True iff the ledger is limited and fully spent. The unlimited ledger is
  // never exhausted. Observational, like remaining().
  [[nodiscard]] bool Exhausted() const CDB_EXCLUDES(mutex_);

  // Grants min(want, remaining()) tasks (all of `want` when unlimited),
  // records the spend, and returns the granted count — test and spend under
  // one lock acquisition. `want` must be >= 0.
  int64_t TryDebit(int64_t want) CDB_EXCLUDES(mutex_);

  // All-or-nothing spend under one lock acquisition: debits exactly `amount`
  // iff the full amount is still grantable (always, when unlimited) and
  // returns true; otherwise spends nothing and returns false. The atomic
  // replacement for every Exhausted()/remaining()-then-spend sequence.
  // `amount` must be >= 0.
  [[nodiscard]] bool TrySpend(int64_t amount) CDB_EXCLUDES(mutex_);

  [[nodiscard]] int64_t spent() const CDB_EXCLUDES(mutex_);

 private:
  // Tasks still grantable under the lock; INT64_MAX when unlimited (internal
  // only — the public surface keeps the explicit nullopt contract).
  [[nodiscard]] int64_t RemainingLocked() const CDB_REQUIRES(mutex_);
  // Records a granted spend, saturating at INT64_MAX.
  void RecordSpendLocked(int64_t granted) CDB_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::optional<int64_t> limit_ CDB_GUARDED_BY(mutex_);
  int64_t spent_ CDB_GUARDED_BY(mutex_) = 0;
};

}  // namespace cdb

#endif  // CDB_COST_LEDGER_H_
