// Shared task-budget accounting (Section 5.1.3). A BudgetLedger is the one
// place budget is debited: a QuerySession draws its per-round publishes and
// retry reposts from its own ledger, and MultiQueryScheduler drives a global
// ledger shared by every session so concurrent queries cannot overspend a
// common budget. A ledger without a limit grants everything.
#ifndef CDB_COST_LEDGER_H_
#define CDB_COST_LEDGER_H_

#include <cstdint>
#include <optional>

namespace cdb {

class BudgetLedger {
 public:
  // No limit: every debit is granted in full.
  BudgetLedger() = default;
  explicit BudgetLedger(std::optional<int64_t> limit);

  [[nodiscard]] bool limited() const { return limit_.has_value(); }

  // Tasks still grantable; INT64_MAX when unlimited.
  [[nodiscard]] int64_t remaining() const;

  // Grants min(want, remaining()) tasks, records the spend, and returns the
  // granted count. `want` must be >= 0.
  int64_t TryDebit(int64_t want);

  [[nodiscard]] int64_t spent() const { return spent_; }

 private:
  std::optional<int64_t> limit_;
  int64_t spent_ = 0;
};

}  // namespace cdb

#endif  // CDB_COST_LEDGER_H_
