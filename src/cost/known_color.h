// Task selection when every edge color is known (Section 5.1.1). Used
// directly by the OptTree-style oracle analyses and per-sample by the
// sampling-based min-cut greedy (Section 5.1.2).
//
// Each selection has two implementations with byte-identical output: the
// legacy rebuild-per-call path (the identity oracle) and a cached path over
// precomputed color-independent structures (StarCache here, MinCutCache in
// flow/min_cut.h, both bundled by cost/structure_cache.h) that the sampler
// reuses across thousands of samples.
#ifndef CDB_COST_KNOWN_COLOR_H_
#define CDB_COST_KNOWN_COLOR_H_

#include <cstdint>
#include <vector>

#include "graph/query_graph.h"
#include "graph/structure.h"

namespace cdb {

// Returns the set of edges that must be asked to find all answers given the
// full coloring `colors` (every edge kBlue or kRed). Dispatches on the join
// structure: the dedicated per-center-tuple rule for stars, and the Lemma-1
// chain min-cut (after tree/graph -> chain transformation) otherwise.
std::vector<EdgeId> SelectTasksKnownColors(const QueryGraph& graph,
                                           const std::vector<EdgeColor>& colors);

// The star-join rule, exposed for testing: for each center tuple, if it has a
// BLUE edge to every leaf relation all its edges must be asked; otherwise ask
// only the leaf relation with the fewest (all-RED) edges. `rel_graph` must be
// BuildRelGraph(graph) — callers that already hold one pass it in instead of
// rebuilding it per call.
std::vector<EdgeId> StarSelection(const QueryGraph& graph,
                                  const RelGraph& rel_graph, int center_rel,
                                  const std::vector<EdgeColor>& colors);
// Convenience wrapper that builds the RelGraph itself.
std::vector<EdgeId> StarSelection(const QueryGraph& graph, int center_rel,
                                  const std::vector<EdgeColor>& colors);

// Color-independent skeleton of the star rule for one center relation: the
// per-(tuple, group) edge buckets and the per-neighbor member units, in the
// exact order the legacy construction enumerated them. Buckets drive both
// "ask all edges of t" and the cheapest-group tie-break (bucket sizes
// included), units drive group satisfaction; only the color tests remain
// per call.
struct StarCache {
  int center_rel = -1;
  int num_groups = 0;  // Adjacent groups of the center relation.
  std::vector<int32_t> group_pred_counts;  // Predicates per adjacent group.
  // Bucket of (tuple ti, group gi) lives at slot ti * num_groups + gi:
  // bucket_edges[bucket_offsets[slot] .. bucket_offsets[slot + 1]).
  std::vector<uint32_t> bucket_offsets;
  std::vector<EdgeId> bucket_edges;
  // Units of the same slot: unit_members[unit_offsets[slot] ..
  // unit_offsets[slot + 1]), each unit group_pred_counts[gi] consecutive
  // entries (kNoEdge = predicate has no edge to that neighbor).
  std::vector<uint32_t> unit_offsets;
  std::vector<EdgeId> unit_members;
};

StarCache BuildStarCache(const QueryGraph& graph, const RelGraph& rel_graph,
                         int center_rel);

// Cached star rule: fills `out` with the same (sorted, deduplicated) edge set
// as StarSelection. `out` is cleared first.
void StarSelection(const QueryGraph& graph, const StarCache& cache,
                   const std::vector<EdgeColor>& colors,
                   std::vector<EdgeId>* out);

}  // namespace cdb

#endif  // CDB_COST_KNOWN_COLOR_H_
