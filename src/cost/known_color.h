// Task selection when every edge color is known (Section 5.1.1). Used
// directly by the OptTree-style oracle analyses and per-sample by the
// sampling-based min-cut greedy (Section 5.1.2).
#ifndef CDB_COST_KNOWN_COLOR_H_
#define CDB_COST_KNOWN_COLOR_H_

#include <vector>

#include "graph/query_graph.h"
#include "graph/structure.h"

namespace cdb {

// Returns the set of edges that must be asked to find all answers given the
// full coloring `colors` (every edge kBlue or kRed). Dispatches on the join
// structure: the dedicated per-center-tuple rule for stars, and the Lemma-1
// chain min-cut (after tree/graph -> chain transformation) otherwise.
std::vector<EdgeId> SelectTasksKnownColors(const QueryGraph& graph,
                                           const std::vector<EdgeColor>& colors);

// The star-join rule, exposed for testing: for each center tuple, if it has a
// BLUE edge to every leaf relation all its edges must be asked; otherwise ask
// only the leaf relation with the fewest (all-RED) edges.
std::vector<EdgeId> StarSelection(const QueryGraph& graph, int center_rel,
                                  const std::vector<EdgeColor>& colors);

}  // namespace cdb

#endif  // CDB_COST_KNOWN_COLOR_H_
