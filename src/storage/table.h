// In-memory row-store table.
#ifndef CDB_STORAGE_TABLE_H_
#define CDB_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace cdb {

using Row = std::vector<Value>;

// A named relation: schema + rows. Tables created with CREATE CROWD TABLE are
// marked crowd tables (COLLECT may append rows to them).
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema, bool is_crowd_table = false)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        is_crowd_table_(is_crowd_table) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  bool is_crowd_table() const { return is_crowd_table_; }

  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  Row& mutable_row(size_t i) { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  // Appends a row after checking arity and (loose) type compatibility:
  // NULL/CNULL fit any column; ints fit double columns.
  Status AppendRow(Row row);

  // Cell accessors by column name; errors on unknown column.
  Result<Value> GetCell(size_t row, const std::string& column) const;
  Status SetCell(size_t row, const std::string& column, Value value);

  // Extracts an entire string column (missing cells become empty strings).
  // The graph builder uses this to run similarity joins per predicate.
  Result<std::vector<std::string>> StringColumn(const std::string& column) const;

  // Row indexes whose `column` cell is CNULL — the FILL work list.
  Result<std::vector<size_t>> CrowdMissingRows(const std::string& column) const;

 private:
  std::string name_;
  Schema schema_;
  bool is_crowd_table_ = false;
  std::vector<Row> rows_;
};

}  // namespace cdb

#endif  // CDB_STORAGE_TABLE_H_
