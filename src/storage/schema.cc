#include "storage/schema.h"

#include "common/string_util.h"

namespace cdb {

Result<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += ValueTypeName(columns_[i].type);
    if (columns_[i].is_crowd) out += " CROWD";
  }
  out += ')';
  return out;
}

}  // namespace cdb
