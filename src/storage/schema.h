// Table schemas. A column may be declared CROWD (its missing values are
// candidates for FILL), and a whole table may be a CROWD table (its rows are
// candidates for COLLECT) — CQL DDL, Appendix A.
#ifndef CDB_STORAGE_SCHEMA_H_
#define CDB_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace cdb {

struct Column {
  std::string name;
  ValueType type = ValueType::kString;
  bool is_crowd = false;  // Declared with the CROWD keyword in CQL DDL.
};

// An ordered list of named columns. Column names are case-insensitive.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  // Index of the column with the given (case-insensitive) name, or error.
  Result<size_t> FindColumn(const std::string& name) const;

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  // Human-readable rendering, e.g. "(name STRING CROWD, city STRING)".
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace cdb

#endif  // CDB_STORAGE_SCHEMA_H_
