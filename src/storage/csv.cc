#include "storage/csv.h"

#include <cstdlib>

#include "common/string_util.h"

namespace cdb {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

Result<Value> ParseCell(const std::string& text, ValueType type) {
  if (text == "CNULL") return Value::CNull();
  switch (type) {
    case ValueType::kString:
      return Value::Str(text);
    case ValueType::kInt64: {
      if (text.empty()) return Value::Null();
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError("bad integer literal: '" + text + "'");
      }
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      if (text.empty()) return Value::Null();
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError("bad double literal: '" + text + "'");
      }
      return Value::Real(v);
    }
    default:
      return Status::InvalidArgument("unsupported column type in CSV");
  }
}

}  // namespace

Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      if (!cur.empty()) return Status::ParseError("quote inside unquoted field");
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  fields.push_back(std::move(cur));
  return fields;
}

namespace {

// Splits CSV text into records, honoring quoted fields (which may contain
// newlines — the reason a plain line split is not enough).
std::vector<std::string> SplitCsvRecords(const std::string& text) {
  std::vector<std::string> records;
  std::string current;
  bool in_quotes = false;
  for (char c : text) {
    if (c == '"') {
      in_quotes = !in_quotes;  // Doubled quotes toggle twice: net unchanged.
      current.push_back(c);
    } else if (c == '\n' && !in_quotes) {
      records.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) records.push_back(std::move(current));
  return records;
}

}  // namespace

Result<Table> TableFromCsv(const std::string& name, const Schema& schema,
                           const std::string& csv_text) {
  std::vector<std::string> lines = SplitCsvRecords(csv_text);
  // Drop a trailing empty line from a final newline.
  while (!lines.empty() && Trim(lines.back()).empty()) lines.pop_back();
  if (lines.empty()) return Status::ParseError("empty CSV input");

  CDB_ASSIGN_OR_RETURN(std::vector<std::string> header, ParseCsvLine(lines[0]));
  if (header.size() != schema.num_columns()) {
    return Status::ParseError(
        StrPrintf("CSV header has %zu fields, schema has %zu columns",
                  header.size(), schema.num_columns()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (!EqualsIgnoreCase(Trim(header[i]), schema.column(i).name)) {
      return Status::ParseError("CSV header field '" + header[i] +
                                "' does not match column '" +
                                schema.column(i).name + "'");
    }
  }

  Table table(name, schema);
  for (size_t li = 1; li < lines.size(); ++li) {
    CDB_ASSIGN_OR_RETURN(std::vector<std::string> fields, ParseCsvLine(lines[li]));
    if (fields.size() != schema.num_columns()) {
      return Status::ParseError(StrPrintf("CSV line %zu has %zu fields, want %zu",
                                          li + 1, fields.size(),
                                          schema.num_columns()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      CDB_ASSIGN_OR_RETURN(Value v, ParseCell(fields[c], schema.column(c).type));
      row.push_back(std::move(v));
    }
    CDB_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

std::string TableToCsv(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out += ',';
    out += QuoteField(schema.column(i).name);
  }
  out += '\n';
  for (const Row& row : table.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      if (row[i].is_null()) {
        // NULL renders as an empty field.
      } else {
        out += QuoteField(row[i].ToString());
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace cdb
