#include "storage/value.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace cdb {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kCNull:
      return "CNULL";
    case ValueType::kInt64:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

int64_t Value::AsInt() const {
  CDB_CHECK(type_ == ValueType::kInt64);
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  if (type_ == ValueType::kInt64) return static_cast<double>(std::get<int64_t>(data_));
  CDB_CHECK(type_ == ValueType::kDouble);
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  CDB_CHECK(type_ == ValueType::kString);
  return std::get<std::string>(data_);
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kCNull:
      return "CNULL";
    case ValueType::kInt64:
      return StrPrintf("%lld", static_cast<long long>(std::get<int64_t>(data_)));
    case ValueType::kDouble:
      return StrPrintf("%g", std::get<double>(data_));
    case ValueType::kString:
      return std::get<std::string>(data_);
  }
  return "?";
}

bool Value::SqlEquals(const Value& other) const {
  if (is_missing() || other.is_missing()) return false;
  if (type_ == other.type_) return data_ == other.data_;
  // Numeric promotion.
  bool a_num = type_ == ValueType::kInt64 || type_ == ValueType::kDouble;
  bool b_num = other.type_ == ValueType::kInt64 || other.type_ == ValueType::kDouble;
  if (a_num && b_num) return AsDouble() == other.AsDouble();
  return false;
}

bool operator==(const Value& a, const Value& b) {
  return a.type_ == b.type_ && a.data_ == b.data_;
}

}  // namespace cdb
