#include "storage/table.h"

#include "common/string_util.h"

namespace cdb {
namespace {

bool TypeFits(const Value& v, ValueType column_type) {
  if (v.is_missing()) return true;
  if (v.type() == column_type) return true;
  // Allow int literals in double columns.
  return v.type() == ValueType::kInt64 && column_type == ValueType::kDouble;
}

}  // namespace

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(StrPrintf(
        "table %s: row has %zu values, schema has %zu columns", name_.c_str(),
        row.size(), schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!TypeFits(row[i], schema_.column(i).type)) {
      return Status::InvalidArgument(StrPrintf(
          "table %s column %s: value type %s does not fit column type %s",
          name_.c_str(), schema_.column(i).name.c_str(),
          ValueTypeName(row[i].type()), ValueTypeName(schema_.column(i).type)));
    }
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

Result<Value> Table::GetCell(size_t row, const std::string& column) const {
  CDB_ASSIGN_OR_RETURN(size_t col, schema_.FindColumn(column));
  if (row >= rows_.size()) {
    return Status::OutOfRange(StrPrintf("row %zu out of range (table %s has %zu rows)",
                                        row, name_.c_str(), rows_.size()));
  }
  return rows_[row][col];
}

Status Table::SetCell(size_t row, const std::string& column, Value value) {
  CDB_ASSIGN_OR_RETURN(size_t col, schema_.FindColumn(column));
  if (row >= rows_.size()) {
    return Status::OutOfRange(StrPrintf("row %zu out of range (table %s has %zu rows)",
                                        row, name_.c_str(), rows_.size()));
  }
  if (!TypeFits(value, schema_.column(col).type)) {
    return Status::InvalidArgument("value type does not fit column type");
  }
  rows_[row][col] = std::move(value);
  return Status::Ok();
}

Result<std::vector<std::string>> Table::StringColumn(
    const std::string& column) const {
  CDB_ASSIGN_OR_RETURN(size_t col, schema_.FindColumn(column));
  std::vector<std::string> out;
  out.reserve(rows_.size());
  for (const Row& row : rows_) {
    const Value& v = row[col];
    out.push_back(v.is_missing() ? std::string() : v.ToString());
  }
  return out;
}

Result<std::vector<size_t>> Table::CrowdMissingRows(
    const std::string& column) const {
  CDB_ASSIGN_OR_RETURN(size_t col, schema_.FindColumn(column));
  std::vector<size_t> out;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i][col].is_cnull()) out.push_back(i);
  }
  return out;
}

}  // namespace cdb
