#include "storage/persist.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "storage/csv.h"

namespace cdb {
namespace {

namespace fs = std::filesystem;

Result<ValueType> TypeFromName(const std::string& name) {
  if (name == "STRING") return ValueType::kString;
  if (name == "INT") return ValueType::kInt64;
  if (name == "DOUBLE") return ValueType::kDouble;
  return Status::ParseError("unknown column type '" + name + "'");
}

Status WriteFile(const fs::path& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write " + path.string());
  out << contents;
  return out.good() ? Status::Ok() : Status::Internal("write failed: " + path.string());
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::string SchemaToText(const Table& table) {
  std::string out;
  if (table.is_crowd_table()) out += "CROWD TABLE\n";
  for (const Column& column : table.schema().columns()) {
    out += column.name;
    out += '|';
    out += ValueTypeName(column.type);
    if (column.is_crowd) out += "|CROWD";
    out += '\n';
  }
  return out;
}

Result<Table> TableFromText(const std::string& name,
                            const std::string& schema_text,
                            const std::string& csv_text) {
  Schema schema;
  bool crowd_table = false;
  for (const std::string& raw : Split(schema_text, '\n')) {
    std::string line = Trim(raw);
    if (line.empty()) continue;
    if (line == "CROWD TABLE") {
      crowd_table = true;
      continue;
    }
    std::vector<std::string> parts = Split(line, '|');
    if (parts.size() < 2 || parts.size() > 3) {
      return Status::ParseError("bad schema line: '" + line + "'");
    }
    Column column;
    column.name = Trim(parts[0]);
    CDB_ASSIGN_OR_RETURN(column.type, TypeFromName(Trim(parts[1])));
    column.is_crowd = parts.size() == 3 && Trim(parts[2]) == "CROWD";
    schema.AddColumn(std::move(column));
  }
  if (schema.num_columns() == 0) {
    return Status::ParseError("schema for '" + name + "' has no columns");
  }
  CDB_ASSIGN_OR_RETURN(Table parsed, TableFromCsv(name, schema, csv_text));
  // TableFromCsv has no crowd-table notion; rebuild with the flag.
  Table table(name, schema, crowd_table);
  for (const Row& row : parsed.rows()) {
    CDB_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

Status SaveCatalog(const Catalog& catalog, const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) return Status::Internal("cannot create directory " + directory);
  for (const std::string& name : catalog.TableNames()) {
    CDB_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(name));
    fs::path base = fs::path(directory) / name;
    CDB_RETURN_IF_ERROR(WriteFile(base.string() + ".schema", SchemaToText(*table)));
    CDB_RETURN_IF_ERROR(WriteFile(base.string() + ".csv", TableToCsv(*table)));
  }
  return Status::Ok();
}

Result<Catalog> LoadCatalog(const std::string& directory) {
  Catalog catalog;
  std::error_code ec;
  fs::directory_iterator it(directory, ec);
  if (ec) return Status::NotFound("cannot open directory " + directory);
  for (const fs::directory_entry& entry : it) {
    if (entry.path().extension() != ".schema") continue;
    std::string name = entry.path().stem().string();
    CDB_ASSIGN_OR_RETURN(std::string schema_text, ReadFile(entry.path()));
    fs::path csv_path = entry.path();
    csv_path.replace_extension(".csv");
    CDB_ASSIGN_OR_RETURN(std::string csv_text, ReadFile(csv_path));
    CDB_ASSIGN_OR_RETURN(Table table, TableFromText(name, schema_text, csv_text));
    CDB_RETURN_IF_ERROR(catalog.AddTable(std::move(table)));
  }
  return catalog;
}

}  // namespace cdb
