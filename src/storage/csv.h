// CSV import/export so datasets can be inspected and external data loaded.
// Supports RFC-4180-style quoting; the literal cell "CNULL" loads as a
// crowd-null and "" as SQL NULL in non-string columns.
#ifndef CDB_STORAGE_CSV_H_
#define CDB_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace cdb {

// Parses CSV text into a table with the given name and schema. The first
// line must be a header matching the schema's column names (case-insensitive,
// any order is NOT allowed — order must match).
Result<Table> TableFromCsv(const std::string& name, const Schema& schema,
                           const std::string& csv_text);

// Renders a table as CSV (header + rows).
std::string TableToCsv(const Table& table);

// Splits one CSV record into fields, honoring double-quote quoting.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line);

}  // namespace cdb

#endif  // CDB_STORAGE_CSV_H_
