// The catalog owns all tables in a CDB database instance.
#ifndef CDB_STORAGE_CATALOG_H_
#define CDB_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace cdb {

// Name → Table map with case-insensitive lookup. Owns the tables.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  // Registers a table; fails if a table with the same name exists.
  Status AddTable(Table table);

  [[nodiscard]] bool HasTable(const std::string& name) const;
  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetMutableTable(const std::string& name);

  Status DropTable(const std::string& name);

  // Table names in insertion order.
  std::vector<std::string> TableNames() const;

 private:
  // Keyed by lowercased name; Table keeps the original-case name.
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> insertion_order_;
};

}  // namespace cdb

#endif  // CDB_STORAGE_CATALOG_H_
