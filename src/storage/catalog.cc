#include "storage/catalog.h"

#include <algorithm>

#include "common/string_util.h"

namespace cdb {

Status Catalog::AddTable(Table table) {
  std::string key = ToLower(table.name());
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + table.name() + "' already exists");
  }
  insertion_order_.push_back(table.name());
  tables_.emplace(std::move(key), std::make_unique<Table>(std::move(table)));
  return Status::Ok();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

Result<Table*> Catalog::GetMutableTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  std::string original = it->second->name();
  tables_.erase(it);
  insertion_order_.erase(
      std::remove(insertion_order_.begin(), insertion_order_.end(), original),
      insertion_order_.end());
  return Status::Ok();
}

std::vector<std::string> Catalog::TableNames() const { return insertion_order_; }

}  // namespace cdb
