// Cell values. CDB is a crowd database: a cell may hold CNULL, the marker the
// CQL DDL uses for "this value must be crowdsourced" (Appendix A.1), which is
// distinct from SQL NULL.
#ifndef CDB_STORAGE_VALUE_H_
#define CDB_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace cdb {

enum class ValueType : uint8_t {
  kNull,    // SQL NULL.
  kCNull,   // Crowd-null: to be filled by the crowd (CQL's CNULL).
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType type);

// A dynamically typed cell value with value semantics.
class Value {
 public:
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value CNull() {
    Value v;
    v.type_ = ValueType::kCNull;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.type_ = ValueType::kInt64;
    v.data_ = i;
    return v;
  }
  static Value Real(double d) {
    Value v;
    v.type_ = ValueType::kDouble;
    v.data_ = d;
    return v;
  }
  static Value Str(std::string s) {
    Value v;
    v.type_ = ValueType::kString;
    v.data_ = std::move(s);
    return v;
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_cnull() const { return type_ == ValueType::kCNull; }
  bool is_missing() const { return is_null() || is_cnull(); }

  // Typed accessors; calling the wrong one aborts (programmer error).
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  // Best-effort string rendering for any type ("NULL", "CNULL", numbers,
  // or the raw string). Used by CSV export and result printing.
  std::string ToString() const;

  // SQL-style equality: missing values compare unequal to everything
  // (including other missing values). Numeric cross-type comparison promotes
  // ints to double.
  [[nodiscard]] bool SqlEquals(const Value& other) const;

  // Exact structural equality (type and payload), used by tests and maps.
  friend bool operator==(const Value& a, const Value& b);

 private:
  ValueType type_;
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace cdb

#endif  // CDB_STORAGE_VALUE_H_
