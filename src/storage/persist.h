// Catalog persistence: save/load every table to a directory as
// `<table>.schema` (one "name|TYPE[|CROWD]" line per column, first line
// optionally "CROWD TABLE") plus `<table>.csv` (see csv.h). Keeps the
// benchmark datasets inspectable and lets embedders ship data with their
// binaries.
#ifndef CDB_STORAGE_PERSIST_H_
#define CDB_STORAGE_PERSIST_H_

#include <string>

#include "common/status.h"
#include "storage/catalog.h"

namespace cdb {

// Writes every table of `catalog` into `directory` (created if missing).
Status SaveCatalog(const Catalog& catalog, const std::string& directory);

// Loads every `<name>.schema` + `<name>.csv` pair found in `directory`.
Result<Catalog> LoadCatalog(const std::string& directory);

// Schema (de)serialization, exposed for tests.
std::string SchemaToText(const Table& table);
Result<Table> TableFromText(const std::string& name,
                            const std::string& schema_text,
                            const std::string& csv_text);

}  // namespace cdb

#endif  // CDB_STORAGE_PERSIST_H_
