// The Lemma-1 flow construction (Section 5.1.1): with every edge color known,
// the edges worth asking are (a) the edges on all-BLUE chains — they are in
// answers and cannot be inferred — and (b) the RED edges of a minimum cut of
// a layered flow network in which BLUE edges have infinite capacity. Every
// other edge can be pruned.
//
// The network is built over a ChainPlan, so trees and cyclic queries reuse
// the construction after the Section-5.1.1 chain transformation (at the cost
// of duplicated relation occurrences, exactly as in the paper).
#ifndef CDB_FLOW_MIN_CUT_H_
#define CDB_FLOW_MIN_CUT_H_

#include <vector>

#include "graph/query_graph.h"
#include "graph/structure.h"

namespace cdb {

// Output of the known-color chain selection.
struct ChainSelection {
  std::vector<EdgeId> blue_chain_edges;  // Must ask: they form the answers.
  std::vector<EdgeId> cut_edges;         // Must ask: RED edges of the min cut.

  std::vector<EdgeId> AllEdges() const {
    std::vector<EdgeId> all = blue_chain_edges;
    all.insert(all.end(), cut_edges.begin(), cut_edges.end());
    return all;
  }
};

// Runs the Lemma-1 selection. `colors[e]` supplies the (known or sampled)
// color of every edge and must be kBlue or kRed for each edge of the graph.
ChainSelection ChainMinCutSelection(const QueryGraph& graph,
                                    const ChainPlan& plan,
                                    const std::vector<EdgeColor>& colors);

}  // namespace cdb

#endif  // CDB_FLOW_MIN_CUT_H_
