// The Lemma-1 flow construction (Section 5.1.1): with every edge color known,
// the edges worth asking are (a) the edges on all-BLUE chains — they are in
// answers and cannot be inferred — and (b) the RED edges of a minimum cut of
// a layered flow network in which BLUE edges have infinite capacity. Every
// other edge can be pruned.
//
// The network is built over a ChainPlan, so trees and cyclic queries reuse
// the construction after the Section-5.1.1 chain transformation (at the cost
// of duplicated relation occurrences, exactly as in the paper).
//
// Two entry points share the construction:
//  - ChainMinCutSelection(graph, plan, colors): the legacy rebuild-per-call
//    oracle — re-derives the layer pairs and allocates fresh scratch every
//    call. Retained as the identity reference for the cached path.
//  - ChainMinCutSelection(graph, cache, colors, arena, out): the flat path.
//    The color-independent skeleton (combined layer pairs, member CSR, layer
//    sizes) comes from a MinCutCache built once per graph; all per-call
//    scratch lives in a caller-owned FlowArena that is reset, not
//    reallocated, between calls. Output is byte-identical to the oracle.
#ifndef CDB_FLOW_MIN_CUT_H_
#define CDB_FLOW_MIN_CUT_H_

#include <cstdint>
#include <vector>

#include "flow/dinic.h"
#include "graph/query_graph.h"
#include "graph/structure.h"

namespace cdb {

// Output of the known-color chain selection.
struct ChainSelection {
  std::vector<EdgeId> blue_chain_edges;  // Must ask: they form the answers.
  std::vector<EdgeId> cut_edges;         // Must ask: RED edges of the min cut.

  std::vector<EdgeId> AllEdges() const {
    std::vector<EdgeId> all = blue_chain_edges;
    all.insert(all.end(), cut_edges.begin(), cut_edges.end());
    return all;
  }
};

// The color-independent skeleton of the Lemma-1 network for one ChainPlan:
// every combined tuple pair between adjacent layers, in the exact
// deterministic order the legacy construction enumerated them, with member
// edges in a flat CSR. Built once per graph; reused across samples/rounds.
struct MinCutCache {
  size_t m = 0;                    // Number of chain occurrences.
  std::vector<int32_t> layer_sizes;  // Tuples per occurrence layer (size m).
  std::vector<int32_t> layer_offsets;  // Prefix sums of layer_sizes (m + 1).
  // Pairs for layer boundary i occupy [pair_offsets[i], pair_offsets[i+1]).
  std::vector<uint32_t> pair_offsets;  // Size m (empty graph: size 0).
  std::vector<int32_t> pair_a_idx;     // Per pair: position in layer i.
  std::vector<int32_t> pair_b_idx;     // Per pair: position in layer i + 1.
  // Member edges of pair p: member_edges[member_offsets[p] ..
  // member_offsets[p + 1]), in group-predicate order.
  std::vector<uint32_t> member_offsets;
  std::vector<EdgeId> member_edges;

  size_t num_pairs() const { return pair_a_idx.size(); }
};

// Builds the skeleton. `rel_graph` must be BuildRelGraph(graph) and `plan`
// BuildChainPlan(graph) (the caller typically caches all three together).
MinCutCache BuildMinCutCache(const QueryGraph& graph,
                             const RelGraph& rel_graph, const ChainPlan& plan);

// Reusable per-call scratch for the cached ChainMinCutSelection. Vectors are
// resized (capacity kept) on every call; a default-constructed arena and a
// reused one produce byte-identical results.
struct FlowArena {
  std::vector<uint8_t> pair_red;       // Per pair: has a RED member.
  std::vector<EdgeId> pair_red_member; // First RED member (kNoEdge if none).
  std::vector<uint8_t> forward;        // Per occurrence: blue path from layer 0.
  std::vector<uint8_t> backward;       // Per occurrence: blue path to layer m-1.
  std::vector<uint8_t> edge_taken;     // Per edge: already emitted.
  std::vector<uint8_t> pair_is_b;      // Per pair: on a complete blue chain.
  std::vector<int32_t> left_node;      // Per occurrence: flow node ids.
  std::vector<int32_t> right_node;
  std::vector<int32_t> red_arc_ids;    // Red arcs, paired with red_arc_pairs.
  std::vector<int32_t> red_arc_pairs;
  std::vector<uint8_t> source_side;    // Residual reachability per node.
  MaxFlow flow;
};

// Runs the Lemma-1 selection. `colors[e]` supplies the (known or sampled)
// color of every edge and must be kBlue or kRed for each edge of the graph.
// Legacy rebuild-per-call oracle.
ChainSelection ChainMinCutSelection(const QueryGraph& graph,
                                    const ChainPlan& plan,
                                    const std::vector<EdgeColor>& colors);

// Flat cached path: appends the selection to `out` in the same order as
// ChainSelection::AllEdges() (blue-chain edges, then cut edges).
void ChainMinCutSelection(const QueryGraph& graph, const MinCutCache& cache,
                          const std::vector<EdgeColor>& colors,
                          FlowArena* arena, std::vector<EdgeId>* out);

}  // namespace cdb

#endif  // CDB_FLOW_MIN_CUT_H_
