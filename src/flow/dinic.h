// Dinic's max-flow algorithm. Used to compute the min cut of the Lemma-1
// flow network (Section 5.1.1): blue edges get infinite capacity, red edges
// capacity 1, so the min cut is the smallest set of RED edges refuting every
// alternative chain.
//
// Arcs live in a flat array and per-node adjacency is a CSR index built
// count-then-fill on first Compute(). The blocking-flow DFS walks each
// node's arcs in reverse insertion order — the exact order the previous
// head-inserted intrusive list produced — so augmenting paths, residual
// capacities, and therefore the reported min cut are unchanged. Reset()
// reuses every buffer's capacity, so a caller running many flows of similar
// size (the per-sample selection loop) allocates only on the first.
#ifndef CDB_FLOW_DINIC_H_
#define CDB_FLOW_DINIC_H_

#include <cstdint>
#include <vector>

namespace cdb {

class MaxFlow {
 public:
  explicit MaxFlow(int num_nodes = 0) : num_nodes_(num_nodes) {}

  // Drops all nodes and arcs and starts over with `num_nodes` nodes, keeping
  // the underlying buffer capacity (reset-not-rebuild).
  void Reset(int num_nodes);

  int num_nodes() const { return num_nodes_; }

  // Adds a node and returns its id.
  int AddNode() { return num_nodes_++; }

  // Adds a directed arc with the given capacity; returns the arc id. The
  // reverse (residual) arc is id ^ 1.
  int AddArc(int from, int to, int64_t capacity);

  // Runs Dinic from s to t; returns the max-flow value. May be called once
  // per Reset().
  int64_t Compute(int s, int t);

  // After Compute: nodes reachable from s in the residual network (the
  // source side of a min cut).
  std::vector<bool> SourceSide(int s) const;
  // Same, into a caller-reused buffer (resized to num_nodes, values 0/1).
  void SourceSideInto(int s, std::vector<uint8_t>* reachable) const;

  int arc_from(int id) const { return arcs_[id ^ 1].to; }
  int arc_to(int id) const { return arcs_[id].to; }
  int64_t arc_capacity(int id) const { return arcs_[id].original_capacity; }
  int64_t arc_flow(int id) const {
    return arcs_[id].original_capacity - arcs_[id].capacity;
  }

 private:
  struct Arc {
    int to = 0;
    int64_t capacity = 0;
    int64_t original_capacity = 0;
  };

  // Builds the CSR adjacency (arc ids per node, insertion order).
  void BuildIndex();
  [[nodiscard]] bool Bfs(int s, int t);
  int64_t Dfs(int v, int t, int64_t limit);

  int num_nodes_ = 0;
  bool indexed_ = false;
  std::vector<Arc> arcs_;
  // CSR: arc ids out of node v are csr_arcs_[node_offsets_[v] ..
  // node_offsets_[v + 1]), ascending id = insertion order. The DFS walks
  // them descending to match the legacy head-inserted list.
  std::vector<uint32_t> node_offsets_;
  std::vector<int32_t> csr_arcs_;
  std::vector<int32_t> level_;
  // Per-node DFS cursor: absolute index into csr_arcs_, walked downward.
  std::vector<int32_t> iter_;
  std::vector<int32_t> queue_;
};

}  // namespace cdb

#endif  // CDB_FLOW_DINIC_H_
