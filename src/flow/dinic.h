// Dinic's max-flow algorithm. Used to compute the min cut of the Lemma-1
// flow network (Section 5.1.1): blue edges get infinite capacity, red edges
// capacity 1, so the min cut is the smallest set of RED edges refuting every
// alternative chain.
#ifndef CDB_FLOW_DINIC_H_
#define CDB_FLOW_DINIC_H_

#include <cstdint>
#include <vector>

namespace cdb {

class MaxFlow {
 public:
  explicit MaxFlow(int num_nodes) : head_(num_nodes, -1) {}

  int num_nodes() const { return static_cast<int>(head_.size()); }

  // Adds a node and returns its id.
  int AddNode() {
    head_.push_back(-1);
    return num_nodes() - 1;
  }

  // Adds a directed arc with the given capacity; returns the arc id. The
  // reverse (residual) arc is id ^ 1.
  int AddArc(int from, int to, int64_t capacity);

  // Runs Dinic from s to t; returns the max-flow value. May be called once.
  int64_t Compute(int s, int t);

  // After Compute: nodes reachable from s in the residual network (the
  // source side of a min cut).
  std::vector<bool> SourceSide(int s) const;

  int arc_from(int id) const { return arcs_[id ^ 1].to; }
  int arc_to(int id) const { return arcs_[id].to; }
  int64_t arc_capacity(int id) const { return arcs_[id].original_capacity; }
  int64_t arc_flow(int id) const {
    return arcs_[id].original_capacity - arcs_[id].capacity;
  }

 private:
  struct Arc {
    int to = 0;
    int next = -1;  // Next arc out of the same node (intrusive list).
    int64_t capacity = 0;
    int64_t original_capacity = 0;
  };

  [[nodiscard]] bool Bfs(int s, int t);
  int64_t Dfs(int v, int t, int64_t limit);

  std::vector<Arc> arcs_;
  std::vector<int> head_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

}  // namespace cdb

#endif  // CDB_FLOW_DINIC_H_
