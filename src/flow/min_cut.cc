#include "flow/min_cut.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/logging.h"
#include "flow/dinic.h"

namespace cdb {
namespace {

// A combined tuple pair between adjacent layers: one member edge per
// predicate of the connecting group.
struct LayerPair {
  int layer = 0;  // Between occurrence `layer` and `layer + 1`.
  int a_idx = 0;  // Position within layer_vertices[layer].
  int b_idx = 0;  // Position within layer_vertices[layer + 1].
  std::vector<EdgeId> members;
  bool red = false;
  EdgeId red_member = kNoEdge;
};

}  // namespace

ChainSelection ChainMinCutSelection(const QueryGraph& graph,
                                    const ChainPlan& plan,
                                    const std::vector<EdgeColor>& colors) {
  CDB_CHECK_EQ(colors.size(), static_cast<size_t>(graph.num_edges()));
  const size_t m = plan.occ_rel.size();
  ChainSelection out;
  if (m < 2) return out;

  RelGraph rel_graph = BuildRelGraph(graph);

  // Position of each vertex within its relation's vertex list.
  std::unordered_map<VertexId, int> pos;
  for (int rel = 0; rel < graph.num_relations(); ++rel) {
    const auto& vs = graph.relation_vertices(rel);
    for (size_t i = 0; i < vs.size(); ++i) pos[vs[i]] = static_cast<int>(i);
  }
  auto layer_size = [&](size_t i) {
    return graph.relation_vertices(plan.occ_rel[i]).size();
  };

  // Build combined pairs per layer boundary.
  std::vector<LayerPair> pairs;
  std::vector<std::vector<int>> pairs_at(m - 1);
  for (size_t i = 0; i + 1 < m; ++i) {
    const RelGraph::Group& group = rel_graph.groups[plan.occ_group[i]];
    const int rel_a = plan.occ_rel[i];
    std::map<std::pair<int, int>, std::vector<EdgeId>> by_pair;
    for (int p : group.preds) {
      // Enumerate the predicate's edges once via the smaller relation side.
      for (VertexId v : graph.relation_vertices(rel_a)) {
        for (EdgeId e : graph.IncidentEdges(v, p)) {
          VertexId w = graph.Opposite(e, v);
          by_pair[{pos[v], pos[w]}].push_back(e);
        }
      }
    }
    for (auto& [key, members] : by_pair) {
      if (members.size() != group.preds.size()) continue;
      LayerPair pair;
      pair.layer = static_cast<int>(i);
      pair.a_idx = key.first;
      pair.b_idx = key.second;
      pair.members = members;
      for (EdgeId e : members) {
        if (colors[e] == EdgeColor::kRed) {
          pair.red = true;
          pair.red_member = e;
          break;
        }
      }
      pairs_at[i].push_back(static_cast<int>(pairs.size()));
      pairs.push_back(std::move(pair));
    }
  }

  // BLUE-chain DP: forward[i][idx] = a blue path reaches this occurrence from
  // layer 0; backward = it reaches layer m-1.
  std::vector<std::vector<uint8_t>> forward(m), backward(m);
  for (size_t i = 0; i < m; ++i) {
    forward[i].assign(layer_size(i), 0);
    backward[i].assign(layer_size(i), 0);
  }
  std::fill(forward[0].begin(), forward[0].end(), 1);
  std::fill(backward[m - 1].begin(), backward[m - 1].end(), 1);
  for (size_t i = 0; i + 1 < m; ++i) {
    for (int pid : pairs_at[i]) {
      const LayerPair& pair = pairs[pid];
      if (!pair.red && forward[i][pair.a_idx]) forward[i + 1][pair.b_idx] = 1;
    }
  }
  for (size_t i = m - 1; i-- > 0;) {
    for (int pid : pairs_at[i]) {
      const LayerPair& pair = pairs[pid];
      if (!pair.red && backward[i + 1][pair.b_idx]) backward[i][pair.a_idx] = 1;
    }
  }

  // B-edges: members of blue pairs lying on a complete blue chain.
  std::vector<uint8_t> edge_taken(graph.num_edges(), 0);
  std::vector<uint8_t> pair_is_b(pairs.size(), 0);
  for (size_t pid = 0; pid < pairs.size(); ++pid) {
    const LayerPair& pair = pairs[pid];
    if (pair.red) continue;
    if (forward[pair.layer][pair.a_idx] && backward[pair.layer + 1][pair.b_idx]) {
      pair_is_b[pid] = 1;
      for (EdgeId e : pair.members) {
        if (!edge_taken[e]) {
          edge_taken[e] = 1;
          out.blue_chain_edges.push_back(e);
        }
      }
    }
  }

  // Flow network. Each occurrence vertex has a left node (incoming arcs) and
  // a right node (outgoing arcs); they coincide unless the vertex is on a
  // blue chain, in which case the copies are detached and wired to s / t so
  // every red deviation from the blue chain forms an s-t path (Lemma 1).
  int64_t num_red = 0;
  for (const LayerPair& pair : pairs) num_red += pair.red ? 1 : 0;
  const int64_t kInf = num_red + 1;

  MaxFlow flow(0);
  const int s = flow.AddNode();
  const int t = flow.AddNode();
  std::vector<std::vector<int>> left_node(m), right_node(m);
  for (size_t i = 0; i < m; ++i) {
    left_node[i].resize(layer_size(i));
    right_node[i].resize(layer_size(i));
    for (size_t idx = 0; idx < layer_size(i); ++idx) {
      bool on_blue_chain = forward[i][idx] && backward[i][idx];
      int left = flow.AddNode();
      int right = on_blue_chain ? flow.AddNode() : left;
      left_node[i][idx] = left;
      right_node[i][idx] = right;
      if (on_blue_chain) {
        flow.AddArc(s, right, kInf);
        flow.AddArc(left, t, kInf);
      }
      if (i == 0) flow.AddArc(s, right, kInf);
      if (i == m - 1) flow.AddArc(left, t, kInf);
    }
  }
  std::vector<std::pair<int, int>> red_arc_to_pair;  // (arc id, pair id).
  for (size_t pid = 0; pid < pairs.size(); ++pid) {
    const LayerPair& pair = pairs[pid];
    if (pair_is_b[pid]) continue;  // Blue-chain edges are removed.
    int from = right_node[pair.layer][pair.a_idx];
    int to = left_node[pair.layer + 1][pair.b_idx];
    int arc = flow.AddArc(from, to, pair.red ? 1 : kInf);
    if (pair.red) red_arc_to_pair.push_back({arc, static_cast<int>(pid)});
  }

  flow.Compute(s, t);
  std::vector<bool> source_side = flow.SourceSide(s);
  for (auto [arc, pid] : red_arc_to_pair) {
    if (source_side[flow.arc_from(arc)] && !source_side[flow.arc_to(arc)]) {
      EdgeId e = pairs[pid].red_member;
      if (!edge_taken[e]) {
        edge_taken[e] = 1;
        out.cut_edges.push_back(e);
      }
    }
  }
  return out;
}

}  // namespace cdb
