#include "flow/min_cut.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "flow/dinic.h"

namespace cdb {
namespace {

// A combined tuple pair between adjacent layers: one member edge per
// predicate of the connecting group. Used only by the legacy oracle path;
// the cached path keeps the same data in MinCutCache's flat arrays.
struct LayerPair {
  int layer = 0;  // Between occurrence `layer` and `layer + 1`.
  int a_idx = 0;  // Position within layer_vertices[layer].
  int b_idx = 0;  // Position within layer_vertices[layer + 1].
  std::vector<EdgeId> members;
  bool red = false;
  EdgeId red_member = kNoEdge;
};

}  // namespace

ChainSelection ChainMinCutSelection(const QueryGraph& graph,
                                    const ChainPlan& plan,
                                    const std::vector<EdgeColor>& colors) {
  CDB_CHECK_EQ(colors.size(), static_cast<size_t>(graph.num_edges()));
  const size_t m = plan.occ_rel.size();
  ChainSelection out;
  if (m < 2) return out;

  RelGraph rel_graph = BuildRelGraph(graph);

  auto layer_size = [&](size_t i) {
    return graph.relation_vertices(plan.occ_rel[i]).size();
  };

  // Build combined pairs per layer boundary. Pairs are keyed by the dense
  // per-relation tuple positions (QueryGraph::relation_position), ordered by
  // the std::map — deterministic and color-independent.
  std::vector<LayerPair> pairs;
  std::vector<std::vector<int>> pairs_at(m - 1);
  for (size_t i = 0; i + 1 < m; ++i) {
    const RelGraph::Group& group = rel_graph.groups[plan.occ_group[i]];
    const int rel_a = plan.occ_rel[i];
    std::map<std::pair<int, int>, std::vector<EdgeId>> by_pair;
    for (int p : group.preds) {
      // Enumerate the predicate's edges once via the smaller relation side.
      for (VertexId v : graph.relation_vertices(rel_a)) {
        for (EdgeId e : graph.IncidentEdges(v, p)) {
          VertexId w = graph.Opposite(e, v);
          by_pair[{graph.relation_position(v), graph.relation_position(w)}]
              .push_back(e);
        }
      }
    }
    for (auto& [key, members] : by_pair) {
      if (members.size() != group.preds.size()) continue;
      LayerPair pair;
      pair.layer = static_cast<int>(i);
      pair.a_idx = key.first;
      pair.b_idx = key.second;
      pair.members = members;
      for (EdgeId e : members) {
        if (colors[e] == EdgeColor::kRed) {
          pair.red = true;
          pair.red_member = e;
          break;
        }
      }
      pairs_at[i].push_back(static_cast<int>(pairs.size()));
      pairs.push_back(std::move(pair));
    }
  }

  // BLUE-chain DP: forward[i][idx] = a blue path reaches this occurrence from
  // layer 0; backward = it reaches layer m-1.
  std::vector<std::vector<uint8_t>> forward(m), backward(m);
  for (size_t i = 0; i < m; ++i) {
    forward[i].assign(layer_size(i), 0);
    backward[i].assign(layer_size(i), 0);
  }
  std::fill(forward[0].begin(), forward[0].end(), 1);
  std::fill(backward[m - 1].begin(), backward[m - 1].end(), 1);
  for (size_t i = 0; i + 1 < m; ++i) {
    for (int pid : pairs_at[i]) {
      const LayerPair& pair = pairs[pid];
      if (!pair.red && forward[i][pair.a_idx]) forward[i + 1][pair.b_idx] = 1;
    }
  }
  for (size_t i = m - 1; i-- > 0;) {
    for (int pid : pairs_at[i]) {
      const LayerPair& pair = pairs[pid];
      if (!pair.red && backward[i + 1][pair.b_idx]) backward[i][pair.a_idx] = 1;
    }
  }

  // B-edges: members of blue pairs lying on a complete blue chain.
  std::vector<uint8_t> edge_taken(graph.num_edges(), 0);
  std::vector<uint8_t> pair_is_b(pairs.size(), 0);
  for (size_t pid = 0; pid < pairs.size(); ++pid) {
    const LayerPair& pair = pairs[pid];
    if (pair.red) continue;
    if (forward[pair.layer][pair.a_idx] && backward[pair.layer + 1][pair.b_idx]) {
      pair_is_b[pid] = 1;
      for (EdgeId e : pair.members) {
        if (!edge_taken[e]) {
          edge_taken[e] = 1;
          out.blue_chain_edges.push_back(e);
        }
      }
    }
  }

  // Flow network. Each occurrence vertex has a left node (incoming arcs) and
  // a right node (outgoing arcs); they coincide unless the vertex is on a
  // blue chain, in which case the copies are detached and wired to s / t so
  // every red deviation from the blue chain forms an s-t path (Lemma 1).
  int64_t num_red = 0;
  for (const LayerPair& pair : pairs) num_red += pair.red ? 1 : 0;
  const int64_t kInf = num_red + 1;

  MaxFlow flow(0);
  const int s = flow.AddNode();
  const int t = flow.AddNode();
  std::vector<std::vector<int>> left_node(m), right_node(m);
  for (size_t i = 0; i < m; ++i) {
    left_node[i].resize(layer_size(i));
    right_node[i].resize(layer_size(i));
    for (size_t idx = 0; idx < layer_size(i); ++idx) {
      bool on_blue_chain = forward[i][idx] && backward[i][idx];
      int left = flow.AddNode();
      int right = on_blue_chain ? flow.AddNode() : left;
      left_node[i][idx] = left;
      right_node[i][idx] = right;
      if (on_blue_chain) {
        flow.AddArc(s, right, kInf);
        flow.AddArc(left, t, kInf);
      }
      if (i == 0) flow.AddArc(s, right, kInf);
      if (i == m - 1) flow.AddArc(left, t, kInf);
    }
  }
  std::vector<std::pair<int, int>> red_arc_to_pair;  // (arc id, pair id).
  for (size_t pid = 0; pid < pairs.size(); ++pid) {
    const LayerPair& pair = pairs[pid];
    if (pair_is_b[pid]) continue;  // Blue-chain edges are removed.
    int from = right_node[pair.layer][pair.a_idx];
    int to = left_node[pair.layer + 1][pair.b_idx];
    int arc = flow.AddArc(from, to, pair.red ? 1 : kInf);
    if (pair.red) red_arc_to_pair.push_back({arc, static_cast<int>(pid)});
  }

  flow.Compute(s, t);
  std::vector<bool> source_side = flow.SourceSide(s);
  for (auto [arc, pid] : red_arc_to_pair) {
    if (source_side[flow.arc_from(arc)] && !source_side[flow.arc_to(arc)]) {
      EdgeId e = pairs[pid].red_member;
      if (!edge_taken[e]) {
        edge_taken[e] = 1;
        out.cut_edges.push_back(e);
      }
    }
  }
  return out;
}

MinCutCache BuildMinCutCache(const QueryGraph& graph,
                             const RelGraph& rel_graph,
                             const ChainPlan& plan) {
  MinCutCache cache;
  cache.m = plan.occ_rel.size();
  cache.layer_sizes.reserve(cache.m);
  cache.layer_offsets.assign(1, 0);
  for (size_t i = 0; i < cache.m; ++i) {
    const int32_t size =
        static_cast<int32_t>(graph.relation_vertices(plan.occ_rel[i]).size());
    cache.layer_sizes.push_back(size);
    cache.layer_offsets.push_back(cache.layer_offsets.back() + size);
  }
  if (cache.m < 2) return cache;

  cache.pair_offsets.assign(1, 0);
  cache.member_offsets.assign(1, 0);
  for (size_t i = 0; i + 1 < cache.m; ++i) {
    const RelGraph::Group& group = rel_graph.groups[plan.occ_group[i]];
    const int rel_a = plan.occ_rel[i];
    // Identical enumeration to the oracle above: std::map order over dense
    // tuple positions, members in group-predicate order.
    std::map<std::pair<int, int>, std::vector<EdgeId>> by_pair;
    for (int p : group.preds) {
      for (VertexId v : graph.relation_vertices(rel_a)) {
        for (EdgeId e : graph.IncidentEdges(v, p)) {
          VertexId w = graph.Opposite(e, v);
          by_pair[{graph.relation_position(v), graph.relation_position(w)}]
              .push_back(e);
        }
      }
    }
    for (auto& [key, members] : by_pair) {
      if (members.size() != group.preds.size()) continue;
      cache.pair_a_idx.push_back(key.first);
      cache.pair_b_idx.push_back(key.second);
      cache.member_edges.insert(cache.member_edges.end(), members.begin(),
                                members.end());
      cache.member_offsets.push_back(
          static_cast<uint32_t>(cache.member_edges.size()));
    }
    cache.pair_offsets.push_back(static_cast<uint32_t>(cache.num_pairs()));
  }
  return cache;
}

void ChainMinCutSelection(const QueryGraph& graph, const MinCutCache& cache,
                          const std::vector<EdgeColor>& colors,
                          FlowArena* arena, std::vector<EdgeId>* out) {
  CDB_CHECK_EQ(colors.size(), static_cast<size_t>(graph.num_edges()));
  const size_t m = cache.m;
  if (m < 2) return;
  const size_t num_pairs = cache.num_pairs();
  const size_t num_occ = static_cast<size_t>(cache.layer_offsets[m]);

  // Per-pair color classification: first RED member wins, as in the oracle.
  arena->pair_red.assign(num_pairs, 0);
  arena->pair_red_member.assign(num_pairs, kNoEdge);
  for (size_t pid = 0; pid < num_pairs; ++pid) {
    for (uint32_t mi = cache.member_offsets[pid];
         mi < cache.member_offsets[pid + 1]; ++mi) {
      const EdgeId e = cache.member_edges[mi];
      if (colors[e] == EdgeColor::kRed) {
        arena->pair_red[pid] = 1;
        arena->pair_red_member[pid] = e;
        break;
      }
    }
  }

  // BLUE-chain DP over flat per-occurrence flags; occurrence (i, idx) lives
  // at layer_offsets[i] + idx.
  auto occ = [&](size_t i, int32_t idx) {
    return static_cast<size_t>(cache.layer_offsets[i]) +
           static_cast<size_t>(idx);
  };
  arena->forward.assign(num_occ, 0);
  arena->backward.assign(num_occ, 0);
  std::fill(arena->forward.begin(),
            arena->forward.begin() + cache.layer_sizes[0], 1);
  std::fill(arena->backward.begin() + cache.layer_offsets[m - 1],
            arena->backward.begin() + cache.layer_offsets[m], 1);
  for (size_t i = 0; i + 1 < m; ++i) {
    for (uint32_t pid = cache.pair_offsets[i]; pid < cache.pair_offsets[i + 1];
         ++pid) {
      if (!arena->pair_red[pid] &&
          arena->forward[occ(i, cache.pair_a_idx[pid])]) {
        arena->forward[occ(i + 1, cache.pair_b_idx[pid])] = 1;
      }
    }
  }
  for (size_t i = m - 1; i-- > 0;) {
    for (uint32_t pid = cache.pair_offsets[i]; pid < cache.pair_offsets[i + 1];
         ++pid) {
      if (!arena->pair_red[pid] &&
          arena->backward[occ(i + 1, cache.pair_b_idx[pid])]) {
        arena->backward[occ(i, cache.pair_a_idx[pid])] = 1;
      }
    }
  }

  // B-edges: members of blue pairs lying on a complete blue chain. Emitted in
  // pair order then member order — the oracle's blue_chain_edges order.
  arena->edge_taken.assign(static_cast<size_t>(graph.num_edges()), 0);
  arena->pair_is_b.assign(num_pairs, 0);
  for (size_t i = 0; i + 1 < m; ++i) {
    for (uint32_t pid = cache.pair_offsets[i]; pid < cache.pair_offsets[i + 1];
         ++pid) {
      if (arena->pair_red[pid]) continue;
      if (arena->forward[occ(i, cache.pair_a_idx[pid])] &&
          arena->backward[occ(i + 1, cache.pair_b_idx[pid])]) {
        arena->pair_is_b[pid] = 1;
        for (uint32_t mi = cache.member_offsets[pid];
             mi < cache.member_offsets[pid + 1]; ++mi) {
          const EdgeId e = cache.member_edges[mi];
          if (!arena->edge_taken[e]) {
            arena->edge_taken[e] = 1;
            out->push_back(e);
          }
        }
      }
    }
  }

  // Flow network, rebuilt with reset-not-rebuild scratch. Node ids and arc
  // insertion order replicate the oracle exactly, so Dinic's augmentation
  // order — and therefore the reported min cut — is unchanged.
  int64_t num_red = 0;
  for (size_t pid = 0; pid < num_pairs; ++pid) {
    num_red += arena->pair_red[pid] ? 1 : 0;
  }
  const int64_t kInf = num_red + 1;

  MaxFlow& flow = arena->flow;
  flow.Reset(0);
  const int s = flow.AddNode();
  const int t = flow.AddNode();
  arena->left_node.resize(num_occ);
  arena->right_node.resize(num_occ);
  for (size_t i = 0; i < m; ++i) {
    for (int32_t idx = 0; idx < cache.layer_sizes[i]; ++idx) {
      const size_t o = occ(i, idx);
      bool on_blue_chain = arena->forward[o] && arena->backward[o];
      int left = flow.AddNode();
      int right = on_blue_chain ? flow.AddNode() : left;
      arena->left_node[o] = left;
      arena->right_node[o] = right;
      if (on_blue_chain) {
        flow.AddArc(s, right, kInf);
        flow.AddArc(left, t, kInf);
      }
      if (i == 0) flow.AddArc(s, right, kInf);
      if (i == m - 1) flow.AddArc(left, t, kInf);
    }
  }
  arena->red_arc_ids.clear();
  arena->red_arc_pairs.clear();
  for (size_t i = 0; i + 1 < m; ++i) {
    for (uint32_t pid = cache.pair_offsets[i]; pid < cache.pair_offsets[i + 1];
         ++pid) {
      if (arena->pair_is_b[pid]) continue;  // Blue-chain edges are removed.
      int from = arena->right_node[occ(i, cache.pair_a_idx[pid])];
      int to = arena->left_node[occ(i + 1, cache.pair_b_idx[pid])];
      int arc = flow.AddArc(from, to, arena->pair_red[pid] ? 1 : kInf);
      if (arena->pair_red[pid]) {
        arena->red_arc_ids.push_back(arc);
        arena->red_arc_pairs.push_back(static_cast<int32_t>(pid));
      }
    }
  }

  flow.Compute(s, t);
  flow.SourceSideInto(s, &arena->source_side);
  for (size_t ri = 0; ri < arena->red_arc_ids.size(); ++ri) {
    const int arc = arena->red_arc_ids[ri];
    if (arena->source_side[flow.arc_from(arc)] &&
        !arena->source_side[flow.arc_to(arc)]) {
      const EdgeId e = arena->pair_red_member[arena->red_arc_pairs[ri]];
      if (!arena->edge_taken[e]) {
        arena->edge_taken[e] = 1;
        out->push_back(e);
      }
    }
  }
}

}  // namespace cdb
