#include "flow/dinic.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace cdb {

int MaxFlow::AddArc(int from, int to, int64_t capacity) {
  CDB_DCHECK(from >= 0 && from < num_nodes());
  CDB_DCHECK(to >= 0 && to < num_nodes());
  CDB_DCHECK(capacity >= 0);
  int id = static_cast<int>(arcs_.size());
  arcs_.push_back(Arc{to, head_[from], capacity, capacity});
  head_[from] = id;
  arcs_.push_back(Arc{from, head_[to], 0, 0});
  head_[to] = id + 1;
  return id;
}

bool MaxFlow::Bfs(int s, int t) {
  level_.assign(num_nodes(), -1);
  std::vector<int> queue = {s};
  level_[s] = 0;
  for (size_t headi = 0; headi < queue.size(); ++headi) {
    int v = queue[headi];
    for (int a = head_[v]; a != -1; a = arcs_[a].next) {
      if (arcs_[a].capacity > 0 && level_[arcs_[a].to] == -1) {
        level_[arcs_[a].to] = level_[v] + 1;
        queue.push_back(arcs_[a].to);
      }
    }
  }
  return level_[t] != -1;
}

int64_t MaxFlow::Dfs(int v, int t, int64_t limit) {
  if (v == t) return limit;
  for (int& a = iter_[v]; a != -1; a = arcs_[a].next) {
    Arc& arc = arcs_[a];
    if (arc.capacity <= 0 || level_[arc.to] != level_[v] + 1) continue;
    int64_t pushed = Dfs(arc.to, t, std::min(limit, arc.capacity));
    if (pushed > 0) {
      arc.capacity -= pushed;
      arcs_[a ^ 1].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

int64_t MaxFlow::Compute(int s, int t) {
  CDB_CHECK_NE(s, t);
  int64_t flow = 0;
  while (Bfs(s, t)) {
    iter_ = head_;
    while (true) {
      int64_t pushed = Dfs(s, t, std::numeric_limits<int64_t>::max());
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

std::vector<bool> MaxFlow::SourceSide(int s) const {
  std::vector<bool> reachable(num_nodes(), false);
  std::vector<int> queue = {s};
  reachable[s] = true;
  for (size_t headi = 0; headi < queue.size(); ++headi) {
    int v = queue[headi];
    for (int a = head_[v]; a != -1; a = arcs_[a].next) {
      if (arcs_[a].capacity > 0 && !reachable[arcs_[a].to]) {
        reachable[arcs_[a].to] = true;
        queue.push_back(arcs_[a].to);
      }
    }
  }
  return reachable;
}

}  // namespace cdb
