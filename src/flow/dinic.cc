#include "flow/dinic.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace cdb {

void MaxFlow::Reset(int num_nodes) {
  num_nodes_ = num_nodes;
  indexed_ = false;
  arcs_.clear();
}

int MaxFlow::AddArc(int from, int to, int64_t capacity) {
  CDB_DCHECK(from >= 0 && from < num_nodes_);
  CDB_DCHECK(to >= 0 && to < num_nodes_);
  CDB_DCHECK(capacity >= 0);
  CDB_DCHECK(!indexed_);
  int id = static_cast<int>(arcs_.size());
  arcs_.push_back(Arc{to, capacity, capacity});
  arcs_.push_back(Arc{from, 0, 0});
  return id;
}

void MaxFlow::BuildIndex() {
  // Count-then-fill; filling in ascending arc id keeps each node's arcs in
  // insertion order.
  node_offsets_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  for (size_t id = 0; id < arcs_.size(); ++id) {
    ++node_offsets_[static_cast<size_t>(arcs_[id ^ 1].to) + 1];
  }
  for (int v = 0; v < num_nodes_; ++v) {
    node_offsets_[v + 1] += node_offsets_[v];
  }
  csr_arcs_.resize(arcs_.size());
  std::vector<uint32_t> cursor(node_offsets_.begin(), node_offsets_.end() - 1);
  for (size_t id = 0; id < arcs_.size(); ++id) {
    csr_arcs_[cursor[arcs_[id ^ 1].to]++] = static_cast<int32_t>(id);
  }
  indexed_ = true;
}

bool MaxFlow::Bfs(int s, int t) {
  level_.assign(num_nodes_, -1);
  queue_.clear();
  queue_.push_back(s);
  level_[s] = 0;
  for (size_t headi = 0; headi < queue_.size(); ++headi) {
    int v = queue_[headi];
    for (uint32_t i = node_offsets_[v]; i < node_offsets_[v + 1]; ++i) {
      const Arc& arc = arcs_[csr_arcs_[i]];
      if (arc.capacity > 0 && level_[arc.to] == -1) {
        level_[arc.to] = level_[v] + 1;
        queue_.push_back(arc.to);
      }
    }
  }
  return level_[t] != -1;
}

int64_t MaxFlow::Dfs(int v, int t, int64_t limit) {
  if (v == t) return limit;
  // Walk arcs in reverse insertion order (legacy head-inserted list order).
  // On a successful push the cursor stays on the arc so it is retried first
  // next time, exactly as the legacy `for (int& a = iter_[v]; ...)` loop
  // returned without advancing.
  for (int32_t& i = iter_[v]; i >= static_cast<int32_t>(node_offsets_[v]); --i) {
    const int a = csr_arcs_[i];
    Arc& arc = arcs_[a];
    if (arc.capacity <= 0 || level_[arc.to] != level_[v] + 1) continue;
    int64_t pushed = Dfs(arc.to, t, std::min(limit, arc.capacity));
    if (pushed > 0) {
      arc.capacity -= pushed;
      arcs_[a ^ 1].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

int64_t MaxFlow::Compute(int s, int t) {
  CDB_CHECK_NE(s, t);
  if (!indexed_) BuildIndex();
  int64_t flow = 0;
  while (Bfs(s, t)) {
    iter_.resize(num_nodes_);
    for (int v = 0; v < num_nodes_; ++v) {
      iter_[v] = static_cast<int32_t>(node_offsets_[v + 1]) - 1;
    }
    while (true) {
      int64_t pushed = Dfs(s, t, std::numeric_limits<int64_t>::max());
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

std::vector<bool> MaxFlow::SourceSide(int s) const {
  std::vector<uint8_t> flat;
  SourceSideInto(s, &flat);
  std::vector<bool> reachable(num_nodes_, false);
  for (int v = 0; v < num_nodes_; ++v) reachable[v] = flat[v] != 0;
  return reachable;
}

void MaxFlow::SourceSideInto(int s, std::vector<uint8_t>* reachable) const {
  CDB_DCHECK(indexed_);
  reachable->assign(num_nodes_, 0);
  std::vector<int32_t> queue;
  queue.push_back(s);
  (*reachable)[s] = 1;
  for (size_t headi = 0; headi < queue.size(); ++headi) {
    int v = queue[headi];
    for (uint32_t i = node_offsets_[v]; i < node_offsets_[v + 1]; ++i) {
      const Arc& arc = arcs_[csr_arcs_[i]];
      if (arc.capacity > 0 && !(*reachable)[arc.to]) {
        (*reachable)[arc.to] = 1;
        queue.push_back(arc.to);
      }
    }
  }
}

}  // namespace cdb
