// Candidate and answer machinery (Definitions 2 and 4).
//
// A candidate is a connected substructure with one edge per query predicate;
// equivalently, an assignment of one tuple-vertex per relation such that for
// every predicate an edge exists between the assigned endpoints. An answer is
// a candidate whose edges are all BLUE.
#ifndef CDB_GRAPH_CANDIDATES_H_
#define CDB_GRAPH_CANDIDATES_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "graph/query_graph.h"

namespace cdb {

// An assignment of one vertex per relation (base + selection pseudo
// relations, in relation order).
using Assignment = std::vector<VertexId>;

// The edge between u and v for predicate p, or kNoEdge.
EdgeId FindEdgeBetween(const QueryGraph& graph, VertexId u, VertexId v, int p);

// The edge ids a full assignment uses, one per predicate.
std::vector<EdgeId> AssignmentEdges(const QueryGraph& graph,
                                    const Assignment& assignment);

// True iff a candidate exists all of whose edges satisfy `edge_ok`,
// respecting `fixed` (kNoVertex entries are free; others are pinned).
// Exact for any predicate-graph shape (backtracking search).
[[nodiscard]] bool ExistsCandidate(
    const QueryGraph& graph, const std::vector<VertexId>& fixed,
    const std::function<bool(const GraphEdge&)>& edge_ok);

// True iff edge `e` lies on at least one candidate whose edges are all
// non-RED. This is the exact form of Definition 3 (Pruner::EdgeValid is the
// fast arc-consistency form, identical on acyclic group graphs).
[[nodiscard]] bool EdgeValidExact(const QueryGraph& graph, EdgeId e);

// True iff e1 and e2 can appear in the same surviving (non-RED) candidate —
// the "conflict" test of Section 5.2. Edges touching two different tuples of
// the same relation are never in conflict.
[[nodiscard]] bool EdgesConflict(const QueryGraph& graph, EdgeId e1, EdgeId e2);

// All answers: assignments whose every predicate edge is BLUE.
std::vector<Assignment> FindAnswers(const QueryGraph& graph);

// Enumerates candidates whose edges are all non-RED, invoking `visit` for
// each; stops early (returning false from visit aborts enumeration).
void EnumerateCandidates(const QueryGraph& graph,
                         const std::function<bool(const Assignment&)>& visit);

// The surviving candidate maximizing the product of edge weights, where
// already-BLUE edges count as weight 1 (Section 5.1.3). Candidates whose
// edges are all BLUE (answers already found) are skipped when
// `require_unknown` is true. Returns nullopt if none exists.
struct ScoredCandidate {
  Assignment assignment;
  double probability = 0.0;
};
[[nodiscard]] std::optional<ScoredCandidate> BestCandidate(
    const QueryGraph& graph, bool require_unknown);

}  // namespace cdb

#endif  // CDB_GRAPH_CANDIDATES_H_
