#include "graph/query_graph.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"
#include "similarity/sim_join.h"

namespace cdb {

VertexId QueryGraph::InternVertex(int rel, int64_t row) {
  auto [it, inserted] = vertex_index_[rel].try_emplace(
      row, static_cast<VertexId>(vertices_.size()));
  if (inserted) {
    vertices_.push_back(Vertex{rel, row});
    vertex_rel_pos_.push_back(
        static_cast<int32_t>(relation_vertices_[rel].size()));
    relation_vertices_[rel].push_back(it->second);
  }
  return it->second;
}

void QueryGraph::AddEdge(VertexId u, VertexId v, int p, double weight,
                         bool is_crowd, EdgeColor color) {
  CDB_DCHECK(!finalized_);
  edge_u_.push_back(u);
  edge_v_.push_back(v);
  edge_pred_.push_back(p);
  edge_weight_.push_back(weight);
  edge_color_.push_back(static_cast<uint8_t>(color));
  edge_is_crowd_.push_back(is_crowd ? 1 : 0);
}

void QueryGraph::Finalize() {
  CDB_DCHECK(!finalized_);
  const size_t num_slots = static_cast<size_t>(num_vertices()) *
                           static_cast<size_t>(num_predicates());
  // Count-then-fill. The legacy layout pushed each edge id into slot (u, p)
  // then slot (v, p) while iterating edges in id order, so per-slot postings
  // were ascending ids (with a self-loop's id appearing twice in a row);
  // filling in the same order reproduces that byte-for-byte.
  incidence_offsets_.assign(num_slots + 1, 0);
  for (EdgeId e = 0; e < num_edges(); ++e) {
    ++incidence_offsets_[IncidenceSlot(edge_u_[e], edge_pred_[e]) + 1];
    ++incidence_offsets_[IncidenceSlot(edge_v_[e], edge_pred_[e]) + 1];
  }
  for (size_t s = 1; s <= num_slots; ++s) {
    incidence_offsets_[s] += incidence_offsets_[s - 1];
  }
  incidence_edges_.resize(static_cast<size_t>(num_edges()) * 2);
  std::vector<uint32_t> cursor(incidence_offsets_.begin(),
                               incidence_offsets_.end() - 1);
  for (EdgeId e = 0; e < num_edges(); ++e) {
    incidence_edges_[cursor[IncidenceSlot(edge_u_[e], edge_pred_[e])]++] = e;
    incidence_edges_[cursor[IncidenceSlot(edge_v_[e], edge_pred_[e])]++] = e;
  }
  finalized_ = true;
}

VertexId QueryGraph::FindVertex(int rel, int64_t row) const {
  const auto& index = vertex_index_[rel];
  auto it = index.find(row);
  return it == index.end() ? kNoVertex : it->second;
}

EdgeSpan QueryGraph::IncidentEdges(VertexId v, int p) const {
  CDB_DCHECK(v >= 0 && v < num_vertices());
  CDB_DCHECK(finalized_);
  if (p < 0 || p >= num_predicates()) return EdgeSpan();
  const size_t slot = IncidenceSlot(v, p);
  return EdgeSpan(incidence_edges_.data() + incidence_offsets_[slot],
                  incidence_offsets_[slot + 1] - incidence_offsets_[slot]);
}

std::vector<EdgeId> QueryGraph::AllIncidentEdges(VertexId v) const {
  std::vector<EdgeId> out;
  AppendIncidentEdges(v, &out);
  return out;
}

void QueryGraph::AppendIncidentEdges(VertexId v,
                                     std::vector<EdgeId>* out) const {
  CDB_DCHECK(v >= 0 && v < num_vertices());
  CDB_DCHECK(finalized_);
  // Per-predicate slots of one vertex are contiguous in the CSR index, so the
  // concatenation over predicates is a single contiguous range.
  const size_t begin = incidence_offsets_[IncidenceSlot(v, 0)];
  const size_t end = incidence_offsets_[IncidenceSlot(v, num_predicates() - 1) + 1];
  out->insert(out->end(), incidence_edges_.data() + begin,
              incidence_edges_.data() + end);
}

VertexId QueryGraph::Opposite(EdgeId e, VertexId v) const {
  CDB_DCHECK(edge_u_[e] == v || edge_v_[e] == v);
  return edge_u_[e] == v ? edge_v_[e] : edge_u_[e];
}

void QueryGraph::SetColor(EdgeId e, EdgeColor color) {
  CDB_CHECK_MSG(edge_color_[e] == static_cast<uint8_t>(EdgeColor::kUnknown) ||
                    edge_color_[e] == static_cast<uint8_t>(color),
                "recoloring an edge with a different color");
  edge_color_[e] = static_cast<uint8_t>(color);
}

void QueryGraph::RecolorEdge(EdgeId e, EdgeColor color) {
  CDB_CHECK_MSG(color != EdgeColor::kUnknown, "cannot uncolor an edge");
  // Flip-only contract: recoloring corrects evidence on an edge that was
  // already colored. An uncolored edge was pruned before it was ever asked;
  // late evidence must not resurrect it (the caller filters those out).
  CDB_CHECK_MSG(edge_color_[e] != static_cast<uint8_t>(EdgeColor::kUnknown),
                "RecolorEdge on an uncolored (pruned-unasked) edge");
  edge_color_[e] = static_cast<uint8_t>(color);
}

void QueryGraph::UncolorEdge(EdgeId e) {
  CDB_CHECK_MSG(edge_is_crowd_[e] != 0,
                "UncolorEdge on a born-colored traditional edge");
  CDB_CHECK_MSG(edge_color_[e] != static_cast<uint8_t>(EdgeColor::kUnknown),
                "UncolorEdge on an edge that is already uncolored");
  edge_color_[e] = static_cast<uint8_t>(EdgeColor::kUnknown);
}

int64_t QueryGraph::CountEdges(EdgeColor color) const {
  int64_t count = 0;
  for (uint8_t c : edge_color_) {
    if (c == static_cast<uint8_t>(color)) ++count;
  }
  return count;
}

std::string QueryGraph::DebugString() const {
  std::string out;
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const Vertex& u = vertices_[edge_u_[e]];
    const Vertex& v = vertices_[edge_v_[e]];
    const EdgeColor c = edge_color(e);
    const char* color = c == EdgeColor::kBlue  ? "BLUE"
                        : c == EdgeColor::kRed ? "RED"
                                               : "?";
    out += StrPrintf("e%d pred%d (r%d:%lld)-(r%d:%lld) w=%.2f %s\n", e,
                     edge_pred_[e], u.rel, static_cast<long long>(u.row), v.rel,
                     static_cast<long long>(v.row), edge_weight_[e], color);
  }
  return out;
}

QueryGraph QueryGraph::MakeSynthetic(int num_base_relations,
                                     std::vector<PredicateInfo> predicates,
                                     const std::vector<SyntheticEdge>& edges) {
  CDB_CHECK(!predicates.empty());
  QueryGraph graph;
  graph.num_base_relations_ = num_base_relations;
  graph.predicates_ = std::move(predicates);
  int num_relations = num_base_relations;
  for (const PredicateInfo& info : graph.predicates_) {
    num_relations = std::max({num_relations, info.left_rel + 1, info.right_rel + 1});
  }
  graph.relation_predicates_.assign(num_relations, {});
  for (int p = 0; p < graph.num_predicates(); ++p) {
    graph.relation_predicates_[graph.predicates_[p].left_rel].push_back(p);
    graph.relation_predicates_[graph.predicates_[p].right_rel].push_back(p);
  }
  graph.relation_sizes_.assign(num_relations, 0);
  graph.vertex_index_.resize(num_relations);
  graph.relation_vertices_.resize(num_relations);
  for (const SyntheticEdge& edge : edges) {
    CDB_CHECK(edge.pred >= 0 && edge.pred < graph.num_predicates());
    const PredicateInfo& info = graph.predicates_[edge.pred];
    VertexId u = graph.InternVertex(info.left_rel, edge.left_row);
    VertexId v = graph.InternVertex(info.right_rel, edge.right_row);
    graph.AddEdge(u, v, edge.pred, edge.weight, edge.is_crowd, edge.color);
  }
  for (int rel = 0; rel < num_relations; ++rel) {
    graph.relation_sizes_[rel] =
        static_cast<int64_t>(graph.relation_vertices_[rel].size());
  }
  graph.Finalize();
  return graph;
}

Result<QueryGraph> QueryGraph::Build(const ResolvedQuery& query,
                                     const GraphOptions& options) {
  QueryGraph graph;
  graph.num_base_relations_ = static_cast<int>(query.tables.size());
  const int num_relations =
      graph.num_base_relations_ + static_cast<int>(query.selections.size());

  // Predicate table: joins first, then selections (matching the pseudo
  // relation order).
  for (const ResolvedJoin& join : query.joins) {
    graph.predicates_.push_back(
        PredicateInfo{join.is_crowd, false, join.left_rel, join.right_rel});
  }
  for (size_t s = 0; s < query.selections.size(); ++s) {
    graph.predicates_.push_back(PredicateInfo{
        query.selections[s].is_crowd, true, query.selections[s].rel,
        graph.num_base_relations_ + static_cast<int>(s)});
  }
  if (graph.predicates_.empty()) {
    return Status::InvalidArgument(
        "graph model needs at least one predicate (plain scans do not use it)");
  }

  graph.relation_predicates_.assign(num_relations, {});
  for (int p = 0; p < graph.num_predicates(); ++p) {
    graph.relation_predicates_[graph.predicates_[p].left_rel].push_back(p);
    graph.relation_predicates_[graph.predicates_[p].right_rel].push_back(p);
  }
  graph.relation_sizes_.assign(num_relations, 0);
  graph.vertex_index_.resize(num_relations);
  graph.relation_vertices_.resize(num_relations);

  // Join edges.
  for (size_t j = 0; j < query.joins.size(); ++j) {
    const ResolvedJoin& join = query.joins[j];
    const Table* left = query.tables[join.left_rel];
    const Table* right = query.tables[join.right_rel];
    CDB_ASSIGN_OR_RETURN(
        std::vector<std::string> left_vals,
        left->StringColumn(left->schema().column(join.left_col).name));
    CDB_ASSIGN_OR_RETURN(
        std::vector<std::string> right_vals,
        right->StringColumn(right->schema().column(join.right_col).name));
    if (join.is_crowd) {
      SimJoinOptions join_options;
      join_options.num_threads = options.num_threads;
      join_options.kernel = options.sim_kernel;
      join_options.signature_filter = options.sim_signature_filter;
      join_options.metrics = options.sim_metrics;
      std::vector<SimPair> pairs = SimilarityJoin(
          left_vals, right_vals, options.sim_fn, options.epsilon, join_options);
      for (const SimPair& pair : pairs) {
        VertexId u = graph.InternVertex(join.left_rel, pair.left);
        VertexId v = graph.InternVertex(join.right_rel, pair.right);
        graph.AddEdge(u, v, static_cast<int>(j), pair.sim, /*is_crowd=*/true,
                      EdgeColor::kUnknown);
      }
    } else {
      // Traditional equi-join: exact string match, weight 1, BLUE.
      std::unordered_map<std::string, std::vector<int64_t>> index;
      for (size_t r = 0; r < right_vals.size(); ++r) {
        if (!right_vals[r].empty()) index[right_vals[r]].push_back(static_cast<int64_t>(r));
      }
      for (size_t l = 0; l < left_vals.size(); ++l) {
        auto it = index.find(left_vals[l]);
        if (it == index.end()) continue;
        for (int64_t r : it->second) {
          VertexId u = graph.InternVertex(join.left_rel, static_cast<int64_t>(l));
          VertexId v = graph.InternVertex(join.right_rel, r);
          graph.AddEdge(u, v, static_cast<int>(j), 1.0, /*is_crowd=*/false,
                        EdgeColor::kBlue);
        }
      }
    }
  }

  // Selection edges: one pseudo-vertex per selection predicate.
  for (size_t s = 0; s < query.selections.size(); ++s) {
    const ResolvedSelection& sel = query.selections[s];
    const int pred = static_cast<int>(query.joins.size() + s);
    const int pseudo_rel = graph.num_base_relations_ + static_cast<int>(s);
    const Table* table = query.tables[sel.rel];
    CDB_ASSIGN_OR_RETURN(
        std::vector<std::string> vals,
        table->StringColumn(table->schema().column(sel.col).name));
    VertexId pseudo = graph.InternVertex(pseudo_rel, 0);
    if (sel.is_crowd) {
      std::vector<SimPair> matches =
          SimilaritySearch(vals, sel.value, options.sim_fn, options.epsilon);
      for (const SimPair& match : matches) {
        VertexId u = graph.InternVertex(sel.rel, match.left);
        graph.AddEdge(u, pseudo, pred, match.sim, /*is_crowd=*/true,
                      EdgeColor::kUnknown);
      }
    } else {
      for (size_t r = 0; r < vals.size(); ++r) {
        if (vals[r] == sel.value) {
          VertexId u = graph.InternVertex(sel.rel, static_cast<int64_t>(r));
          graph.AddEdge(u, pseudo, pred, 1.0, /*is_crowd=*/false,
                        EdgeColor::kBlue);
        }
      }
    }
  }

  for (int rel = 0; rel < num_relations; ++rel) {
    graph.relation_sizes_[rel] =
        static_cast<int64_t>(graph.relation_vertices_[rel].size());
  }
  graph.Finalize();
  return graph;
}

}  // namespace cdb
