// Invalid-edge detection (Definition 3) and cut-impact simulation.
//
// An edge is *valid* if it is contained in at least one candidate whose edges
// are all non-RED; RED answers therefore cascade, invalidating edges whose
// every supporting candidate has been refuted ("we can avoid asking such
// edges", Section 4.1). The Pruner maintains this incrementally-recomputable
// view over a QueryGraph.
//
// Implementation: predicates between the same relation pair are grouped (a
// candidate must realize all of them on the same tuple pair); aliveness is
// then an arc-consistency fixpoint over the group graph. For acyclic group
// graphs — every query in the paper's benchmark — this is exact; for cyclic
// group graphs it is a safe over-approximation (a superset of the valid
// edges), matching the paper's cycle-breaking treatment. Exact validity for
// small cyclic graphs is available in candidates.h.
#ifndef CDB_GRAPH_PRUNING_H_
#define CDB_GRAPH_PRUNING_H_

#include <cstdint>
#include <vector>

#include "graph/query_graph.h"

namespace cdb {

using PairId = int32_t;

// Tracks which vertices/edges can still participate in an answer.
class Pruner {
 public:
  // The graph must outlive the Pruner. Call Recompute() after construction
  // and after any batch of SetColor calls.
  explicit Pruner(const QueryGraph* graph);

  // Recomputes aliveness from the graph's current edge colors. O(V + E).
  void Recompute();

  [[nodiscard]] bool VertexAlive(VertexId v) const { return alive_[v]; }

  // True iff `e` is non-RED and participates in >= 1 surviving candidate.
  [[nodiscard]] bool EdgeValid(EdgeId e) const;

  // Valid, uncolored crowd edges: the remaining task pool.
  std::vector<EdgeId> RemainingTasks() const;

  // Simulates removing every edge in `cut` (all must share one endpoint and
  // one predicate in the intended Eq.-1 use, though any set works) and
  // returns the number of currently-valid *unknown* edges that would become
  // invalid, excluding the cut edges themselves. State is restored before
  // returning.
  int64_t SimulateCutInvalidation(const std::vector<EdgeId>& cut);

  // Number of groups (relation pairs carrying predicates). Exposed for tests.
  int num_groups() const { return static_cast<int>(groups_.size()); }
  // True if the relation-pair group graph is acyclic (pruning is exact).
  bool group_graph_acyclic() const { return group_graph_acyclic_; }

 private:
  struct Group {
    int rel_a = 0;
    int rel_b = 0;
    std::vector<int> preds;
  };
  // A tuple pair realizing every predicate of its group.
  struct Pair {
    int group = 0;
    VertexId a = kNoVertex;  // Vertex in rel_a.
    VertexId b = kNoVertex;  // Vertex in rel_b.
    std::vector<EdgeId> members;  // One edge per predicate of the group.
  };

  void BuildGroups();
  void BuildPairs();
  int GroupPosition(VertexId v, int group) const;

  // Deactivates `pair` and decrements endpoint support counts; enqueues
  // vertices whose support for some group reaches zero. Shared by Recompute
  // and the simulation (which records undo state in the *_undo_ members).
  void DeactivatePair(PairId pair, std::vector<VertexId>& queue, bool simulating);
  void KillVertex(VertexId v, std::vector<VertexId>& queue, bool simulating);

  const QueryGraph* graph_;
  std::vector<Group> groups_;
  std::vector<int> group_of_pred_;
  bool group_graph_acyclic_ = true;

  std::vector<Pair> pairs_;
  std::vector<PairId> pair_of_edge_;
  // vertex_pairs_[v][gpos]: pairs incident to v for its gpos-th group.
  std::vector<std::vector<std::vector<PairId>>> vertex_pairs_;
  // relation_groups_[rel]: groups incident to the relation.
  std::vector<std::vector<int>> relation_groups_;

  // Mutable fixpoint state.
  std::vector<uint8_t> pair_active_;
  std::vector<std::vector<int64_t>> support_;  // [v][gpos] active-pair count.
  std::vector<uint8_t> alive_;

  // Undo log for SimulateCutInvalidation.
  std::vector<PairId> sim_deactivated_pairs_;
  std::vector<VertexId> sim_killed_vertices_;
  struct SupportDelta {
    VertexId v;
    int gpos;
    int64_t delta;
  };
  std::vector<SupportDelta> sim_support_deltas_;
};

}  // namespace cdb

#endif  // CDB_GRAPH_PRUNING_H_
