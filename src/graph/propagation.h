// Answer propagation: transitive and anti-transitive deduction over crowd
// answers (ROADMAP item 3; Wang et al., "Leveraging Transitive Relations for
// Crowdsourced Joins").
//
// A crowd predicate compares attribute values, so its answers are statements
// about value equality: a BLUE edge (u, v) says value(u) == value(v), a RED
// edge says they differ. Equality is transitive — BLUE edges merge vertices
// into clusters — and a RED edge separates two whole clusters: every pair
// drawn from the two clusters is a non-match (anti-transitivity). An edge
// whose endpoints share a cluster is therefore deducible BLUE without asking
// the crowd; an edge whose endpoint clusters are recorded non-matches is
// deducible RED.
//
// MatchClusters is the per-predicate domain: a union-find over vertex ids
// plus cluster-level non-match facts. Facts are keyed at *current* cluster
// roots and re-rooted eagerly when Union() absorbs a root, so KnownNonMatch
// is a single adjacency probe that can never miss a fact recorded under a
// root that has since been merged away (the staleness bug the round-start
// snapshot in the old er_join ClusterState was exposed to). A fact whose two
// clusters later merge is contradictory crowd evidence; matches win (the
// union proceeds), the fact is dropped, and conflicts() counts it.
//
// DeductionState glues one MatchClusters per crowd predicate onto a
// QueryGraph. Transitivity is only sound within one predicate — two
// predicates compare different attribute pairs, so sharing a vertex across
// predicates implies nothing. All containers are ordered and all methods are
// deterministic in the observation sequence; the *partition* and the fact
// set depend only on the set of observed edges, not their order, which is
// what lets QuerySession rebuild this state from graph colors after a
// snapshot restore or a late-answer invalidation.
#ifndef CDB_GRAPH_PROPAGATION_H_
#define CDB_GRAPH_PROPAGATION_H_

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "graph/query_graph.h"

namespace cdb {

// Union-find over [0, num_vertices) with cluster-level non-match facts kept
// at current roots. Find() path-compresses, so lookups amortize to near
// constant; Union() re-roots the absorbed side's facts eagerly.
class MatchClusters {
 public:
  explicit MatchClusters(int num_vertices);

  // Root of x's cluster, with path compression.
  int Find(int x);
  bool SameCluster(int a, int b) { return Find(a) == Find(b); }

  // Merges the clusters of a and b (no-op if already merged). The absorbed
  // root's non-match facts are re-keyed onto the surviving root; a fact that
  // the merge internalizes (the two clusters were recorded non-matches of
  // each other) is dropped as a conflict — matches win.
  void Union(int a, int b);

  // Records that a's and b's clusters do not match. Recording a fact inside
  // one cluster is contradictory evidence: dropped and counted.
  void AddNonMatch(int a, int b);

  // True when a's and b's clusters are recorded non-matches. Always current:
  // facts follow cluster merges, so no snapshot/refresh step exists.
  bool KnownNonMatch(int a, int b);

  int64_t num_clusters() const { return num_clusters_; }
  // Contradictory facts dropped so far (match-wins resolutions).
  int64_t conflicts() const { return conflicts_; }

 private:
  std::vector<int32_t> parent_;
  std::vector<int32_t> size_;
  // root -> roots of clusters recorded as non-matches (symmetric adjacency;
  // the pair (a, b) appears under both roots). Ordered containers keep every
  // iteration deterministic.
  std::map<int32_t, std::set<int32_t>> enemies_;
  int64_t num_clusters_ = 0;
  int64_t conflicts_ = 0;
};

// Per-predicate deduction domains over one QueryGraph. Feed crowd-answered
// edge colors in with Observe(); query implied colors with Deduce().
class DeductionState {
 public:
  // `graph` is borrowed and must outlive this object (and be finalized).
  explicit DeductionState(const QueryGraph* graph);

  // Drops all observed facts, keeping the graph binding (used when late
  // evidence invalidates the closure and it is re-derived from scratch).
  void Reset();

  // Folds one crowd-evidenced edge color into the edge's predicate domain.
  // `color` must be kBlue or kRed.
  void Observe(EdgeId e, EdgeColor color);

  // The color implied for `e` by the observed evidence: kBlue if its
  // endpoints share a cluster, else kRed if their clusters are recorded
  // non-matches, else kUnknown. Checking the match first makes match-wins
  // precedence structural. Never observes anything.
  EdgeColor Deduce(EdgeId e);

  // Normalized (root, root) pair of e's endpoint clusters in its predicate
  // domain — the key for expected-yield counting: one answer for any edge of
  // a cluster pair resolves every still-unknown edge of that pair.
  std::pair<int32_t, int32_t> ClusterPair(EdgeId e);

  // Contradictory observations dropped across all domains.
  int64_t conflicts() const;

 private:
  const QueryGraph* graph_;
  std::vector<MatchClusters> domains_;  // One per predicate.
};

}  // namespace cdb

#endif  // CDB_GRAPH_PROPAGATION_H_
