#include "graph/pruning.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace cdb {
namespace {

// Canonical unordered relation pair.
std::pair<int, int> RelPairKey(int a, int b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

Pruner::Pruner(const QueryGraph* graph) : graph_(graph) {
  BuildGroups();
  BuildPairs();
  Recompute();
}

void Pruner::BuildGroups() {
  std::map<std::pair<int, int>, int> group_index;
  group_of_pred_.resize(graph_->num_predicates());
  for (int p = 0; p < graph_->num_predicates(); ++p) {
    const PredicateInfo& info = graph_->predicate(p);
    auto key = RelPairKey(info.left_rel, info.right_rel);
    auto [it, inserted] = group_index.try_emplace(key, static_cast<int>(groups_.size()));
    if (inserted) groups_.push_back(Group{key.first, key.second, {}});
    groups_[it->second].preds.push_back(p);
    group_of_pred_[p] = it->second;
  }

  relation_groups_.assign(graph_->num_relations(), {});
  for (size_t g = 0; g < groups_.size(); ++g) {
    relation_groups_[groups_[g].rel_a].push_back(static_cast<int>(g));
    relation_groups_[groups_[g].rel_b].push_back(static_cast<int>(g));
  }

  // Acyclicity of the group graph (relations as nodes, groups as edges)
  // determines whether the fixpoint is exact.
  std::vector<int> parent(graph_->num_relations());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  auto find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  group_graph_acyclic_ = true;
  for (const Group& group : groups_) {
    int ra = find(group.rel_a);
    int rb = find(group.rel_b);
    if (ra == rb) {
      group_graph_acyclic_ = false;
      break;
    }
    parent[ra] = rb;
  }
}

void Pruner::BuildPairs() {
  pair_of_edge_.assign(graph_->num_edges(), -1);
  vertex_pairs_.assign(graph_->num_vertices(), {});
  for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
    vertex_pairs_[v].resize(relation_groups_[graph_->vertex(v).rel].size());
  }

  for (size_t g = 0; g < groups_.size(); ++g) {
    const Group& group = groups_[g];
    if (group.preds.size() == 1) {
      const int p = group.preds[0];
      for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
        if (graph_->edge(e).pred != p) continue;
        PairId id = static_cast<PairId>(pairs_.size());
        VertexId u = graph_->edge(e).u;
        VertexId v = graph_->edge(e).v;
        VertexId a = graph_->vertex(u).rel == group.rel_a ? u : v;
        VertexId b = a == u ? v : u;
        pairs_.push_back(Pair{static_cast<int>(g), a, b, {e}});
        pair_of_edge_[e] = id;
      }
      continue;
    }
    // Parallel predicates: a tuple pair qualifies only if every predicate of
    // the group has an edge between the same two tuples.
    std::map<std::pair<VertexId, VertexId>, std::vector<EdgeId>> by_pair;
    for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
      const GraphEdge& edge = graph_->edge(e);
      if (group_of_pred_[edge.pred] != static_cast<int>(g)) continue;
      VertexId a = graph_->vertex(edge.u).rel == group.rel_a ? edge.u : edge.v;
      VertexId b = a == edge.u ? edge.v : edge.u;
      by_pair[{a, b}].push_back(e);
    }
    for (auto& [key, members] : by_pair) {
      if (members.size() != group.preds.size()) continue;  // Missing a predicate.
      PairId id = static_cast<PairId>(pairs_.size());
      pairs_.push_back(Pair{static_cast<int>(g), key.first, key.second, members});
      for (EdgeId e : members) pair_of_edge_[e] = id;
    }
  }

  for (PairId id = 0; id < static_cast<PairId>(pairs_.size()); ++id) {
    const Pair& pair = pairs_[id];
    vertex_pairs_[pair.a][GroupPosition(pair.a, pair.group)].push_back(id);
    vertex_pairs_[pair.b][GroupPosition(pair.b, pair.group)].push_back(id);
  }
}

int Pruner::GroupPosition(VertexId v, int group) const {
  const std::vector<int>& groups = relation_groups_[graph_->vertex(v).rel];
  for (size_t i = 0; i < groups.size(); ++i) {
    if (groups[i] == group) return static_cast<int>(i);
  }
  CDB_CHECK_MSG(false, "vertex relation not incident to group");
  return -1;
}

void Pruner::DeactivatePair(PairId pair_id, std::vector<VertexId>& queue,
                            bool simulating) {
  if (!pair_active_[pair_id]) return;
  pair_active_[pair_id] = 0;
  if (simulating) sim_deactivated_pairs_.push_back(pair_id);
  const Pair& pair = pairs_[pair_id];
  for (VertexId v : {pair.a, pair.b}) {
    if (!alive_[v]) continue;
    int gpos = GroupPosition(v, pair.group);
    --support_[v][gpos];
    if (simulating) sim_support_deltas_.push_back({v, gpos, -1});
    if (support_[v][gpos] == 0) queue.push_back(v);
  }
}

void Pruner::KillVertex(VertexId v, std::vector<VertexId>& queue,
                        bool simulating) {
  if (!alive_[v]) return;
  alive_[v] = 0;
  if (simulating) sim_killed_vertices_.push_back(v);
  for (const std::vector<PairId>& per_group : vertex_pairs_[v]) {
    for (PairId pair_id : per_group) DeactivatePair(pair_id, queue, simulating);
  }
}

void Pruner::Recompute() {
  pair_active_.assign(pairs_.size(), 1);
  for (PairId id = 0; id < static_cast<PairId>(pairs_.size()); ++id) {
    for (EdgeId e : pairs_[id].members) {
      if (graph_->edge(e).color == EdgeColor::kRed) {
        pair_active_[id] = 0;
        break;
      }
    }
  }

  alive_.assign(graph_->num_vertices(), 1);
  support_.assign(graph_->num_vertices(), {});
  std::vector<VertexId> queue;
  for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
    support_[v].assign(vertex_pairs_[v].size(), 0);
    bool starved = vertex_pairs_[v].empty();
    for (size_t g = 0; g < vertex_pairs_[v].size(); ++g) {
      for (PairId pair_id : vertex_pairs_[v][g]) {
        if (pair_active_[pair_id]) ++support_[v][g];
      }
      if (support_[v][g] == 0) starved = true;
    }
    if (starved) queue.push_back(v);
  }

  while (!queue.empty()) {
    VertexId v = queue.back();
    queue.pop_back();
    KillVertex(v, queue, /*simulating=*/false);
  }
}

bool Pruner::EdgeValid(EdgeId e) const {
  const GraphEdge& edge = graph_->edge(e);
  if (edge.color == EdgeColor::kRed) return false;
  PairId pair_id = pair_of_edge_[e];
  if (pair_id < 0) return false;  // Pair never formed (parallel pred missing).
  return pair_active_[pair_id] != 0 && alive_[edge.u] && alive_[edge.v];
}

std::vector<EdgeId> Pruner::RemainingTasks() const {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
    const GraphEdge& edge = graph_->edge(e);
    if (edge.is_crowd && edge.color == EdgeColor::kUnknown && EdgeValid(e)) {
      out.push_back(e);
    }
  }
  return out;
}

int64_t Pruner::SimulateCutInvalidation(const std::vector<EdgeId>& cut) {
  sim_deactivated_pairs_.clear();
  sim_killed_vertices_.clear();
  sim_support_deltas_.clear();

  std::vector<PairId> cut_pairs;
  std::vector<VertexId> queue;
  for (EdgeId e : cut) {
    PairId pair_id = pair_of_edge_[e];
    if (pair_id < 0 || !pair_active_[pair_id]) continue;
    cut_pairs.push_back(pair_id);
    DeactivatePair(pair_id, queue, /*simulating=*/true);
  }
  while (!queue.empty()) {
    VertexId v = queue.back();
    queue.pop_back();
    KillVertex(v, queue, /*simulating=*/true);
  }

  // Invalidated edges: unknown crowd members of pairs deactivated by the
  // cascade, excluding the pairs we cut directly.
  int64_t invalidated = 0;
  for (PairId pair_id : sim_deactivated_pairs_) {
    if (std::find(cut_pairs.begin(), cut_pairs.end(), pair_id) != cut_pairs.end()) {
      continue;
    }
    for (EdgeId e : pairs_[pair_id].members) {
      const GraphEdge& edge = graph_->edge(e);
      if (edge.is_crowd && edge.color == EdgeColor::kUnknown) ++invalidated;
    }
  }

  // Roll back.
  for (auto it = sim_support_deltas_.rbegin(); it != sim_support_deltas_.rend(); ++it) {
    support_[it->v][it->gpos] -= it->delta;
  }
  for (VertexId v : sim_killed_vertices_) alive_[v] = 1;
  for (PairId pair_id : sim_deactivated_pairs_) pair_active_[pair_id] = 1;
  return invalidated;
}

}  // namespace cdb
