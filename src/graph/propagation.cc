#include "graph/propagation.h"

#include <algorithm>

#include "common/logging.h"

namespace cdb {

MatchClusters::MatchClusters(int num_vertices)
    : parent_(num_vertices), size_(num_vertices, 1),
      num_clusters_(num_vertices) {
  for (int i = 0; i < num_vertices; ++i) parent_[i] = i;
}

int MatchClusters::Find(int x) {
  while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
  return x;
}

void MatchClusters::Union(int a, int b) {
  int ra = Find(a);
  int rb = Find(b);
  if (ra == rb) return;
  // Union by size; equal sizes keep the smaller root id. Either rule alone
  // would do — the point is one deterministic choice, so the root structure
  // (and hence ClusterPair keys) depends only on the union sequence.
  if (size_[ra] > size_[rb] || (size_[ra] == size_[rb] && ra < rb)) {
    std::swap(ra, rb);
  }
  // ra is absorbed into rb. Re-root ra's facts before the parent link flips,
  // so the fact table never holds a key that is not a live root.
  auto loser = enemies_.find(ra);
  if (loser != enemies_.end()) {
    // Detach first: Union must not observe a half-moved adjacency.
    std::set<int32_t> moved = std::move(loser->second);
    enemies_.erase(loser);
    for (int32_t enemy : moved) {
      enemies_[enemy].erase(ra);
      if (enemy == rb) {
        // The merge internalized a non-match fact: contradictory crowd
        // evidence. Matches win — drop the fact, count the conflict.
        ++conflicts_;
        continue;
      }
      enemies_[rb].insert(enemy);
      enemies_[enemy].insert(rb);
    }
  }
  parent_[ra] = rb;
  size_[rb] += size_[ra];
  --num_clusters_;
}

void MatchClusters::AddNonMatch(int a, int b) {
  int ra = Find(a);
  int rb = Find(b);
  if (ra == rb) {
    // A non-match inside one cluster contradicts the matches that built the
    // cluster; matches win.
    ++conflicts_;
    return;
  }
  enemies_[ra].insert(rb);
  enemies_[rb].insert(ra);
}

bool MatchClusters::KnownNonMatch(int a, int b) {
  int ra = Find(a);
  int rb = Find(b);
  if (ra == rb) return false;
  auto it = enemies_.find(ra);
  return it != enemies_.end() && it->second.count(rb) > 0;
}

DeductionState::DeductionState(const QueryGraph* graph) : graph_(graph) {
  domains_.reserve(static_cast<size_t>(graph_->num_predicates()));
  for (int p = 0; p < graph_->num_predicates(); ++p) {
    domains_.emplace_back(graph_->num_vertices());
  }
}

void DeductionState::Reset() {
  domains_.clear();
  for (int p = 0; p < graph_->num_predicates(); ++p) {
    domains_.emplace_back(graph_->num_vertices());
  }
}

void DeductionState::Observe(EdgeId e, EdgeColor color) {
  CDB_CHECK_MSG(color != EdgeColor::kUnknown,
                "Observe needs an evidenced color");
  MatchClusters& domain = domains_[static_cast<size_t>(graph_->edge_pred(e))];
  if (color == EdgeColor::kBlue) {
    domain.Union(graph_->edge_u(e), graph_->edge_v(e));
  } else {
    domain.AddNonMatch(graph_->edge_u(e), graph_->edge_v(e));
  }
}

EdgeColor DeductionState::Deduce(EdgeId e) {
  MatchClusters& domain = domains_[static_cast<size_t>(graph_->edge_pred(e))];
  if (domain.SameCluster(graph_->edge_u(e), graph_->edge_v(e))) {
    return EdgeColor::kBlue;
  }
  if (domain.KnownNonMatch(graph_->edge_u(e), graph_->edge_v(e))) {
    return EdgeColor::kRed;
  }
  return EdgeColor::kUnknown;
}

std::pair<int32_t, int32_t> DeductionState::ClusterPair(EdgeId e) {
  MatchClusters& domain = domains_[static_cast<size_t>(graph_->edge_pred(e))];
  int32_t ra = domain.Find(graph_->edge_u(e));
  int32_t rb = domain.Find(graph_->edge_v(e));
  if (ra > rb) std::swap(ra, rb);
  return {ra, rb};
}

int64_t DeductionState::conflicts() const {
  int64_t total = 0;
  for (const MatchClusters& domain : domains_) total += domain.conflicts();
  return total;
}

}  // namespace cdb
