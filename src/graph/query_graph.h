// The graph query model (Section 4, Definitions 1-4).
//
// Given a resolved CQL query and the database, the graph has one vertex per
// tuple of each FROM table plus one pseudo-vertex per selection predicate
// (Section 4.2). For each crowd predicate there is an edge between two
// vertices whenever the matching probability (string similarity) is at least
// epsilon; traditional predicates contribute weight-1 edges that are colored
// BLUE without crowdsourcing. Crowd edges start Unknown and are colored BLUE
// (values match) or RED (they do not) from crowd answers.
//
// Storage layout: edges live in parallel SoA columns (endpoints, predicate,
// weight, color, crowd flag) and incidence is a CSR index over
// (vertex, predicate) slots, built count-then-fill by Finalize() with
// postings in the exact order the legacy nested-vector layout emitted them
// (ascending edge id per slot). The optimizer's per-sample loops scan the
// columns directly; the `GraphEdge` accessor remains for cold paths.
#ifndef CDB_GRAPH_QUERY_GRAPH_H_
#define CDB_GRAPH_QUERY_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "cql/analyzer.h"
#include "similarity/sim_join.h"
#include "similarity/similarity.h"

namespace cdb {

enum class EdgeColor : uint8_t {
  kUnknown,  // Not yet asked.
  kBlue,     // Values satisfy the predicate (solid edge in the paper).
  kRed,      // Values do not satisfy it (dotted edge).
};

using VertexId = int32_t;
using EdgeId = int32_t;
inline constexpr VertexId kNoVertex = -1;
inline constexpr EdgeId kNoEdge = -1;

// One tuple (or selection constant) in the graph.
struct Vertex {
  int rel = 0;      // Relation index: base tables first, then one
                    // pseudo-relation per selection predicate.
  int64_t row = 0;  // Row index in the base table; 0 for selection vertices.
};

// A materialized view of one edge, assembled from the SoA columns. Cheap to
// copy; hot loops should prefer the per-column accessors below.
struct GraphEdge {
  VertexId u = kNoVertex;  // Endpoint in the predicate's left relation.
  VertexId v = kNoVertex;  // Endpoint in the predicate's right relation.
  int pred = 0;            // Predicate index.
  double weight = 0.0;     // Matching probability omega(e) in [epsilon, 1].
  EdgeColor color = EdgeColor::kUnknown;
  bool is_crowd = true;    // Traditional-predicate edges are BLUE from birth.
};

// Relation-level description of one predicate.
struct PredicateInfo {
  bool is_crowd = true;
  bool is_selection = false;
  int left_rel = 0;
  int right_rel = 0;  // For selections: the pseudo-relation of the constant.
};

struct GraphOptions {
  SimilarityFunction sim_fn = SimilarityFunction::kQGramJaccard;
  double epsilon = 0.3;  // Edges below this matching probability are dropped.
  // Threads for the per-predicate similarity joins during Build (<= 0 = all
  // hardware threads, 1 = serial). Edge sets are identical either way.
  int num_threads = 0;
  // Sim-join kernel selection + admissible signature pre-filter (see
  // similarity/sim_join.h). Both kernels emit bit-identical edge sets; the
  // knobs exist for the identity tests and the perf baseline.
  SimJoinKernel sim_kernel = SimJoinKernel::kFlat;
  bool sim_signature_filter = true;
  // Optional sink for the simjoin.* funnel counters (borrowed, may be null).
  MetricsRegistry* sim_metrics = nullptr;
};

// Non-owning view over the edge ids of one incidence slot (or a
// concatenation of slots). Points into the graph's CSR index; invalidated if
// the graph is destroyed or rebuilt. Converts implicitly to
// std::vector<EdgeId> for legacy call sites that copied the list.
class EdgeSpan {
 public:
  EdgeSpan() = default;
  EdgeSpan(const EdgeId* data, size_t size) : data_(data), size_(size) {}
  const EdgeId* begin() const { return data_; }
  const EdgeId* end() const { return data_ + size_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  EdgeId operator[](size_t i) const { return data_[i]; }
  EdgeId front() const { return data_[0]; }
  EdgeId back() const { return data_[size_ - 1]; }
  operator std::vector<EdgeId>() const {  // NOLINT(google-explicit-constructor)
    return std::vector<EdgeId>(begin(), end());
  }

 private:
  const EdgeId* data_ = nullptr;
  size_t size_ = 0;
};

// The materialized tuple-level graph. Vertices exist only for tuples with at
// least one edge (isolated tuples cannot participate in any candidate).
class QueryGraph {
 public:
  // An empty graph; populate with Build().
  QueryGraph() = default;

  // Builds the graph for `query`, running similarity joins per crowd
  // predicate and exact matching per traditional predicate.
  static Result<QueryGraph> Build(const ResolvedQuery& query,
                                  const GraphOptions& options);

  // One edge of a hand-built graph (tests, tools, worked paper examples):
  // connects row `left_row` of the predicate's left relation with row
  // `right_row` of its right relation.
  struct SyntheticEdge {
    int pred = 0;
    int64_t left_row = 0;
    int64_t right_row = 0;
    double weight = 0.5;
    bool is_crowd = true;
    EdgeColor color = EdgeColor::kUnknown;
  };

  // Builds a graph directly from predicates and explicit weighted edges,
  // bypassing tables and similarity joins. Relation count is derived from
  // the predicate endpoints; `num_base_relations` counts those that are not
  // selection pseudo-relations.
  static QueryGraph MakeSynthetic(int num_base_relations,
                                  std::vector<PredicateInfo> predicates,
                                  const std::vector<SyntheticEdge>& edges);

  // --- Relation-level structure ---
  int num_relations() const { return static_cast<int>(relation_sizes_.size()); }
  int num_base_relations() const { return num_base_relations_; }
  int num_predicates() const { return static_cast<int>(predicates_.size()); }
  const PredicateInfo& predicate(int p) const { return predicates_[p]; }
  // Predicates incident to relation `rel`.
  const std::vector<int>& relation_predicates(int rel) const {
    return relation_predicates_[rel];
  }
  // Number of distinct tuples of `rel` present in the graph.
  int64_t relation_size(int rel) const { return relation_sizes_[rel]; }

  // --- Vertices and edges ---
  int32_t num_vertices() const { return static_cast<int32_t>(vertices_.size()); }
  int32_t num_edges() const { return static_cast<int32_t>(edge_u_.size()); }
  const Vertex& vertex(VertexId v) const { return vertices_[v]; }
  // Assembles one edge from the columns. Returned by value; binding the
  // result to `const GraphEdge&` at legacy call sites stays valid through
  // lifetime extension.
  GraphEdge edge(EdgeId e) const {
    return GraphEdge{edge_u_[e],
                     edge_v_[e],
                     edge_pred_[e],
                     edge_weight_[e],
                     static_cast<EdgeColor>(edge_color_[e]),
                     edge_is_crowd_[e] != 0};
  }

  // --- SoA edge columns (hot-path accessors) ---
  VertexId edge_u(EdgeId e) const { return edge_u_[e]; }
  VertexId edge_v(EdgeId e) const { return edge_v_[e]; }
  int edge_pred(EdgeId e) const { return edge_pred_[e]; }
  double edge_weight(EdgeId e) const { return edge_weight_[e]; }
  EdgeColor edge_color(EdgeId e) const {
    return static_cast<EdgeColor>(edge_color_[e]);
  }
  bool edge_is_crowd(EdgeId e) const { return edge_is_crowd_[e] != 0; }
  // Whole columns for bulk per-sample scans. Color values are EdgeColor.
  const std::vector<double>& edge_weights() const { return edge_weight_; }
  const std::vector<uint8_t>& edge_colors() const { return edge_color_; }
  const std::vector<uint8_t>& edge_crowd_flags() const {
    return edge_is_crowd_;
  }

  // Vertex lookup; kNoVertex if the tuple has no edges.
  VertexId FindVertex(int rel, int64_t row) const;
  // All vertices belonging to relation `rel`.
  const std::vector<VertexId>& relation_vertices(int rel) const {
    return relation_vertices_[rel];
  }
  // Position of `v` within relation_vertices(vertex(v).rel) — a dense
  // per-relation tuple index. Flat replacement for the hash-map position
  // lookups the flow layering used to rebuild per call.
  int32_t relation_position(VertexId v) const { return vertex_rel_pos_[v]; }

  // Edges incident to `v` for predicate `p` (empty if none). Postings are in
  // ascending edge-id order, matching the legacy nested-vector emission.
  EdgeSpan IncidentEdges(VertexId v, int p) const;
  // All edges incident to `v` (concatenation over predicates). Allocates;
  // hot callers should use AppendIncidentEdges with a reused buffer.
  std::vector<EdgeId> AllIncidentEdges(VertexId v) const;
  // Appends all edges incident to `v` to `out` (same order as
  // AllIncidentEdges) without allocating a fresh vector per call.
  void AppendIncidentEdges(VertexId v, std::vector<EdgeId>* out) const;
  // The endpoint of `e` opposite to `v`.
  VertexId Opposite(EdgeId e, VertexId v) const;

  // Colors an edge from a crowd answer (or inference). Coloring an already
  // colored edge with a different color is a programmer error.
  void SetColor(EdgeId e, EdgeColor color);

  // Flips an already-colored edge when new evidence changes the inferred
  // truth (late-answer reconciliation under an unreliable crowd). Callers
  // must re-run pruning afterwards — aliveness derived from the old color is
  // stale.
  void RecolorEdge(EdgeId e, EdgeColor color);

  // Reverts a colored crowd edge to kUnknown. Only the answer-propagation
  // layer may do this, and only to colors it deduced itself (a late answer
  // invalidated the deduction's premises; the closure is re-derived). Crowd
  // evidence is never uncolored, and born-colored traditional edges never
  // change.
  void UncolorEdge(EdgeId e);

  // Convenience counters.
  int64_t CountEdges(EdgeColor color) const;

  // Renders a small graph for debugging: one line per edge.
  std::string DebugString() const;

 private:
  VertexId InternVertex(int rel, int64_t row);
  void AddEdge(VertexId u, VertexId v, int p, double weight, bool is_crowd,
               EdgeColor color);
  // Builds the CSR incidence index (count-then-fill). Called once at the end
  // of Build()/MakeSynthetic(); edge/vertex sets are frozen afterwards
  // (colors stay mutable).
  void Finalize();

  size_t IncidenceSlot(VertexId v, int p) const {
    return static_cast<size_t>(v) * static_cast<size_t>(num_predicates()) +
           static_cast<size_t>(p);
  }

  int num_base_relations_ = 0;
  std::vector<PredicateInfo> predicates_;
  std::vector<std::vector<int>> relation_predicates_;
  std::vector<int64_t> relation_sizes_;

  std::vector<Vertex> vertices_;
  // SoA edge columns; index is EdgeId.
  std::vector<VertexId> edge_u_;
  std::vector<VertexId> edge_v_;
  std::vector<int> edge_pred_;
  std::vector<double> edge_weight_;
  std::vector<uint8_t> edge_color_;     // EdgeColor values.
  std::vector<uint8_t> edge_is_crowd_;  // 0/1.
  // vertex_index_[rel] maps row -> VertexId (interning only; decision paths
  // use the flat columns).
  std::vector<std::unordered_map<int64_t, VertexId>> vertex_index_;
  std::vector<std::vector<VertexId>> relation_vertices_;
  // vertex_rel_pos_[v] = index of v within relation_vertices_[vertex(v).rel].
  std::vector<int32_t> vertex_rel_pos_;
  // CSR incidence over (vertex, predicate) slots: edge ids for slot s live in
  // incidence_edges_[incidence_offsets_[s] .. incidence_offsets_[s + 1]).
  std::vector<uint32_t> incidence_offsets_;
  std::vector<EdgeId> incidence_edges_;
  bool finalized_ = false;
};

}  // namespace cdb

#endif  // CDB_GRAPH_QUERY_GRAPH_H_
