// The graph query model (Section 4, Definitions 1-4).
//
// Given a resolved CQL query and the database, the graph has one vertex per
// tuple of each FROM table plus one pseudo-vertex per selection predicate
// (Section 4.2). For each crowd predicate there is an edge between two
// vertices whenever the matching probability (string similarity) is at least
// epsilon; traditional predicates contribute weight-1 edges that are colored
// BLUE without crowdsourcing. Crowd edges start Unknown and are colored BLUE
// (values match) or RED (they do not) from crowd answers.
#ifndef CDB_GRAPH_QUERY_GRAPH_H_
#define CDB_GRAPH_QUERY_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "cql/analyzer.h"
#include "similarity/sim_join.h"
#include "similarity/similarity.h"

namespace cdb {

enum class EdgeColor : uint8_t {
  kUnknown,  // Not yet asked.
  kBlue,     // Values satisfy the predicate (solid edge in the paper).
  kRed,      // Values do not satisfy it (dotted edge).
};

using VertexId = int32_t;
using EdgeId = int32_t;
inline constexpr VertexId kNoVertex = -1;
inline constexpr EdgeId kNoEdge = -1;

// One tuple (or selection constant) in the graph.
struct Vertex {
  int rel = 0;      // Relation index: base tables first, then one
                    // pseudo-relation per selection predicate.
  int64_t row = 0;  // Row index in the base table; 0 for selection vertices.
};

struct GraphEdge {
  VertexId u = kNoVertex;  // Endpoint in the predicate's left relation.
  VertexId v = kNoVertex;  // Endpoint in the predicate's right relation.
  int pred = 0;            // Predicate index.
  double weight = 0.0;     // Matching probability omega(e) in [epsilon, 1].
  EdgeColor color = EdgeColor::kUnknown;
  bool is_crowd = true;    // Traditional-predicate edges are BLUE from birth.
};

// Relation-level description of one predicate.
struct PredicateInfo {
  bool is_crowd = true;
  bool is_selection = false;
  int left_rel = 0;
  int right_rel = 0;  // For selections: the pseudo-relation of the constant.
};

struct GraphOptions {
  SimilarityFunction sim_fn = SimilarityFunction::kQGramJaccard;
  double epsilon = 0.3;  // Edges below this matching probability are dropped.
  // Threads for the per-predicate similarity joins during Build (<= 0 = all
  // hardware threads, 1 = serial). Edge sets are identical either way.
  int num_threads = 0;
  // Sim-join kernel selection + admissible signature pre-filter (see
  // similarity/sim_join.h). Both kernels emit bit-identical edge sets; the
  // knobs exist for the identity tests and the perf baseline.
  SimJoinKernel sim_kernel = SimJoinKernel::kFlat;
  bool sim_signature_filter = true;
  // Optional sink for the simjoin.* funnel counters (borrowed, may be null).
  MetricsRegistry* sim_metrics = nullptr;
};

// The materialized tuple-level graph. Vertices exist only for tuples with at
// least one edge (isolated tuples cannot participate in any candidate).
class QueryGraph {
 public:
  // An empty graph; populate with Build().
  QueryGraph() = default;

  // Builds the graph for `query`, running similarity joins per crowd
  // predicate and exact matching per traditional predicate.
  static Result<QueryGraph> Build(const ResolvedQuery& query,
                                  const GraphOptions& options);

  // One edge of a hand-built graph (tests, tools, worked paper examples):
  // connects row `left_row` of the predicate's left relation with row
  // `right_row` of its right relation.
  struct SyntheticEdge {
    int pred = 0;
    int64_t left_row = 0;
    int64_t right_row = 0;
    double weight = 0.5;
    bool is_crowd = true;
    EdgeColor color = EdgeColor::kUnknown;
  };

  // Builds a graph directly from predicates and explicit weighted edges,
  // bypassing tables and similarity joins. Relation count is derived from
  // the predicate endpoints; `num_base_relations` counts those that are not
  // selection pseudo-relations.
  static QueryGraph MakeSynthetic(int num_base_relations,
                                  std::vector<PredicateInfo> predicates,
                                  const std::vector<SyntheticEdge>& edges);

  // --- Relation-level structure ---
  int num_relations() const { return static_cast<int>(relation_sizes_.size()); }
  int num_base_relations() const { return num_base_relations_; }
  int num_predicates() const { return static_cast<int>(predicates_.size()); }
  const PredicateInfo& predicate(int p) const { return predicates_[p]; }
  // Predicates incident to relation `rel`.
  const std::vector<int>& relation_predicates(int rel) const {
    return relation_predicates_[rel];
  }
  // Number of distinct tuples of `rel` present in the graph.
  int64_t relation_size(int rel) const { return relation_sizes_[rel]; }

  // --- Vertices and edges ---
  int32_t num_vertices() const { return static_cast<int32_t>(vertices_.size()); }
  int32_t num_edges() const { return static_cast<int32_t>(edges_.size()); }
  const Vertex& vertex(VertexId v) const { return vertices_[v]; }
  const GraphEdge& edge(EdgeId e) const { return edges_[e]; }

  // Vertex lookup; kNoVertex if the tuple has no edges.
  VertexId FindVertex(int rel, int64_t row) const;
  // All vertices belonging to relation `rel`.
  const std::vector<VertexId>& relation_vertices(int rel) const {
    return relation_vertices_[rel];
  }

  // Edges incident to `v` for predicate `p` (empty if none).
  const std::vector<EdgeId>& IncidentEdges(VertexId v, int p) const;
  // All edges incident to `v` (concatenation over predicates).
  std::vector<EdgeId> AllIncidentEdges(VertexId v) const;
  // The endpoint of `e` opposite to `v`.
  VertexId Opposite(EdgeId e, VertexId v) const;

  // Colors an edge from a crowd answer (or inference). Coloring an already
  // colored edge with a different color is a programmer error.
  void SetColor(EdgeId e, EdgeColor color);

  // Flips an already-colored edge when new evidence changes the inferred
  // truth (late-answer reconciliation under an unreliable crowd). Callers
  // must re-run pruning afterwards — aliveness derived from the old color is
  // stale.
  void RecolorEdge(EdgeId e, EdgeColor color);

  // Convenience counters.
  int64_t CountEdges(EdgeColor color) const;

  // Renders a small graph for debugging: one line per edge.
  std::string DebugString() const;

 private:
  VertexId InternVertex(int rel, int64_t row);
  void AddEdge(VertexId u, VertexId v, int p, double weight, bool is_crowd,
               EdgeColor color);

  int num_base_relations_ = 0;
  std::vector<PredicateInfo> predicates_;
  std::vector<std::vector<int>> relation_predicates_;
  std::vector<int64_t> relation_sizes_;

  std::vector<Vertex> vertices_;
  std::vector<GraphEdge> edges_;
  // vertex_index_[rel] maps row -> VertexId.
  std::vector<std::unordered_map<int64_t, VertexId>> vertex_index_;
  std::vector<std::vector<VertexId>> relation_vertices_;
  // incident_[v][p] lists edge ids of predicate p at vertex v.
  std::vector<std::vector<std::vector<EdgeId>>> incident_;

  static const std::vector<EdgeId> kEmptyEdgeList;
};

}  // namespace cdb

#endif  // CDB_GRAPH_QUERY_GRAPH_H_
