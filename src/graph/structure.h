// Join-structure analysis (Section 5.1.1): classify the relation-level join
// shape (chain / star / tree / cyclic) and transform trees and cyclic graphs
// into chains so the chain min-cut machinery applies.
#ifndef CDB_GRAPH_STRUCTURE_H_
#define CDB_GRAPH_STRUCTURE_H_

#include <vector>

#include "graph/query_graph.h"

namespace cdb {

enum class JoinStructure { kChain, kStar, kTree, kCyclic };

const char* JoinStructureName(JoinStructure s);

// The relation-level multigraph with parallel predicates collapsed into
// groups (a candidate realizes all predicates of a group on one tuple pair).
struct RelGraph {
  struct Group {
    int rel_a = 0;
    int rel_b = 0;
    std::vector<int> preds;
  };
  std::vector<Group> groups;
  std::vector<std::vector<int>> adjacent_groups;  // rel -> group ids.
};

RelGraph BuildRelGraph(const QueryGraph& graph);

JoinStructure Classify(const RelGraph& rel_graph);

// The star's center relation (every group touches it); only meaningful when
// Classify returns kStar. Returns -1 otherwise.
int StarCenter(const RelGraph& rel_graph);

// A chain of relation occurrences. Adjacent occurrences are connected by one
// group. Trees become chains by walking the longest path and detouring
// down-and-back into off-path subtrees (Section 5.1.1); cyclic graphs first
// drop to a spanning tree with each non-tree group re-attached through a
// duplicated relation occurrence.
struct ChainPlan {
  std::vector<int> occ_rel;    // Relation of each occurrence (size m >= 1).
  std::vector<int> occ_group;  // Connecting group per step (size m - 1).
};

ChainPlan BuildChainPlan(const QueryGraph& graph);

}  // namespace cdb

#endif  // CDB_GRAPH_STRUCTURE_H_
