#include "graph/structure.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace cdb {
namespace {

// Spanning-tree node: a relation occurrence. Non-tree groups of cyclic
// queries re-attach through duplicated occurrences, per Section 5.1.1.
struct TreeNode {
  int rel = 0;
  std::vector<std::pair<int, int>> children;  // (child node, connecting group).
  int parent = -1;
  int parent_group = -1;
};

struct SpanningTree {
  std::vector<TreeNode> nodes;  // nodes[0] is the root.
};

SpanningTree BuildSpanningTree(const RelGraph& rel_graph, int num_relations) {
  SpanningTree tree;
  std::vector<int> node_of_rel(num_relations, -1);
  std::vector<bool> group_used(rel_graph.groups.size(), false);

  tree.nodes.push_back(TreeNode{0, {}, -1, -1});
  node_of_rel[0] = 0;
  // BFS over relations.
  std::vector<int> queue = {0};
  for (size_t head = 0; head < queue.size(); ++head) {
    int rel = queue[head];
    for (int g : rel_graph.adjacent_groups[rel]) {
      const RelGraph::Group& group = rel_graph.groups[g];
      int other = group.rel_a == rel ? group.rel_b : group.rel_a;
      if (node_of_rel[other] != -1) continue;
      group_used[g] = true;
      int child = static_cast<int>(tree.nodes.size());
      tree.nodes.push_back(TreeNode{other, {}, node_of_rel[rel], g});
      tree.nodes[node_of_rel[rel]].children.push_back({child, g});
      node_of_rel[other] = child;
      queue.push_back(other);
    }
  }
  // Re-attach non-tree groups through duplicated occurrences.
  for (size_t g = 0; g < rel_graph.groups.size(); ++g) {
    if (group_used[g]) continue;
    const RelGraph::Group& group = rel_graph.groups[g];
    int anchor = node_of_rel[group.rel_a];
    int dup_rel = group.rel_b;
    CDB_CHECK(anchor != -1);
    int child = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back(TreeNode{dup_rel, {}, anchor, static_cast<int>(g)});
    tree.nodes[anchor].children.push_back({child, static_cast<int>(g)});
  }
  return tree;
}

// Longest path in the tree (two-pass BFS on node indexes). Returns the node
// sequence from one end to the other.
std::vector<int> LongestPath(const SpanningTree& tree) {
  auto farthest = [&](int start) {
    std::vector<int> dist(tree.nodes.size(), -1);
    std::vector<int> prev(tree.nodes.size(), -1);
    std::vector<int> queue = {start};
    dist[start] = 0;
    int best = start;
    for (size_t head = 0; head < queue.size(); ++head) {
      int n = queue[head];
      std::vector<int> neighbors;
      for (auto [c, g] : tree.nodes[n].children) neighbors.push_back(c);
      if (tree.nodes[n].parent != -1) neighbors.push_back(tree.nodes[n].parent);
      for (int m : neighbors) {
        if (dist[m] != -1) continue;
        dist[m] = dist[n] + 1;
        prev[m] = n;
        if (dist[m] > dist[best]) best = m;
        queue.push_back(m);
      }
    }
    return std::make_pair(best, prev);
  };
  auto [end_a, prev_a] = farthest(0);
  auto [end_b, prev_b] = farthest(end_a);
  std::vector<int> path;
  for (int n = end_b; n != -1; n = prev_b[n]) path.push_back(n);
  // path runs end_b -> end_a; orientation does not matter.
  return path;
}

int GroupBetween(const SpanningTree& tree, int a, int b) {
  for (auto [c, g] : tree.nodes[a].children) {
    if (c == b) return g;
  }
  if (tree.nodes[a].parent == b) return tree.nodes[a].parent_group;
  CDB_CHECK_MSG(false, "nodes are not adjacent in the spanning tree");
  return -1;
}

// Appends an Euler down-and-back walk of the subtree rooted at `node`,
// entered from `from` (excluded from recursion). The walk starts and ends at
// `node`; the caller has already emitted `node`.
void EulerDetour(const SpanningTree& tree, int node, int from,
                 ChainPlan& plan) {
  std::vector<int> neighbors;
  for (auto [c, g] : tree.nodes[node].children) neighbors.push_back(c);
  if (tree.nodes[node].parent != -1) neighbors.push_back(tree.nodes[node].parent);
  for (int next : neighbors) {
    if (next == from) continue;
    int group = GroupBetween(tree, node, next);
    plan.occ_group.push_back(group);
    plan.occ_rel.push_back(tree.nodes[next].rel);
    EulerDetour(tree, next, node, plan);
    plan.occ_group.push_back(group);
    plan.occ_rel.push_back(tree.nodes[node].rel);
  }
}

}  // namespace

const char* JoinStructureName(JoinStructure s) {
  switch (s) {
    case JoinStructure::kChain:
      return "chain";
    case JoinStructure::kStar:
      return "star";
    case JoinStructure::kTree:
      return "tree";
    case JoinStructure::kCyclic:
      return "cyclic";
  }
  return "?";
}

RelGraph BuildRelGraph(const QueryGraph& graph) {
  RelGraph out;
  std::map<std::pair<int, int>, int> index;
  for (int p = 0; p < graph.num_predicates(); ++p) {
    const PredicateInfo& info = graph.predicate(p);
    auto key = info.left_rel < info.right_rel
                   ? std::make_pair(info.left_rel, info.right_rel)
                   : std::make_pair(info.right_rel, info.left_rel);
    auto [it, inserted] = index.try_emplace(key, static_cast<int>(out.groups.size()));
    if (inserted) out.groups.push_back({key.first, key.second, {}});
    out.groups[it->second].preds.push_back(p);
  }
  out.adjacent_groups.assign(graph.num_relations(), {});
  for (size_t g = 0; g < out.groups.size(); ++g) {
    out.adjacent_groups[out.groups[g].rel_a].push_back(static_cast<int>(g));
    out.adjacent_groups[out.groups[g].rel_b].push_back(static_cast<int>(g));
  }
  return out;
}

JoinStructure Classify(const RelGraph& rel_graph) {
  const size_t n = rel_graph.adjacent_groups.size();
  // Connected (guaranteed by the analyzer), so a cycle exists iff
  // #groups >= #relations.
  if (rel_graph.groups.size() >= n) return JoinStructure::kCyclic;
  size_t max_degree = 0;
  for (const auto& adj : rel_graph.adjacent_groups) {
    max_degree = std::max(max_degree, adj.size());
  }
  if (max_degree <= 2) return JoinStructure::kChain;
  if (StarCenter(rel_graph) >= 0) return JoinStructure::kStar;
  return JoinStructure::kTree;
}

int StarCenter(const RelGraph& rel_graph) {
  const size_t n = rel_graph.adjacent_groups.size();
  if (n < 3 || rel_graph.groups.size() != n - 1) return -1;
  for (size_t rel = 0; rel < n; ++rel) {
    if (rel_graph.adjacent_groups[rel].size() == n - 1) {
      return static_cast<int>(rel);
    }
  }
  return -1;
}

ChainPlan BuildChainPlan(const QueryGraph& graph) {
  RelGraph rel_graph = BuildRelGraph(graph);
  SpanningTree tree = BuildSpanningTree(rel_graph, graph.num_relations());
  std::vector<int> path = LongestPath(tree);
  std::vector<bool> on_path(tree.nodes.size(), false);
  for (int n : path) on_path[n] = true;

  ChainPlan plan;
  plan.occ_rel.push_back(tree.nodes[path[0]].rel);
  for (size_t i = 0; i < path.size(); ++i) {
    int node = path[i];
    // Detour into every off-path subtree hanging off this node.
    std::vector<int> neighbors;
    for (auto [c, g] : tree.nodes[node].children) neighbors.push_back(c);
    if (tree.nodes[node].parent != -1) neighbors.push_back(tree.nodes[node].parent);
    for (int next : neighbors) {
      if (on_path[next]) continue;
      int group = GroupBetween(tree, node, next);
      plan.occ_group.push_back(group);
      plan.occ_rel.push_back(tree.nodes[next].rel);
      EulerDetour(tree, next, node, plan);
      plan.occ_group.push_back(group);
      plan.occ_rel.push_back(tree.nodes[node].rel);
    }
    // Advance along the path spine.
    if (i + 1 < path.size()) {
      int group = GroupBetween(tree, node, path[i + 1]);
      plan.occ_group.push_back(group);
      plan.occ_rel.push_back(tree.nodes[path[i + 1]].rel);
    }
  }
  return plan;
}

}  // namespace cdb
