#include "graph/candidates.h"

#include <algorithm>

#include "common/logging.h"

namespace cdb {
namespace {

bool NonRed(const GraphEdge& edge) { return edge.color != EdgeColor::kRed; }
bool IsBlue(const GraphEdge& edge) { return edge.color == EdgeColor::kBlue; }

// Orders relations so every relation after the first is connected by a
// predicate to an earlier one. Starts from `root`.
std::vector<int> RelationOrder(const QueryGraph& graph, int root) {
  std::vector<int> order;
  std::vector<bool> placed(graph.num_relations(), false);
  order.push_back(root);
  placed[root] = true;
  // The analyzer guarantees connectivity, so a simple BFS terminates with all
  // relations placed.
  for (size_t head = 0; head < order.size(); ++head) {
    int rel = order[head];
    for (int p : graph.relation_predicates(rel)) {
      const PredicateInfo& info = graph.predicate(p);
      int other = info.left_rel == rel ? info.right_rel : info.left_rel;
      if (!placed[other]) {
        placed[other] = true;
        order.push_back(other);
      }
    }
  }
  // Every relation must be reachable: a disconnected predicate graph has no
  // connected candidate covering all relations.
  CDB_CHECK_EQ(order.size(), static_cast<size_t>(graph.num_relations()));
  return order;
}

// Backtracking search over assignments. `on_complete` returns false to abort
// the whole search (used for existence tests); Search returns false iff
// aborted.
bool Search(const QueryGraph& graph, const std::vector<int>& order,
            size_t depth, Assignment& assignment,
            const std::vector<VertexId>& fixed,
            const std::function<bool(const GraphEdge&)>& edge_ok,
            const std::function<bool(const Assignment&)>& on_complete) {
  if (depth == order.size()) return on_complete(assignment);
  const int rel = order[depth];

  // Predicates from `rel` back to already-placed relations. All must be
  // satisfiable for a vertex to extend the assignment.
  std::vector<int> back_preds;
  for (int p : graph.relation_predicates(rel)) {
    const PredicateInfo& info = graph.predicate(p);
    int other = info.left_rel == rel ? info.right_rel : info.left_rel;
    if (assignment[other] != kNoVertex) back_preds.push_back(p);
  }

  auto vertex_feasible = [&](VertexId w) {
    for (int p : back_preds) {
      const PredicateInfo& info = graph.predicate(p);
      int other = info.left_rel == rel ? info.right_rel : info.left_rel;
      EdgeId e = FindEdgeBetween(graph, w, assignment[other], p);
      if (e == kNoEdge || !edge_ok(graph.edge(e))) return false;
    }
    return true;
  };

  auto try_vertex = [&](VertexId w) -> bool {
    if (!vertex_feasible(w)) return true;  // Keep searching siblings.
    assignment[rel] = w;
    bool keep_going =
        Search(graph, order, depth + 1, assignment, fixed, edge_ok, on_complete);
    assignment[rel] = kNoVertex;
    return keep_going;
  };

  if (fixed[rel] != kNoVertex) return try_vertex(fixed[rel]);

  if (!back_preds.empty()) {
    // Enumerate only vertices adjacent (via the first back predicate) to the
    // placed endpoint, instead of the whole relation.
    const int p = back_preds[0];
    const PredicateInfo& info = graph.predicate(p);
    int other = info.left_rel == rel ? info.right_rel : info.left_rel;
    for (EdgeId e : graph.IncidentEdges(assignment[other], p)) {
      if (!edge_ok(graph.edge(e))) continue;
      VertexId w = graph.Opposite(e, assignment[other]);
      if (!try_vertex(w)) return false;
    }
    return true;
  }

  for (VertexId w : graph.relation_vertices(rel)) {
    if (!try_vertex(w)) return false;
  }
  return true;
}

// Chooses a root: prefer a fixed relation, else the smallest relation.
int ChooseRoot(const QueryGraph& graph, const std::vector<VertexId>& fixed) {
  for (int rel = 0; rel < graph.num_relations(); ++rel) {
    if (fixed[rel] != kNoVertex) return rel;
  }
  int best = 0;
  for (int rel = 1; rel < graph.num_relations(); ++rel) {
    if (graph.relation_size(rel) < graph.relation_size(best)) best = rel;
  }
  return best;
}

}  // namespace

EdgeId FindEdgeBetween(const QueryGraph& graph, VertexId u, VertexId v, int p) {
  const std::vector<EdgeId>& edges = graph.IncidentEdges(u, p);
  for (EdgeId e : edges) {
    if (graph.Opposite(e, u) == v) return e;
  }
  return kNoEdge;
}

std::vector<EdgeId> AssignmentEdges(const QueryGraph& graph,
                                    const Assignment& assignment) {
  std::vector<EdgeId> out;
  out.reserve(graph.num_predicates());
  for (int p = 0; p < graph.num_predicates(); ++p) {
    const PredicateInfo& info = graph.predicate(p);
    EdgeId e = FindEdgeBetween(graph, assignment[info.left_rel],
                               assignment[info.right_rel], p);
    CDB_CHECK_NE(e, kNoEdge);
    out.push_back(e);
  }
  return out;
}

bool ExistsCandidate(const QueryGraph& graph,
                     const std::vector<VertexId>& fixed,
                     const std::function<bool(const GraphEdge&)>& edge_ok) {
  CDB_CHECK_EQ(fixed.size(), static_cast<size_t>(graph.num_relations()));
  std::vector<int> order = RelationOrder(graph, ChooseRoot(graph, fixed));
  Assignment assignment(graph.num_relations(), kNoVertex);
  bool found = false;
  Search(graph, order, 0, assignment, fixed, edge_ok,
         [&](const Assignment&) {
           found = true;
           return false;  // Stop at the first hit.
         });
  return found;
}

bool EdgeValidExact(const QueryGraph& graph, EdgeId e) {
  const GraphEdge& edge = graph.edge(e);
  if (edge.color == EdgeColor::kRed) return false;
  std::vector<VertexId> fixed(graph.num_relations(), kNoVertex);
  fixed[graph.vertex(edge.u).rel] = edge.u;
  fixed[graph.vertex(edge.v).rel] = edge.v;
  return ExistsCandidate(graph, fixed, NonRed);
}

bool EdgesConflict(const QueryGraph& graph, EdgeId e1, EdgeId e2) {
  if (e1 == e2) return true;
  const GraphEdge& a = graph.edge(e1);
  const GraphEdge& b = graph.edge(e2);
  // Rule 2 of Section 5.2: two different tuples from the same relation can
  // never be in one candidate, so such edges are non-conflict.
  for (VertexId va : {a.u, a.v}) {
    for (VertexId vb : {b.u, b.v}) {
      if (graph.vertex(va).rel == graph.vertex(vb).rel && va != vb) return false;
    }
  }
  std::vector<VertexId> fixed(graph.num_relations(), kNoVertex);
  fixed[graph.vertex(a.u).rel] = a.u;
  fixed[graph.vertex(a.v).rel] = a.v;
  fixed[graph.vertex(b.u).rel] = b.u;
  fixed[graph.vertex(b.v).rel] = b.v;
  return ExistsCandidate(graph, fixed, NonRed);
}

std::vector<Assignment> FindAnswers(const QueryGraph& graph) {
  std::vector<int> order =
      RelationOrder(graph, ChooseRoot(graph, std::vector<VertexId>(
                                                 graph.num_relations(), kNoVertex)));
  Assignment assignment(graph.num_relations(), kNoVertex);
  std::vector<VertexId> fixed(graph.num_relations(), kNoVertex);
  std::vector<Assignment> answers;
  Search(graph, order, 0, assignment, fixed, IsBlue,
         [&](const Assignment& a) {
           answers.push_back(a);
           return true;
         });
  return answers;
}

void EnumerateCandidates(const QueryGraph& graph,
                         const std::function<bool(const Assignment&)>& visit) {
  std::vector<int> order =
      RelationOrder(graph, ChooseRoot(graph, std::vector<VertexId>(
                                                 graph.num_relations(), kNoVertex)));
  Assignment assignment(graph.num_relations(), kNoVertex);
  std::vector<VertexId> fixed(graph.num_relations(), kNoVertex);
  Search(graph, order, 0, assignment, fixed, NonRed, visit);
}

std::optional<ScoredCandidate> BestCandidate(const QueryGraph& graph,
                                             bool require_unknown) {
  // Dedicated recursion with product tracking and a monotone bound: edge
  // weights are <= 1, so the running product only decreases.
  std::vector<int> order =
      RelationOrder(graph, ChooseRoot(graph, std::vector<VertexId>(
                                                 graph.num_relations(), kNoVertex)));
  Assignment assignment(graph.num_relations(), kNoVertex);
  std::optional<ScoredCandidate> best;

  // The weight an edge contributes: BLUE edges are certain.
  auto edge_weight = [](const GraphEdge& edge) {
    return edge.color == EdgeColor::kBlue ? 1.0 : edge.weight;
  };

  std::function<void(size_t, double, bool)> recurse = [&](size_t depth,
                                                          double product,
                                                          bool any_unknown) {
    // Bound: weights are <= 1, so the product can only fall; a branch that is
    // already no better than the incumbent cannot strictly improve.
    if (best && product <= best->probability) return;
    if (depth == order.size()) {
      if (require_unknown && !any_unknown) return;
      if (!best || product > best->probability) {
        best = ScoredCandidate{assignment, product};
      }
      return;
    }
    const int rel = order[depth];
    std::vector<int> back_preds;
    for (int p : graph.relation_predicates(rel)) {
      const PredicateInfo& info = graph.predicate(p);
      int other = info.left_rel == rel ? info.right_rel : info.left_rel;
      if (assignment[other] != kNoVertex) back_preds.push_back(p);
    }
    auto try_vertex = [&](VertexId w) {
      double new_product = product;
      bool new_unknown = any_unknown;
      for (int p : back_preds) {
        const PredicateInfo& info = graph.predicate(p);
        int other = info.left_rel == rel ? info.right_rel : info.left_rel;
        EdgeId e = FindEdgeBetween(graph, w, assignment[other], p);
        if (e == kNoEdge || graph.edge(e).color == EdgeColor::kRed) return;
        new_product *= edge_weight(graph.edge(e));
        new_unknown = new_unknown || graph.edge(e).color == EdgeColor::kUnknown;
      }
      assignment[rel] = w;
      recurse(depth + 1, new_product, new_unknown);
      assignment[rel] = kNoVertex;
    };
    if (!back_preds.empty()) {
      const int p = back_preds[0];
      const PredicateInfo& info = graph.predicate(p);
      int other = info.left_rel == rel ? info.right_rel : info.left_rel;
      for (EdgeId e : graph.IncidentEdges(assignment[other], p)) {
        if (graph.edge(e).color == EdgeColor::kRed) continue;
        try_vertex(graph.Opposite(e, assignment[other]));
      }
    } else {
      for (VertexId w : graph.relation_vertices(rel)) try_vertex(w);
    }
  };
  recurse(0, 1.0, false);
  return best;
}

}  // namespace cdb
