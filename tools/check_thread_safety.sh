#!/usr/bin/env bash
# Compile-fail probes for the concurrency capability model
# (src/common/thread_annotations.h + src/common/mutex.h). Three probes:
#
#   1. (clang) a TU reading a CDB_GUARDED_BY member without holding its
#      mutex must NOT compile under -Werror=thread-safety-analysis — proves
#      the annotations are live attributes, not decorative macros;
#   2. (clang) the same TU with proper MutexLock scopes must compile clean —
#      proves the wrappers' ACQUIRE/RELEASE contracts line up so the clean
#      build is meaningful, not vacuous;
#   3. (always) a fake mini-repo declaring a raw, unannotated std::mutex
#      member must be rejected by cdb_lint.py's mutex-annotation rule —
#      proves the every-mutex-is-annotated invariant is enforced even on
#      toolchains without clang.
#
# Probes 1-2 skip with a notice when no clang++ is on PATH (the GCC-only
# image): GCC defines the CDB_* annotation macros away, so only clang can
# check them. CI runs the clang-thread-safety job where clang is guaranteed.
#
# Usage: tools/check_thread_safety.sh <repo-root>
set -u -o pipefail

ROOT="${1:?usage: check_thread_safety.sh <repo-root>}"

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

# ---------------------------------------------------------------------------
# Probes 1-2: clang thread-safety analysis actually fires / accepts.
# ---------------------------------------------------------------------------

CLANGXX=""
for candidate in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
                 clang++-16 clang++-15 clang++-14; do
  if command -v "${candidate}" > /dev/null 2>&1; then
    CLANGXX="${candidate}"
    break
  fi
done

if [[ -z "${CLANGXX}" ]]; then
  echo "NOTICE: no clang++ on PATH; skipping the -Wthread-safety" \
       "compile probes (GCC defines the annotation macros away)." >&2
else
  CLANG_FLAGS=(-std=c++20 -I"${ROOT}/src" -fsyntax-only
               -Wthread-safety -Wthread-safety-beta
               -Werror=thread-safety-analysis)

  cat > "${TMP}/unguarded.cc" <<'EOF'
#include "common/mutex.h"
#include "common/thread_annotations.h"
namespace cdb {
class Account {
 public:
  int Read() { return balance_; }  // unguarded read: must be a hard error
 private:
  Mutex mu_;
  int balance_ CDB_GUARDED_BY(mu_) = 0;
};
}  // namespace cdb
EOF

  if "${CLANGXX}" "${CLANG_FLAGS[@]}" "${TMP}/unguarded.cc" \
      2> "${TMP}/unguarded.err"; then
    echo "FAIL: a TU reading a CDB_GUARDED_BY member without the lock" \
         "compiled cleanly — the thread-safety annotations are not firing" >&2
    exit 1
  fi
  if ! grep -q 'thread-safety\|requires holding' "${TMP}/unguarded.err"; then
    echo "FAIL: unguarded-access probe failed to compile, but not because" \
         "of thread-safety analysis:" >&2
    cat "${TMP}/unguarded.err" >&2
    exit 1
  fi

  cat > "${TMP}/guarded.cc" <<'EOF'
#include "common/mutex.h"
#include "common/thread_annotations.h"
namespace cdb {
class Account {
 public:
  int Read() CDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return balance_;
  }
  void Add(int delta) CDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    AddLocked(delta);
  }
 private:
  void AddLocked(int delta) CDB_REQUIRES(mu_) { balance_ += delta; }
  Mutex mu_;
  int balance_ CDB_GUARDED_BY(mu_) = 0;
};
}  // namespace cdb
EOF

  if ! "${CLANGXX}" "${CLANG_FLAGS[@]}" "${TMP}/guarded.cc" \
      2> "${TMP}/guarded.err"; then
    echo "FAIL: a TU using the sanctioned MutexLock / CDB_REQUIRES patterns" \
         "did not compile under thread-safety analysis:" >&2
    cat "${TMP}/guarded.err" >&2
    exit 1
  fi
  echo "PASS: clang thread-safety analysis rejects unguarded access and" \
       "accepts the sanctioned locking patterns (${CLANGXX})"
fi

# ---------------------------------------------------------------------------
# Probe 3: cdb_lint's mutex-annotation rule rejects a raw std::mutex member.
# Runs everywhere — it needs only python3.
# ---------------------------------------------------------------------------

if ! command -v python3 > /dev/null 2>&1; then
  echo "NOTICE: python3 not found; skipping the cdb_lint mutex probe." >&2
  exit 0
fi

FAKE="${TMP}/fake-repo"
mkdir -p "${FAKE}/src/exec"
: > "${FAKE}/src/CMakeLists.txt"
cat > "${FAKE}/src/exec/probe.h" <<'EOF'
#ifndef CDB_EXEC_PROBE_H_
#define CDB_EXEC_PROBE_H_
#include <mutex>
namespace cdb {
class Probe {
 private:
  std::mutex mu_;  // raw, unannotated: the linter must reject this
};
}  // namespace cdb
#endif  // CDB_EXEC_PROBE_H_
EOF

if python3 "${ROOT}/tools/cdb_lint.py" --repo-root "${FAKE}" \
    > "${TMP}/lint.out" 2>&1; then
  echo "FAIL: cdb_lint accepted a raw unannotated std::mutex member —" \
       "the mutex-annotation rule is not firing" >&2
  cat "${TMP}/lint.out" >&2
  exit 1
fi
if ! grep -q 'mutex-annotation' "${TMP}/lint.out"; then
  echo "FAIL: cdb_lint rejected the probe repo, but not via the" \
       "mutex-annotation rule:" >&2
  cat "${TMP}/lint.out" >&2
  exit 1
fi
echo "PASS: cdb_lint mutex-annotation rejects a raw unannotated std::mutex"
exit 0
