#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# translation unit in the compile database.
#
# Usage: tools/run_tidy.sh [build-dir]   (default: ./build)
#
# Exit codes: 0 clean or clang-tidy unavailable (skipped with a notice, so
# machines without LLVM — like the minimal CI image — do not hard-fail);
# 1 findings; 2 usage/configuration error.
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build}"
TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "${TIDY}" >/dev/null 2>&1; then
  echo "run_tidy: ${TIDY} not found on PATH; skipping (install clang-tidy," \
       "or set CLANG_TIDY, to enable the tidy wall)" >&2
  exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "run_tidy: ${BUILD_DIR}/compile_commands.json not found." >&2
  echo "  configure first: cmake -B ${BUILD_DIR} -S ${ROOT}" >&2
  exit 2
fi

# Prefer the parallel runner that ships with LLVM; fall back to a serial
# loop over the compile database so the script works with bare clang-tidy.
RUNNER="${RUN_CLANG_TIDY:-run-clang-tidy}"
if command -v "${RUNNER}" >/dev/null 2>&1; then
  exec "${RUNNER}" -clang-tidy-binary "${TIDY}" -p "${BUILD_DIR}" -quiet \
      "${ROOT}/(src|tests|bench|examples)/.*"
fi

status=0
# compile_commands.json entries: one "file": "<abs path>" per TU.
while IFS= read -r tu; do
  case "${tu}" in
    "${ROOT}"/src/*|"${ROOT}"/tests/*|"${ROOT}"/bench/*|"${ROOT}"/examples/*)
      echo "== clang-tidy ${tu#"${ROOT}"/}"
      "${TIDY}" -p "${BUILD_DIR}" --quiet "${tu}" || status=1
      ;;
  esac
done < <(sed -n 's/^ *"file": "\(.*\)",*$/\1/p' \
             "${BUILD_DIR}/compile_commands.json" | sort -u)
exit "${status}"
