#!/usr/bin/env bash
# Check-only formatting gate: verifies every C++ file under src/, tests/,
# bench/, examples/ matches .clang-format. Never rewrites files.
#
# Exit codes: 0 clean or clang-format unavailable (skipped with a notice);
# 1 files need formatting.
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FMT="${CLANG_FORMAT:-clang-format}"

if ! command -v "${FMT}" >/dev/null 2>&1; then
  echo "check_format: ${FMT} not found on PATH; skipping (install" \
       "clang-format, or set CLANG_FORMAT, to enable the format gate)" >&2
  exit 0
fi

status=0
while IFS= read -r f; do
  if ! "${FMT}" --style=file --dry-run --Werror "${f}" 2>/dev/null; then
    echo "check_format: needs formatting: ${f#"${ROOT}"/}"
    status=1
  fi
done < <(find "${ROOT}/src" "${ROOT}/tests" "${ROOT}/bench" \
              "${ROOT}/examples" \
              -name '*.cc' -o -name '*.h' -o -name '*.cpp' | sort)

if [ "${status}" -eq 0 ]; then
  echo "check_format: clean"
fi
exit "${status}"
