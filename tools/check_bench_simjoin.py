#!/usr/bin/env python3
"""Compares a freshly generated BENCH_simjoin.json against the checked-in one.

The funnel counters (candidates / signature_rejects / verified / pairs) are
deterministic in the corpus seed, so they must match the golden file exactly —
any drift means a kernel changed its candidate generation or filtering
behavior. Wall-clock numbers are machine-dependent, so only the flat-vs-legacy
*ratio* is compared: the fresh speedup may not regress more than --tolerance
below the golden speedup, and the headline 10^5 token-join workload must keep
a floor speedup regardless of the golden value.

Usage:
  tools/check_bench_simjoin.py --golden BENCH_simjoin.json --fresh fresh.json
"""

import argparse
import json
import sys

COUNTERS = ("candidates", "signature_rejects", "verified", "pairs")
HEADLINE = "word_jaccard_1e5"


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "cdb-bench-simjoin-v1":
        raise SystemExit(f"{path}: unexpected schema {data.get('schema')!r}")
    return {w["name"]: w for w in data["workloads"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--golden", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional speedup regression")
    parser.add_argument("--min-headline-speedup", type=float, default=5.0,
                        help="hard floor for the 10^5 token-join speedup")
    args = parser.parse_args()

    golden = load(args.golden)
    fresh = load(args.fresh)
    errors = []

    if set(golden) != set(fresh):
        errors.append(f"workload sets differ: golden={sorted(golden)} "
                      f"fresh={sorted(fresh)}")

    for name in sorted(set(golden) & set(fresh)):
        g, f = golden[name], fresh[name]
        for kernel in ("legacy", "flat"):
            for counter in COUNTERS:
                gv, fv = g[kernel][counter], f[kernel][counter]
                if gv != fv:
                    errors.append(f"{name}/{kernel}/{counter}: golden {gv} "
                                  f"!= fresh {fv} (deterministic counter "
                                  f"drifted — kernel behavior changed)")
        # Cross-kernel invariants on the fresh run.
        if f["legacy"]["candidates"] != f["flat"]["candidates"]:
            errors.append(f"{name}: candidate counts differ between kernels "
                          f"({f['legacy']['candidates']} vs "
                          f"{f['flat']['candidates']})")
        if f["legacy"]["pairs"] != f["flat"]["pairs"]:
            errors.append(f"{name}: emitted pair counts differ between "
                          f"kernels ({f['legacy']['pairs']} vs "
                          f"{f['flat']['pairs']})")
        for kernel in ("legacy", "flat"):
            fk = f[kernel]
            if fk["candidates"] != fk["signature_rejects"] + fk["verified"]:
                errors.append(f"{name}/{kernel}: funnel does not balance: "
                              f"candidates {fk['candidates']} != rejects "
                              f"{fk['signature_rejects']} + verified "
                              f"{fk['verified']}")
        # Perf ratio: tolerate noise, fail real regressions. Near-parity
        # workloads (the shared exact verifier dominates, e.g. edit distance)
        # carry no ratio signal — they are gated by the counters above only.
        if g["speedup_flat_over_legacy"] < 1.5:
            continue
        floor = g["speedup_flat_over_legacy"] * (1.0 - args.tolerance)
        got = f["speedup_flat_over_legacy"]
        if got < floor:
            errors.append(f"{name}: speedup regressed: fresh {got:.2f}x < "
                          f"{floor:.2f}x (golden {g['speedup_flat_over_legacy']:.2f}x "
                          f"- {args.tolerance:.0%})")

    if HEADLINE in fresh:
        got = fresh[HEADLINE]["speedup_flat_over_legacy"]
        if got < args.min_headline_speedup:
            errors.append(f"{HEADLINE}: headline speedup {got:.2f}x below the "
                          f"{args.min_headline_speedup:.1f}x floor")

    if errors:
        for error in errors:
            print(f"check_bench_simjoin: {error}", file=sys.stderr)
        return 1
    print(f"check_bench_simjoin: OK ({len(fresh)} workloads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
