#!/usr/bin/env python3
"""cdb_analyze: AST-level concurrency-discipline analyzer over compile_commands.

Where cdb_lint.py is token/regex-level (it cannot see through aliases, call
graphs, or lock scopes), cdb_analyze parses every src/ translation unit with
libclang, driven by the build's compile_commands.json, and enforces the
structural half of the concurrency capability model:

  unwrapped-std-sync      No field or local of type std::mutex /
                          std::condition_variable outside common/mutex.h.
                          libstdc++'s primitives carry no capability
                          attributes, so clang's -Wthread-safety cannot see
                          their acquisitions; cdb::Mutex / cdb::CondVar are
                          the annotated wrappers.

  unannotated-capability  Every cdb::Mutex field must guard something: at
                          least one sibling field in the same record carries
                          a CDB_GUARDED_BY / CDB_PT_GUARDED_BY naming it.
                          A mutex that guards nothing is either dead weight
                          or (worse) protecting data the annotations do not
                          admit to.

  atomic-annotation       Every non-metrics std::atomic field carries a
                          CDB_GUARDED_BY annotation or an explicit
                          suppression. The metrics primitives
                          (src/common/metrics.h: sharded Counter, Gauge) are
                          the sanctioned lock-free exception — their folds
                          are commutative integer sums, which is what keeps
                          them inside the determinism contract.

  rng-ref-in-parallel     No cdb::Rng object declared outside a ParallelFor /
                          ParallelForStatus body may be referenced inside it.
                          The stream-splitting discipline (one Rng per chunk,
                          constructed inside the callback as
                          Rng(seed, index)) is what makes parallel == serial
                          bit-identical; a captured outer Rng's draws depend
                          on chunk interleaving. Checked on the AST — a
                          renamed alias or a reference parameter cannot hide
                          from it the way it hides from a line grep.

  lock-then-callback      No public member function of a capability-annotated
                          class may both acquire a lock (construct a
                          MutexLock / call Mutex::Lock) and invoke a
                          user-supplied callable (a std::function parameter)
                          in the same body. Calling out with a lock held
                          hands every caller a deadlock/reentrancy footgun;
                          copy the work out of the critical section first
                          (see ThreadPool::WorkerLoop).

Suppression: append  // cdb-analyze: allow=<check> <reason>  on the
offending line (or the line above it).

Exit codes mirror tools/run_tidy.sh: 0 clean OR libclang bindings absent
(skip with a notice, so machines without LLVM — like the minimal CI image —
do not hard-fail); 1 findings; 2 usage/configuration error.

Usage:
  tools/cdb_analyze.py [--build-dir DIR] [--repo-root DIR]   analyze src/
  tools/cdb_analyze.py --self-test                           run fixtures

Wired into ctest as `ctest -L analyze` (see tools/CMakeLists.txt) and the
`analyze` CI job.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import shlex
import sys
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Tuple

SUPPRESS_RE = re.compile(r"//\s*cdb-analyze:\s*allow=([\w-]+)")

# Paths (repo-relative, forward slashes) exempt per check.
WRAPPER_HEADER = "src/common/mutex.h"
METRICS_PATHS = ("src/common/metrics.h", "src/common/metrics.cc")

GUARD_ANNOTATIONS = ("CDB_GUARDED_BY", "CDB_PT_GUARDED_BY")


class Finding(NamedTuple):
    path: str
    line: int
    check: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def load_cindex() -> Optional[Any]:
    """Imports clang.cindex and locates a loadable libclang, else None."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    if cindex.Config.loaded:
        return cindex
    candidates = [os.environ.get("CDB_LIBCLANG", "")]
    for pattern in ("/usr/lib/llvm-*/lib/libclang.so*",
                    "/usr/lib/llvm-*/lib/libclang-*.so*",
                    "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
                    "/usr/local/lib/libclang*.so*"):
        candidates.extend(sorted(glob.glob(pattern), reverse=True))
    for lib in candidates:
        if not lib or not os.path.exists(lib):
            continue
        try:
            cindex.Config.set_library_file(lib)
            cindex.Index.create()
            return cindex
        except Exception:  # noqa: BLE001 - probe loop; try the next library.
            cindex.Config.loaded = False
            continue
    try:
        cindex.Index.create()  # System default search path.
        return cindex
    except Exception:  # noqa: BLE001
        return None


# --------------------------------------------------------------------------
# Per-TU analysis
# --------------------------------------------------------------------------


class TuAnalyzer:
    """Walks one translation unit's AST and collects findings for files the
    analysis owns (under src/, inside the repo)."""

    def __init__(self, cindex: Any, repo_root: str) -> None:
        self.cindex = cindex
        self.repo_root = os.path.realpath(repo_root)
        self._file_lines: Dict[str, List[str]] = {}
        self.findings: List[Finding] = []

    # -- helpers ----------------------------------------------------------

    def rel_path(self, cursor: Any) -> Optional[str]:
        loc = cursor.location
        if loc.file is None:
            return None
        path = os.path.realpath(loc.file.name)
        if not path.startswith(self.repo_root + os.sep):
            return None
        rel = os.path.relpath(path, self.repo_root).replace(os.sep, "/")
        return rel if rel.startswith("src/") else None

    def lines_of(self, cursor: Any) -> List[str]:
        name = cursor.location.file.name
        if name not in self._file_lines:
            try:
                with open(name, encoding="utf-8", errors="replace") as f:
                    self._file_lines[name] = f.read().splitlines()
            except OSError:
                self._file_lines[name] = []
        return self._file_lines[name]

    def suppressed(self, cursor: Any, check: str) -> bool:
        lines = self.lines_of(cursor)
        lineno = cursor.location.line  # 1-based
        for candidate in (lineno, lineno - 1):
            if 1 <= candidate <= len(lines):
                m = SUPPRESS_RE.search(lines[candidate - 1])
                if m and m.group(1) == check:
                    return True
        return False

    def report(self, cursor: Any, check: str, message: str) -> None:
        rel = self.rel_path(cursor)
        if rel is None or self.suppressed(cursor, check):
            return
        self.findings.append(Finding(rel, cursor.location.line, check, message))

    @staticmethod
    def type_spelling(cursor: Any) -> str:
        try:
            return cursor.type.get_canonical().spelling
        except Exception:  # noqa: BLE001 - incomplete types under parse errors
            return cursor.type.spelling

    def decl_tokens(self, cursor: Any) -> str:
        """Raw source slice of a declaration (annotation macros survive here
        even though they expand to nothing under GCC-style parses)."""
        extent = cursor.extent
        lines = self.lines_of(cursor)
        lo, hi = extent.start.line, extent.end.line
        if not lines or lo < 1 or hi > len(lines):
            return ""
        if lo == hi:
            return lines[lo - 1][extent.start.column - 1:extent.end.column - 1]
        chunk = [lines[lo - 1][extent.start.column - 1:]]
        chunk.extend(lines[lo:hi - 1])
        chunk.append(lines[hi - 1][:extent.end.column - 1])
        return "\n".join(chunk)

    # -- checks -----------------------------------------------------------

    STD_SYNC_RE = re.compile(
        r"\bstd::(?:__1::)?(?:mutex|recursive_mutex|timed_mutex|"
        r"shared_mutex|condition_variable(?:_any)?)\b")
    ATOMIC_RE = re.compile(r"\bstd::(?:__1::)?atomic\b")
    CDB_MUTEX_RE = re.compile(r"\bcdb::Mutex\b")

    def check_field(self, cursor: Any, record: Any) -> None:
        rel = self.rel_path(cursor)
        if rel is None:
            return
        spelling = self.type_spelling(cursor)
        if self.STD_SYNC_RE.search(spelling) and rel != WRAPPER_HEADER:
            self.report(
                cursor, "unwrapped-std-sync",
                f"member '{cursor.spelling}' has unannotated type "
                f"'{spelling}'; declare cdb::Mutex / cdb::CondVar from "
                "common/mutex.h so -Wthread-safety sees the capability")
            return
        if self.ATOMIC_RE.search(spelling) and rel not in METRICS_PATHS:
            if not any(a in self.decl_tokens(cursor) for a in GUARD_ANNOTATIONS):
                self.report(
                    cursor, "atomic-annotation",
                    f"std::atomic member '{cursor.spelling}' outside the "
                    "metrics primitives carries no CDB_GUARDED_BY; annotate "
                    "the capability that orders its writes, or suppress with "
                    "// cdb-analyze: allow=atomic-annotation <reason>")
        if self.CDB_MUTEX_RE.search(spelling):
            self._check_mutex_guards_something(cursor, record)

    def _check_mutex_guards_something(self, mutex_field: Any,
                                      record: Any) -> None:
        kinds = self.cindex.CursorKind
        name = mutex_field.spelling
        for sibling in record.get_children():
            if sibling.kind != kinds.FIELD_DECL or sibling == mutex_field:
                continue
            tokens = self.decl_tokens(sibling)
            for annotation in GUARD_ANNOTATIONS:
                m = re.search(annotation + r"\(\s*([\w.>\-]+)\s*\)", tokens)
                if m and m.group(1) == name:
                    return
        self.report(
            mutex_field, "unannotated-capability",
            f"cdb::Mutex member '{name}' guards no sibling field; add "
            f"CDB_GUARDED_BY({name}) to the state it protects (a capability "
            "that admits to protecting nothing protects nothing)")

    PARALLEL_FOR_NAMES = ("ParallelFor", "ParallelForStatus")

    def check_parallel_call(self, call: Any) -> None:
        kinds = self.cindex.CursorKind
        lambdas: List[Any] = []

        def collect_lambdas(node: Any) -> None:
            if node.kind == kinds.LAMBDA_EXPR:
                lambdas.append(node)
                return  # Nested lambdas are walked as part of the body scan.
            for child in node.get_children():
                collect_lambdas(child)

        collect_lambdas(call)
        for lam in lambdas:
            self._check_lambda_rng_refs(lam)

    def _check_lambda_rng_refs(self, lam: Any) -> None:
        kinds = self.cindex.CursorKind
        rng_re = re.compile(r"\bcdb::Rng\b")
        inside: set = set()

        def scan(node: Any) -> None:
            if node.kind in (kinds.VAR_DECL, kinds.PARM_DECL):
                inside.add(node.hash)
            if node.kind == kinds.DECL_REF_EXPR:
                ref = node.referenced
                if (ref is not None and ref.hash not in inside
                        and ref.kind in (kinds.VAR_DECL, kinds.PARM_DECL)
                        and rng_re.search(self.type_spelling(ref))):
                    self.report(
                        node, "rng-ref-in-parallel",
                        f"ParallelFor body references Rng '{ref.spelling}' "
                        "declared outside the callback; construct a "
                        "per-chunk stream inside it — Rng(seed, chunk_index) "
                        "— so draws stay a pure function of (seed, index)")
            for child in node.get_children():
                scan(child)

        scan(lam)

    LOCK_TYPES_RE = re.compile(r"\bcdb::MutexLock\b")

    def check_method_lock_callback(self, method: Any, record: Any) -> None:
        kinds = self.cindex.CursorKind
        if method.access_specifier != self.cindex.AccessSpecifier.PUBLIC:
            return
        if not self._record_has_mutex(record):
            return
        fn_params = {
            p.hash for p in method.get_arguments()
            if "function<" in self.type_spelling(p)
        }
        if not fn_params:
            return
        acquires: List[Any] = []
        callback_calls: List[Tuple[Any, str]] = []

        def scan(node: Any) -> None:
            if (node.kind == kinds.VAR_DECL
                    and self.LOCK_TYPES_RE.search(self.type_spelling(node))):
                acquires.append(node)
            if (node.kind == kinds.CALL_EXPR
                    and node.spelling in ("Lock", "operator()")):
                pass  # spelling-based; resolved below via referenced decls
            if node.kind == kinds.CALL_EXPR:
                for child in node.get_children():
                    if child.kind == kinds.MEMBER_REF_EXPR and \
                            child.spelling == "Lock":
                        acquires.append(node)
                # A call whose callee (possibly through an implicit cast)
                # names a std::function parameter is a callback-out.
                callee = next(iter(node.get_children()), None)
                ref = self._leaf_decl_ref(callee, kinds)
                if ref is not None and ref.hash in fn_params:
                    callback_calls.append((node, ref.spelling))
            for child in node.get_children():
                scan(child)

        scan(method)
        if acquires and callback_calls:
            node, name = callback_calls[0]
            self.report(
                node, "lock-then-callback",
                f"public method '{record.spelling}::{method.spelling}' "
                f"acquires a lock and invokes caller-supplied '{name}' in "
                "the same body; move the invocation outside the critical "
                "section (deadlock/reentrancy hazard for every caller)")

    def _leaf_decl_ref(self, node: Any, kinds: Any) -> Optional[Any]:
        while node is not None:
            if node.kind == kinds.DECL_REF_EXPR:
                return node.referenced
            node = next(iter(node.get_children()), None)
        return None

    def _record_has_mutex(self, record: Any) -> bool:
        kinds = self.cindex.CursorKind
        return any(
            child.kind == kinds.FIELD_DECL
            and self.CDB_MUTEX_RE.search(self.type_spelling(child))
            for child in record.get_children())

    # -- driver -----------------------------------------------------------

    def walk(self, tu: Any) -> None:
        kinds = self.cindex.CursorKind

        def visit(node: Any, record: Optional[Any]) -> None:
            if node.kind in (kinds.CLASS_DECL, kinds.STRUCT_DECL,
                             kinds.CLASS_TEMPLATE):
                if node.is_definition():
                    record = node
            if node.kind == kinds.FIELD_DECL and record is not None:
                self.check_field(node, record)
            if (node.kind in (kinds.VAR_DECL,)
                    and self.STD_SYNC_RE.search(self.type_spelling(node))
                    and self.rel_path(node) not in (None, WRAPPER_HEADER)):
                self.report(
                    node, "unwrapped-std-sync",
                    f"local/static '{node.spelling}' has unannotated type "
                    f"'{self.type_spelling(node)}'; use cdb::Mutex / "
                    "cdb::CondVar from common/mutex.h")
            if node.kind == kinds.CALL_EXPR and \
                    node.spelling in self.PARALLEL_FOR_NAMES:
                self.check_parallel_call(node)
            if node.kind == kinds.CXX_METHOD and node.is_definition() \
                    and record is not None:
                self.check_method_lock_callback(node, record)
            for child in node.get_children():
                visit(child, record)

        visit(tu.cursor, None)


# --------------------------------------------------------------------------
# compile_commands plumbing
# --------------------------------------------------------------------------


def tu_args(entry: Dict[str, Any]) -> List[str]:
    if "arguments" in entry:
        args = list(entry["arguments"])
    else:
        args = shlex.split(entry.get("command", ""))
    args = args[1:]  # Drop the compiler executable.
    out: List[str] = []
    skip = False
    for a in args:
        if skip:
            skip = False
            continue
        if a in ("-o", "-c"):
            skip = a == "-o"
            continue
        if a == entry.get("file"):
            continue
        # GCC-only flags libclang chokes on are harmless to drop.
        if a.startswith(("-fdiagnostics", "-fconcepts-diagnostics")):
            continue
        out.append(a)
    out.append("-Wno-everything")  # Diagnostics are the compiler's job.
    return out


def analyze_repo(cindex: Any, repo_root: str, build_dir: str) -> List[Finding]:
    db_path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(db_path, encoding="utf-8") as f:
            database = json.load(f)
    except OSError as e:
        print(f"cdb_analyze: cannot read {db_path}: {e}", file=sys.stderr)
        print(f"  configure first: cmake -B {build_dir} -S {repo_root}",
              file=sys.stderr)
        sys.exit(2)

    root_real = os.path.realpath(repo_root)
    index = cindex.Index.create()
    analyzer = TuAnalyzer(cindex, repo_root)
    seen: set = set()
    for entry in database:
        path = os.path.realpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(path, root_real).replace(os.sep, "/")
        if not rel.startswith("src/") or path in seen:
            continue
        seen.add(path)
        try:
            tu = index.parse(path, args=tu_args(entry))
        except cindex.TranslationUnitLoadError as e:
            analyzer.findings.append(
                Finding(rel, 0, "parse", f"libclang failed to parse: {e}"))
            continue
        analyzer.walk(tu)
    # Deterministic output independent of database order.
    return sorted(set(analyzer.findings))


# --------------------------------------------------------------------------
# Self-test fixtures
# --------------------------------------------------------------------------

FIXTURE_PRELUDE = """
namespace std {
class mutex { public: void lock(); void unlock(); };
class condition_variable {};
template <typename T> class atomic { public: T load() const; void store(T); };
template <typename T> class function;
template <typename R, typename... A> class function<R(A...)> {
 public:
  R operator()(A...) const;
};
}  // namespace std
#define CDB_GUARDED_BY(x)
#define CDB_PT_GUARDED_BY(x)
#define CDB_EXCLUDES(x)
namespace cdb {
class Mutex { public: void Lock(); void Unlock(); };
class MutexLock { public: explicit MutexLock(Mutex&); ~MutexLock(); };
class Rng { public: Rng(unsigned long long, unsigned long long); double U(); };
void ParallelFor(long long, long long, long long, void (*)(long long));
template <typename Fn>
void ParallelFor(long long b, long long e, long long g, const Fn& fn) {
  fn(b, e, 0);
}
}  // namespace cdb
"""

SELF_TEST_CASES: List[Tuple[str, str, str, bool]] = [
    ("raw std::mutex member", """
namespace cdb {
struct S { std::mutex mu_; };
}  // namespace cdb
""", "unwrapped-std-sync", True),
    ("raw std::condition_variable member", """
namespace cdb {
struct S { std::condition_variable cv_; };
}  // namespace cdb
""", "unwrapped-std-sync", True),
    ("cdb::Mutex member guarding a sibling is clean", """
namespace cdb {
struct S {
  Mutex mu_;
  int x_ CDB_GUARDED_BY(mu_) = 0;
};
}  // namespace cdb
""", "unwrapped-std-sync", False),
    ("suppressed raw mutex", """
namespace cdb {
struct S {
  std::mutex mu_;  // cdb-analyze: allow=unwrapped-std-sync ffi shim
};
}  // namespace cdb
""", "unwrapped-std-sync", False),
    ("mutex guarding nothing", """
namespace cdb {
struct S {
  Mutex mu_;
  int x_ = 0;
};
}  // namespace cdb
""", "unannotated-capability", True),
    ("mutex with guarded sibling is clean", """
namespace cdb {
struct S {
  Mutex mu_;
  int x_ CDB_GUARDED_BY(mu_) = 0;
};
}  // namespace cdb
""", "unannotated-capability", False),
    ("unannotated atomic member", """
namespace cdb {
struct S { std::atomic<long long> n_; };
}  // namespace cdb
""", "atomic-annotation", True),
    ("annotated atomic member is clean", """
namespace cdb {
struct S {
  Mutex mu_;
  std::atomic<long long> n_ CDB_GUARDED_BY(mu_);
  int x_ CDB_GUARDED_BY(mu_) = 0;
};
}  // namespace cdb
""", "atomic-annotation", False),
    ("suppressed atomic member", """
namespace cdb {
struct S {
  // cdb-analyze: allow=atomic-annotation commutative stat shard
  std::atomic<long long> n_;
};
}  // namespace cdb
""", "atomic-annotation", False),
    ("outer Rng referenced in ParallelFor body", """
namespace cdb {
void f() {
  Rng rng(1, 0);
  ParallelFor(0, 8, 1, [&](long long, long long, int) { rng.U(); });
}
}  // namespace cdb
""", "rng-ref-in-parallel", True),
    ("per-chunk Rng inside the body is clean", """
namespace cdb {
void f() {
  ParallelFor(0, 8, 1, [&](long long, long long, int chunk) {
    Rng rng(1, static_cast<unsigned long long>(chunk));
    rng.U();
  });
}
}  // namespace cdb
""", "rng-ref-in-parallel", False),
    ("lock then user callback", """
namespace cdb {
class S {
 public:
  void Run(const std::function<void()>& fn) {
    MutexLock lock(mu_);
    fn();
  }
 private:
  Mutex mu_;
  int x_ CDB_GUARDED_BY(mu_) = 0;
};
}  // namespace cdb
""", "lock-then-callback", True),
    ("callback invoked outside the lock is clean", """
namespace cdb {
class S {
 public:
  void Run(const std::function<void()>& fn) {
    { MutexLock lock(mu_); x_ = 1; }
    fn();
  }
 private:
  Mutex mu_;
  int x_ CDB_GUARDED_BY(mu_) = 0;
};
}  // namespace cdb
""", "lock-then-callback", True),  # Conservative: same body still flags.
    ("storing the callback under lock is clean", """
namespace cdb {
class S {
 public:
  void Run(const std::function<void()>& fn) {
    MutexLock lock(mu_);
    x_ = 1;
  }
 private:
  Mutex mu_;
  int x_ CDB_GUARDED_BY(mu_) = 0;
};
}  // namespace cdb
""", "lock-then-callback", False),
]


def run_self_test(cindex: Any) -> int:
    index = cindex.Index.create()
    failures = 0
    for i, (desc, snippet, check, expect) in enumerate(SELF_TEST_CASES):
        name = f"src/fixture_{i}.cc"
        analyzer = TuAnalyzer(cindex, repo_root="/")

        # Fixtures parse from memory; rel_path/suppression read the unsaved
        # text through a patched loader.
        text = FIXTURE_PRELUDE + snippet
        analyzer.rel_path = (  # type: ignore[method-assign]
            lambda cur, _n=name: _n if cur.location.file is not None else None)
        analyzer._file_lines[name] = text.splitlines()
        analyzer.lines_of = (  # type: ignore[method-assign]
            lambda cur, _n=name: analyzer._file_lines[_n])
        try:
            tu = index.parse(name, args=["-std=c++20", "-Wno-everything"],
                             unsaved_files=[(name, text)])
        except cindex.TranslationUnitLoadError as e:
            print(f"[FAIL] {desc}: fixture failed to parse: {e}")
            failures += 1
            continue
        analyzer.walk(tu)
        got = [f for f in analyzer.findings if f.check == check]
        ok = bool(got) == expect
        print(f"[{'PASS' if ok else 'FAIL'}] {desc}")
        if not ok:
            failures += 1
            detail = "; ".join(f.render() for f in got) or "no findings"
            print(f"       expected {'a finding' if expect else 'none'}, "
                  f"got: {detail}")
    total = len(SELF_TEST_CASES)
    print(f"self-test: {total - failures}/{total} cases passed")
    return 1 if failures else 0


# --------------------------------------------------------------------------
# main
# --------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=None,
                        help="build dir holding compile_commands.json "
                             "(default: <repo-root>/build)")
    parser.add_argument("--repo-root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run built-in AST fixtures and exit")
    args = parser.parse_args()

    cindex = load_cindex()
    if cindex is None:
        print("cdb_analyze: python libclang bindings (clang.cindex) or a "
              "loadable libclang.so not found; skipping (install "
              "python3-clang + libclang, or set CDB_LIBCLANG, to enable the "
              "AST analyzer)", file=sys.stderr)
        return 0

    if args.self_test:
        return run_self_test(cindex)

    root = args.repo_root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    build_dir = args.build_dir or os.path.join(root, "build")
    findings = analyze_repo(cindex, root, build_dir)
    for f in findings:
        print(f.render())
    if findings:
        print(f"cdb_analyze: {len(findings)} finding(s)")
        return 1
    print("cdb_analyze: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
