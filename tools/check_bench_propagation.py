#!/usr/bin/env python3
"""Validates a freshly generated BENCH_propagation.json against the golden.

The propagation bench runs each representative query twice from the same
seed — propagation off (the legacy executor) and on (the transitive
deduction layer) — against a noise-free oracle crowd, so every reported
field is a pure function of the bench seed and must match the checked-in
golden exactly; drift means the executor's ask schedule, the deduction
closure, or the expected-yield ordering changed behavior.

On top of golden equality the fresh run must clear the acceptance bar on its
own: propagation may never ask MORE tasks than the legacy path on any
workload, it must save at least --min-tasks-saved tasks in aggregate, it
must actually deduce edges (the savings are not vacuous), and each
workload's F1 with propagation on must equal the F1 with propagation off
(the oracle crowd makes deduction sound, so any gap is a closure bug).

Usage:
  tools/check_bench_propagation.py --golden BENCH_propagation.json \\
      --fresh fresh.json
"""

import argparse
import json
import sys

DETERMINISTIC = (
    "tasks_off", "tasks_on", "dollars_off", "dollars_on", "deduced_edges",
    "deduction_invalidations", "f1_off", "f1_on",
)


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "cdb-bench-propagation-v1":
        raise SystemExit(f"{path}: unexpected schema {data.get('schema')!r}")
    return {w["name"]: w for w in data["workloads"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--golden", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--min-tasks-saved", type=int, default=100,
                        help="aggregate tasks propagation must save")
    args = parser.parse_args()

    golden = load(args.golden)
    fresh = load(args.fresh)
    errors = []

    if set(golden) != set(fresh):
        errors.append(f"workload sets differ: golden={sorted(golden)} "
                      f"fresh={sorted(fresh)}")

    total_saved = 0
    total_deduced = 0
    for name in sorted(set(golden) & set(fresh)):
        g, f = golden[name], fresh[name]
        for counter in DETERMINISTIC:
            if g[counter] != f[counter]:
                errors.append(f"{name}/{counter}: golden {g[counter]} != "
                              f"fresh {f[counter]} (deterministic counter "
                              f"drifted — ask schedule or deduction closure "
                              f"changed behavior)")
        # Absolute requirements on the fresh run (ISSUE acceptance bar).
        if f["tasks_on"] > f["tasks_off"]:
            errors.append(f"{name}: propagation asked more tasks "
                          f"({f['tasks_on']} on vs {f['tasks_off']} off)")
        if abs(f["f1_on"] - f["f1_off"]) > 1e-9:
            errors.append(f"{name}: F1 diverged under the oracle crowd "
                          f"({f['f1_on']} on vs {f['f1_off']} off — the "
                          f"deduction closure colored an edge wrongly)")
        total_saved += f["tasks_off"] - f["tasks_on"]
        total_deduced += f["deduced_edges"]

    if total_saved < args.min_tasks_saved:
        errors.append(f"aggregate tasks saved {total_saved} below floor "
                      f"{args.min_tasks_saved}")
    if total_deduced <= 0:
        errors.append("no edges were deduced — the propagation layer "
                      "never fired")

    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print(f"OK: {len(set(golden) & set(fresh))} workload(s) validated "
          f"against {args.golden} (saved {total_saved:.0f} tasks, "
          f"deduced {total_deduced} edges)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
