#!/usr/bin/env python3
"""Compares a freshly generated BENCH_optimizer.json against the checked-in one.

The graphs and sampler orderings are deterministic in the workload seeds, so
the edge counts, ordering lengths, and ordering checksums must match the
golden file exactly — any drift means the sampler or a selection path changed
behavior. The legacy and flat checksums must also agree within the fresh run:
that is the cached-structures identity contract measured end to end.
Wall-clock numbers are machine-dependent, so only the flat-vs-legacy *ratio*
is compared: the fresh speedup may not regress more than --tolerance below
the golden speedup, and the headline large-chain workload must keep a floor
speedup regardless of the golden value.

Usage:
  tools/check_bench_optimizer.py --golden BENCH_optimizer.json --fresh fresh.json
"""

import argparse
import json
import sys

COUNTERS = ("edges", "order_len", "checksum_legacy", "checksum_flat")
HEADLINE = "chain_4rel_midblue_120"


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "cdb-bench-optimizer-v1":
        raise SystemExit(f"{path}: unexpected schema {data.get('schema')!r}")
    return {w["name"]: w for w in data["workloads"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--golden", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional speedup regression")
    parser.add_argument("--min-headline-speedup", type=float, default=5.0,
                        help="hard floor for the large-chain speedup")
    args = parser.parse_args()

    golden = load(args.golden)
    fresh = load(args.fresh)
    errors = []

    if set(golden) != set(fresh):
        errors.append(f"workload sets differ: golden={sorted(golden)} "
                      f"fresh={sorted(fresh)}")

    for name in sorted(set(golden) & set(fresh)):
        g, f = golden[name], fresh[name]
        for counter in COUNTERS:
            gv, fv = g[counter], f[counter]
            if gv != fv:
                errors.append(f"{name}/{counter}: golden {gv!r} != fresh "
                              f"{fv!r} (deterministic value drifted — the "
                              f"sampler or a selection path changed behavior)")
        # The identity contract, measured on the fresh run: the legacy
        # rebuild-per-sample path and the cached flat path must produce the
        # same ordering byte for byte.
        if f["checksum_legacy"] != f["checksum_flat"]:
            errors.append(f"{name}: legacy and flat orderings diverged "
                          f"({f['checksum_legacy']} vs {f['checksum_flat']})")
        # Perf ratio: tolerate noise, fail real regressions. Small-graph
        # workloads carry little ratio signal — counters gate them above.
        if g["speedup_flat_over_legacy"] < 1.5:
            continue
        floor = g["speedup_flat_over_legacy"] * (1.0 - args.tolerance)
        got = f["speedup_flat_over_legacy"]
        if got < floor:
            errors.append(f"{name}: speedup regressed: fresh {got:.2f}x < "
                          f"{floor:.2f}x (golden "
                          f"{g['speedup_flat_over_legacy']:.2f}x "
                          f"- {args.tolerance:.0%})")

    if HEADLINE in fresh:
        got = fresh[HEADLINE]["speedup_flat_over_legacy"]
        if got < args.min_headline_speedup:
            errors.append(f"{HEADLINE}: headline speedup {got:.2f}x below the "
                          f"{args.min_headline_speedup:.1f}x floor")

    if errors:
        for error in errors:
            print(f"check_bench_optimizer: {error}", file=sys.stderr)
        return 1
    print(f"check_bench_optimizer: OK ({len(fresh)} workloads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
