#!/usr/bin/env python3
"""Validates a freshly generated BENCH_service.json against the checked-in one.

The service bench's admission/throughput counters (submitted, rejections,
admitted, completed, peak live sessions, waves, steps, checkpoints and their
byte volume) are deterministic in the bench seed, so they must match the
golden file exactly — drift means the admission-control flow or the snapshot
format changed behavior. Wall-clock fields are machine-dependent and are
gated by absolute requirements instead: the run must sustain at least
--min-completed sessions with --min-peak-live of them concurrently live,
every admission-control path must have fired (typed rejections on both the
queue and the budget ledger), nothing may fail, throughput must clear
--min-sessions-per-sec, and the p99 per-session step latency must stay under
--max-p99-step-micros.

Usage:
  tools/check_bench_service.py --golden BENCH_service.json --fresh fresh.json
"""

import argparse
import json
import sys

DETERMINISTIC = (
    "sessions", "tenants", "submitted", "rejected_queue", "rejected_budget",
    "admitted", "completed", "failed", "peak_live_sessions", "waves", "steps",
    "checkpoints", "checkpoint_bytes",
)


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "cdb-bench-service-v1":
        raise SystemExit(f"{path}: unexpected schema {data.get('schema')!r}")
    return {w["name"]: w for w in data["workloads"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--golden", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--min-completed", type=int, default=1000,
                        help="sessions the run must finish")
    parser.add_argument("--min-peak-live", type=int, default=1000,
                        help="concurrent live sessions the run must sustain")
    parser.add_argument("--min-sessions-per-sec", type=float, default=50.0,
                        help="hard throughput floor")
    parser.add_argument("--max-p99-step-micros", type=int, default=50000,
                        help="hard p99 per-session step latency ceiling")
    args = parser.parse_args()

    golden = load(args.golden)
    fresh = load(args.fresh)
    errors = []

    if set(golden) != set(fresh):
        errors.append(f"workload sets differ: golden={sorted(golden)} "
                      f"fresh={sorted(fresh)}")

    for name in sorted(set(golden) & set(fresh)):
        g, f = golden[name], fresh[name]
        for counter in DETERMINISTIC:
            if g[counter] != f[counter]:
                errors.append(f"{name}/{counter}: golden {g[counter]} != "
                              f"fresh {f[counter]} (deterministic counter "
                              f"drifted — admission or snapshot behavior "
                              f"changed)")
        # Absolute requirements on the fresh run (ISSUE acceptance bar).
        if f["completed"] < args.min_completed:
            errors.append(f"{name}: completed {f['completed']} < "
                          f"{args.min_completed}")
        if f["peak_live_sessions"] < args.min_peak_live:
            errors.append(f"{name}: peak_live_sessions "
                          f"{f['peak_live_sessions']} < {args.min_peak_live}")
        if f["rejected_queue"] + f["rejected_budget"] <= 0:
            errors.append(f"{name}: admission control never fired "
                          f"(no typed rejections)")
        if f["failed"] != 0:
            errors.append(f"{name}: {f['failed']} sessions failed")
        if f["checkpoints"] <= 0 or f["checkpoint_bytes"] <= 0:
            errors.append(f"{name}: periodic checkpointing never ran")
        if f["sessions_per_sec"] < args.min_sessions_per_sec:
            errors.append(f"{name}: sessions_per_sec "
                          f"{f['sessions_per_sec']} below floor "
                          f"{args.min_sessions_per_sec}")
        if f["p99_step_micros"] > args.max_p99_step_micros:
            errors.append(f"{name}: p99_step_micros {f['p99_step_micros']} "
                          f"above ceiling {args.max_p99_step_micros}")

    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print(f"OK: {len(set(golden) & set(fresh))} workload(s) validated "
          f"against {args.golden}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
