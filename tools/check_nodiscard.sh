#!/usr/bin/env bash
# Compile-fail probe for the [[nodiscard]] error-handling policy: a TU that
# silently discards a Status or Result<T> must NOT compile under
# -Werror=unused-result, and a TU that consumes them properly must. This is
# the negative half of tests/status_nodiscard_test.cc (which, by compiling
# under the repo-wide -Werror wall, is the positive half).
#
# Usage: tools/check_nodiscard.sh <c++-compiler> <src-include-dir>
set -u -o pipefail

CXX="${1:?usage: check_nodiscard.sh <c++-compiler> <src-include-dir>}"
INC="${2:?usage: check_nodiscard.sh <c++-compiler> <src-include-dir>}"

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

cat > "${TMP}/discard.cc" <<'EOF'
#include "common/status.h"
cdb::Status MakeStatus();
cdb::Result<int> MakeResult();
void Discards() {
  MakeStatus();  // discarded Status: must be a hard error
  MakeResult();  // discarded Result: must be a hard error
}
EOF

if "${CXX}" -std=c++20 -I"${INC}" -fsyntax-only -Werror=unused-result \
    "${TMP}/discard.cc" 2> "${TMP}/discard.err"; then
  echo "FAIL: a TU discarding Status/Result compiled cleanly —" \
       "[[nodiscard]] is not firing" >&2
  exit 1
fi
if ! grep -q 'nodiscard\|unused-result' "${TMP}/discard.err"; then
  echo "FAIL: discard probe failed to compile, but not because of" \
       "[[nodiscard]]:" >&2
  cat "${TMP}/discard.err" >&2
  exit 1
fi

cat > "${TMP}/consume.cc" <<'EOF'
#include "common/status.h"
cdb::Status MakeStatus();
cdb::Result<int> MakeResult();
cdb::Status Propagates() {
  CDB_RETURN_IF_ERROR(MakeStatus());
  CDB_ASSIGN_OR_RETURN(int v, MakeResult());
  (void)v;
  (void)MakeStatus();  // explicit, visible discard stays legal
  return cdb::Status::Ok();
}
EOF

if ! "${CXX}" -std=c++20 -I"${INC}" -fsyntax-only -Werror=unused-result \
    "${TMP}/consume.cc" 2> "${TMP}/consume.err"; then
  echo "FAIL: a TU consuming Status/Result through the sanctioned patterns" \
       "did not compile:" >&2
  cat "${TMP}/consume.err" >&2
  exit 1
fi

echo "PASS: [[nodiscard]] on Status/Result fires under -Werror=unused-result"
exit 0
