#!/usr/bin/env python3
"""cdb_lint: fast, AST-free checker for CDB-specific repo invariants.

These are the rules generic tools (compiler warnings, clang-tidy) cannot
express because they encode *this* repo's determinism and error-handling
contracts:

  rng-outside-common      All randomness flows through src/common/random.*
                          (seeded, stream-splittable cdb::Rng). Direct use of
                          rand()/srand(), std::random_device, standard engines
                          (mt19937, default_random_engine), or wall-clock
                          time() as an entropy/seed source anywhere else makes
                          runs irreproducible and breaks the bit-identical
                          parallel==serial guarantee.

  unordered-iteration     No range-for or iterator loops over
                          std::unordered_{map,set,multimap,multiset} in the
                          optimizer decision paths (src/cost, src/graph,
                          src/latency, src/exec). Unordered iteration order is
                          implementation- and seed-dependent; iterating it in
                          a decision path silently reorders tie-breaks and
                          changes which task order the optimizer picks.

  naked-abort             std::abort()/abort() only inside src/common/. All
                          other code must fail through CDB_CHECK* (which
                          funnels into cdb::internal_logging::CheckFail) or
                          return a Status, so every crash has a file:line and
                          every recoverable error is visible to callers.

  include-guard           Every header under src/ uses the canonical guard
                          CDB_<DIR>_<FILE>_H_ (e.g. src/cost/sampling.h ->
                          CDB_COST_SAMPLING_H_), keeping guards collision-free
                          as directories grow.

  cc-owned-by-cmake       Every .cc under src/ is listed in a CMake target in
                          src/CMakeLists.txt. An orphaned .cc compiles in
                          nobody's build and silently rots.

  single-publish-path     CrowdPlatform::ExecuteRound may only be invoked by
                          the session publish path (src/exec/session.cc, the
                          scheduler's channel in src/exec/scheduler.cc) and
                          the platform's own internals. Every other caller
                          must publish through a TaskPublisher so budget
                          accounting, cross-query dedup, and the fault-layer
                          drains cannot be bypassed. Unit tests exercising
                          the simulator itself (tests/) are out of scope;
                          simulator micro-benchmarks use the documented
                          disable comment.

  fault-rng-stream        Fault-injection decisions in the crowd simulator
                          (src/crowd/) must come from explicit split streams
                          — Rng(seed ^ salt, counter) — never from the
                          platform's shared sequential rng_ or from
                          Rng::Fork(), whose draws depend on how much
                          randomness earlier code consumed. A fault schedule
                          on the shared stream stops being a pure function of
                          (seed, counter) and silently breaks the
                          bit-identical determinism the DST harness asserts.

  wallclock-outside-trace  std::chrono (includes, namespace uses, direct
                          clock types) only in src/common/trace.cc, the one
                          sanctioned wall-clock reader. Everything else goes
                          through cdb::WallTimer, so nondeterministic time
                          can never leak into an optimizer decision or a
                          byte-compared dump (tests/ is out of scope).

  mutex-annotation        All locking in src/ goes through the annotated
                          wrappers in common/mutex.h — raw std::mutex /
                          std::condition_variable are invisible to clang's
                          -Wthread-safety analysis (libstdc++ carries no
                          capability attributes). Files declaring a
                          Mutex/CondVar must directly include common/mutex.h
                          and carry at least one CDB_* capability annotation,
                          so every mutex states what it guards.

Suppression: append  // cdb-lint: disable=<rule>  (with a reason) to the
offending line. Suppressions without a rule name are invalid.

Usage:
  tools/cdb_lint.py [--repo-root DIR]   lint the repo, exit 1 on findings
  tools/cdb_lint.py --self-test         run rule fixtures, exit 1 on failure

Wired into ctest as `ctest -L lint` (see tools/CMakeLists.txt).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Callable, Iterator, List, NamedTuple, Optional, Tuple

# --------------------------------------------------------------------------
# Framework
# --------------------------------------------------------------------------


class Finding(NamedTuple):
    path: str  # repo-relative
    line: int  # 1-based; 0 for file-level findings
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


SUPPRESS_RE = re.compile(r"//\s*cdb-lint:\s*disable=([\w-]+)")


def suppressed(line: str, rule: str) -> bool:
    m = SUPPRESS_RE.search(line)
    return bool(m) and m.group(1) == rule


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and the contents of string/char literals.

    Purely line-local (block comments spanning lines are handled by callers
    passing pre-stripped text). Good enough for token-level rules; this is a
    linter for invariants, not a parser.
    """
    out: List[str] = []
    i, n = 0, len(line)
    in_str: Optional[str] = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
                out.append(c)
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def iter_code_lines(text: str) -> Iterator[Tuple[int, str, str]]:
    """Yields (lineno, raw_line, code_line) with comments/strings stripped.

    Handles /* */ block comments across lines.
    """
    in_block = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                yield lineno, raw, ""
                continue
            line = line[end + 2:]
            in_block = False
        # Strip any block comments that open (and maybe close) on this line.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " + line[end + 2:]
        yield lineno, raw, strip_comments_and_strings(line)


CXX_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")


def repo_files(root: str, subdirs: Tuple[str, ...]) -> List[str]:
    out: List[str] = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    out.append(
                        os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(out)


# --------------------------------------------------------------------------
# Rule: rng-outside-common
# --------------------------------------------------------------------------

RNG_ALLOWED = ("src/common/random.h", "src/common/random.cc")
RNG_PATTERNS = [
    (re.compile(r"\bs?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "direct std::mt19937 engine"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"(?<![\w:.>])time\s*\(\s*(nullptr|NULL|0)?\s*\)"),
     "wall-clock time() as entropy"),
]


def check_rng(path: str, text: str) -> List[Finding]:
    if path.replace(os.sep, "/") in RNG_ALLOWED:
        return []
    findings = []
    for lineno, raw, code in iter_code_lines(text):
        for pattern, what in RNG_PATTERNS:
            if pattern.search(code) and not suppressed(raw, "rng-outside-common"):
                findings.append(Finding(
                    path, lineno, "rng-outside-common",
                    f"{what} outside src/common/random.*; use cdb::Rng so "
                    "runs stay reproducible"))
    return findings


# --------------------------------------------------------------------------
# Rule: unordered-iteration
# --------------------------------------------------------------------------

DECISION_DIRS = ("src/cost", "src/graph", "src/latency", "src/exec")

# `for (auto& kv : container)` — capture the container expression.
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;:()]*:\s*([^){]+)\)")
# `x.begin()` / `x.cbegin()` — iterator-loop entry points.
BEGIN_CALL_RE = re.compile(r"([\w\.\->]+)\s*\.\s*c?begin\s*\(")


def _unordered_names(text: str) -> set:
    """Names of variables/members declared with an unordered container type.

    Textual heuristic: a declaration line mentions unordered_xxx< and ends
    with an identifier before ; = { or (. Tracks across the whole file, which
    over-approximates scopes — acceptable for a determinism gate (false
    positives are suppressible with a reasoned disable comment).
    """
    names = set()
    decl_re = re.compile(
        r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*&?\s*"
        r"(\w+)\s*(?:[;={(]|$)")
    for _lineno, _raw, code in iter_code_lines(text):
        if "unordered_" not in code:
            continue
        for m in decl_re.finditer(code):
            names.add(m.group(1))
    return names


def check_unordered_iteration(path: str, text: str) -> List[Finding]:
    norm = path.replace(os.sep, "/")
    if not any(norm.startswith(d + "/") for d in DECISION_DIRS):
        return []
    findings = []
    names = _unordered_names(text)
    for lineno, raw, code in iter_code_lines(text):
        if suppressed(raw, "unordered-iteration"):
            continue
        hit = None
        m = RANGE_FOR_RE.search(code)
        if m:
            target = m.group(1).strip()
            base = re.split(r"[.\-\[(]", target)[0].strip()
            if "unordered_" in target or base in names:
                hit = f"range-for over unordered container '{target}'"
        if hit is None and "begin" in code:
            b = BEGIN_CALL_RE.search(code)
            if b:
                base = re.split(r"[.\-\[(]", b.group(1))[0].strip()
                if base in names:
                    hit = (f"iterator loop over unordered container "
                           f"'{b.group(1)}'")
        if hit:
            findings.append(Finding(
                path, lineno, "unordered-iteration",
                f"{hit} in an optimizer decision path; iteration order is "
                "nondeterministic — iterate a sorted key list or an ordered "
                "index instead"))
    return findings


# --------------------------------------------------------------------------
# Rule: naked-abort
# --------------------------------------------------------------------------


def check_naked_abort(path: str, text: str) -> List[Finding]:
    norm = path.replace(os.sep, "/")
    if not norm.startswith("src/") or norm.startswith("src/common/"):
        return []
    findings = []
    abort_re = re.compile(r"(?:\bstd::|(?<![\w:.]))abort\s*\(")
    for lineno, raw, code in iter_code_lines(text):
        if abort_re.search(code) and not suppressed(raw, "naked-abort"):
            findings.append(Finding(
                path, lineno, "naked-abort",
                "std::abort outside src/common/; fail through CDB_CHECK* or "
                "return a Status so the crash carries context"))
    return findings


# --------------------------------------------------------------------------
# Rule: include-guard
# --------------------------------------------------------------------------


def expected_guard(path: str) -> str:
    norm = path.replace(os.sep, "/")
    assert norm.startswith("src/") and norm.endswith(".h")
    stem = norm[len("src/"):-len(".h")]
    return "CDB_" + re.sub(r"[/.]", "_", stem).upper() + "_H_"


IFNDEF_RE = re.compile(r"^\s*#ifndef\s+(\w+)", re.MULTILINE)
DEFINE_RE = re.compile(r"^\s*#define\s+(\w+)", re.MULTILINE)


def check_include_guard(path: str, text: str) -> List[Finding]:
    norm = path.replace(os.sep, "/")
    if not (norm.startswith("src/") and norm.endswith(".h")):
        return []
    want = expected_guard(path)
    ifndef = IFNDEF_RE.search(text)
    if not ifndef:
        return [Finding(path, 0, "include-guard",
                        f"missing include guard; expected #ifndef {want}")]
    got = ifndef.group(1)
    lineno = text[:ifndef.start()].count("\n") + 1
    if got != want:
        return [Finding(path, lineno, "include-guard",
                        f"guard '{got}' does not match canonical '{want}'")]
    define = DEFINE_RE.search(text, ifndef.end())
    if not define or define.group(1) != want:
        return [Finding(path, lineno, "include-guard",
                        f"#ifndef {want} not followed by matching #define")]
    return []


# --------------------------------------------------------------------------
# Rule: cc-owned-by-cmake
# --------------------------------------------------------------------------


def check_cmake_ownership(root: str) -> List[Finding]:
    cmake_path = os.path.join(root, "src", "CMakeLists.txt")
    try:
        with open(cmake_path, encoding="utf-8") as f:
            cmake = f.read()
    except OSError:
        return [Finding("src/CMakeLists.txt", 0, "cc-owned-by-cmake",
                        "src/CMakeLists.txt is missing")]
    listed = set(re.findall(r"([\w/\-]+\.cc)\b", cmake))
    findings = []
    for rel in repo_files(root, ("src",)):
        norm = rel.replace(os.sep, "/")
        if not norm.endswith(".cc"):
            continue
        in_src = norm[len("src/"):]
        if in_src not in listed:
            findings.append(Finding(
                rel, 0, "cc-owned-by-cmake",
                f"{in_src} is not listed in any target in src/CMakeLists.txt "
                "— it is built by nothing"))
    return findings


# --------------------------------------------------------------------------
# Rule: snapshot-discipline
# --------------------------------------------------------------------------

# Every data member of QuerySession must either be serialized — its name
# appears in code (not comments) of exec/session_snapshot.cc — or carry an
# explicit `// cdb-snapshot: transient(<reason>)` marker on its declaration
# line or within the two lines above it. This keeps Snapshot()/Restore()
# honest as the session grows: a new field that is silently absent from
# checkpoints fails lint, not a resumed query at 2am.
SNAPSHOT_HEADER_REL = "src/exec/session.h"
SNAPSHOT_IMPL_REL = "src/exec/session_snapshot.cc"
SNAPSHOT_CLASS_RE = re.compile(r"^\s*class\s+QuerySession\b")
SNAPSHOT_TRANSIENT_RE = re.compile(r"//\s*cdb-snapshot:\s*transient\(")
# A data-member declaration: trailing-underscore identifier, optional
# initializer, terminated by ';'. Function declarations are excluded by the
# caller (any line containing '(').
SNAPSHOT_MEMBER_RE = re.compile(
    r"\b([A-Za-z_]\w*_)\s*(?:=[^;{}]*|\{[^;]*\})?;")


def check_snapshot_discipline(root: str) -> List[Finding]:
    header_path = os.path.join(root, *SNAPSHOT_HEADER_REL.split("/"))
    impl_path = os.path.join(root, *SNAPSHOT_IMPL_REL.split("/"))
    try:
        with open(header_path, encoding="utf-8") as f:
            header = f.read()
    except OSError:
        return []  # No session header: nothing to police.
    try:
        with open(impl_path, encoding="utf-8") as f:
            impl = f.read()
    except OSError:
        impl = ""  # Snapshot file deleted: every member below is a finding.
    impl_code = "\n".join(code for _, _, code in iter_code_lines(impl))

    # Collect the QuerySession class body via brace depth over
    # comment-stripped lines.
    body: List[Tuple[int, str, str]] = []
    depth = 0
    in_class = False
    for lineno, raw, code in iter_code_lines(header):
        if not in_class:
            if SNAPSHOT_CLASS_RE.search(code):
                in_class = True
                depth = code.count("{") - code.count("}")
            continue
        depth += code.count("{") - code.count("}")
        if depth <= 0:  # The class-closing '};'.
            break
        body.append((lineno, raw, code))

    findings = []
    # A transient marker covers exactly the next member declaration:
    # intervening comment lines (marker continuations) keep it pending, any
    # other code — or the declaration it annotates — consumes it. A fixed
    # lookback window would let one member's marker leak onto its neighbor.
    marker_pending = False
    for lineno, raw, code in body:
        if SNAPSHOT_TRANSIENT_RE.search(raw):
            marker_pending = True
        members = ([] if "(" in code  # Function declarations, not data.
                   else [m.group(1)
                         for m in SNAPSHOT_MEMBER_RE.finditer(code)])
        if members:
            for member in members:
                if re.search(r"\b" + re.escape(member) + r"\b", impl_code):
                    continue
                if marker_pending or suppressed(raw, "snapshot-discipline"):
                    continue
                findings.append(Finding(
                    SNAPSHOT_HEADER_REL, lineno, "snapshot-discipline",
                    f"QuerySession::{member} is neither serialized in "
                    f"{SNAPSHOT_IMPL_REL} nor marked "
                    "'// cdb-snapshot: transient(<reason>)' — restored "
                    "sessions would silently drop this state"))
            marker_pending = False
        elif code.strip():
            marker_pending = False
    return findings


# --------------------------------------------------------------------------
# Rule: single-publish-path
# --------------------------------------------------------------------------

# The only call sites allowed to drive the platform round loop directly: the
# session publish path and the platform's own implementation/recursion.
PUBLISH_PATH_ALLOWED = (
    "src/exec/session.cc",
    "src/exec/scheduler.cc",
    "src/crowd/platform.h",
    "src/crowd/platform.cc",
)
EXECUTE_ROUND_RE = re.compile(r"\bExecuteRound\s*\(")


def check_single_publish_path(path: str, text: str) -> List[Finding]:
    norm = path.replace(os.sep, "/")
    # tests/ exercises the simulator directly by design (platform unit tests,
    # the DST fault harness); everything shipping in src/bench/examples must
    # go through a TaskPublisher.
    if norm in PUBLISH_PATH_ALLOWED or norm.startswith("tests/"):
        return []
    findings = []
    for lineno, raw, code in iter_code_lines(text):
        if (EXECUTE_ROUND_RE.search(code)
                and not suppressed(raw, "single-publish-path")):
            findings.append(Finding(
                path, lineno, "single-publish-path",
                "direct ExecuteRound call outside the session publish path; "
                "publish through a TaskPublisher (PlatformPublisher or the "
                "scheduler channel) so budget, dedup, and fault drains are "
                "not bypassed"))
    return findings


# --------------------------------------------------------------------------
# Rule: fault-rng-stream
# --------------------------------------------------------------------------

# A line is "fault context" when it touches a FaultProfile knob.
FAULT_TOKEN_RE = re.compile(
    r"\bfault\s*\.|abandon_prob|straggler_prob|straggler_delay|no_show_prob|"
    r"duplicate_prob|task_deadline_ticks")
# The platform's shared sequential generator (member `rng_`).
SHARED_RNG_RE = re.compile(r"(?<![\w.])rng_\s*\.")
FORK_RE = re.compile(r"\.\s*Fork\s*\(")
# Any Rng construction on the line: `Rng(...)` temporary or `Rng name(...)`
# declaration. The argument text is scanned for a top-level comma — one
# argument means no stream index was passed.
RNG_CTOR_RE = re.compile(r"\bRng\s+(?:\w+\s*)?\(|\bRng\s*\(")


def _single_arg_rng_ctor(code: str) -> bool:
    for m in RNG_CTOR_RE.finditer(code):
        depth = 1
        top_level_comma = False
        closed = False
        for c in code[m.end():]:
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    closed = True
                    break
            elif c == "," and depth == 1:
                top_level_comma = True
        if closed and not top_level_comma:
            return True
    return False


def check_fault_rng_stream(path: str, text: str) -> List[Finding]:
    norm = path.replace(os.sep, "/")
    if not norm.startswith("src/crowd/"):
        return []
    findings = []
    for lineno, raw, code in iter_code_lines(text):
        if suppressed(raw, "fault-rng-stream"):
            continue
        if FORK_RE.search(code):
            findings.append(Finding(
                path, lineno, "fault-rng-stream",
                "Rng::Fork() in the crowd simulator; forked streams depend "
                "on consumption order — split an explicit "
                "Rng(seed ^ salt, counter) stream instead"))
            continue
        if not FAULT_TOKEN_RE.search(code):
            continue
        if SHARED_RNG_RE.search(code):
            findings.append(Finding(
                path, lineno, "fault-rng-stream",
                "fault decision drawn from the shared sequential rng_; the "
                "fault schedule must be a pure function of (seed, counter) "
                "— use a split Rng(seed ^ salt, counter) stream"))
        elif _single_arg_rng_ctor(code):
            findings.append(Finding(
                path, lineno, "fault-rng-stream",
                "single-argument Rng construction in fault logic; pass a "
                "stream index (Rng(seed ^ salt, counter)) so the draw is "
                "independent of every other consumer"))
    return findings


# --------------------------------------------------------------------------
# Rule: wallclock-outside-trace
# --------------------------------------------------------------------------

# The deterministic surface (metrics dumps, tick traces, optimizer decisions)
# must never see wall-clock time. src/common/trace.cc is the single sanctioned
# std::chrono reader; everything else measures wall time through cdb::WallTimer
# so a nondeterministic stamp cannot leak into a byte-compared dump.
WALLCLOCK_ALLOWED = ("src/common/trace.cc",)
WALLCLOCK_PATTERNS = [
    (re.compile(r"#\s*include\s*<chrono>"), "#include <chrono>"),
    (re.compile(r"\bstd\s*::\s*chrono\b"), "std::chrono"),
    (re.compile(r"\b(?:steady_clock|system_clock|high_resolution_clock)\b"),
     "direct clock type"),
]


def check_wallclock(path: str, text: str) -> List[Finding]:
    norm = path.replace(os.sep, "/")
    if norm in WALLCLOCK_ALLOWED or norm.startswith("tests/"):
        return []
    findings = []
    for lineno, raw, code in iter_code_lines(text):
        for pattern, what in WALLCLOCK_PATTERNS:
            if (pattern.search(code)
                    and not suppressed(raw, "wallclock-outside-trace")):
                findings.append(Finding(
                    path, lineno, "wallclock-outside-trace",
                    f"{what} outside src/common/trace.cc; read wall time "
                    "through cdb::WallTimer so nondeterministic stamps stay "
                    "out of decision paths and byte-compared dumps"))
                break
    return findings


# --------------------------------------------------------------------------
# Rule: flat-index-hot-path
# --------------------------------------------------------------------------
# The per-record and per-sample hot paths are flat: CSR posting lists plus
# dense-id arenas in the similarity joins (similarity/csr_index.h), and SoA
# edge columns / CSR incidence / cached selection skeletons in the optimizer
# (graph/query_graph.h, cost/structure_cache.h, flow/min_cut.h), probed by
# bounds arithmetic and linear scans. A hash lookup (find/count/at/
# operator[]) on an unordered container inside these directories is either a
# probe/sample-loop regression or a deliberate build/encode-phase use — the
# latter carries a reasoned
# `// cdb-lint: disable=flat-index-hot-path <why>` comment.

FLAT_INDEX_DIRS = {
    "src/similarity": "probe loops are flat (CSR postings + dense-id "
                      "arenas, see similarity/csr_index.h)",
    "src/cost": "per-sample selection loops are flat (SoA edge columns + "
                "cached skeletons, see cost/structure_cache.h)",
    "src/flow": "per-sample flow loops are flat (CSR adjacency + reusable "
                "arenas, see flow/min_cut.h)",
}
UNORDERED_LOOKUP_RE = re.compile(r"\b(\w+)\s*(?:\.\s*(?:find|count|at)\s*\(|\[)")


def check_flat_index_hot_path(path: str, text: str) -> List[Finding]:
    norm = path.replace(os.sep, "/")
    hint = next((why for d, why in FLAT_INDEX_DIRS.items()
                 if norm.startswith(d + "/")), None)
    if hint is None:
        return []
    names = _unordered_names(text)
    if not names:
        return []
    findings = []
    for lineno, raw, code in iter_code_lines(text):
        if suppressed(raw, "flat-index-hot-path"):
            continue
        for m in UNORDERED_LOOKUP_RE.finditer(code):
            if m.group(1) in names:
                findings.append(Finding(
                    path, lineno, "flat-index-hot-path",
                    f"hash lookup on unordered container '{m.group(1)}' in "
                    f"{os.path.dirname(norm)}/; {hint} — use the flat "
                    "structures, or justify a build-phase lookup with "
                    "// cdb-lint: disable=flat-index-hot-path <reason>"))
                break
    return findings


# --------------------------------------------------------------------------
# Rule: mutex-annotation
# --------------------------------------------------------------------------
# The concurrency capability model (DESIGN.md): all locking in src/ goes
# through the annotated wrappers in common/mutex.h, because libstdc++'s
# std::mutex carries no capability attributes and is therefore invisible to
# clang's -Wthread-safety analysis. Two sub-checks, src/ scope only (tests
# may exercise raw primitives to test the pool itself):
#   (1) no raw std::mutex / std::condition_variable outside common/mutex.h;
#   (2) any file declaring a cdb Mutex/CondVar must directly include
#       common/mutex.h (or common/thread_annotations.h) and carry at least
#       one CDB_* capability annotation — a mutex with no declared guard
#       relationship is unverifiable by both the clang analysis and
#       tools/cdb_analyze.py.

MUTEX_WRAPPER_HEADER = "src/common/mutex.h"
RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(?:recursive_|timed_|shared_)?mutex\b"
    r"|\bstd\s*::\s*condition_variable(?:_any)?\b")
WRAPPER_DECL_RE = re.compile(r"(?<![\w:])(?:cdb::)?(?:Mutex|CondVar)\s+[A-Za-z_]\w*")
ANNOTATION_TOKEN_RE = re.compile(
    r"\bCDB_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES(?:_SHARED)?"
    r"|EXCLUDES|ACQUIRE(?:_SHARED)?|RELEASE(?:_SHARED)?|TRY_ACQUIRE"
    r"|CAPABILITY|SCOPED_CAPABILITY|ASSERT_CAPABILITY)\b")
MUTEX_INCLUDE_RE = re.compile(
    r'#\s*include\s+"common/(?:mutex|thread_annotations)\.h"')


def check_mutex_annotation(path: str, text: str) -> List[Finding]:
    norm = path.replace(os.sep, "/")
    if not norm.startswith("src/") or norm == MUTEX_WRAPPER_HEADER:
        return []
    findings = []
    wrapper_decl_line = None
    has_include = False
    has_annotation = False
    for lineno, raw, code in iter_code_lines(text):
        # Match the raw line: the include path is a string literal, which
        # iter_code_lines strips out of `code`.
        if MUTEX_INCLUDE_RE.search(raw):
            has_include = True
        if ANNOTATION_TOKEN_RE.search(code):
            has_annotation = True
        if suppressed(raw, "mutex-annotation"):
            continue
        if RAW_SYNC_RE.search(code):
            findings.append(Finding(
                path, lineno, "mutex-annotation",
                "raw std:: synchronization primitive outside common/mutex.h; "
                "libstdc++ mutexes carry no capability attributes, so clang's "
                "-Wthread-safety cannot see them — use cdb::Mutex / "
                "cdb::CondVar / cdb::MutexLock from common/mutex.h"))
            continue
        if wrapper_decl_line is None and WRAPPER_DECL_RE.search(code):
            wrapper_decl_line = lineno
    if wrapper_decl_line is not None:
        if not has_include:
            findings.append(Finding(
                path, wrapper_decl_line, "mutex-annotation",
                "declares a Mutex/CondVar but does not directly include "
                'common/mutex.h; add #include "common/mutex.h" so the '
                "capability types are not picked up transitively"))
        elif not has_annotation:
            findings.append(Finding(
                path, wrapper_decl_line, "mutex-annotation",
                "declares a Mutex but carries no CDB_* capability annotation; "
                "state what the mutex guards (CDB_GUARDED_BY on the protected "
                "members, CDB_EXCLUDES/CDB_REQUIRES on the entry points) — an "
                "undeclared guard relationship is unverifiable"))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

PER_FILE_RULES: List[Callable[[str, str], List[Finding]]] = [
    check_rng,
    check_unordered_iteration,
    check_naked_abort,
    check_include_guard,
    check_single_publish_path,
    check_fault_rng_stream,
    check_wallclock,
    check_flat_index_hot_path,
    check_mutex_annotation,
]

LINT_SUBDIRS = ("src", "tests", "bench", "examples")


def lint_repo(root: str) -> List[Finding]:
    findings: List[Finding] = []
    for rel in repo_files(root, LINT_SUBDIRS):
        try:
            with open(os.path.join(root, rel), encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            findings.append(Finding(rel, 0, "io", f"unreadable: {e}"))
            continue
        for rule in PER_FILE_RULES:
            findings.extend(rule(rel, text))
    findings.extend(check_cmake_ownership(root))
    findings.extend(check_snapshot_discipline(root))
    return findings


# --------------------------------------------------------------------------
# Self-test fixtures: for every rule, at least one snippet that must trigger
# it (positive) and one that must not (negative). Run via --self-test; wired
# into ctest as cdb_lint_selftest.
# --------------------------------------------------------------------------

SELF_TEST_CASES = [
    # (description, path, snippet, rule, expect_finding)
    ("rand() in exec", "src/exec/foo.cc",
     "int x = rand();\n", "rng-outside-common", True),
    ("srand in bench", "bench/b.cc",
     "srand(42);\n", "rng-outside-common", True),
    ("random_device in tests", "tests/t.cc",
     "std::random_device rd;\n", "rng-outside-common", True),
    ("mt19937 outside common", "src/cost/c.cc",
     "std::mt19937 gen(7);\n", "rng-outside-common", True),
    ("time(nullptr) seed", "src/graph/g.cc",
     "auto seed = time(nullptr);\n", "rng-outside-common", True),
    ("allowed in common/random", "src/common/random.cc",
     "std::mt19937_64 engine_;\n", "rng-outside-common", False),
    ("Rng use is fine", "src/exec/foo.cc",
     "double d = rng.Uniform01();\n", "rng-outside-common", False),
    ("rand in comment ignored", "src/exec/foo.cc",
     "// seeded, never rand()\n", "rng-outside-common", False),
    ("rand in string ignored", "src/exec/foo.cc",
     'const char* s = "rand()";\n', "rng-outside-common", False),
    ("ElapsedTime() not time()", "src/exec/foo.cc",
     "double t = ElapsedTime();\n", "rng-outside-common", False),
    ("steady_clock fine", "bench/b.cc",
     "auto t0 = std::chrono::steady_clock::now();\n",
     "rng-outside-common", False),
    ("suppressed with reason", "src/exec/foo.cc",
     "int x = rand();  // cdb-lint: disable=rng-outside-common legacy shim\n",
     "rng-outside-common", False),

    ("range-for over unordered decl", "src/cost/c.cc",
     "std::unordered_map<int, double> m;\n"
     "for (const auto& kv : m) {\n}\n", "unordered-iteration", True),
    ("range-for over inline unordered expr", "src/graph/g.cc",
     "for (auto& v : state.unordered_set_of_ids()) {\n}\n",
     "unordered-iteration", True),
    ("iterator loop over unordered", "src/exec/e.cc",
     "std::unordered_set<int> seen;\n"
     "for (auto it = seen.begin(); it != seen.end(); ++it) {\n}\n",
     "unordered-iteration", True),
    ("range-for over vector fine", "src/cost/c.cc",
     "std::vector<int> order;\nfor (int v : order) {\n}\n",
     "unordered-iteration", False),
    ("unordered lookup fine", "src/cost/c.cc",
     "std::unordered_map<int, double> m;\n"
     "auto it = m.find(3);\n", "unordered-iteration", False),
    ("unordered iteration outside decision path", "src/storage/s.cc",
     "std::unordered_map<int, int> m;\nfor (auto& kv : m) {\n}\n",
     "unordered-iteration", False),
    ("suppressed sorted-after loop", "src/latency/l.cc",
     "std::unordered_map<int, int> m;\n"
     "for (auto& kv : m) {  // cdb-lint: disable=unordered-iteration "
     "keys sorted below\n}\n",
     "unordered-iteration", False),

    ("std::abort in exec", "src/exec/e.cc",
     "if (bad) std::abort();\n", "naked-abort", True),
    ("bare abort in graph", "src/graph/g.cc",
     "abort();\n", "naked-abort", True),
    ("abort fine in common", "src/common/logging.cc",
     "std::abort();\n", "naked-abort", False),
    ("CheckFail call fine", "src/exec/e.cc",
     "::cdb::internal_logging::CheckFail(__FILE__, __LINE__, c, {});\n",
     "naked-abort", False),
    ("member .abort() fine", "src/exec/e.cc",
     "controller.abort();\n", "naked-abort", False),
    ("abort in tests out of scope", "tests/t.cc",
     "std::abort();\n", "naked-abort", False),

    ("ExecuteRound in an executor", "src/exec/e.cc",
     "auto answers = platform.ExecuteRound(tasks).value();\n",
     "single-publish-path", True),
    ("ExecuteRound in a bench", "bench/b.cc",
     "platform.ExecuteRound(tasks);\n", "single-publish-path", True),
    ("allowed in session.cc", "src/exec/session.cc",
     "auto answers = platform_->ExecuteRound(tasks, policy, observer);\n",
     "single-publish-path", False),
    ("allowed in scheduler.cc", "src/exec/scheduler.cc",
     "platform_->ExecuteRound(merged, nullptr, nullptr);\n",
     "single-publish-path", False),
    ("allowed inside the platform", "src/crowd/platform.cc",
     "return ExecuteRound(tasks, policy, observer);\n",
     "single-publish-path", False),
    ("platform unit tests out of scope", "tests/crowd_test.cc",
     "auto answers = platform.ExecuteRound(tasks).value();\n",
     "single-publish-path", False),
    ("mention in comment ignored", "src/exec/e.cc",
     "// the publisher wraps ExecuteRound()\n", "single-publish-path", False),
    ("suppressed simulator micro-bench", "bench/bench_micro_core.cc",
     "platform.ExecuteRound(tasks);  "
     "// cdb-lint: disable=single-publish-path raw simulator harness\n",
     "single-publish-path", False),

    ("fault draw from shared rng_", "src/crowd/platform.cc",
     "if (rng_.Bernoulli(fault.abandon_prob)) {\n}\n",
     "fault-rng-stream", True),
    ("Fork in crowd simulator", "src/crowd/platform.cc",
     "Rng child = rng_.Fork();\n", "fault-rng-stream", True),
    ("single-arg Rng in fault logic", "src/crowd/platform.cc",
     "Rng r(options_.seed); bool x = r.Bernoulli(fault.straggler_prob);\n",
     "fault-rng-stream", True),
    ("split-stream draw is fine", "src/crowd/platform.cc",
     "bool abandoned = Rng(options_.seed ^ kSalt, lease_seq_)"
     ".Bernoulli(fault.abandon_prob);\n",
     "fault-rng-stream", False),
    ("named split-stream rng is fine", "src/crowd/platform.cc",
     "bool dup = fault_rng.Bernoulli(fault.duplicate_prob);\n",
     "fault-rng-stream", False),
    ("shared rng_ for worker arrival fine", "src/crowd/platform.cc",
     "size_t w = rng_.UniformInt(0, n - 1);\n", "fault-rng-stream", False),
    ("fault draws outside src/crowd out of scope", "src/exec/e.cc",
     "if (rng_.Bernoulli(fault.abandon_prob)) {\n}\n",
     "fault-rng-stream", False),
    ("suppressed fault draw", "src/crowd/platform.cc",
     "if (rng_.Bernoulli(fault.abandon_prob)) {  "
     "// cdb-lint: disable=fault-rng-stream documented legacy knob\n}\n",
     "fault-rng-stream", False),

    ("chrono include in exec", "src/exec/e.cc",
     "#include <chrono>\n", "wallclock-outside-trace", True),
    ("std::chrono read in bench", "bench/b.cc",
     "auto t0 = std::chrono::steady_clock::now();\n",
     "wallclock-outside-trace", True),
    ("bare clock type in examples", "examples/demo.cc",
     "using clock = high_resolution_clock;\n",
     "wallclock-outside-trace", True),
    ("allowed in trace.cc", "src/common/trace.cc",
     "auto now = std::chrono::steady_clock::now();\n",
     "wallclock-outside-trace", False),
    ("WallTimer use is fine", "src/exec/e.cc",
     "WallTimer timer; double ms = timer.ElapsedMs();\n",
     "wallclock-outside-trace", False),
    ("chrono in comment ignored", "src/common/trace.h",
     "// the only file allowed to touch std::chrono\n",
     "wallclock-outside-trace", False),
    ("tests out of scope", "tests/t.cc",
     "auto t0 = std::chrono::steady_clock::now();\n",
     "wallclock-outside-trace", False),
    ("suppressed wall read", "src/exec/e.cc",
     "auto t = std::chrono::steady_clock::now();  "
     "// cdb-lint: disable=wallclock-outside-trace profiling shim\n",
     "wallclock-outside-trace", False),

    ("hash find in similarity probe loop", "src/similarity/join.cc",
     "std::unordered_map<int, std::vector<int>> index;\n"
     "auto it = index.find(token);\n",
     "flat-index-hot-path", True),
    ("hash subscript in similarity", "src/similarity/join.cc",
     "std::unordered_map<std::string, int> freq;\n"
     "++freq[token];\n",
     "flat-index-hot-path", True),
    ("suppressed build-phase lookup", "src/similarity/join.cc",
     "std::unordered_map<std::string, int> ids;\n"
     "auto it = ids.find(token);  "
     "// cdb-lint: disable=flat-index-hot-path dictionary build phase\n",
     "flat-index-hot-path", False),
    ("vector subscript is fine", "src/similarity/join.cc",
     "std::vector<int> postings;\nint x = postings[0];\n",
     "flat-index-hot-path", False),
    ("unordered lookup outside flat-index dirs", "src/graph/g.cc",
     "std::unordered_map<int, int> cache;\nauto it = cache.find(k);\n",
     "flat-index-hot-path", False),
    ("declaration alone is fine", "src/similarity/join.cc",
     "std::unordered_map<std::string, int> ids;\nids.reserve(100);\n",
     "flat-index-hot-path", False),
    ("hash find in cost sample loop", "src/cost/sampling.cc",
     "std::unordered_map<int64_t, double> memo;\n"
     "auto it = memo.find(key);\n",
     "flat-index-hot-path", True),
    ("hash subscript in flow layering", "src/flow/min_cut.cc",
     "std::unordered_map<int, int> pos;\nint i = pos[v];\n",
     "flat-index-hot-path", True),
    ("unordered_set count in flow", "src/flow/dinic.cc",
     "std::unordered_set<int> seen;\nif (seen.count(v)) return;\n",
     "flat-index-hot-path", True),
    ("suppressed cache-build lookup in cost", "src/cost/structure_cache.cc",
     "std::unordered_map<int, int> ids;\n"
     "auto it = ids.find(k);  "
     "// cdb-lint: disable=flat-index-hot-path one-time cache build\n",
     "flat-index-hot-path", False),
    ("flat vectors in cost are fine", "src/cost/expectation.cc",
     "std::vector<double> memo;\ndouble v = memo[key];\n",
     "flat-index-hot-path", False),

    ("raw std::mutex member in src", "src/exec/e.h",
     "class S {\n  std::mutex mu_;\n};\n",
     "mutex-annotation", True),
    ("raw std::condition_variable in src", "src/exec/e.h",
     "class S {\n  std::condition_variable cv_;\n};\n",
     "mutex-annotation", True),
    ("raw mutex in tests is out of scope", "tests/parallel_test.cc",
     "std::mutex mu;\n",
     "mutex-annotation", False),
    ("raw mutex inside the wrapper header", "src/common/mutex.h",
     "class Mutex {\n  std::mutex mu_;\n};\n",
     "mutex-annotation", False),
    ("suppressed raw mutex", "src/exec/e.h",
     "std::mutex mu_;  // cdb-lint: disable=mutex-annotation ffi shim\n",
     "mutex-annotation", False),
    ("annotated wrapper declaration is clean", "src/cost/c.h",
     '#include "common/mutex.h"\n'
     "class S {\n  Mutex mu_;\n  int x_ CDB_GUARDED_BY(mu_) = 0;\n};\n",
     "mutex-annotation", False),
    ("wrapper declared without direct include", "src/cost/c.h",
     "class S {\n  Mutex mu_;\n  int x_ CDB_GUARDED_BY(mu_) = 0;\n};\n",
     "mutex-annotation", True),
    ("wrapper declared without any annotation", "src/cost/c.h",
     '#include "common/mutex.h"\n'
     "class S {\n  Mutex mu_;\n  int x_ = 0;\n};\n",
     "mutex-annotation", True),
    ("MutexLock local alone needs no include", "src/cost/c.cc",
     "void F() { MutexLock lock(mu_); }\n",
     "mutex-annotation", False),
    ("chrono mention in comment ignored for mutex rule", "src/cost/c.cc",
     "// a std::mutex would be wrong here\n",
     "mutex-annotation", False),

    ("canonical guard ok", "src/cost/sampling.h",
     "#ifndef CDB_COST_SAMPLING_H_\n#define CDB_COST_SAMPLING_H_\n#endif\n",
     "include-guard", False),
    ("wrong guard name", "src/cost/sampling.h",
     "#ifndef SAMPLING_H\n#define SAMPLING_H\n#endif\n",
     "include-guard", True),
    ("missing guard", "src/cost/sampling.h",
     "int x;\n", "include-guard", True),
    ("ifndef without matching define", "src/cost/sampling.h",
     "#ifndef CDB_COST_SAMPLING_H_\n#define WRONG_H_\n#endif\n",
     "include-guard", True),
]


def run_self_test() -> int:
    failures = 0
    for desc, path, snippet, rule, expect in SELF_TEST_CASES:
        found = []
        for check in PER_FILE_RULES:
            found.extend(f for f in check(path, snippet) if f.rule == rule)
        ok = bool(found) == expect
        status = "PASS" if ok else "FAIL"
        if not ok:
            failures += 1
            detail = "; ".join(f.render() for f in found) or "no findings"
            print(f"[{status}] {desc}: expected "
                  f"{'a finding' if expect else 'no findings'}, got {detail}")
        else:
            print(f"[{status}] {desc}")

    # cc-owned-by-cmake fixture: a fake repo in a temp dir with one orphan.
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "src", "util"))
        with open(os.path.join(tmp, "src", "CMakeLists.txt"), "w",
                  encoding="utf-8") as f:
            f.write("add_library(x util/owned.cc)\n")
        for name in ("owned.cc", "orphan.cc"):
            with open(os.path.join(tmp, "src", "util", name), "w",
                      encoding="utf-8") as f:
                f.write("int v;\n")
        got = check_cmake_ownership(tmp)
        orphan_flagged = (len(got) == 1
                          and got[0].path.endswith("orphan.cc")
                          and got[0].rule == "cc-owned-by-cmake")
        status = "PASS" if orphan_flagged else "FAIL"
        if not orphan_flagged:
            failures += 1
        print(f"[{status}] cmake ownership flags only the orphan .cc")

    # snapshot-discipline fixture: a fake QuerySession with one serialized
    # member, one marked-transient member, and one silently dropped member.
    # Only the dropped one may be flagged, and a comment mention in the
    # snapshot file must not count as serialization.
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "src", "exec"))
        with open(os.path.join(tmp, "src", "exec", "session.h"), "w",
                  encoding="utf-8") as f:
            f.write(
                "class QuerySession {\n"
                " public:\n"
                "  int Steps();\n"
                " private:\n"
                "  // cdb-snapshot: transient(alias owned by the caller)\n"
                "  int* transient_;\n"
                "  int covered_;\n"
                "  int dropped_;\n"
                "};\n"
                "int after_class_not_a_member_;\n")
        with open(os.path.join(tmp, "src", "exec", "session_snapshot.cc"),
                  "w", encoding="utf-8") as f:
            f.write("void Snap() { covered_ = 1; }\n"
                    "// dropped_ appears only in this comment\n")
        got = check_snapshot_discipline(tmp)
        dropped_flagged = (len(got) == 1
                           and got[0].rule == "snapshot-discipline"
                           and "dropped_" in got[0].message)
        status = "PASS" if dropped_flagged else "FAIL"
        if not dropped_flagged:
            failures += 1
            detail = "; ".join(f.render() for f in got) or "no findings"
            print(f"[{status}] snapshot discipline flags only the dropped "
                  f"member, got {detail}")
        else:
            print(f"[{status}] snapshot discipline flags only the dropped "
                  "member")

    total = len(SELF_TEST_CASES) + 2
    print(f"self-test: {total - failures}/{total} cases passed")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo-root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run built-in rule fixtures and exit")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test()

    root = args.repo_root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = lint_repo(root)
    for f in findings:
        print(f.render())
    if findings:
        print(f"cdb_lint: {len(findings)} finding(s)")
        return 1
    print("cdb_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
